"""Tests for the recommendation engine's epoch-keyed LRU cache and the
domain-restriction fix (filter before top-k truncation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingConfig
from repro.explore import RecommendationEngine
from repro.features import Direction, SemanticFeature
from repro.kg import GraphBuilder, KnowledgeGraph


@pytest.fixture
def engine(tiny_kg: KnowledgeGraph) -> RecommendationEngine:
    return RecommendationEngine(tiny_kg)


class TestRecommendationCache:
    def test_repeat_query_hits_cache(self, engine: RecommendationEngine):
        first = engine.recommend_for_seeds(["ex:F1", "ex:F2"])
        info = engine.cache_info()
        assert info == {**info, "hits": 0, "misses": 1, "size": 1}
        second = engine.recommend_for_seeds(["ex:F1", "ex:F2"])
        assert engine.cache_info()["hits"] == 1
        assert second.entity_ids() == first.entity_ids()
        assert second.feature_notations() == first.feature_notations()
        assert np.array_equal(second.correlations.values, first.correlations.values)

    def test_seed_order_is_canonicalised(self, engine: RecommendationEngine):
        first = engine.recommend_for_seeds(["ex:F1", "ex:F2"])
        second = engine.recommend_for_seeds(["ex:F2", "ex:F1"])
        assert engine.cache_info()["hits"] == 1
        assert second.entity_ids() == first.entity_ids()
        # The payload still reports the caller's query, not the cached one.
        assert second.query.seed_entities == ("ex:F2", "ex:F1")

    def test_pinned_feature_order_is_canonicalised(self, engine: RecommendationEngine):
        starring_a1 = SemanticFeature("ex:A1", "ex:starring", Direction.OBJECT_OF)
        genre_g1 = SemanticFeature("ex:G1", "ex:genre", Direction.OBJECT_OF)
        engine.recommend_for_seeds(["ex:F1"], pinned_features=[starring_a1, genre_g1])
        engine.recommend_for_seeds(["ex:F1"], pinned_features=[genre_g1, starring_a1])
        assert engine.cache_info()["hits"] == 1

    def test_distinct_query_states_are_distinct_entries(self, engine: RecommendationEngine):
        engine.recommend_for_seeds(["ex:F1"])
        engine.recommend_for_seeds(["ex:F1"], domain_type="ex:Film")
        engine.recommend_for_seeds(["ex:F1"], top_entities=1)
        info = engine.cache_info()
        assert info["hits"] == 0
        assert info["size"] == 3

    def test_graph_mutation_bumps_epoch_and_clears_cache(
        self, engine: RecommendationEngine, tiny_kg: KnowledgeGraph
    ):
        engine.recommend_for_seeds(["ex:F1", "ex:F2"])
        epoch_before = engine.feature_index.epoch
        assert engine.cache_info()["size"] == 1

        # A new film starring A1 must invalidate everything derived.
        tiny_kg.add("ex:F9", "ex:starring", "ex:A1")
        tiny_kg.add_type("ex:F9", "ex:Film")
        assert engine.feature_index.epoch > epoch_before

        recommendation = engine.recommend_for_seeds(["ex:F1", "ex:F2"])
        info = engine.cache_info()
        assert info["hits"] == 0
        assert info["misses"] == 2
        assert info["size"] == 1  # old entry was dropped with the epoch
        assert info["epoch"] == engine.feature_index.epoch
        # The fresh result reflects the mutated graph.
        assert "ex:F9" in recommendation.entity_ids()

    def test_cache_disabled_by_config(self, tiny_kg: KnowledgeGraph):
        engine = RecommendationEngine(
            tiny_kg, config=RankingConfig(recommendation_cache_size=0)
        )
        engine.recommend_for_seeds(["ex:F1"])
        engine.recommend_for_seeds(["ex:F1"])
        info = engine.cache_info()
        assert info["hits"] == 0
        assert info["misses"] == 0
        assert info["size"] == 0

    def test_lru_eviction(self, tiny_kg: KnowledgeGraph):
        engine = RecommendationEngine(
            tiny_kg, config=RankingConfig(recommendation_cache_size=2)
        )
        engine.recommend_for_seeds(["ex:F1"])
        engine.recommend_for_seeds(["ex:F2"])
        engine.recommend_for_seeds(["ex:F3"])  # evicts ["ex:F1"]
        assert engine.cache_info()["size"] == 2
        engine.recommend_for_seeds(["ex:F1"])
        assert engine.cache_info()["hits"] == 0

    def test_clear_cache(self, engine: RecommendationEngine):
        engine.recommend_for_seeds(["ex:F1"])
        engine.clear_cache()
        assert engine.cache_info()["size"] == 0

    def test_cache_info_reflects_mutation_without_a_recommend_call(
        self, engine: RecommendationEngine, tiny_kg: KnowledgeGraph
    ):
        engine.recommend_for_seeds(["ex:F1"])
        tiny_kg.add("ex:F9", "ex:starring", "ex:A1")
        info = engine.cache_info()
        assert info["size"] == 0  # invalidated entries are not reported
        assert info["epoch"] == engine.feature_index.epoch

    def test_cached_payloads_are_immutable_but_picklable(
        self, engine: RecommendationEngine
    ):
        import copy
        import pickle

        recommendation = engine.recommend_for_seeds(["ex:F1", "ex:F2"])
        with pytest.raises(ValueError):
            recommendation.correlations.values[0, 0] = 99.0
        with pytest.raises(TypeError):
            recommendation.entities[0].contributions["x"] = 1.0  # type: ignore[index]
        with pytest.raises(TypeError):
            recommendation.features[0].seed_probabilities["x"] = 1.0  # type: ignore[index]
        # ...but the payload still round-trips through pickle and deepcopy.
        clone = pickle.loads(pickle.dumps(recommendation))
        assert clone.entity_ids() == recommendation.entity_ids()
        assert dict(clone.entities[0].contributions) == dict(
            recommendation.entities[0].contributions
        )
        deep = copy.deepcopy(recommendation.entities[0])
        assert deep == recommendation.entities[0]

    def test_exhaustive_bypasses_cache_and_matches(self, engine: RecommendationEngine):
        fast = engine.recommend_for_seeds(["ex:F1", "ex:F2"])
        slow = engine.recommend_for_seeds(["ex:F1", "ex:F2"], exhaustive=True)
        info = engine.cache_info()
        assert info == {**info, "hits": 0, "misses": 1, "size": 1}
        assert slow.entity_ids() == fast.entity_ids()
        assert slow.feature_notations() == fast.feature_notations()
        assert np.array_equal(slow.correlations.values, fast.correlations.values)


def build_crowded_domain_kg() -> KnowledgeGraph:
    """A graph where non-domain candidates outrank every domain candidate.

    The seed ``ex:S`` holds two features anchored at the hub ``ex:H``.
    Fifteen persons hold both features (high scores); two films hold only
    one (low scores).  Before the fix, the domain filter ran *after* top-k
    truncation of an over-fetched prefix, so a Film-restricted
    recommendation came back empty even though matching films exist.
    """
    builder = GraphBuilder("crowded")
    builder.entity("ex:H", label="Hub", types=["ex:Hub"])
    builder.entity("ex:S", label="Seed", types=["ex:Seed"])
    builder.edge("ex:S", "ex:p1", "ex:H")
    builder.edge("ex:S", "ex:p2", "ex:H")
    for i in range(15):
        person = f"ex:P{i:02d}"
        builder.entity(person, label=f"Person {i}", types=["ex:Person"])
        builder.edge(person, "ex:p1", "ex:H")
        builder.edge(person, "ex:p2", "ex:H")
    for i in range(2):
        film = f"ex:M{i}"
        builder.entity(film, label=f"Film {i}", types=["ex:Film"])
        builder.edge(film, "ex:p1", "ex:H")
    return builder.build()


class TestDomainFilterBeforeTruncation:
    def test_domain_matches_survive_crowding(self):
        graph = build_crowded_domain_kg()
        engine = RecommendationEngine(graph)
        recommendation = engine.recommend_for_seeds(
            ["ex:S"], domain_type="ex:Film", top_entities=1
        )
        assert recommendation.entity_ids() == ["ex:M0"]

    def test_domain_returns_full_top_k(self):
        graph = build_crowded_domain_kg()
        engine = RecommendationEngine(graph)
        recommendation = engine.recommend_for_seeds(
            ["ex:S"], domain_type="ex:Film", top_entities=10
        )
        assert recommendation.entity_ids() == ["ex:M0", "ex:M1"]
        for entity_id in recommendation.entity_ids():
            assert "ex:Film" in graph.types_of(entity_id)

    def test_unrestricted_ranking_prefers_persons(self):
        graph = build_crowded_domain_kg()
        engine = RecommendationEngine(graph)
        recommendation = engine.recommend_for_seeds(["ex:S"], top_entities=5)
        for entity_id in recommendation.entity_ids():
            assert "ex:Person" in graph.types_of(entity_id)
