"""Tests for repro.ranking.entity_ranking: r(e, Q) = sum p(pi|e) r(pi, Q)."""

from __future__ import annotations

import pytest

from repro.exceptions import NoSeedEntitiesError
from repro.features import SemanticFeatureIndex
from repro.kg import KnowledgeGraph
from repro.ranking import EntityRanker


@pytest.fixture
def ranker(tiny_kg: KnowledgeGraph, tiny_feature_index: SemanticFeatureIndex) -> EntityRanker:
    return EntityRanker(tiny_kg, tiny_feature_index)


class TestEntityRanking:
    def test_similar_film_ranked_first(self, ranker: EntityRanker):
        # Seeds F1, F2 (both star A1 & A2, genre G1) -> F3 (stars A1, genre G1)
        # must beat F4 (different actors, genre, only shares director with F1).
        ranked = ranker.rank(["ex:F1", "ex:F2"])
        ids = [entity.entity_id for entity in ranked]
        assert ids[0] == "ex:F3"
        assert ids.index("ex:F3") < ids.index("ex:F4")

    def test_seeds_excluded_from_results(self, ranker: EntityRanker):
        ranked = ranker.rank(["ex:F1", "ex:F2"])
        ids = {entity.entity_id for entity in ranked}
        assert "ex:F1" not in ids and "ex:F2" not in ids

    def test_score_is_sum_of_contributions(self, ranker: EntityRanker):
        features = ranker.feature_ranker.rank(["ex:F1", "ex:F2"])
        scored = ranker.score_entity("ex:F3", features)
        assert scored.score == pytest.approx(sum(
            ranker.feature_ranker.probability_model.probability(f.feature, "ex:F3") * f.score
            for f in features
        ))
        assert scored.score >= sum(scored.contributions.values()) - 1e-9

    def test_scores_descending(self, ranker: EntityRanker):
        ranked = ranker.rank(["ex:F1"])
        scores = [entity.score for entity in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_empty_seeds_raise(self, ranker: EntityRanker):
        with pytest.raises(NoSeedEntitiesError):
            ranker.rank([])

    def test_top_k(self, ranker: EntityRanker):
        assert len(ranker.rank(["ex:F1"], top_k=1)) == 1

    def test_explicit_candidates_respected(self, ranker: EntityRanker):
        features = ranker.feature_ranker.rank(["ex:F1"])
        ranked = ranker.rank(["ex:F1"], scored_features=features, candidates=["ex:F4"])
        assert [entity.entity_id for entity in ranked] == ["ex:F4"]

    def test_top_contributions_sorted(self, ranker: EntityRanker):
        features = ranker.feature_ranker.rank(["ex:F1", "ex:F2"])
        scored = ranker.score_entity("ex:F3", features)
        contributions = scored.top_contributions(3)
        values = [value for _, value in contributions]
        assert values == sorted(values, reverse=True)

    def test_as_dict(self, ranker: EntityRanker):
        ranked = ranker.rank(["ex:F1"])
        payload = ranked[0].as_dict()
        assert {"entity", "score", "contributions"} <= set(payload)

    def test_rank_with_features_returns_both_axes(self, ranker: EntityRanker):
        entities, features = ranker.rank_with_features(["ex:F1", "ex:F2"])
        assert entities and features
        assert entities[0].entity_id == "ex:F3"

    def test_rank_with_features_empty_seeds(self, ranker: EntityRanker):
        with pytest.raises(NoSeedEntitiesError):
            ranker.rank_with_features([])


class TestErrorTolerance:
    def test_missing_edge_still_recovered_via_type_smoothing(self, tiny_kg: KnowledgeGraph):
        """A film missing one of the shared edges still outranks unrelated entities."""
        kg = tiny_kg
        # Add F5: same genre as seeds but stars neither A1 nor A2.
        kg.add_label("ex:F5", "F5 Film")
        kg.add_type("ex:F5", "ex:Film")
        kg.add("ex:F5", "ex:genre", "ex:G1")
        index = SemanticFeatureIndex.build(kg)
        ranker = EntityRanker(kg, index)
        ranked = ranker.rank(["ex:F1", "ex:F2"], top_k=10)
        ids = [entity.entity_id for entity in ranked]
        # F5 holds none of the seeds' actor features, yet type smoothing keeps
        # it among the top film recommendations instead of dropping it.
        assert "ex:F5" in ids[:3]
        scores = {entity.entity_id: entity.score for entity in ranked}
        assert scores["ex:F5"] > 0.0
        # It still ranks below F3, which directly shares an actor with the seeds.
        assert ids.index("ex:F3") < ids.index("ex:F5")
