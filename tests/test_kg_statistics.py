"""Tests for repro.kg.statistics."""

from __future__ import annotations

from repro.kg import (
    KnowledgeGraph,
    compute_statistics,
    type_couplings,
    type_distribution_of_neighbours,
)


class TestComputeStatistics:
    def test_basic_counts(self, tiny_kg: KnowledgeGraph):
        stats = compute_statistics(tiny_kg)
        assert stats.num_triples == len(tiny_kg)
        assert stats.num_entities == tiny_kg.num_entities()
        assert stats.num_edges == tiny_kg.num_edges()
        assert stats.num_types == 4  # Film, Actor, Director, Genre
        assert stats.num_edge_predicates == 3  # starring, director, genre

    def test_type_histogram(self, tiny_kg: KnowledgeGraph):
        stats = compute_statistics(tiny_kg)
        assert stats.type_histogram["ex:Film"] == 4
        assert stats.type_histogram["ex:Actor"] == 3

    def test_predicate_histogram(self, tiny_kg: KnowledgeGraph):
        stats = compute_statistics(tiny_kg)
        assert stats.predicate_histogram["ex:starring"] == 6

    def test_degrees(self, tiny_kg: KnowledgeGraph):
        stats = compute_statistics(tiny_kg)
        assert stats.avg_out_degree > 0
        assert stats.avg_in_degree > 0
        assert stats.max_degree >= 4  # F1 has starring x2 + director + genre

    def test_empty_graph(self):
        stats = compute_statistics(KnowledgeGraph("empty"))
        assert stats.num_triples == 0
        assert stats.avg_out_degree == 0.0
        assert stats.max_degree == 0

    def test_summary_text(self, tiny_kg: KnowledgeGraph):
        text = compute_statistics(tiny_kg).summary()
        assert "Knowledge graph" in text
        assert "largest types" in text


class TestTypeCouplings:
    def test_film_actor_coupling_present(self, tiny_kg: KnowledgeGraph):
        couplings = type_couplings(tiny_kg)
        keyed = {(c.source_type, c.predicate, c.target_type): c for c in couplings}
        coupling = keyed[("ex:Film", "ex:starring", "ex:Actor")]
        assert coupling.edge_count == 6
        assert coupling.strength == 1.0  # every film has at least one actor

    def test_min_strength_filter(self, tiny_kg: KnowledgeGraph):
        all_couplings = type_couplings(tiny_kg)
        strong = type_couplings(tiny_kg, min_strength=0.9)
        assert len(strong) <= len(all_couplings)
        assert all(c.strength >= 0.9 for c in strong)

    def test_sorted_by_strength(self, tiny_kg: KnowledgeGraph):
        couplings = type_couplings(tiny_kg)
        strengths = [c.strength for c in couplings]
        assert strengths == sorted(strengths, reverse=True)


class TestNeighbourTypeDistribution:
    def test_distribution_of_film(self, tiny_kg: KnowledgeGraph):
        distribution = type_distribution_of_neighbours(tiny_kg, "ex:F1")
        # F1 touches 2 actors, 1 director, 1 genre.
        assert distribution["ex:Actor"] == 2
        assert distribution["ex:Director"] == 1
        assert distribution["ex:Genre"] == 1

    def test_distribution_of_actor(self, tiny_kg: KnowledgeGraph):
        distribution = type_distribution_of_neighbours(tiny_kg, "ex:A1")
        assert distribution == {"ex:Film": 3}
