"""Tests for repro.features.semantic_feature."""

from __future__ import annotations

import pytest

from repro.features import Direction, SemanticFeature


class TestDirection:
    def test_flipped(self):
        assert Direction.OBJECT_OF.flipped() is Direction.SUBJECT_OF
        assert Direction.SUBJECT_OF.flipped() is Direction.OBJECT_OF

    def test_values(self):
        assert Direction.OBJECT_OF.value == "object_of"
        assert Direction.SUBJECT_OF.value == "subject_of"


class TestSemanticFeature:
    def test_notation_object_of(self):
        feature = SemanticFeature("dbr:Tom_Hanks", "dbo:starring", Direction.OBJECT_OF)
        assert feature.notation() == "dbr:Tom_Hanks:dbo:starring"

    def test_notation_subject_of_has_caret(self):
        feature = SemanticFeature("dbr:Forrest_Gump", "dbo:starring", Direction.SUBJECT_OF)
        assert feature.notation().endswith("^")

    def test_triple_pattern(self):
        object_of = SemanticFeature("dbr:Tom_Hanks", "dbo:starring", Direction.OBJECT_OF)
        subject_of = SemanticFeature("dbr:Forrest_Gump", "dbo:starring", Direction.SUBJECT_OF)
        assert object_of.triple_pattern() == "<?x, dbo:starring, dbr:Tom_Hanks>"
        assert subject_of.triple_pattern() == "<dbr:Forrest_Gump, dbo:starring, ?x>"

    def test_key_hashable(self):
        feature = SemanticFeature("a", "p")
        assert feature.key == ("a", "p", "object_of")
        assert {feature: 1}[SemanticFeature("a", "p")] == 1

    def test_default_direction_is_object_of(self):
        assert SemanticFeature("a", "p").direction is Direction.OBJECT_OF

    def test_empty_anchor_or_predicate_rejected(self):
        with pytest.raises(ValueError):
            SemanticFeature("", "p")
        with pytest.raises(ValueError):
            SemanticFeature("a", "")

    def test_describe_object_of(self):
        feature = SemanticFeature("dbr:Tom_Hanks", "starring")
        text = feature.describe(anchor_label="Tom Hanks")
        assert "Tom Hanks" in text and "starring" in text

    def test_ordering_is_deterministic(self):
        features = sorted([SemanticFeature("b", "p"), SemanticFeature("a", "p")])
        assert features[0].anchor == "a"


class TestParse:
    def test_parse_two_parts(self):
        feature = SemanticFeature.parse("Tom_Hanks:starring")
        assert feature.anchor == "Tom_Hanks"
        assert feature.predicate == "starring"
        assert feature.direction is Direction.OBJECT_OF

    def test_parse_three_parts_keeps_namespace_with_anchor(self):
        feature = SemanticFeature.parse("dbr:Tom_Hanks:starring")
        assert feature.anchor == "dbr:Tom_Hanks"
        assert feature.predicate == "starring"

    def test_parse_four_parts(self):
        feature = SemanticFeature.parse("dbr:Tom_Hanks:dbo:starring")
        assert feature.anchor == "dbr:Tom_Hanks"
        assert feature.predicate == "dbo:starring"

    def test_parse_subject_of_caret(self):
        feature = SemanticFeature.parse("dbr:Forrest_Gump:dbo:starring^")
        assert feature.direction is Direction.SUBJECT_OF

    def test_roundtrip_notation(self):
        original = SemanticFeature("dbr:Tom_Hanks", "dbo:starring", Direction.SUBJECT_OF)
        assert SemanticFeature.parse(original.notation()) == original

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            SemanticFeature.parse("")
        with pytest.raises(ValueError):
            SemanticFeature.parse("noseparator")
