"""The unified typed stats/introspection API (``repro.stats``).

Contracts under test: the frozen record types themselves (round-trips,
lookup errors, immutability), ``stats()`` on all three engine components
(shapes, counters that actually move), the deprecated dict shims
(``cache_info`` / ``pruning_info`` / ``*_cache_info``) returning exactly
the numbers the typed records carry, and ``as_dict()`` being plain JSON.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.config import PivotEConfig, SearchConfig
from repro.engine import PivotE
from repro.search import SearchEngine
from repro.stats import CacheStats, EngineStats, PruningStatsView


class TestRecordTypes:
    def test_cache_stats_round_trip(self):
        info = {"hits": 3, "misses": 7, "size": 2, "maxsize": 128}
        stats = CacheStats.from_info("results", info)
        assert stats.name == "results"
        assert stats.as_info() == info

    def test_cache_stats_epoch_key(self):
        info = {"hits": 0, "misses": 1, "size": 1, "maxsize": 8, "epoch": 4}
        stats = CacheStats.from_info("recommendations", info)
        assert stats.epoch == 4
        assert stats.as_info() == info
        # Without an epoch the legacy dict has no epoch key at all.
        assert "epoch" not in CacheStats.from_info("results", dict(info, epoch=None)).as_info()

    def test_pruning_view_round_trip(self):
        counters = {
            "queries": 5,
            "terms_total": 10,
            "terms_skipped": 2,
            "candidates_total": 40,
            "candidates_pruned": 9,
            "groups_total": 0,
            "groups_skipped": 0,
            "blocks_total": 3,
            "blocks_skipped": 1,
            "rescored": 12,
            "kernel_queries": 4,
        }
        view = PruningStatsView.from_counters("mlm", counters)
        assert view.as_counters() == counters
        assert list(view.as_counters()) == list(counters)

    def test_records_are_frozen(self):
        stats = CacheStats.from_info(
            "results", {"hits": 0, "misses": 0, "size": 0, "maxsize": 1}
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            stats.hits = 99  # type: ignore[misc]

    def test_engine_stats_lookups_raise_key_error(self):
        stats = EngineStats(
            component="search", epoch=0, shards=1, columnar=True, pruning="maxscore"
        )
        with pytest.raises(KeyError):
            stats.cache("results")
        with pytest.raises(KeyError):
            stats.pruning_view("mlm")
        with pytest.raises(KeyError):
            stats.child("recommendation")


class TestSearchEngineStats:
    @pytest.fixture(scope="class")
    def engine(self, movie_kg):
        engine = SearchEngine.from_graph(movie_kg, SearchConfig(pruning="blockmax"))
        engine.search("forrest gump")
        engine.search("forrest gump")  # one hit, one miss
        return engine

    def test_shape(self, engine):
        stats = engine.stats()
        assert stats.component == "search"
        assert stats.pruning == "blockmax"
        assert stats.columnar is True
        assert stats.shards == 1
        assert stats.children == ()
        assert [cache.name for cache in stats.caches] == ["results"]
        assert [view.name for view in stats.pruning_counters] == ["mlm"]

    def test_counters_move(self, engine):
        stats = engine.stats()
        assert stats.cache("results").hits >= 1
        assert stats.cache("results").misses >= 1
        assert stats.pruning_view("mlm").queries >= 1

    def test_shims_match_typed_records(self, engine):
        stats = engine.stats()
        assert engine.cache_info() == stats.cache("results").as_info()
        assert engine.pruning_info() == stats.pruning_view("mlm").as_counters()


class TestSystemStats:
    @pytest.fixture(scope="class")
    def system(self, movie_kg):
        system = PivotE(movie_kg, config=PivotEConfig.default())
        system.search("forrest gump")
        hits = system.search("forrest gump")
        system.recommend([hits[0].entity_id])
        system.recommend([hits[0].entity_id])
        return system

    def test_tree_shape(self, system):
        stats = system.stats()
        assert stats.component == "pivote"
        assert [child.component for child in stats.children] == [
            "search",
            "recommendation",
        ]
        assert stats.rebuilds is not None
        assert set(stats.rebuilds) == {"full_rebuilds", "delta_rebuilds", "delta_entities"}
        recommendation = stats.child("recommendation")
        assert recommendation.cache("recommendations").epoch == recommendation.epoch
        assert recommendation.cache("recommendations").hits >= 1

    def test_shims_match_typed_records(self, system):
        stats = system.stats()
        assert (
            system.search_cache_info()
            == stats.child("search").cache("results").as_info()
        )
        assert (
            system.recommendation_cache_info()
            == stats.child("recommendation").cache("recommendations").as_info()
        )
        recommender = system.recommendation_engine
        assert (
            recommender.cache_info()
            == stats.child("recommendation").cache("recommendations").as_info()
        )
        assert (
            recommender.pruning_info()
            == stats.child("recommendation").pruning_view("entity-ranker").as_counters()
        )

    def test_as_dict_is_plain_json(self, system):
        payload = system.stats().as_dict()
        decoded = json.loads(json.dumps(payload))
        assert decoded == payload
        assert payload["component"] == "pivote"
        children = payload["children"]
        assert set(children) == {"search", "recommendation"}
        assert children["search"]["caches"]["results"] == (
            system.stats().child("search").cache("results").as_info()
        )
        assert children["recommendation"]["pruning_counters"]["entity-ranker"] == (
            system.stats()
            .child("recommendation")
            .pruning_view("entity-ranker")
            .as_counters()
        )
        # Leaves never carry empty-children / null-rebuilds noise.
        assert "children" not in children["search"]
        assert "rebuilds" not in children["search"]
        assert payload["rebuilds"] == system.feature_index.rebuild_info()
