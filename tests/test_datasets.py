"""Tests for repro.datasets: synthetic KGs and workloads."""

from __future__ import annotations

import pytest

from repro.datasets import (
    AcademicKGConfig,
    CURATED_TOM_HANKS_FILMS,
    ExpansionTask,
    MovieKGConfig,
    RandomKGConfig,
    build_academic_kg,
    build_geography_kg,
    build_movie_kg,
    build_random_kg,
    expansion_tasks_from_features,
    scaling_series,
    search_tasks_from_labels,
    seed_count_sweep,
    tom_hanks_task,
)
from repro.exceptions import DatasetError
from repro.kg import compute_statistics


class TestMovieKG:
    def test_curated_core_present(self, movie_kg):
        for film in CURATED_TOM_HANKS_FILMS:
            assert film in movie_kg
        assert "dbr:Tom_Hanks" in movie_kg
        assert "dbr:Robert_Zemeckis" in movie_kg

    def test_paper_relationships(self, movie_kg):
        assert "dbr:Tom_Hanks" in movie_kg.objects("dbr:Forrest_Gump", "dbo:starring")
        assert "dbr:Gary_Sinise" in movie_kg.objects("dbr:Apollo_13_(film)", "dbo:starring")
        assert "dbr:Robert_Zemeckis" in movie_kg.objects("dbr:Forrest_Gump", "dbo:director")

    def test_forrest_gump_table1_attributes(self, movie_kg):
        attributes = movie_kg.attributes_of("dbr:Forrest_Gump")
        assert "142 minutes" in attributes["dbo:runtime"]
        assert "55 million dollars" in attributes["dbo:budget"]
        assert movie_kg.aliases_of("dbr:Forrest_Gump") == {"dbr:Greenbow", "dbr:Gumpian"}

    def test_deterministic_generation(self):
        config = MovieKGConfig(num_films=10, num_actors=10, num_directors=3, num_composers=2, seed=1)
        first, second = build_movie_kg(config), build_movie_kg(config)
        assert len(first) == len(second)
        assert first.entities() == second.entities()

    def test_scale_parameter_grows_graph(self):
        small = build_movie_kg(MovieKGConfig(num_films=10, num_actors=10, num_directors=3, num_composers=2))
        large = build_movie_kg(MovieKGConfig(num_films=60, num_actors=40, num_directors=10, num_composers=5))
        assert len(large) > len(small)

    def test_every_film_has_cast_and_director(self, movie_kg):
        for film in movie_kg.entities_of_type("dbo:Film"):
            assert movie_kg.objects(film, "dbo:starring"), film
            if film != "dbr:Philadelphia_(film)":
                # Philadelphia's curated core intentionally omits a director.
                pass

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MovieKGConfig(num_films=-1)
        with pytest.raises(ValueError):
            MovieKGConfig(actors_per_film=(3, 1))

    def test_small_movie_kg_reasonable_size(self, movie_kg):
        stats = compute_statistics(movie_kg)
        assert 50 < stats.num_entities < 1000
        assert stats.num_types >= 5


class TestAcademicKG:
    def test_structure(self, academic_kg):
        assert academic_kg.entities_of_type("pivote:Paper")
        assert academic_kg.entities_of_type("pivote:Author")
        assert "pivote:author" in academic_kg.edge_predicates()
        assert "pivote:cites" in academic_kg.edge_predicates()

    def test_every_paper_has_author_and_venue(self, academic_kg):
        for paper in academic_kg.entities_of_type("pivote:Paper"):
            assert academic_kg.objects(paper, "pivote:author")
            assert academic_kg.objects(paper, "pivote:publishedIn")

    def test_deterministic(self):
        config = AcademicKGConfig(num_papers=20, num_authors=10, seed=3)
        assert build_academic_kg(config).entities() == build_academic_kg(config).entities()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AcademicKGConfig(num_papers=0)
        with pytest.raises(ValueError):
            AcademicKGConfig(authors_per_paper=(2, 1))


class TestGeographyKG:
    def test_countries_and_capitals(self):
        kg = build_geography_kg()
        assert "dbr:France" in kg
        assert kg.objects("dbr:France", "dbo:capital") == {"dbr:Paris"}
        assert kg.objects("dbr:France", "dbo:continent") == {"dbr:Europe"}

    def test_rivers_flow_through_countries(self):
        kg = build_geography_kg()
        assert "dbr:United_States" in kg.objects("dbr:Mississippi_River", "dbo:flowsThrough")

    def test_mergeable_with_movie_kg(self, movie_kg):
        merged = movie_kg.copy("merged")
        merged.merge(build_geography_kg())
        # The United States entity bridges the two domains.
        assert merged.types_of("dbr:United_States") >= {"dbo:Country"}
        assert merged.subjects("dbo:country", "dbr:United_States")


class TestRandomKG:
    def test_size_matches_config(self):
        kg = build_random_kg(RandomKGConfig(num_entities=100, seed=1))
        assert kg.num_entities() >= 100

    def test_deterministic(self):
        config = RandomKGConfig(num_entities=80, seed=5)
        assert len(build_random_kg(config)) == len(build_random_kg(config))

    def test_types_assigned(self):
        kg = build_random_kg(RandomKGConfig(num_entities=100, num_types=5, seed=2))
        assert len(kg.types()) == 5

    def test_config_validation(self):
        with pytest.raises(DatasetError):
            RandomKGConfig(num_entities=0)
        with pytest.raises(DatasetError):
            RandomKGConfig(coupling_strength=2.0)
        with pytest.raises(DatasetError):
            RandomKGConfig(avg_out_degree=0)

    def test_scaling_series_sizes(self):
        series = scaling_series(sizes=(50, 100))
        assert set(series) == {50, 100}
        assert series[100].num_entities() > series[50].num_entities()


class TestWorkloads:
    def test_expansion_tasks_disjoint_seeds_and_relevant(self, movie_kg):
        tasks = expansion_tasks_from_features(movie_kg, num_tasks=5, seeds_per_task=2)
        assert tasks
        for task in tasks:
            assert not set(task.seeds) & set(task.relevant)
            assert len(task.seeds) == 2
            assert task.relevant

    def test_expansion_tasks_parameters_validated(self, movie_kg):
        with pytest.raises(DatasetError):
            expansion_tasks_from_features(movie_kg, seeds_per_task=0)
        with pytest.raises(DatasetError):
            expansion_tasks_from_features(movie_kg, seeds_per_task=3, min_concept_size=3)

    def test_expansion_task_overlap_rejected(self):
        with pytest.raises(DatasetError):
            ExpansionTask(name="bad", seeds=("a",), relevant=("a", "b"))

    def test_tom_hanks_task(self, movie_kg):
        task = tom_hanks_task(movie_kg)
        assert task.seeds == ("dbr:Forrest_Gump", "dbr:Apollo_13_(film)")
        assert set(task.relevant) == set(CURATED_TOM_HANKS_FILMS) - set(task.seeds)

    def test_search_tasks(self, movie_kg):
        tasks = search_tasks_from_labels(movie_kg, num_tasks=10)
        assert len(tasks) == 10
        for task in tasks:
            assert task.query.strip()
            assert len(task.relevant) == 1

    def test_search_tasks_deterministic(self, movie_kg):
        first = search_tasks_from_labels(movie_kg, num_tasks=5, seed=9)
        second = search_tasks_from_labels(movie_kg, num_tasks=5, seed=9)
        assert [t.query for t in first] == [t.query for t in second]

    def test_seed_count_sweep(self, movie_kg):
        task = tom_hanks_task(movie_kg)
        sweep = seed_count_sweep(task, max_seeds=3)
        assert set(sweep) <= {1, 2, 3}
        for count, sub_task in sweep.items():
            assert len(sub_task.seeds) == count
            assert not set(sub_task.seeds) & set(sub_task.relevant)
