"""Behaviour of the SearchEngine LRU query-result cache.

Repeat queries must be served from the cache, any index mutation must
invalidate it, and the cache must stay bounded by the configured size.
"""

from __future__ import annotations

from repro.config import SearchConfig
from repro.search import SearchEngine


def _fresh_engine(graph, **config_changes):
    config = SearchConfig(**config_changes) if config_changes else SearchConfig()
    return SearchEngine.from_graph(graph, config=config)


class TestResultCache:
    def test_repeat_query_hits_cache(self, movie_kg):
        engine = _fresh_engine(movie_kg)
        first = engine.search("forrest gump")
        info = engine.cache_info()
        assert info["hits"] == 0 and info["misses"] == 1 and info["size"] == 1
        second = engine.search("forrest gump")
        info = engine.cache_info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert first == second

    def test_cached_result_is_copied(self, movie_kg):
        engine = _fresh_engine(movie_kg)
        first = engine.search("forrest gump")
        first.clear()  # mutating the returned list must not corrupt the cache
        second = engine.search("forrest gump")
        assert second and engine.cache_info()["hits"] == 1

    def test_distinct_top_k_cached_separately(self, movie_kg):
        engine = _fresh_engine(movie_kg)
        engine.search("forrest gump", top_k=5)
        engine.search("forrest gump", top_k=10)
        info = engine.cache_info()
        assert info["misses"] == 2 and info["size"] == 2

    def test_add_entity_invalidates(self, tiny_kg):
        engine = _fresh_engine(tiny_kg)
        before = engine.search("film")
        assert engine.cache_info()["size"] == 1
        tiny_kg.add_label("ex:F9", "Brand New Film")
        tiny_kg.add_type("ex:F9", "ex:Film")
        engine.add_entity("ex:F9")
        assert engine.cache_info()["size"] == 0
        after = engine.search("film")
        assert "ex:F9" in {hit.entity_id for hit in after}
        assert engine.cache_info()["hits"] == 0  # post-mutation search was a miss
        assert before != after

    def test_rebuild_invalidates(self, tiny_kg):
        engine = _fresh_engine(tiny_kg)
        engine.search("film")
        engine.build()
        assert engine.cache_info()["size"] == 0

    def test_lru_eviction_bounded_by_config(self, tiny_kg):
        engine = _fresh_engine(tiny_kg, result_cache_size=2)
        engine.search("film")
        engine.search("drama")
        engine.search("actor")  # evicts "film", the least recently used
        info = engine.cache_info()
        assert info["size"] == 2
        engine.search("drama")  # still cached
        assert engine.cache_info()["hits"] == 1
        engine.search("film")  # was evicted: a miss again
        assert engine.cache_info()["misses"] == 4

    def test_cache_disabled_with_zero_size(self, tiny_kg):
        engine = _fresh_engine(tiny_kg, result_cache_size=0)
        engine.search("film")
        engine.search("film")
        info = engine.cache_info()
        assert info["hits"] == 0 and info["misses"] == 0 and info["size"] == 0

    def test_pivote_submit_keywords_benefits(self, movie_system):
        """The facade's repeated keyword search is served from the cache."""
        session = movie_system.start_session()
        movie_system.submit_keywords(session, "forrest gump")
        baseline = movie_system.search_cache_info()["hits"]
        movie_system.submit_keywords(session, "forrest gump")
        assert movie_system.search_cache_info()["hits"] > baseline
