"""Tests for repro.explore.recommender: the RecommendationEngine."""

from __future__ import annotations

import pytest

from repro.exceptions import NoSeedEntitiesError
from repro.explore import ExplorationQuery, RecommendationEngine
from repro.features import Direction, SemanticFeature
from repro.kg import KnowledgeGraph


@pytest.fixture
def engine(tiny_kg: KnowledgeGraph) -> RecommendationEngine:
    return RecommendationEngine(tiny_kg)


class TestRecommendForSeeds:
    def test_entities_and_features_returned(self, engine: RecommendationEngine):
        recommendation = engine.recommend_for_seeds(["ex:F1", "ex:F2"])
        assert recommendation.entity_ids()
        assert recommendation.feature_notations()
        assert recommendation.entity_ids()[0] == "ex:F3"

    def test_correlation_matrix_shape(self, engine: RecommendationEngine):
        recommendation = engine.recommend_for_seeds(["ex:F1", "ex:F2"])
        rows, columns = recommendation.correlations.shape
        assert rows == len(recommendation.entities)
        assert columns == len(recommendation.features)

    def test_empty_seeds_raise(self, engine: RecommendationEngine):
        with pytest.raises(NoSeedEntitiesError):
            engine.recommend_for_seeds([])

    def test_domain_restriction(self, engine: RecommendationEngine, tiny_kg: KnowledgeGraph):
        recommendation = engine.recommend_for_seeds(["ex:F1"], domain_type="ex:Film")
        for entity_id in recommendation.entity_ids():
            assert "ex:Film" in tiny_kg.types_of(entity_id)

    def test_pinned_feature_constrains_entities(self, engine: RecommendationEngine):
        pinned = SemanticFeature("ex:A1", "ex:starring", Direction.OBJECT_OF)
        recommendation = engine.recommend_for_seeds(["ex:F1"], pinned_features=[pinned])
        for entity_id in recommendation.entity_ids():
            assert engine.feature_index.holds(entity_id, pinned)

    def test_top_limits(self, engine: RecommendationEngine):
        recommendation = engine.recommend_for_seeds(["ex:F1"], top_entities=1, top_features=2)
        assert len(recommendation.entities) <= 1
        assert len(recommendation.features) <= 2


class TestRecommendFromQueryState:
    def test_query_with_seeds(self, engine: RecommendationEngine):
        query = ExplorationQuery(seed_entities=("ex:F1", "ex:F2"), keywords="films")
        recommendation = engine.recommend(query)
        assert recommendation.query is query
        assert recommendation.entity_ids()

    def test_keyword_only_query_rejected(self, engine: RecommendationEngine):
        with pytest.raises(NoSeedEntitiesError):
            engine.recommend(ExplorationQuery(keywords="films"))


class TestPivotTargets:
    def test_targets_grouped_by_anchor(self, engine: RecommendationEngine):
        recommendation = engine.recommend_for_seeds(["ex:F1", "ex:F2"])
        targets = engine.pivot_targets(recommendation)
        anchors = [anchor for anchor, _, _ in targets]
        # Actors and the genre anchor the recommended features.
        assert "ex:A1" in anchors or "ex:A2" in anchors

    def test_targets_carry_types_and_support(self, engine: RecommendationEngine):
        recommendation = engine.recommend_for_seeds(["ex:F1", "ex:F2"])
        for anchor, anchor_type, support in engine.pivot_targets(recommendation):
            assert isinstance(anchor, str)
            assert support >= 1
            assert anchor_type

    def test_max_targets(self, engine: RecommendationEngine):
        recommendation = engine.recommend_for_seeds(["ex:F1", "ex:F2"])
        assert len(engine.pivot_targets(recommendation, max_targets=2)) <= 2
