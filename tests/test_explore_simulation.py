"""Tests for repro.explore.simulation: simulated users."""

from __future__ import annotations

import pytest

from repro import PivotE
from repro.datasets import tom_hanks_task
from repro.exceptions import ExplorationError
from repro.explore import (
    FocusedInvestigator,
    RandomExplorer,
    SimulationResult,
    run_investigation_workload,
)


class TestSimulationResult:
    def test_recall_and_steps_to_recall(self):
        result = SimulationResult(
            session_id="s",
            steps=5,
            found=("a", "b"),
            target_size=4,
            recall_per_step=(0.25, 0.5, 0.5),
        )
        assert result.recall == 0.5
        assert result.steps_to_recall(0.5) == 2
        assert result.steps_to_recall(0.9) is None

    def test_zero_target(self):
        result = SimulationResult(session_id="s", steps=0, found=(), target_size=0)
        assert result.recall == 0.0


class TestFocusedInvestigator:
    def test_recovers_tom_hanks_films(self, movie_system: PivotE, movie_kg):
        task = tom_hanks_task(movie_kg)
        investigator = FocusedInvestigator(movie_system, task.relevant, max_steps=8)
        result = investigator.run(task.seeds, session_id="sim-hanks")
        # The cooperative user recovers most of the concept within the budget.
        assert result.recall >= 0.5
        assert result.operations.get("select-entity", 0) >= 2
        assert result.steps > 0

    def test_recall_per_step_monotonic(self, movie_system: PivotE, movie_kg):
        task = tom_hanks_task(movie_kg)
        investigator = FocusedInvestigator(movie_system, task.relevant, max_steps=6)
        result = investigator.run(task.seeds, session_id="sim-monotone")
        recalls = list(result.recall_per_step)
        assert recalls == sorted(recalls)

    def test_validation(self, movie_system: PivotE):
        with pytest.raises(ExplorationError):
            FocusedInvestigator(movie_system, [])
        with pytest.raises(ExplorationError):
            FocusedInvestigator(movie_system, ["x"], max_steps=0)

    def test_workload_runner(self, movie_system: PivotE, movie_kg):
        task = tom_hanks_task(movie_kg)
        results = run_investigation_workload(
            movie_system, [(task.seeds, task.relevant)], max_steps=5
        )
        assert len(results) == 1
        assert results[0].session_id == "investigation-0"


class TestRandomExplorer:
    def test_random_walk_never_crashes_and_records_operations(self, movie_system: PivotE):
        explorer = RandomExplorer(movie_system, steps=10, pivot_probability=0.3, seed=1)
        result = explorer.run("forrest gump", session_id="sim-random")
        assert result.steps >= 1
        assert sum(result.operations.values()) == result.steps

    def test_deterministic_given_seed(self, movie_system: PivotE):
        first = RandomExplorer(movie_system, steps=6, seed=7).run("tom hanks", "sim-a")
        second = RandomExplorer(movie_system, steps=6, seed=7).run("tom hanks", "sim-b")
        assert first.operations == second.operations

    def test_validation(self, movie_system: PivotE):
        with pytest.raises(ExplorationError):
            RandomExplorer(movie_system, steps=0)
        with pytest.raises(ExplorationError):
            RandomExplorer(movie_system, pivot_probability=1.5)
