"""Tests for repro.kg.query: the SPARQL-like structured query engine."""

from __future__ import annotations

import pytest

from repro.exceptions import KnowledgeGraphError
from repro.kg import Filter, KnowledgeGraph, QueryEngine, SelectQuery, TriplePattern
from repro.kg.query import is_variable, variable_name


@pytest.fixture
def engine(tiny_kg: KnowledgeGraph) -> QueryEngine:
    return QueryEngine(tiny_kg)


class TestTriplePattern:
    def test_variables_detected(self):
        pattern = TriplePattern("?film", "ex:starring", "?actor")
        assert pattern.variables() == {"film", "actor"}

    def test_bound_substitution(self):
        pattern = TriplePattern("?film", "ex:starring", "?actor")
        bound = pattern.bound({"actor": "ex:A1"})
        assert bound.object == "ex:A1"
        assert bound.subject == "?film"

    def test_empty_term_rejected(self):
        with pytest.raises(KnowledgeGraphError):
            TriplePattern("", "p", "o")

    def test_helpers(self):
        assert is_variable("?x") and not is_variable("x")
        assert variable_name("?x") == "x"
        assert "ex:starring" in TriplePattern("?f", "ex:starring", "?a").describe()


class TestSelectQueryValidation:
    def test_requires_patterns(self):
        with pytest.raises(KnowledgeGraphError):
            SelectQuery(variables=("?x",), patterns=())

    def test_limit_positive(self):
        with pytest.raises(KnowledgeGraphError):
            SelectQuery(
                variables=("?x",),
                patterns=(TriplePattern("?x", "ex:p", "ex:o"),),
                limit=0,
            )

    def test_unknown_projection_rejected(self):
        with pytest.raises(KnowledgeGraphError):
            SelectQuery(variables=("?y",), patterns=(TriplePattern("?x", "ex:p", "ex:o"),))

    def test_describe(self):
        query = SelectQuery(
            variables=("?x",), patterns=(TriplePattern("?x", "ex:p", "ex:o"),), limit=5
        )
        text = query.describe()
        assert text.startswith("SELECT DISTINCT ?x")
        assert "LIMIT 5" in text


class TestFilters:
    def test_invalid_operator(self):
        with pytest.raises(KnowledgeGraphError):
            Filter("?x", "gt", "5")

    def test_eq_neq_contains(self, engine: QueryEngine, tiny_kg: KnowledgeGraph):
        assert Filter("?x", "eq", "ex:F1").accepts(tiny_kg, {"x": "ex:F1"})
        assert not Filter("?x", "neq", "ex:F1").accepts(tiny_kg, {"x": "ex:F1"})
        # contains matches the entity label ("F1 Film").
        assert Filter("?x", "contains", "film").accepts(tiny_kg, {"x": "ex:F1"})
        assert not Filter("?x", "contains", "actor").accepts(tiny_kg, {"x": "ex:F1"})

    def test_unbound_variable_passes(self, tiny_kg: KnowledgeGraph):
        assert Filter("?y", "eq", "anything").accepts(tiny_kg, {"x": "ex:F1"})


class TestSinglePatternQueries:
    def test_films_starring_actor(self, engine: QueryEngine):
        rows = engine.select(["?film"], [("?film", "ex:starring", "ex:A1")])
        assert {row["film"] for row in rows} == {"ex:F1", "ex:F2", "ex:F3"}

    def test_actors_of_film(self, engine: QueryEngine):
        rows = engine.select(["?actor"], [("ex:F1", "ex:starring", "?actor")])
        assert {row["actor"] for row in rows} == {"ex:A1", "ex:A2"}

    def test_type_pattern(self, engine: QueryEngine):
        rows = engine.select(["?film"], [("?film", "rdf:type", "ex:Film")])
        assert {row["film"] for row in rows} == {"ex:F1", "ex:F2", "ex:F3", "ex:F4"}

    def test_type_of_entity(self, engine: QueryEngine):
        rows = engine.select(["?type"], [("ex:F1", "rdf:type", "?type")])
        assert rows == [{"type": "ex:Film"}]

    def test_attribute_pattern(self, engine: QueryEngine):
        rows = engine.select(["?year"], [("ex:F1", "ex:year", "?year")])
        assert rows == [{"year": "1994"}]

    def test_variable_predicate(self, engine: QueryEngine):
        rows = engine.select(["?p", "?o"], [("ex:F1", "?p", "?o")])
        predicates = {row["p"] for row in rows}
        assert {"ex:starring", "ex:director", "ex:genre", "ex:year"} <= predicates

    def test_both_endpoints_variable(self, engine: QueryEngine):
        rows = engine.select(["?s", "?o"], [("?s", "ex:director", "?o")])
        assert {(row["s"], row["o"]) for row in rows} == {("ex:F1", "ex:D1"), ("ex:F4", "ex:D1")}

    def test_ground_pattern_present_and_absent(self, engine: QueryEngine):
        assert engine.ask([("ex:F1", "ex:starring", "ex:A1")])
        assert not engine.ask([("ex:F4", "ex:starring", "ex:A1")])


class TestJoins:
    def test_two_pattern_join(self, engine: QueryEngine):
        # Films starring A1 with genre G1.
        rows = engine.select(
            ["?film"],
            [("?film", "ex:starring", "ex:A1"), ("?film", "ex:genre", "ex:G1")],
        )
        assert {row["film"] for row in rows} == {"ex:F1", "ex:F2", "ex:F3"}

    def test_join_through_shared_variable(self, engine: QueryEngine):
        # Co-stars of A1: actors starring in a film that stars A1.
        rows = engine.select(
            ["?actor"],
            [("?film", "ex:starring", "ex:A1"), ("?film", "ex:starring", "?actor")],
        )
        actors = {row["actor"] for row in rows}
        assert actors == {"ex:A1", "ex:A2"}

    def test_three_pattern_join_with_type(self, engine: QueryEngine):
        # Directors of dramas (genre G1) that star A1.
        rows = engine.select(
            ["?director"],
            [
                ("?film", "ex:starring", "ex:A1"),
                ("?film", "ex:genre", "ex:G1"),
                ("?film", "ex:director", "?director"),
            ],
        )
        assert {row["director"] for row in rows} == {"ex:D1"}

    def test_unsatisfiable_join_returns_empty(self, engine: QueryEngine):
        rows = engine.select(
            ["?film"],
            [("?film", "ex:starring", "ex:A3"), ("?film", "ex:genre", "ex:G1")],
        )
        assert rows == []

    def test_ask_with_join(self, engine: QueryEngine):
        assert engine.ask([("?f", "ex:starring", "ex:A1"), ("?f", "ex:director", "ex:D1")])
        assert not engine.ask([("?f", "ex:starring", "ex:A3"), ("?f", "ex:genre", "ex:G1")])


class TestModifiers:
    def test_limit(self, engine: QueryEngine):
        rows = engine.select(["?film"], [("?film", "rdf:type", "ex:Film")], limit=2)
        assert len(rows) == 2

    def test_distinct(self, engine: QueryEngine):
        # Without DISTINCT the film variable repeats once per actor binding.
        rows = engine.select(
            ["?film"],
            [("?film", "ex:starring", "?actor")],
            distinct=False,
        )
        distinct_rows = engine.select(
            ["?film"],
            [("?film", "ex:starring", "?actor")],
            distinct=True,
        )
        assert len(rows) > len(distinct_rows)

    def test_filter_contains_label(self, engine: QueryEngine):
        rows = engine.select(
            ["?film"],
            [("?film", "rdf:type", "ex:Film")],
            filters=[Filter("?film", "contains", "f1")],
        )
        assert {row["film"] for row in rows} == {"ex:F1"}

    def test_filter_neq(self, engine: QueryEngine):
        rows = engine.select(
            ["?film"],
            [("?film", "ex:starring", "ex:A1")],
            filters=[Filter("?film", "neq", "ex:F1")],
        )
        assert {row["film"] for row in rows} == {"ex:F2", "ex:F3"}


class TestOnMovieKG:
    def test_films_starring_tom_hanks(self, movie_kg):
        engine = QueryEngine(movie_kg)
        rows = engine.select(
            ["?film"],
            [("?film", "dbo:starring", "dbr:Tom_Hanks"), ("?film", "rdf:type", "dbo:Film")],
        )
        films = {row["film"] for row in rows}
        assert "dbr:Forrest_Gump" in films and "dbr:Apollo_13_(film)" in films

    def test_codirected_films(self, movie_kg):
        engine = QueryEngine(movie_kg)
        rows = engine.select(
            ["?film", "?other"],
            [
                ("?film", "dbo:director", "dbr:Robert_Zemeckis"),
                ("?other", "dbo:director", "dbr:Robert_Zemeckis"),
            ],
            limit=50,
        )
        assert any(row["film"] != row["other"] for row in rows)
