"""Tests for repro.cli: the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import DATASETS, build_parser, load_graph, main
from repro.kg import save_ntriples


class TestParser:
    def test_all_subcommands_present(self):
        parser = build_parser()
        args = parser.parse_args(["search", "gump"])
        assert args.command == "search"
        for command in ("stats", "profile", "explain", "recommend", "matrix", "explore"):
            assert command in parser.format_help()

    def test_missing_subcommand_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_dataset_registry(self):
        assert {"movies", "movies-small", "academic", "geography"} <= set(DATASETS)


class TestLoadGraph:
    def test_builtin_dataset(self):
        graph = load_graph("geography", None)
        assert "dbr:France" in graph

    def test_unknown_dataset(self):
        with pytest.raises(SystemExit):
            load_graph("nope", None)

    def test_graph_file_overrides_dataset(self, tiny_kg, tmp_path):
        path = tmp_path / "tiny.nt"
        save_ntriples(tiny_kg, path)
        graph = load_graph("movies", str(path))
        assert "ex:F1" in graph


class TestCommands:
    """Each command is exercised end-to-end on the small movie dataset."""

    def run(self, *argv: str) -> int:
        return main(["--dataset", "movies-small", *argv])

    def test_stats(self, capsys):
        assert self.run("stats") == 0
        assert "Knowledge graph" in capsys.readouterr().out

    def test_search(self, capsys):
        assert self.run("search", "forrest gump", "--top-k", "3") == 0
        out = capsys.readouterr().out
        assert "Forrest Gump" in out

    def test_search_no_results(self, capsys):
        assert self.run("search", "zzzzqqqq") == 0
        assert "no matching entities" in capsys.readouterr().out

    def test_recommend(self, capsys):
        assert self.run("recommend", "dbr:Forrest_Gump", "dbr:Apollo_13_(film)") == 0
        out = capsys.readouterr().out
        assert "entities:" in out and "semantic features:" in out
        assert "Tom_Hanks" in out

    def test_recommend_with_pinned_feature(self, capsys):
        code = self.run(
            "recommend", "dbr:Forrest_Gump", "--feature", "dbr:Tom_Hanks:dbo:starring"
        )
        assert code == 0
        assert "dbr:Tom_Hanks:dbo:starring" in capsys.readouterr().out

    def test_matrix(self, capsys):
        assert self.run("matrix", "dbr:Forrest_Gump", "--top-entities", "4") == 0
        out = capsys.readouterr().out
        assert "levels:" in out

    def test_profile(self, capsys):
        assert self.run("profile", "dbr:Forrest_Gump") == 0
        out = capsys.readouterr().out
        assert "Forrest Gump" in out and "wikipedia" in out

    def test_explain(self, capsys):
        assert self.run("explain", "dbr:Forrest_Gump", "dbr:Apollo_13_(film)") == 0
        assert "Tom Hanks" in capsys.readouterr().out

    def test_explore(self, capsys):
        code = self.run(
            "explore",
            "forrest gump",
            "--select",
            "dbr:Forrest_Gump",
            "--pivot",
            "dbr:Tom_Hanks",
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "exploratory path" in out
        assert "pivot" in out

    def test_error_returns_nonzero(self, capsys):
        assert self.run("profile", "dbr:Not_A_Thing") == 1
        assert "error:" in capsys.readouterr().err


class TestPruningFlags:
    """The ``--pruning`` / ``--show-pruning`` operator surface."""

    def run(self, *argv: str) -> int:
        return main(["--dataset", "movies-small", *argv])

    @pytest.mark.parametrize("mode", ["off", "maxscore", "blockmax"])
    def test_search_identical_across_modes(self, mode, capsys):
        assert self.run("--pruning", mode, "search", "forrest gump", "--top-k", "3") == 0
        out = capsys.readouterr().out
        assert "Forrest Gump" in out

    def test_show_pruning_dumps_counters_after_search(self, capsys):
        code = self.run("--pruning", "blockmax", "--show-pruning", "search", "forrest gump")
        assert code == 0
        out = capsys.readouterr().out
        assert "pruning mode: blockmax" in out
        assert "pruning[search]:" in out
        assert "pruning[recommend]:" in out
        assert "'queries': 1" in out

    def test_show_pruning_dumps_counters_after_recommend(self, capsys):
        code = self.run("--show-pruning", "recommend", "dbr:Forrest_Gump")
        assert code == 0
        out = capsys.readouterr().out
        assert "pruning mode: maxscore" in out
        assert "pruning[recommend]:" in out

    def test_pruning_off_leaves_counters_silent(self, capsys):
        code = self.run("--pruning", "off", "--show-pruning", "search", "forrest gump")
        assert code == 0
        out = capsys.readouterr().out
        assert "pruning mode: off" in out
        assert "'queries': 0" in out

    def test_unknown_pruning_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--pruning", "wand", "search", "x"])

    def test_build_config_threads_mode_to_both_engines(self):
        from repro.cli import build_config

        config = build_config("blockmax")
        assert config.search.pruning == "blockmax"
        assert config.ranking.pruning == "blockmax"
        assert build_config(None).search.pruning == "maxscore"


class TestGraphTopologyFlag:
    """The PR 10 ``--graph-topology`` operator surface."""

    def run(self, *argv: str) -> int:
        return main(["--dataset", "movies-small", *argv])

    @pytest.mark.parametrize("mode", ["on", "off"])
    def test_recommend_identical_across_modes(self, mode, capsys):
        assert self.run("--graph-topology", mode, "recommend", "dbr:Forrest_Gump") == 0
        assert "entities:" in capsys.readouterr().out

    def test_show_pruning_dumps_traversal_counters(self, capsys):
        code = self.run("--show-pruning", "recommend", "dbr:Forrest_Gump")
        assert code == 0
        out = capsys.readouterr().out
        assert "traversal[topology]:" in out
        assert "'rebuilds':" in out

    def test_build_config_threads_knob_to_both_engines(self):
        from repro.cli import build_config

        config = build_config(None, graph_topology="off")
        assert config.search.graph_topology is False
        assert config.ranking.graph_topology is False
        on = build_config(None, graph_topology="on")
        assert on.search.graph_topology is True
        assert on.ranking.graph_topology is True
        default = build_config(None)
        assert default.search.graph_topology is True
        assert default.ranking.graph_topology is True

    def test_unknown_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--graph-topology", "maybe", "search", "x"])


class TestShardAndBatchFlags:
    """The PR 5 ``--shards`` / ``search --batch`` operator surface."""

    def run(self, *argv: str) -> int:
        return main(["--dataset", "movies-small", *argv])

    @pytest.mark.parametrize("shards", ["1", "2", "4"])
    def test_search_identical_across_shard_counts(self, shards, capsys):
        assert self.run("--shards", shards, "search", "forrest gump", "--top-k", "3") == 0
        out = capsys.readouterr().out
        assert "Forrest Gump" in out

    def test_shards_apply_to_recommendation(self, capsys):
        assert self.run("--shards", "3", "recommend", "dbr:Forrest_Gump") == 0
        out = capsys.readouterr().out
        assert "entities:" in out

    def test_invalid_shard_count_is_an_error(self, capsys):
        assert self.run("--shards", "0", "search", "gump") == 1
        assert "error:" in capsys.readouterr().err

    def test_batch_reads_one_query_per_line(self, tmp_path, capsys):
        batch = tmp_path / "queries.txt"
        batch.write_text("forrest gump\n\ntom hanks\nforrest gump\n")
        assert self.run("search", "--batch", str(batch), "--top-k", "2") == 0
        out = capsys.readouterr().out
        # Three non-blank queries, each echoed with its own hit block.
        assert out.count("query:") == 3
        assert out.count("query: forrest gump") == 2
        assert "Forrest Gump" in out

    def test_batch_with_shards_matches_serial_output(self, tmp_path, capsys):
        batch = tmp_path / "queries.txt"
        batch.write_text("forrest gump\ntom hanks\n")
        assert self.run("search", "--batch", str(batch), "--top-k", "3") == 0
        serial_out = capsys.readouterr().out
        assert self.run("--shards", "3", "search", "--batch", str(batch), "--top-k", "3") == 0
        sharded_out = capsys.readouterr().out
        assert sharded_out == serial_out

    def test_batch_empty_input(self, tmp_path, capsys):
        batch = tmp_path / "queries.txt"
        batch.write_text("\n\n")
        assert self.run("search", "--batch", str(batch)) == 0
        assert "no queries" in capsys.readouterr().out

    def test_batch_reads_stdin_dash(self, capsys, monkeypatch):
        import io

        monkeypatch.setattr("sys.stdin", io.StringIO("forrest gump\n"))
        assert self.run("search", "--batch", "-", "--top-k", "2") == 0
        assert "query: forrest gump" in capsys.readouterr().out
