"""Tests for repro.engine.api: the in-process request/response API."""

from __future__ import annotations

import json

import pytest

from repro.engine import PivotEApi


@pytest.fixture(scope="module")
def api(request) -> PivotEApi:
    return PivotEApi(request.getfixturevalue("movie_system"))


def start_session(api: PivotEApi) -> str:
    response = api.handle({"action": "start_session"})
    assert response["status"] == "ok"
    return response["session_id"]


class TestDispatch:
    def test_unknown_action(self, api: PivotEApi):
        assert api.handle({"action": "bogus"})["status"] == "error"
        assert api.handle({})["status"] == "error"

    def test_missing_session_id_is_error(self, api: PivotEApi):
        response = api.handle({"action": "investigate"})
        assert response["status"] == "error"

    def test_unknown_session_is_error(self, api: PivotEApi):
        response = api.handle({"action": "investigate", "session_id": "ghost"})
        assert response["status"] == "error"

    def test_errors_do_not_raise(self, api: PivotEApi):
        response = api.handle({"action": "lookup", "entity": "dbr:Not_A_Thing"})
        assert response["status"] == "error"
        assert "dbr:Not_A_Thing" in response["error"]


class TestActions:
    def test_search(self, api: PivotEApi):
        response = api.handle({"action": "search", "keywords": "forrest gump"})
        assert response["status"] == "ok"
        assert response["hits"][0]["entity"] == "dbr:Forrest_Gump"

    def test_full_session_flow_is_json_serialisable(self, api: PivotEApi):
        session_id = start_session(api)
        submitted = api.handle(
            {"action": "submit_keywords", "session_id": session_id, "keywords": "forrest gump"}
        )
        assert submitted["status"] == "ok"
        assert submitted["hits"]
        assert "matrix" in submitted
        json.dumps(submitted)

        selected = api.handle(
            {"action": "select_entity", "session_id": session_id, "entity": "dbr:Forrest_Gump"}
        )
        assert selected["status"] == "ok"
        assert selected["recommendation"]["entities"]

        pinned = api.handle(
            {
                "action": "pin_feature",
                "session_id": session_id,
                "feature": "dbr:Tom_Hanks:dbo:starring",
            }
        )
        assert pinned["status"] == "ok"

        pivoted = api.handle(
            {"action": "pivot", "session_id": session_id, "entity": "dbr:Tom_Hanks"}
        )
        assert pivoted["status"] == "ok"

        state = api.handle({"action": "session_state", "session_id": session_id})
        assert state["status"] == "ok"
        assert state["session"]["behaviour"]["pivot"] == 1
        json.dumps(state)

    def test_lookup_with_and_without_session(self, api: PivotEApi):
        plain = api.handle({"action": "lookup", "entity": "dbr:Forrest_Gump"})
        assert plain["status"] == "ok"
        assert plain["profile"]["name"] == "Forrest Gump"

        session_id = start_session(api)
        scoped = api.handle(
            {"action": "lookup", "entity": "dbr:Forrest_Gump", "session_id": session_id}
        )
        assert scoped["status"] == "ok"

    def test_explain(self, api: PivotEApi):
        response = api.handle(
            {"action": "explain", "left": "dbr:Forrest_Gump", "right": "dbr:Apollo_13_(film)"}
        )
        assert response["status"] == "ok"
        assert "Tom Hanks" in response["text"]
        assert any("Tom_Hanks" in notation for notation in response["shared_features"])

    def test_set_domain_and_investigate(self, api: PivotEApi):
        session_id = start_session(api)
        api.handle({"action": "select_entity", "session_id": session_id, "entity": "dbr:Tom_Hanks"})
        domain = api.handle(
            {"action": "set_domain", "session_id": session_id, "domain": "dbo:Actor"}
        )
        assert domain["status"] == "ok"
        investigated = api.handle({"action": "investigate", "session_id": session_id})
        assert investigated["status"] == "ok"

    def test_revisit(self, api: PivotEApi):
        session_id = start_session(api)
        api.handle(
            {"action": "submit_keywords", "session_id": session_id, "keywords": "forrest gump"}
        )
        api.handle(
            {"action": "select_entity", "session_id": session_id, "entity": "dbr:Forrest_Gump"}
        )
        revisited = api.handle({"action": "revisit", "session_id": session_id, "step": 0})
        assert revisited["status"] == "ok"

    def test_deselect_and_unpin(self, api: PivotEApi):
        session_id = start_session(api)
        api.handle({"action": "select_entity", "session_id": session_id, "entity": "dbr:Forrest_Gump"})
        api.handle({"action": "pin_feature", "session_id": session_id, "feature": "dbr:Tom_Hanks:dbo:starring"})
        unpinned = api.handle(
            {"action": "unpin_feature", "session_id": session_id, "feature": "dbr:Tom_Hanks:dbo:starring"}
        )
        assert unpinned["status"] == "ok"
        deselected = api.handle(
            {"action": "deselect_entity", "session_id": session_id, "entity": "dbr:Forrest_Gump"}
        )
        assert deselected["status"] == "ok"


class TestEnvelopeSchemas:
    """Golden top-level key sets: one ok and one error envelope per action.

    The module docstring of :mod:`repro.engine.api` documents these
    schemas; this class pins them.  Query-state actions share the
    query-response payload — ``hits`` always, ``recommendation`` and
    ``matrix`` exactly when the session has seeds.
    """

    QUERY_KEYS = {"status", "hits", "recommendation", "matrix"}

    def test_ok_envelopes(self, api: PivotEApi):
        session_id = start_session(api)
        seeded = [
            ("submit_keywords", {"session_id": session_id, "keywords": "forrest gump"}),
            ("select_entity", {"session_id": session_id, "entity": "dbr:Forrest_Gump"}),
            ("pin_feature", {"session_id": session_id, "feature": "dbr:Tom_Hanks:dbo:starring"}),
            ("unpin_feature", {"session_id": session_id, "feature": "dbr:Tom_Hanks:dbo:starring"}),
            ("set_domain", {"session_id": session_id, "domain": "dbo:Film"}),
            ("investigate", {"session_id": session_id}),
            ("pivot", {"session_id": session_id, "entity": "dbr:Tom_Hanks"}),
            # Step 1 is the post-select state, which has seeds (step 0
            # is the keyword-only state, covered by the seedless test).
            ("revisit", {"session_id": session_id, "step": 1}),
        ]
        for action, fields in seeded:
            response = api.handle({"action": action, **fields})
            assert response["status"] == "ok", (action, response)
            assert set(response) == self.QUERY_KEYS, action

        flat = [
            ("search", {"keywords": "forrest gump"}, {"status", "hits"}),
            ("start_session", {}, {"status", "session_id"}),
            ("lookup", {"entity": "dbr:Forrest_Gump"}, {"status", "profile"}),
            (
                "explain",
                {"left": "dbr:Forrest_Gump", "right": "dbr:Apollo_13_(film)"},
                {"status", "text", "shared_features"},
            ),
            ("session_state", {"session_id": session_id}, {"status", "session"}),
            ("stats", {}, {"status", "stats"}),
        ]
        for action, fields, expected_keys in flat:
            response = api.handle({"action": action, **fields})
            assert response["status"] == "ok", (action, response)
            assert set(response) == expected_keys, action

    def test_seedless_query_response_has_no_recommendation(self, api: PivotEApi):
        session_id = start_session(api)
        response = api.handle({"action": "investigate", "session_id": session_id})
        assert set(response) == {"status", "hits"}
        assert response == {"status": "ok", "hits": []}

    def test_error_envelopes(self, api: PivotEApi):
        session_id = start_session(api)
        malformed = [
            {"action": "bogus"},
            {},
            {"action": "search", "keywords": "x", "top_k": "five"},
            {"action": "submit_keywords"},
            {"action": "select_entity", "session_id": session_id},
            {"action": "select_entity", "session_id": session_id, "entity": "dbr:Nope"},
            {"action": "pin_feature", "session_id": session_id},
            {"action": "pin_feature", "session_id": session_id, "feature": "not-a-feature"},
            {"action": "pivot", "session_id": "ghost", "entity": "dbr:Tom_Hanks"},
            {"action": "lookup"},
            {"action": "explain", "left": "dbr:Forrest_Gump"},
            {"action": "revisit", "session_id": session_id},
            {"action": "revisit", "session_id": session_id, "step": 99},
        ]
        for request in malformed:
            response = api.handle(request)
            assert set(response) == {"status", "error"}, request
            assert response["status"] == "error", request
            assert isinstance(response["error"], str) and response["error"], request


class TestRequestHardening:
    """Type coercion/validation of integer request fields."""

    def test_top_k_string_of_digits_is_accepted(self, api: PivotEApi):
        response = api.handle({"action": "search", "keywords": "forrest gump", "top_k": "3"})
        assert response["status"] == "ok"
        assert len(response["hits"]) <= 3

    @pytest.mark.parametrize("top_k", ["five", [5], True, False, 0, -2])
    def test_bad_top_k_is_an_error_envelope_not_a_raise(self, api: PivotEApi, top_k):
        # Regression: a non-numeric top_k used to escape handle() as an
        # uncaught TypeError instead of an error envelope.
        response = api.handle(
            {"action": "search", "keywords": "forrest gump", "top_k": top_k}
        )
        assert response["status"] == "error"
        assert "top_k" in response["error"]

    def test_revisit_step_is_coerced_and_validated(self, api: PivotEApi):
        session_id = start_session(api)
        api.handle(
            {"action": "submit_keywords", "session_id": session_id, "keywords": "forrest gump"}
        )
        assert (
            api.handle({"action": "revisit", "session_id": session_id, "step": "0"})["status"]
            == "ok"
        )
        bad = api.handle({"action": "revisit", "session_id": session_id, "step": "first"})
        assert bad["status"] == "error"
        assert "step" in bad["error"]

    def test_extra_request_keys_are_ignored(self, api: PivotEApi):
        response = api.handle(
            {"action": "search", "keywords": "forrest gump", "trace_id": "abc123"}
        )
        assert response["status"] == "ok"


class TestStatsAction:
    def test_stats_payload_matches_system_stats(self, api: PivotEApi, movie_system):
        response = api.handle({"action": "stats"})
        assert response["status"] == "ok"
        json.dumps(response)
        payload = response["stats"]
        assert payload["component"] == "pivote"
        assert set(payload["children"]) == {"search", "recommendation"}
        assert payload == movie_system.stats().as_dict()
