"""Tests for repro.engine.api: the in-process request/response API."""

from __future__ import annotations

import json

import pytest

from repro.engine import PivotEApi


@pytest.fixture(scope="module")
def api(request) -> PivotEApi:
    return PivotEApi(request.getfixturevalue("movie_system"))


def start_session(api: PivotEApi) -> str:
    response = api.handle({"action": "start_session"})
    assert response["status"] == "ok"
    return response["session_id"]


class TestDispatch:
    def test_unknown_action(self, api: PivotEApi):
        assert api.handle({"action": "bogus"})["status"] == "error"
        assert api.handle({})["status"] == "error"

    def test_missing_session_id_is_error(self, api: PivotEApi):
        response = api.handle({"action": "investigate"})
        assert response["status"] == "error"

    def test_unknown_session_is_error(self, api: PivotEApi):
        response = api.handle({"action": "investigate", "session_id": "ghost"})
        assert response["status"] == "error"

    def test_errors_do_not_raise(self, api: PivotEApi):
        response = api.handle({"action": "lookup", "entity": "dbr:Not_A_Thing"})
        assert response["status"] == "error"
        assert "dbr:Not_A_Thing" in response["error"]


class TestActions:
    def test_search(self, api: PivotEApi):
        response = api.handle({"action": "search", "keywords": "forrest gump"})
        assert response["status"] == "ok"
        assert response["hits"][0]["entity"] == "dbr:Forrest_Gump"

    def test_full_session_flow_is_json_serialisable(self, api: PivotEApi):
        session_id = start_session(api)
        submitted = api.handle(
            {"action": "submit_keywords", "session_id": session_id, "keywords": "forrest gump"}
        )
        assert submitted["status"] == "ok"
        assert submitted["hits"]
        assert "matrix" in submitted
        json.dumps(submitted)

        selected = api.handle(
            {"action": "select_entity", "session_id": session_id, "entity": "dbr:Forrest_Gump"}
        )
        assert selected["status"] == "ok"
        assert selected["recommendation"]["entities"]

        pinned = api.handle(
            {
                "action": "pin_feature",
                "session_id": session_id,
                "feature": "dbr:Tom_Hanks:dbo:starring",
            }
        )
        assert pinned["status"] == "ok"

        pivoted = api.handle(
            {"action": "pivot", "session_id": session_id, "entity": "dbr:Tom_Hanks"}
        )
        assert pivoted["status"] == "ok"

        state = api.handle({"action": "session_state", "session_id": session_id})
        assert state["status"] == "ok"
        assert state["session"]["behaviour"]["pivot"] == 1
        json.dumps(state)

    def test_lookup_with_and_without_session(self, api: PivotEApi):
        plain = api.handle({"action": "lookup", "entity": "dbr:Forrest_Gump"})
        assert plain["status"] == "ok"
        assert plain["profile"]["name"] == "Forrest Gump"

        session_id = start_session(api)
        scoped = api.handle(
            {"action": "lookup", "entity": "dbr:Forrest_Gump", "session_id": session_id}
        )
        assert scoped["status"] == "ok"

    def test_explain(self, api: PivotEApi):
        response = api.handle(
            {"action": "explain", "left": "dbr:Forrest_Gump", "right": "dbr:Apollo_13_(film)"}
        )
        assert response["status"] == "ok"
        assert "Tom Hanks" in response["text"]
        assert any("Tom_Hanks" in notation for notation in response["shared_features"])

    def test_set_domain_and_investigate(self, api: PivotEApi):
        session_id = start_session(api)
        api.handle({"action": "select_entity", "session_id": session_id, "entity": "dbr:Tom_Hanks"})
        domain = api.handle(
            {"action": "set_domain", "session_id": session_id, "domain": "dbo:Actor"}
        )
        assert domain["status"] == "ok"
        investigated = api.handle({"action": "investigate", "session_id": session_id})
        assert investigated["status"] == "ok"

    def test_revisit(self, api: PivotEApi):
        session_id = start_session(api)
        api.handle(
            {"action": "submit_keywords", "session_id": session_id, "keywords": "forrest gump"}
        )
        api.handle(
            {"action": "select_entity", "session_id": session_id, "entity": "dbr:Forrest_Gump"}
        )
        revisited = api.handle({"action": "revisit", "session_id": session_id, "step": 0})
        assert revisited["status"] == "ok"

    def test_deselect_and_unpin(self, api: PivotEApi):
        session_id = start_session(api)
        api.handle({"action": "select_entity", "session_id": session_id, "entity": "dbr:Forrest_Gump"})
        api.handle({"action": "pin_feature", "session_id": session_id, "feature": "dbr:Tom_Hanks:dbo:starring"})
        unpinned = api.handle(
            {"action": "unpin_feature", "session_id": session_id, "feature": "dbr:Tom_Hanks:dbo:starring"}
        )
        assert unpinned["status"] == "ok"
        deselected = api.handle(
            {"action": "deselect_entity", "session_id": session_id, "entity": "dbr:Forrest_Gump"}
        )
        assert deselected["status"] == "ok"
