"""Tests for repro.kg.graph: the KnowledgeGraph store and its indexes."""

from __future__ import annotations

import pytest

from repro.exceptions import EntityNotFoundError
from repro.kg import KnowledgeGraph, Literal, Triple


@pytest.fixture
def graph() -> KnowledgeGraph:
    kg = KnowledgeGraph("test")
    kg.add_label("ex:F1", "Film One")
    kg.add_type("ex:F1", "ex:Film")
    kg.add_category("ex:F1", "exc:Films")
    kg.add_attribute("ex:F1", "ex:year", "1994")
    kg.add_alias("ex:F1", "ex:F1_redirect")
    kg.add("ex:F1", "ex:starring", "ex:A1")
    kg.add("ex:F1", "ex:starring", "ex:A2")
    kg.add("ex:F2", "ex:starring", "ex:A1")
    kg.add_type("ex:F2", "ex:Film")
    kg.add_type("ex:A1", "ex:Actor")
    kg.add_type("ex:A2", "ex:Actor")
    return kg


class TestMutation:
    def test_add_returns_true_for_new_triple(self):
        kg = KnowledgeGraph()
        assert kg.add("a", "p", "b") is True

    def test_add_returns_false_for_duplicate(self):
        kg = KnowledgeGraph()
        kg.add("a", "p", "b")
        assert kg.add("a", "p", "b") is False
        assert len(kg) == 1

    def test_add_all_counts_new_triples(self):
        kg = KnowledgeGraph()
        triples = [Triple("a", "p", "b"), Triple("a", "p", "b"), Triple("a", "p", "c")]
        assert kg.add_all(triples) == 2

    def test_add_literal(self):
        kg = KnowledgeGraph()
        kg.add("a", "p", Literal("42"))
        assert len(kg) == 1
        assert kg.attributes_of("a") == {"p": ["42"]}

    def test_len_counts_all_triples(self, graph: KnowledgeGraph):
        # 1 label + 1 type + 1 category + 1 attribute + 1 alias + 3 starring
        # edges + 3 further type declarations = 11 triples.
        assert len(graph) == 11

    def test_contains_entity(self, graph: KnowledgeGraph):
        assert "ex:F1" in graph
        assert "ex:A1" in graph      # object entities are registered too
        assert "ex:missing" not in graph


class TestPatternQueries:
    def test_objects(self, graph: KnowledgeGraph):
        assert graph.objects("ex:F1", "ex:starring") == {"ex:A1", "ex:A2"}

    def test_objects_unknown_subject_empty(self, graph: KnowledgeGraph):
        assert graph.objects("ex:unknown", "ex:starring") == set()

    def test_subjects(self, graph: KnowledgeGraph):
        assert graph.subjects("ex:starring", "ex:A1") == {"ex:F1", "ex:F2"}

    def test_predicates_between(self, graph: KnowledgeGraph):
        assert graph.predicates_between("ex:F1", "ex:A1") == {"ex:starring"}
        assert graph.predicates_between("ex:A1", "ex:F1") == set()

    def test_outgoing(self, graph: KnowledgeGraph):
        assert graph.outgoing("ex:F1") == [("ex:starring", "ex:A1"), ("ex:starring", "ex:A2")]

    def test_incoming(self, graph: KnowledgeGraph):
        assert graph.incoming("ex:A1") == [("ex:starring", "ex:F1"), ("ex:starring", "ex:F2")]

    def test_neighbours_both_directions(self, graph: KnowledgeGraph):
        assert graph.neighbours("ex:F1") == {"ex:A1", "ex:A2"}
        assert graph.neighbours("ex:A1") == {"ex:F1", "ex:F2"}

    def test_degree(self, graph: KnowledgeGraph):
        assert graph.degree("ex:F1") == 2
        assert graph.degree("ex:A1") == 2
        assert graph.degree("ex:A2") == 1

    def test_subjects_and_objects_of_predicate(self, graph: KnowledgeGraph):
        assert graph.subjects_of_predicate("ex:starring") == {"ex:F1", "ex:F2"}
        assert graph.objects_of_predicate("ex:starring") == {"ex:A1", "ex:A2"}

    def test_predicate_frequency(self, graph: KnowledgeGraph):
        assert graph.predicate_frequency("ex:starring") == 3
        assert graph.predicate_frequency("ex:unknown") == 0


class TestStructuralIndexes:
    def test_types_of(self, graph: KnowledgeGraph):
        assert graph.types_of("ex:F1") == {"ex:Film"}

    def test_entities_of_type(self, graph: KnowledgeGraph):
        assert graph.entities_of_type("ex:Film") == {"ex:F1", "ex:F2"}
        assert graph.entities_of_type("ex:Actor") == {"ex:A1", "ex:A2"}

    def test_type_count(self, graph: KnowledgeGraph):
        assert graph.type_count("ex:Film") == 2
        assert graph.type_count("ex:Missing") == 0

    def test_types_listing(self, graph: KnowledgeGraph):
        assert graph.types() == {"ex:Film", "ex:Actor"}

    def test_dominant_type_prefers_rarest(self):
        kg = KnowledgeGraph()
        kg.add_type("e", "common")
        kg.add_type("e", "rare")
        for index in range(5):
            kg.add_type(f"other{index}", "common")
        assert kg.dominant_type("e") == "rare"

    def test_dominant_type_untyped_is_empty(self, graph: KnowledgeGraph):
        kg = KnowledgeGraph()
        kg.add("x", "p", "y")
        assert kg.dominant_type("x") == ""

    def test_labels(self, graph: KnowledgeGraph):
        assert graph.labels_of("ex:F1") == ["Film One"]
        assert graph.label("ex:F1") == "Film One"

    def test_label_fallback_from_identifier(self, graph: KnowledgeGraph):
        assert graph.label("ex:A1") == "A1"

    def test_categories(self, graph: KnowledgeGraph):
        assert graph.categories_of("ex:F1") == {"exc:Films"}
        assert graph.entities_in_category("exc:Films") == {"ex:F1"}

    def test_aliases(self, graph: KnowledgeGraph):
        assert graph.aliases_of("ex:F1") == {"ex:F1_redirect"}

    def test_attributes_exclude_labels(self, graph: KnowledgeGraph):
        attributes = graph.attributes_of("ex:F1")
        assert attributes == {"ex:year": ["1994"]}

    def test_structural_triples_not_edges(self, graph: KnowledgeGraph):
        # rdf:type / rdfs:label / dct:subject / redirects are not entity edges.
        assert graph.num_edges() == 3
        assert "rdf:type" not in graph.edge_predicates()


class TestEntitySnapshot:
    def test_entity_snapshot_fields(self, graph: KnowledgeGraph):
        entity = graph.entity("ex:F1")
        assert entity.name == "Film One"
        assert entity.types == ("ex:Film",)
        assert entity.categories == ("exc:Films",)
        assert entity.attributes == {"ex:year": ("1994",)}
        assert entity.outgoing == (("ex:starring", "ex:A1"), ("ex:starring", "ex:A2"))
        assert entity.related == ("ex:A1", "ex:A2")

    def test_entity_snapshot_aliases_use_labels(self, graph: KnowledgeGraph):
        entity = graph.entity("ex:F1")
        assert entity.aliases == ("F1 redirect",)

    def test_entity_unknown_raises(self, graph: KnowledgeGraph):
        with pytest.raises(EntityNotFoundError):
            graph.entity("ex:nope")

    def test_entity_or_none(self, graph: KnowledgeGraph):
        assert graph.entity_or_none("ex:nope") is None
        assert graph.entity_or_none("ex:F1") is not None

    def test_require_entity_raises_with_identifier(self, graph: KnowledgeGraph):
        with pytest.raises(EntityNotFoundError) as excinfo:
            graph.require_entity("ex:ghost")
        assert "ex:ghost" in str(excinfo.value)


class TestCopyAndMerge:
    def test_copy_is_independent(self, graph: KnowledgeGraph):
        clone = graph.copy("clone")
        clone.add("ex:F3", "ex:starring", "ex:A1")
        assert "ex:F3" not in graph
        assert len(clone) == len(graph) + 1

    def test_merge_adds_new_triples_only(self, graph: KnowledgeGraph):
        other = KnowledgeGraph("other")
        other.add("ex:F1", "ex:starring", "ex:A1")   # duplicate
        other.add("ex:F9", "ex:starring", "ex:A9")   # new
        added = graph.merge(other)
        assert added == 1
        assert "ex:F9" in graph

    def test_describe_mentions_counts(self, graph: KnowledgeGraph):
        text = graph.describe()
        assert "triples" in text and "entities" in text
