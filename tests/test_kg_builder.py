"""Tests for repro.kg.builder: the fluent GraphBuilder."""

from __future__ import annotations

from repro.kg import GraphBuilder, KnowledgeGraph


class TestGraphBuilder:
    def test_entity_with_everything(self):
        kg = (
            GraphBuilder("b")
            .entity(
                "ex:F1",
                label="Film One",
                types=["ex:Film"],
                categories=["exc:Films"],
                attributes={"ex:year": "1994", "ex:tags": ["a", "b"]},
                aliases=["ex:F1_alias"],
            )
            .build()
        )
        assert kg.label("ex:F1") == "Film One"
        assert kg.types_of("ex:F1") == {"ex:Film"}
        assert kg.categories_of("ex:F1") == {"exc:Films"}
        assert kg.attributes_of("ex:F1") == {"ex:year": ["1994"], "ex:tags": ["a", "b"]}
        assert kg.aliases_of("ex:F1") == {"ex:F1_alias"}

    def test_edge_and_edges(self):
        kg = (
            GraphBuilder()
            .edge("ex:F1", "ex:starring", "ex:A1")
            .edges("ex:F2", "ex:starring", ["ex:A1", "ex:A2"])
            .build()
        )
        assert kg.objects("ex:F2", "ex:starring") == {"ex:A1", "ex:A2"}
        assert kg.subjects("ex:starring", "ex:A1") == {"ex:F1", "ex:F2"}

    def test_individual_helpers(self):
        kg = (
            GraphBuilder()
            .label("ex:X", "X")
            .type("ex:X", "ex:Thing")
            .category("ex:X", "exc:Things")
            .attribute("ex:X", "ex:size", "5")
            .alias("ex:X", "ex:X_alt")
            .build()
        )
        assert kg.label("ex:X") == "X"
        assert kg.types_of("ex:X") == {"ex:Thing"}
        assert kg.categories_of("ex:X") == {"exc:Things"}
        assert kg.attributes_of("ex:X") == {"ex:size": ["5"]}
        assert kg.aliases_of("ex:X") == {"ex:X_alt"}

    def test_merge_other_graph(self):
        base = GraphBuilder().edge("a", "p", "b").build()
        merged = GraphBuilder().merge(base).edge("c", "p", "d").build()
        assert "a" in merged and "c" in merged

    def test_build_returns_knowledge_graph(self):
        assert isinstance(GraphBuilder().build(), KnowledgeGraph)

    def test_chaining_returns_builder(self):
        builder = GraphBuilder()
        assert builder.edge("a", "p", "b") is builder
