"""Tests for repro.ranking.sf_ranking: r(pi, Q) = d(pi) * c(pi, Q)."""

from __future__ import annotations

import pytest

from repro.config import RankingConfig
from repro.exceptions import EntityNotFoundError, NoSeedEntitiesError
from repro.features import Direction, SemanticFeature, SemanticFeatureIndex
from repro.kg import KnowledgeGraph
from repro.ranking import SemanticFeatureRanker

STARRING_A1 = SemanticFeature("ex:A1", "ex:starring", Direction.OBJECT_OF)
STARRING_A2 = SemanticFeature("ex:A2", "ex:starring", Direction.OBJECT_OF)
GENRE_G1 = SemanticFeature("ex:G1", "ex:genre", Direction.OBJECT_OF)
DIRECTOR_D1 = SemanticFeature("ex:D1", "ex:director", Direction.OBJECT_OF)


@pytest.fixture
def ranker(tiny_kg: KnowledgeGraph, tiny_feature_index: SemanticFeatureIndex) -> SemanticFeatureRanker:
    return SemanticFeatureRanker(tiny_kg, tiny_feature_index)


class TestScoreComponents:
    def test_discriminability_is_inverse_extension_size(self, ranker: SemanticFeatureRanker):
        # E(starring:A1) = {F1, F2, F3} -> d = 1/3
        assert ranker.discriminability(STARRING_A1) == pytest.approx(1 / 3)
        # E(starring:A2) = {F1, F2} -> d = 1/2
        assert ranker.discriminability(STARRING_A2) == pytest.approx(1 / 2)

    def test_discriminability_empty_feature_is_zero(self, ranker: SemanticFeatureRanker):
        assert ranker.discriminability(SemanticFeature("ex:A1", "ex:ghost")) == 0.0

    def test_commonality_all_seeds_hold(self, ranker: SemanticFeatureRanker):
        # Both F1 and F2 star A1 -> product of 1 * 1.
        assert ranker.commonality(STARRING_A1, ["ex:F1", "ex:F2"]) == pytest.approx(1.0)

    def test_commonality_with_type_smoothing(self, ranker: SemanticFeatureRanker):
        # F3 does not star A2: p = |E(A2:starring) ∩ Film| / |Film| = 2/4 = 0.5.
        assert ranker.commonality(STARRING_A2, ["ex:F1", "ex:F3"]) == pytest.approx(0.5)

    def test_score_is_product_of_components(self, ranker: SemanticFeatureRanker):
        scored = ranker.score_feature(STARRING_A2, ["ex:F1", "ex:F3"])
        assert scored.score == pytest.approx(scored.discriminability * scored.commonality)
        assert scored.seed_probabilities == {"ex:F1": 1.0, "ex:F3": 0.5}

    def test_score_empty_seed_set_raises(self, ranker: SemanticFeatureRanker):
        with pytest.raises(NoSeedEntitiesError):
            ranker.score_feature(STARRING_A1, [])


class TestRanking:
    def test_rank_prefers_discriminative_shared_features(self, ranker: SemanticFeatureRanker):
        scored = ranker.rank(["ex:F1", "ex:F2"])
        notations = [item.feature.notation() for item in scored]
        # A2 is shared by exactly the two seeds (d = 1/2) and beats A1 (d = 1/3)
        # and G1 (d = 1/3).
        assert notations[0] == STARRING_A2.notation()

    def test_rank_excludes_features_anchored_at_seeds(self, ranker: SemanticFeatureRanker):
        scored = ranker.rank(["ex:A1"])
        anchors = {item.feature.anchor for item in scored}
        assert "ex:A1" not in anchors

    def test_rank_unknown_seed_raises(self, ranker: SemanticFeatureRanker):
        with pytest.raises(EntityNotFoundError):
            ranker.rank(["ex:ghost"])

    def test_rank_empty_seeds_raises(self, ranker: SemanticFeatureRanker):
        with pytest.raises(NoSeedEntitiesError):
            ranker.rank([])

    def test_top_k_respected(self, ranker: SemanticFeatureRanker):
        assert len(ranker.rank(["ex:F1"], top_k=2)) == 2

    def test_scores_descending(self, ranker: SemanticFeatureRanker):
        scored = ranker.rank(["ex:F1", "ex:F2"])
        scores = [item.score for item in scored]
        assert scores == sorted(scores, reverse=True)

    def test_explicit_candidates(self, ranker: SemanticFeatureRanker):
        scored = ranker.rank(["ex:F1"], candidates=[STARRING_A1, GENRE_G1])
        assert {item.feature for item in scored} == {STARRING_A1, GENRE_G1}

    def test_candidate_features_held_by_some_seed(self, ranker: SemanticFeatureRanker, tiny_feature_index):
        candidates = ranker.candidate_features(["ex:F1"])
        for feature in candidates:
            assert tiny_feature_index.holds("ex:F1", feature)

    def test_as_dict_serialisable(self, ranker: SemanticFeatureRanker):
        payload = ranker.rank(["ex:F1"])[0].as_dict()
        assert {"feature", "score", "discriminability", "commonality"} <= set(payload)


class TestAblationSwitches:
    def test_discriminability_only(self, tiny_kg, tiny_feature_index):
        config = RankingConfig(use_commonality=False)
        ranker = SemanticFeatureRanker(tiny_kg, tiny_feature_index, config=config)
        scored = ranker.score_feature(STARRING_A2, ["ex:F1", "ex:F3"])
        assert scored.score == pytest.approx(scored.discriminability)

    def test_commonality_only(self, tiny_kg, tiny_feature_index):
        config = RankingConfig(use_discriminability=False)
        ranker = SemanticFeatureRanker(tiny_kg, tiny_feature_index, config=config)
        scored = ranker.score_feature(STARRING_A2, ["ex:F1", "ex:F3"])
        assert scored.score == pytest.approx(scored.commonality)

    def test_both_disabled_scores_zero(self, tiny_kg, tiny_feature_index):
        config = RankingConfig(use_discriminability=False, use_commonality=False)
        ranker = SemanticFeatureRanker(tiny_kg, tiny_feature_index, config=config)
        assert ranker.score_feature(STARRING_A1, ["ex:F1"]).score == 0.0

    def test_no_type_smoothing_changes_commonality(self, tiny_kg, tiny_feature_index):
        config = RankingConfig(type_smoothing=False)
        ranker = SemanticFeatureRanker(tiny_kg, tiny_feature_index, config=config)
        smoothed_off = ranker.commonality(STARRING_A2, ["ex:F1", "ex:F3"])
        assert smoothed_off == pytest.approx(config.epsilon)
