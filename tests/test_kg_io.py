"""Tests for repro.kg.io: N-Triples, TSV and JSON serialization."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphIOError
from repro.kg import (
    KnowledgeGraph,
    Literal,
    graph_from_dict,
    graph_to_dict,
    load_json,
    load_ntriples,
    load_tsv,
    save_json,
    save_ntriples,
    save_tsv,
)
from repro.kg.io import parse_ntriples_line, triple_to_ntriples


@pytest.fixture
def sample_graph(tiny_kg: KnowledgeGraph) -> KnowledgeGraph:
    return tiny_kg


class TestNTriplesParsing:
    def test_parse_entity_edge(self):
        triple = parse_ntriples_line("dbr:F dbo:starring dbr:A .")
        assert triple is not None
        assert triple.subject == "dbr:F"
        assert triple.object == "dbr:A"

    def test_parse_full_iris(self):
        triple = parse_ntriples_line(
            "<http://x.org/F> <http://x.org/p> <http://x.org/A> ."
        )
        assert triple is not None
        assert triple.subject == "http://x.org/F"

    def test_parse_literal(self):
        triple = parse_ntriples_line('dbr:F dbo:runtime "142 minutes" .')
        assert triple is not None
        assert triple.is_literal
        assert triple.object_value == "142 minutes"

    def test_parse_literal_with_language(self):
        triple = parse_ntriples_line('dbr:F rdfs:label "Forrest Gump"@en .')
        assert triple is not None
        assert triple.object.language == "en"

    def test_parse_escaped_quote(self):
        triple = parse_ntriples_line('dbr:F dbo:quote "life is like a \\"box\\"" .')
        assert triple is not None
        assert 'box' in triple.object_value

    def test_blank_and_comment_lines(self):
        assert parse_ntriples_line("") is None
        assert parse_ntriples_line("   ") is None
        assert parse_ntriples_line("# a comment") is None

    def test_malformed_line_raises(self):
        with pytest.raises(GraphIOError):
            parse_ntriples_line("this is not a triple")

    def test_serialize_roundtrip_entity(self):
        from repro.kg import Triple

        triple = Triple("dbr:F", "dbo:starring", "dbr:A")
        assert parse_ntriples_line(triple_to_ntriples(triple)) == triple

    def test_serialize_roundtrip_literal(self):
        from repro.kg import Triple

        triple = Triple("dbr:F", "dbo:runtime", Literal("142 minutes"))
        parsed = parse_ntriples_line(triple_to_ntriples(triple))
        assert parsed.object_value == "142 minutes"


class TestFileRoundtrips:
    def test_ntriples_roundtrip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.nt"
        save_ntriples(sample_graph, path)
        loaded = load_ntriples(path)
        assert len(loaded) == len(sample_graph)
        assert loaded.objects("ex:F1", "ex:starring") == sample_graph.objects("ex:F1", "ex:starring")

    def test_tsv_roundtrip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        save_tsv(sample_graph, path)
        loaded = load_tsv(path)
        assert len(loaded) == len(sample_graph)
        assert loaded.types_of("ex:F1") == sample_graph.types_of("ex:F1")

    def test_json_roundtrip(self, sample_graph, tmp_path):
        path = tmp_path / "graph.json"
        save_json(sample_graph, path)
        loaded = load_json(path)
        assert len(loaded) == len(sample_graph)
        assert loaded.attributes_of("ex:F1") == sample_graph.attributes_of("ex:F1")

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphIOError):
            load_ntriples(tmp_path / "missing.nt")
        with pytest.raises(GraphIOError):
            load_tsv(tmp_path / "missing.tsv")
        with pytest.raises(GraphIOError):
            load_json(tmp_path / "missing.json")

    def test_tsv_malformed_column_count(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("only\ttwo\n", encoding="utf-8")
        with pytest.raises(GraphIOError):
            load_tsv(path)

    def test_ntriples_name_from_stem(self, sample_graph, tmp_path):
        path = tmp_path / "mygraph.nt"
        save_ntriples(sample_graph, path)
        assert load_ntriples(path).name == "mygraph"


class TestDictConversion:
    def test_dict_roundtrip(self, sample_graph):
        payload = graph_to_dict(sample_graph)
        rebuilt = graph_from_dict(payload)
        assert len(rebuilt) == len(sample_graph)
        assert rebuilt.label("ex:F1") == sample_graph.label("ex:F1")

    def test_dict_missing_subjects_key(self):
        with pytest.raises(GraphIOError):
            graph_from_dict({"name": "x"})

    def test_dict_preserves_name(self, sample_graph):
        assert graph_from_dict(graph_to_dict(sample_graph)).name == sample_graph.name
