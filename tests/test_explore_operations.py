"""Tests for repro.explore.operations."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidOperationError
from repro.explore import (
    DeselectEntity,
    ExplorationQuery,
    LookupEntity,
    PinFeature,
    Pivot,
    SelectEntity,
    SetDomain,
    SubmitKeywords,
    UnpinFeature,
)
from repro.features import SemanticFeature

FEATURE = SemanticFeature("dbr:Tom_Hanks", "dbo:starring")


class TestOperations:
    def test_submit_keywords(self):
        query = SubmitKeywords("forrest gump").apply(ExplorationQuery())
        assert query.keywords == "forrest gump"

    def test_submit_empty_keywords_rejected(self):
        with pytest.raises(InvalidOperationError):
            SubmitKeywords("   ").apply(ExplorationQuery())

    def test_select_and_deselect_entity(self):
        query = SelectEntity("dbr:Forrest_Gump").apply(ExplorationQuery())
        assert query.has_seed("dbr:Forrest_Gump")
        query = DeselectEntity("dbr:Forrest_Gump").apply(query)
        assert not query.seed_entities

    def test_pin_and_unpin_feature(self):
        query = PinFeature(FEATURE).apply(ExplorationQuery())
        assert query.has_feature(FEATURE)
        query = UnpinFeature(FEATURE).apply(query)
        assert not query.pinned_features

    def test_lookup_does_not_change_state(self):
        original = ExplorationQuery(seed_entities=("a",))
        assert LookupEntity("b").apply(original) is original

    def test_set_domain(self):
        query = SetDomain("dbo:Actor").apply(ExplorationQuery())
        assert query.domain_type == "dbo:Actor"

    def test_pivot_replaces_seeds_and_domain(self):
        start = ExplorationQuery(
            keywords="gump",
            seed_entities=("dbr:Forrest_Gump",),
            pinned_features=(FEATURE,),
            domain_type="dbo:Film",
        )
        pivoted = Pivot(target_entity="dbr:Tom_Hanks", target_type="dbo:Actor").apply(start)
        assert pivoted.seed_entities == ("dbr:Tom_Hanks",)
        assert pivoted.domain_type == "dbo:Actor"
        assert pivoted.pinned_features == ()
        assert pivoted.keywords == ""

    def test_pivot_requires_target(self):
        with pytest.raises(InvalidOperationError):
            Pivot(target_entity="").apply(ExplorationQuery())

    def test_describe_strings(self):
        assert "submit" in SubmitKeywords("x").describe()
        assert "dbr:Forrest_Gump" in SelectEntity("dbr:Forrest_Gump").describe()
        assert "Tom_Hanks" in PinFeature(FEATURE).describe()
        assert "pivot" in Pivot("dbr:Tom_Hanks", "dbo:Actor").describe()
        assert "look up" in LookupEntity("x").describe()
        assert "(any)" in SetDomain("").describe()

    def test_operation_kinds_unique(self):
        kinds = {
            SubmitKeywords("x").kind,
            SelectEntity("x").kind,
            DeselectEntity("x").kind,
            PinFeature(FEATURE).kind,
            UnpinFeature(FEATURE).kind,
            LookupEntity("x").kind,
            Pivot("x").kind,
            SetDomain("x").kind,
        }
        assert len(kinds) == 8
