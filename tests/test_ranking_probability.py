"""Tests for repro.ranking.probability: p(pi | e) with type smoothing."""

from __future__ import annotations

import pytest

from repro.features import Direction, SemanticFeature, SemanticFeatureIndex
from repro.kg import KnowledgeGraph
from repro.ranking import FeatureProbabilityModel

STARRING_A1 = SemanticFeature("ex:A1", "ex:starring", Direction.OBJECT_OF)
GENRE_G1 = SemanticFeature("ex:G1", "ex:genre", Direction.OBJECT_OF)


@pytest.fixture
def model(tiny_kg: KnowledgeGraph, tiny_feature_index: SemanticFeatureIndex) -> FeatureProbabilityModel:
    return FeatureProbabilityModel(tiny_kg, tiny_feature_index)


class TestProbability:
    def test_direct_match_is_one(self, model: FeatureProbabilityModel):
        assert model.probability(STARRING_A1, "ex:F1") == 1.0

    def test_type_smoothed_fallback(self, model: FeatureProbabilityModel):
        # F4 is a Film but does not star A1; 3 of 4 films do, so p = 0.75.
        assert model.probability(STARRING_A1, "ex:F4") == pytest.approx(0.75)

    def test_type_conditional_direct(self, model: FeatureProbabilityModel):
        assert model.type_conditional(STARRING_A1, "ex:Film") == pytest.approx(0.75)
        assert model.type_conditional(GENRE_G1, "ex:Film") == pytest.approx(0.75)

    def test_type_conditional_empty_type(self, model: FeatureProbabilityModel):
        assert model.type_conditional(STARRING_A1, "") == 0.0
        assert model.type_conditional(STARRING_A1, "ex:Nope") == 0.0

    def test_entity_of_other_type_gets_epsilon(self, model: FeatureProbabilityModel):
        # D1 is a Director; no director holds starring:A1, so the floor applies.
        assert model.probability(STARRING_A1, "ex:D1") == pytest.approx(model.epsilon)

    def test_smoothing_disabled_gives_epsilon(self, tiny_kg, tiny_feature_index):
        model = FeatureProbabilityModel(tiny_kg, tiny_feature_index, type_smoothing=False)
        assert model.probability(STARRING_A1, "ex:F4") == pytest.approx(model.epsilon)
        assert model.probability(STARRING_A1, "ex:F1") == 1.0

    def test_invalid_epsilon(self, tiny_kg, tiny_feature_index):
        with pytest.raises(ValueError):
            FeatureProbabilityModel(tiny_kg, tiny_feature_index, epsilon=0.0)
        with pytest.raises(ValueError):
            FeatureProbabilityModel(tiny_kg, tiny_feature_index, epsilon=1.5)

    def test_probability_bounds(self, model: FeatureProbabilityModel, tiny_kg: KnowledgeGraph, tiny_feature_index):
        for entity in tiny_kg.entities():
            for feature in list(tiny_feature_index.all_features())[:10]:
                p = model.probability(feature, entity)
                assert 0.0 < p <= 1.0

    def test_cache_cleared(self, model: FeatureProbabilityModel):
        model.type_conditional(STARRING_A1, "ex:Film")
        model.clear_cache()
        assert model.type_conditional(STARRING_A1, "ex:Film") == pytest.approx(0.75)


class TestExplanation:
    def test_direct_explanation(self, model: FeatureProbabilityModel):
        probability, text = model.probability_with_explanation(STARRING_A1, "ex:F1")
        assert probability == 1.0
        assert "direct" in text

    def test_type_smoothed_explanation(self, model: FeatureProbabilityModel):
        probability, text = model.probability_with_explanation(STARRING_A1, "ex:F4")
        assert probability == pytest.approx(0.75)
        assert "ex:Film" in text

    def test_no_evidence_explanation(self, model: FeatureProbabilityModel):
        probability, text = model.probability_with_explanation(STARRING_A1, "ex:D1")
        assert probability == pytest.approx(model.epsilon)
        assert "no instances" in text or "no evidence" in text

    def test_untyped_entity_explanation(self, tiny_kg, ):
        tiny_kg.add("ex:untyped", "ex:rel", "ex:F1")
        index = SemanticFeatureIndex.build(tiny_kg)
        model = FeatureProbabilityModel(tiny_kg, index)
        probability, text = model.probability_with_explanation(STARRING_A1, "ex:untyped")
        assert probability == pytest.approx(model.epsilon)
        assert "no type" in text
