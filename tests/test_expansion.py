"""Tests for repro.expansion: entity set expansion and its iterative variant."""

from __future__ import annotations

import pytest

from repro.datasets import tom_hanks_task
from repro.exceptions import NoSeedEntitiesError
from repro.expansion import EntitySetExpander, IterativeExpander
from repro.features import Direction, SemanticFeature
from repro.kg import KnowledgeGraph


@pytest.fixture(scope="module")
def movie_expander(request) -> EntitySetExpander:
    movie_kg = request.getfixturevalue("movie_kg")
    return EntitySetExpander(movie_kg)


class TestExpandTiny:
    def test_expansion_finds_similar_film(self, tiny_kg: KnowledgeGraph):
        expander = EntitySetExpander(tiny_kg)
        result = expander.expand(["ex:F1", "ex:F2"])
        assert result.entity_ids()[0] == "ex:F3"
        assert result.seeds == ("ex:F1", "ex:F2")

    def test_empty_seeds_raise(self, tiny_kg: KnowledgeGraph):
        with pytest.raises(NoSeedEntitiesError):
            EntitySetExpander(tiny_kg).expand([])

    def test_restrict_to_seed_type(self, tiny_kg: KnowledgeGraph):
        expander = EntitySetExpander(tiny_kg)
        result = expander.expand(["ex:F1", "ex:F2"], restrict_to_seed_type=True)
        assert result.restricted_type == "ex:Film"
        for entity_id in result.entity_ids():
            assert "ex:Film" in tiny_kg.types_of(entity_id)

    def test_required_features_filter(self, tiny_kg: KnowledgeGraph):
        expander = EntitySetExpander(tiny_kg)
        starring_a1 = SemanticFeature("ex:A1", "ex:starring", Direction.OBJECT_OF)
        result = expander.expand(["ex:F1"], required_features=[starring_a1])
        for entity_id in result.entity_ids():
            assert expander.feature_index.holds(entity_id, starring_a1)

    def test_dominant_seed_type(self, tiny_kg: KnowledgeGraph):
        expander = EntitySetExpander(tiny_kg)
        assert expander.dominant_seed_type(["ex:F1", "ex:F2", "ex:A1"]) == "ex:Film"
        assert expander.dominant_seed_type([]) == ""

    def test_top_k_respected(self, tiny_kg: KnowledgeGraph):
        result = EntitySetExpander(tiny_kg).expand(["ex:F1"], top_k=1)
        assert len(result.entities) == 1

    def test_feature_notations_exposed(self, tiny_kg: KnowledgeGraph):
        result = EntitySetExpander(tiny_kg).expand(["ex:F1", "ex:F2"])
        assert any("starring" in notation for notation in result.feature_notations())


class TestDemoScenario:
    """The paper's running example: expanding Tom Hanks films."""

    def test_tom_hanks_films_recovered(self, movie_expander: EntitySetExpander, movie_kg):
        task = tom_hanks_task(movie_kg)
        result = movie_expander.expand(task.seeds, top_k=20)
        recovered = set(result.entity_ids()) & set(task.relevant)
        # At least half of the held-out Tom Hanks films appear in the top 20.
        assert len(recovered) >= len(task.relevant) / 2

    def test_tom_hanks_feature_ranked_highly(self, movie_expander: EntitySetExpander):
        result = movie_expander.expand(["dbr:Forrest_Gump", "dbr:Apollo_13_(film)"])
        top_features = result.feature_notations()[:5]
        assert any("Tom_Hanks" in notation for notation in top_features)

    def test_expanded_entities_are_films(self, movie_expander: EntitySetExpander, movie_kg):
        result = movie_expander.expand(
            ["dbr:Forrest_Gump", "dbr:Apollo_13_(film)"], restrict_to_seed_type=True, top_k=10
        )
        for entity_id in result.entity_ids():
            assert "dbo:Film" in movie_kg.types_of(entity_id)


class TestIterativeExpansion:
    def test_rounds_grow_accepted_set(self, movie_expander: EntitySetExpander):
        iterative = IterativeExpander(movie_expander, accept_per_round=2)
        trace = iterative.run(["dbr:Forrest_Gump"], rounds=3, top_k=10)
        sizes = trace.entities_per_round()
        assert len(trace.rounds) >= 1
        assert sizes == sorted(sizes)
        assert trace.final_entities[0] == "dbr:Forrest_Gump"

    def test_added_entities_become_seeds(self, movie_expander: EntitySetExpander):
        iterative = IterativeExpander(movie_expander, accept_per_round=1)
        trace = iterative.run(["dbr:Forrest_Gump"], rounds=2, top_k=10)
        if len(trace.rounds) > 1:
            first_added = trace.rounds[0].added
            assert set(first_added) <= set(trace.rounds[1].seeds)

    def test_invalid_parameters(self, movie_expander: EntitySetExpander):
        with pytest.raises(ValueError):
            IterativeExpander(movie_expander, accept_per_round=0)
        iterative = IterativeExpander(movie_expander)
        with pytest.raises(ValueError):
            iterative.run(["dbr:Forrest_Gump"], rounds=0)
        with pytest.raises(NoSeedEntitiesError):
            iterative.run([], rounds=1)
