"""Graph-topology execution equivalence: byte-identical to scalar walks.

The contract of the PR 10 topology layer (``repro.kg.topology``): with
``graph_topology=True`` (the default) expansion traverses through the
CSR adjacency and the interval-encoded type filter, and for every
pruning mode, every shard count and every executor the expansion results
and recommendations must be *exactly* what the scalar per-edge walks
produce — same ids, same floats, same order.  The suites here enforce
that on the synthetic movie graph, on a skewed random KG across the full
execution matrix, and (via hypothesis) on random KGs; path helpers are
covered directly against their ``*_scalar`` arms.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PRUNING_MODES, PivotEConfig, RankingConfig, SearchConfig
from repro.datasets import RandomKGConfig, build_random_kg, small_movie_kg
from repro.engine import PivotE
from repro.expansion import EntitySetExpander
from repro.explore import RecommendationEngine
from repro.kg import bfs_reachable, bfs_reachable_scalar, traversal_stats

EXECUTORS = ("inline", "thread", "process")
SHARD_COUNTS = (1, 2, 3)
WORKERS = 2


def _recommendation_signature(result):
    return (
        [(e.entity_id, e.score) for e in result.entities],
        [(f.feature.notation(), f.score) for f in result.features],
    )


def _expansion_signature(result):
    return (
        [(e.entity_id, e.score) for e in result.entities],
        [(f.feature.notation(), f.score) for f in result.features],
        result.restricted_type,
    )


def _seeds(graph, count=2):
    largest = max(graph.types(), key=lambda t: (graph.type_count(t), t))
    return sorted(graph.entities_of_type(largest))[:count]


@pytest.fixture(scope="module")
def random_graph():
    return build_random_kg(
        RandomKGConfig(num_entities=140, seed=23, target_skew=1.2)
    )


@pytest.fixture(scope="module")
def scalar_baselines(random_graph):
    """Per-pruning-mode recommendation baselines with the topology OFF."""
    seeds = _seeds(random_graph)
    baselines = {}
    for pruning in PRUNING_MODES:
        engine = RecommendationEngine(
            random_graph, config=RankingConfig(pruning=pruning, graph_topology=False)
        )
        baselines[pruning] = _recommendation_signature(
            engine.recommend_for_seeds(seeds)
        )
        engine.close()
    return seeds, baselines


class TestExpansionEquivalence:
    """The expander's candidate generation + type restriction, on == off."""

    @pytest.mark.parametrize("domain_type", ["", "__dominant__"])
    def test_expand_byte_identical(self, random_graph, domain_type):
        seeds = _seeds(random_graph)
        if domain_type == "__dominant__":
            domain_type = max(
                random_graph.types(),
                key=lambda t: (random_graph.type_count(t), t),
            )
        on = EntitySetExpander(random_graph, config=RankingConfig(graph_topology=True))
        off = EntitySetExpander(random_graph, config=RankingConfig(graph_topology=False))
        assert _expansion_signature(
            on.expand(seeds, domain_type=domain_type)
        ) == _expansion_signature(off.expand(seeds, domain_type=domain_type))

    def test_restrict_candidates_byte_identical(self, random_graph):
        """The public filter itself: mixed known/unknown/off-type ids,
        order preserved, against every type in the graph."""
        on = EntitySetExpander(random_graph, config=RankingConfig(graph_topology=True))
        off = EntitySetExpander(random_graph, config=RankingConfig(graph_topology=False))
        candidates = sorted(random_graph.entities(), reverse=True)[:40]
        candidates += ["ex:not_in_graph", candidates[0]]
        for restricted_type in sorted(random_graph.types()):
            assert on.restrict_candidates(candidates, restricted_type) == (
                off.restrict_candidates(candidates, restricted_type)
            )
        assert on.restrict_candidates(candidates, "ex:NoSuchType") == (
            off.restrict_candidates(candidates, "ex:NoSuchType")
        )
        assert on.restrict_candidates([], sorted(random_graph.types())[0]) == []

    def test_dominant_seed_type_single_probe_per_seed(self, random_graph):
        expander = EntitySetExpander(random_graph)
        seeds = _seeds(random_graph, count=3)
        calls = []
        original = random_graph.dominant_type

        def counting(entity_id):
            calls.append(entity_id)
            return original(entity_id)

        random_graph.dominant_type = counting  # type: ignore[method-assign]
        try:
            expander.dominant_seed_type(seeds)
        finally:
            del random_graph.dominant_type
        assert calls == list(seeds)


class TestRecommendationEquivalence:
    """Full recommendations across the execution matrix, on == off."""

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_byte_identical_across_pruning_and_shards(
        self, random_graph, scalar_baselines, pruning, shards
    ):
        seeds, baselines = scalar_baselines
        engine = RecommendationEngine(
            random_graph,
            config=RankingConfig(
                pruning=pruning, shards=shards, graph_topology=True
            ),
        )
        try:
            assert (
                _recommendation_signature(engine.recommend_for_seeds(seeds))
                == baselines[pruning]
            )
        finally:
            engine.close()

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_byte_identical_across_executors(
        self, random_graph, scalar_baselines, executor
    ):
        seeds, baselines = scalar_baselines
        engine = RecommendationEngine(
            random_graph,
            config=RankingConfig(
                shards=2,
                executor=executor,
                workers=WORKERS,
                graph_topology=True,
            ),
        )
        try:
            assert (
                _recommendation_signature(engine.recommend_for_seeds(seeds))
                == baselines[RankingConfig().pruning]
            )
        finally:
            engine.close()

    def test_movie_graph_system_level(self):
        """Whole-facade check on the curated dataset, domain pivots included."""
        graph = small_movie_kg()
        seeds = _seeds(graph)

        def build(topology: bool) -> PivotE:
            return PivotE(
                graph,
                config=PivotEConfig(
                    search=SearchConfig(graph_topology=topology),
                    ranking=RankingConfig(graph_topology=topology),
                ),
            )

        on, off = build(True), build(False)
        try:
            for domain in ["", max(graph.types(), key=lambda t: (graph.type_count(t), t))]:
                actual = on.recommend(seeds, domain_type=domain)
                expected = off.recommend(seeds, domain_type=domain)
                assert _recommendation_signature(actual) == (
                    _recommendation_signature(expected)
                )
            assert traversal_stats(graph).interval_filters >= 1
        finally:
            on.close()
            off.close()

    def test_topology_arm_actually_engages(self, random_graph):
        """Telemetry proof the fast path ran: interval filters counted on,
        scalar arm leaves them untouched."""
        graph = build_random_kg(RandomKGConfig(num_entities=60, seed=31))
        seeds = _seeds(graph)
        domain = max(graph.types(), key=lambda t: (graph.type_count(t), t))
        before = traversal_stats(graph).interval_filters
        on = RecommendationEngine(graph, config=RankingConfig(graph_topology=True))
        on.recommend_for_seeds(seeds, domain_type=domain)
        engaged = traversal_stats(graph).interval_filters
        assert engaged > before
        assert traversal_stats(graph).interval_hits >= 1
        off = RecommendationEngine(graph, config=RankingConfig(graph_topology=False))
        off.recommend_for_seeds(seeds, domain_type=domain)
        assert traversal_stats(graph).interval_filters == engaged
        on.close()
        off.close()


class TestTopologyEquivalenceProperty:
    """Hypothesis: random KGs, every pruning mode, on == off."""

    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(
        kg_seed=st.integers(min_value=0, max_value=500),
        num_entities=st.integers(min_value=30, max_value=80),
        pruning=st.sampled_from(PRUNING_MODES),
    )
    def test_recommendation_topology_equals_scalar(
        self, kg_seed, num_entities, pruning
    ):
        graph = build_random_kg(
            RandomKGConfig(num_entities=num_entities, seed=kg_seed)
        )
        seeds = _seeds(graph)
        on = RecommendationEngine(
            graph, config=RankingConfig(pruning=pruning, graph_topology=True)
        )
        off = RecommendationEngine(
            graph, config=RankingConfig(pruning=pruning, graph_topology=False)
        )
        assert _recommendation_signature(on.recommend_for_seeds(seeds)) == (
            _recommendation_signature(off.recommend_for_seeds(seeds))
        )
        on.close()
        off.close()

    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(
        kg_seed=st.integers(min_value=0, max_value=500),
        num_entities=st.integers(min_value=20, max_value=70),
        max_hops=st.integers(min_value=0, max_value=3),
    )
    def test_bfs_topology_equals_scalar(self, kg_seed, num_entities, max_hops):
        graph = build_random_kg(
            RandomKGConfig(num_entities=num_entities, seed=kg_seed)
        )
        for probe in sorted(graph.entities())[:3]:
            assert bfs_reachable(graph, probe, max_hops=max_hops) == (
                bfs_reachable_scalar(graph, probe, max_hops=max_hops)
            )
