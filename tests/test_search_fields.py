"""Tests for repro.search.fields: the five-field entity representation (Table 1)."""

from __future__ import annotations

import pytest

from repro.config import DEFAULT_FIELDS
from repro.exceptions import EntityNotFoundError
from repro.kg import KnowledgeGraph
from repro.search import analyze_document, build_all_documents, build_entity_document


class TestBuildEntityDocument:
    def test_forrest_gump_table1(self, movie_kg: KnowledgeGraph):
        """The five-field document of Forrest_Gump mirrors Table 1."""
        document = build_entity_document(movie_kg, "dbr:Forrest_Gump")
        assert document.field_text("names") == ("Forrest Gump",)
        assert "142 minutes" in document.field_text("attributes")
        assert "55 million dollars" in document.field_text("attributes")
        assert any("American films" in c for c in document.field_text("categories"))
        assert "Greenbow" in document.field_text("similar_entity_names")
        assert "Gumpian" in document.field_text("similar_entity_names")
        assert "Tom Hanks" in document.field_text("related_entity_names")
        assert "Robert Zemeckis" in document.field_text("related_entity_names")

    def test_all_five_fields_present(self, movie_kg: KnowledgeGraph):
        document = build_entity_document(movie_kg, "dbr:Forrest_Gump")
        for field in DEFAULT_FIELDS:
            assert field in document.fields

    def test_name_falls_back_to_identifier(self, tiny_kg: KnowledgeGraph):
        tiny_kg.add("ex:Unlabelled_Thing", "ex:rel", "ex:F1")
        document = build_entity_document(tiny_kg, "ex:Unlabelled_Thing")
        assert document.field_text("names") == ("Unlabelled Thing",)

    def test_related_includes_incoming(self, tiny_kg: KnowledgeGraph):
        document = build_entity_document(tiny_kg, "ex:A1")
        related = document.field_text("related_entity_names")
        assert "F1 Film" in related and "F2 Film" in related

    def test_unknown_entity_raises(self, tiny_kg: KnowledgeGraph):
        with pytest.raises(EntityNotFoundError):
            build_entity_document(tiny_kg, "ex:missing")

    def test_as_table_rows(self, movie_kg: KnowledgeGraph):
        rows = build_entity_document(movie_kg, "dbr:Forrest_Gump").as_table()
        assert [row[0] for row in rows] == list(DEFAULT_FIELDS)

    def test_joined_and_all_text(self, movie_kg: KnowledgeGraph):
        document = build_entity_document(movie_kg, "dbr:Forrest_Gump")
        assert "Forrest Gump" in document.joined("names")
        assert "Tom Hanks" in document.all_text()


class TestAnalyzeDocument:
    def test_analyzed_terms_lowercased(self, movie_kg: KnowledgeGraph):
        document = build_entity_document(movie_kg, "dbr:Forrest_Gump")
        analyzed = analyze_document(document)
        assert "forrest" in analyzed["names"]
        assert "gump" in analyzed["names"]

    def test_attribute_terms_stopword_filtered(self, movie_kg: KnowledgeGraph):
        document = build_entity_document(movie_kg, "dbr:Forrest_Gump")
        analyzed = analyze_document(document)
        assert "minute" in analyzed["attributes"]  # stemmed
        assert all(term != "of" for term in analyzed["attributes"])

    def test_every_field_analyzed(self, movie_kg: KnowledgeGraph):
        analyzed = analyze_document(build_entity_document(movie_kg, "dbr:Tom_Hanks"))
        assert set(analyzed.keys()) == set(DEFAULT_FIELDS)


class TestBuildAllDocuments:
    def test_covers_every_entity(self, tiny_kg: KnowledgeGraph):
        documents = build_all_documents(tiny_kg)
        assert set(documents.keys()) == tiny_kg.entities()

    def test_documents_keyed_by_entity(self, tiny_kg: KnowledgeGraph):
        documents = build_all_documents(tiny_kg)
        assert documents["ex:F1"].entity_id == "ex:F1"
