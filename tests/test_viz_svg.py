"""Tests for repro.viz.svg: SVG rendering of the heat map and the path."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.explore import (
    ExplorationPath,
    ExplorationQuery,
    ExplorationSession,
    RecommendationEngine,
    SelectEntity,
    SubmitKeywords,
)
from repro.kg import KnowledgeGraph
from repro.viz import build_heatmap, build_matrix_view, render_heatmap_svg, render_path_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


@pytest.fixture
def matrix_view(tiny_kg: KnowledgeGraph):
    engine = RecommendationEngine(tiny_kg)
    recommendation = engine.recommend_for_seeds(["ex:F1", "ex:F2"])
    heatmap = build_heatmap(recommendation.correlations)
    return build_matrix_view(tiny_kg, recommendation, heatmap)


@pytest.fixture
def session() -> ExplorationSession:
    session = ExplorationSession("svg")
    session.apply(SubmitKeywords("gump"))
    session.apply(SelectEntity("dbr:Forrest_Gump"))
    session.apply(SelectEntity("dbr:Apollo_13_(film)"))
    return session


class TestHeatmapSvg:
    def test_well_formed_xml(self, matrix_view):
        document = render_heatmap_svg(matrix_view)
        root = ET.fromstring(document)
        assert root.tag == f"{SVG_NS}svg"

    def test_one_cell_rect_per_matrix_cell(self, matrix_view):
        document = render_heatmap_svg(matrix_view)
        root = ET.fromstring(document)
        rects = root.findall(f"{SVG_NS}rect")
        rows, columns = matrix_view.shape
        # background + one rect per cell
        assert len(rects) == 1 + rows * columns

    def test_labels_present(self, matrix_view):
        document = render_heatmap_svg(matrix_view)
        assert "F3 Film" in document
        assert "starring" in document

    def test_truncation_limits_cells(self, matrix_view):
        document = render_heatmap_svg(matrix_view, max_entities=1, max_features=1)
        root = ET.fromstring(document)
        assert len(root.findall(f"{SVG_NS}rect")) == 2  # background + single cell

    def test_distinct_fills_for_distinct_levels(self, matrix_view):
        document = render_heatmap_svg(matrix_view)
        fills = {
            line.split('fill="')[1].split('"')[0]
            for line in document.splitlines()
            if line.startswith("<rect") and "stroke=\"#cccccc\"" in line
        }
        # The tiny recommendation spans several correlation levels.
        assert len(fills) >= 2


class TestPathSvg:
    def test_well_formed_xml(self, session):
        document = render_path_svg(session.path)
        root = ET.fromstring(document)
        assert root.tag == f"{SVG_NS}svg"

    def test_one_node_rect_per_path_node(self, session):
        document = render_path_svg(session.path)
        root = ET.fromstring(document)
        rects = root.findall(f"{SVG_NS}rect")
        assert len(rects) == 1 + len(session.path)  # background + nodes

    def test_one_line_per_edge(self, session):
        document = render_path_svg(session.path)
        root = ET.fromstring(document)
        lines = root.findall(f"{SVG_NS}line")
        assert len(lines) == len(session.path.edges)

    def test_operation_labels_present(self, session):
        document = render_path_svg(session.path)
        assert "select entity" in document

    def test_empty_path(self):
        document = render_path_svg(ExplorationPath())
        assert ET.fromstring(document).tag == f"{SVG_NS}svg"

    def test_branching_layout_has_two_rows(self):
        path = ExplorationPath()
        root_node = path.add_state(ExplorationQuery(keywords="a"))
        path.add_state(ExplorationQuery(keywords="b"), SubmitKeywords("b"))
        path.jump_to(root_node.node_id)
        path.add_state(ExplorationQuery(keywords="c"), SubmitKeywords("c"))
        document = render_path_svg(path)
        root = ET.fromstring(document)
        node_rects = root.findall(f"{SVG_NS}rect")[1:]
        ys = {rect.get("y") for rect in node_rects}
        assert len(ys) >= 2  # the branch occupies a second row
