"""Unit + corruption coverage of the snapshot codec and the disk store.

The codec (format version 2) is the single home of the segment layout —
magic/version preamble, compact JSON manifest, 64-aligned array blobs,
per-array CRC32 — shared by the shared-memory and mmap'd-file backends.
These tests pin the layout invariants and prove that every corruption
mode a durable file can suffer (truncation, flipped bytes, stale format
versions, swapped uid/epoch pairs, tampered store manifests) surfaces as
:class:`SnapshotUnavailable` instead of silently serving garbage.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.storage import (
    ALIGN,
    FORMAT_VERSION,
    HEADER_BYTES,
    MAGIC,
    DiskSnapshotStore,
    SegmentBuilder,
    SegmentView,
    SnapshotUnavailable,
    iter_descriptors,
)
from repro.storage.codec import align, decode_header


def _build_segment(
    arrays: dict[str, np.ndarray], uid: int = 7, epoch: int = 3
) -> tuple[bytearray, dict[str, object]]:
    builder = SegmentBuilder()
    manifest: dict[str, object] = {"uid": uid, "epoch": epoch}
    for name, array in arrays.items():
        manifest[name] = builder.place(array)
    encoded = SegmentBuilder.encode_manifest(manifest)
    total, _ = builder.total_size(encoded)
    buf = bytearray(total)
    assert builder.write_into(buf, encoded) == total
    return buf, manifest


SAMPLE = {
    "ordinals": np.array([0, 3, 5, 11], dtype=np.int64),
    "frequencies": np.array([1.0, 2.0, 1.0, 4.0], dtype=np.float64),
    "grid": np.arange(12, dtype=np.float32).reshape(3, 4),
    "empty": np.array([], dtype=np.int64),
}


class TestCodecRoundTrip:
    def test_align_rounds_up_to_boundary(self):
        assert align(0) == 0
        assert align(1) == ALIGN
        assert align(ALIGN) == ALIGN
        assert align(ALIGN + 1) == 2 * ALIGN

    def test_round_trip_views_are_equal_and_read_only(self):
        buf, _ = _build_segment(SAMPLE)
        view = SegmentView(buf, name="unit", expected_uid=7, expected_epoch=3)
        for name, array in SAMPLE.items():
            restored = view.manifest_array(name)
            assert restored.dtype == array.dtype
            assert restored.shape == array.shape
            assert np.array_equal(restored, array)
            assert not restored.flags.writeable
        assert view.uid == 7 and view.epoch == 3

    def test_header_layout(self):
        buf, _ = _build_segment(SAMPLE)
        assert bytes(buf[:8]) == MAGIC
        version, manifest_len, arrays_base = np.frombuffer(
            buf, dtype=np.int64, count=3, offset=8
        )
        assert int(version) == FORMAT_VERSION
        assert int(arrays_base) % ALIGN == 0
        assert int(arrays_base) >= HEADER_BYTES + int(manifest_len)

    def test_descriptors_are_aligned_and_checksummed(self):
        _, manifest = _build_segment(SAMPLE)
        descriptors = list(iter_descriptors(manifest))
        assert len(descriptors) == len(SAMPLE)
        for offset, _dtype, _shape, crc in descriptors:
            assert offset % ALIGN == 0
            assert isinstance(crc, int)
        # An empty array carries the sentinel checksum 0.
        assert manifest["empty"][3] == 0

    def test_verify_checksums_passes_on_clean_segment(self):
        buf, _ = _build_segment(SAMPLE)
        SegmentView(buf, name="unit", verify=True).verify_checksums()


class TestCodecCorruption:
    def test_short_buffer_is_rejected(self):
        with pytest.raises(SnapshotUnavailable, match="truncated"):
            decode_header(b"\x00" * (HEADER_BYTES - 1), "short")

    def test_foreign_magic_is_rejected(self):
        buf, _ = _build_segment(SAMPLE)
        buf[:8] = b"NOTASNAP"
        with pytest.raises(SnapshotUnavailable, match="foreign magic"):
            SegmentView(buf, name="magic")

    def test_stale_format_version_is_rejected(self):
        buf, _ = _build_segment(SAMPLE)
        np.frombuffer(memoryview(buf)[8:16], dtype=np.int64)  # sanity: readable
        buf[8:16] = int(FORMAT_VERSION + 5).to_bytes(8, "little")
        with pytest.raises(SnapshotUnavailable, match="format version"):
            SegmentView(buf, name="version")

    def test_manifest_overrun_is_rejected(self):
        buf, _ = _build_segment(SAMPLE)
        buf[16:24] = (len(buf) * 2).to_bytes(8, "little")
        with pytest.raises(SnapshotUnavailable, match="manifest overruns"):
            SegmentView(buf, name="overrun")

    def test_flipped_array_byte_fails_checksum(self):
        buf, _ = _build_segment(SAMPLE)
        arrays_base = int.from_bytes(buf[24:32], "little")
        buf[arrays_base] ^= 0xFF  # first byte of the first placed array
        view = SegmentView(buf, name="flip")
        with pytest.raises(SnapshotUnavailable, match="checksum"):
            view.verify_checksums()
        with pytest.raises(SnapshotUnavailable, match="checksum"):
            SegmentView(buf, name="flip", verify=True)

    def test_truncated_arrays_are_rejected(self):
        buf, _ = _build_segment(SAMPLE)
        truncated = buf[: len(buf) // 2]
        view = SegmentView(truncated, name="trunc")
        with pytest.raises(SnapshotUnavailable):
            view.verify_checksums()

    def test_uid_epoch_mismatch_is_rejected(self):
        buf, _ = _build_segment(SAMPLE, uid=7, epoch=3)
        with pytest.raises(SnapshotUnavailable, match="expected"):
            SegmentView(buf, name="stale", expected_uid=7, expected_epoch=4)
        with pytest.raises(SnapshotUnavailable, match="expected"):
            SegmentView(buf, name="stale", expected_uid=8, expected_epoch=3)

    def test_missing_uid_epoch_is_rejected(self):
        builder = SegmentBuilder()
        encoded = SegmentBuilder.encode_manifest({"kind": "mystery"})
        total, _ = builder.total_size(encoded)
        buf = bytearray(total)
        builder.write_into(buf, encoded)
        with pytest.raises(SnapshotUnavailable, match="uid/epoch"):
            SegmentView(buf, name="anon")


def _publish_sample(store: DiskSnapshotStore, key: str, epoch: int = 3):
    builder = SegmentBuilder()
    manifest: dict[str, object] = {"uid": 7, "epoch": epoch}
    for name, array in SAMPLE.items():
        manifest[name] = builder.place(array)
    return store.publish(key, manifest, builder, extra={"graph_epoch": 11})


class TestDiskSnapshotStore:
    def test_publish_then_attach_round_trips(self, tmp_path):
        store = DiskSnapshotStore(str(tmp_path))
        entry = _publish_sample(store, "sample")
        assert entry["file"] == "sample/3.snap"
        assert entry["graph_epoch"] == 11
        assert os.path.exists(tmp_path / "sample" / "3.snap")
        assert store.publishes == 1 and store.published_bytes > 0

        snapshot = store.attach("sample")
        try:
            assert snapshot.uid == 7 and snapshot.epoch == 3
            assert np.array_equal(snapshot.manifest_array("ordinals"), SAMPLE["ordinals"])
        finally:
            snapshot.close()
        assert store.attaches == 1
        assert store.attached_bytes == entry["nbytes"]
        assert store.failures == 0

    def test_new_epoch_flips_pointer_and_collects_stale(self, tmp_path):
        store = DiskSnapshotStore(str(tmp_path))
        _publish_sample(store, "sample", epoch=3)
        _publish_sample(store, "sample", epoch=4)
        assert store.entry("sample")["epoch"] == 4
        names = sorted(os.listdir(tmp_path / "sample"))
        assert names == ["4.snap"], "stale epoch file must be garbage-collected"

    def test_missing_key_counts_one_failure(self, tmp_path):
        store = DiskSnapshotStore(str(tmp_path))
        with pytest.raises(SnapshotUnavailable, match="no snapshot"):
            store.attach("absent")
        assert store.failures == 1

    def test_truncated_file_is_rejected(self, tmp_path):
        store = DiskSnapshotStore(str(tmp_path))
        entry = _publish_sample(store, "sample")
        path = tmp_path / str(entry["file"])
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(SnapshotUnavailable):
            store.attach("sample")
        assert store.failures == 1

    def test_flipped_byte_is_rejected(self, tmp_path):
        store = DiskSnapshotStore(str(tmp_path))
        entry = _publish_sample(store, "sample")
        path = tmp_path / str(entry["file"])
        payload = bytearray(path.read_bytes())
        arrays_base = int.from_bytes(payload[24:32], "little")
        payload[arrays_base] ^= 0xFF
        path.write_bytes(bytes(payload))
        with pytest.raises(SnapshotUnavailable, match="checksum"):
            store.attach("sample")
        assert store.failures == 1

    def test_tampered_manifest_entry_is_rejected(self, tmp_path):
        store = DiskSnapshotStore(str(tmp_path))
        _publish_sample(store, "sample")
        manifest_path = tmp_path / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["sample"]["epoch"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotUnavailable, match="expected"):
            store.attach("sample")
        assert store.failures == 1

    def test_malformed_store_manifest_is_rejected(self, tmp_path):
        store = DiskSnapshotStore(str(tmp_path))
        (tmp_path / "MANIFEST.json").write_text("{not json")
        with pytest.raises(SnapshotUnavailable, match="unreadable"):
            store.read_manifest()

    def test_empty_store_reads_as_empty(self, tmp_path):
        store = DiskSnapshotStore(str(tmp_path))
        assert store.read_manifest() == {}
