"""Executor equivalence: inline, thread and process tiers vs serial.

The PR 7 contract extends the PR 5 invariant to the process tier: for
``executor`` ∈ {inline, thread, process}, every pruning mode, shard
counts 1–3, all four search scorers and both rankers, the rankings must
be *byte-identical* to the serial single-shard path — the process
executor only moves survivor selection into worker processes attached to
the shared-memory snapshot; the exact re-scoring epilogue stays in the
parent.  A stress suite mutates the graph (publishing fresh snapshot
epochs) while readers drive the process pool.
"""

from __future__ import annotations

import threading

import pytest

from repro.config import PRUNING_MODES, RankingConfig, SearchConfig
from repro.datasets import RandomKGConfig, build_random_kg
from repro.explore import RecommendationEngine
from repro.features import SemanticFeatureIndex
from repro.search import BM25FieldScorer, BM25FScorer, SearchEngine, parse_query

EXECUTORS = ("inline", "thread", "process")
SHARD_COUNTS = (1, 2, 3)
WORKERS = 2


def _signature(results) -> list[tuple[str, float]]:
    return [(result.doc_id, result.score) for result in results]


def _hit_signature(hits) -> list[tuple[str, float]]:
    return [(hit.entity_id, hit.score) for hit in hits]


def _queries(graph, count: int = 5) -> list[str]:
    entities = sorted(graph.entities())
    step = max(1, len(entities) // count)
    labels = [graph.label(entities[index]) for index in range(0, len(entities), step)]
    queries = []
    for position, label in enumerate(labels[:count]):
        if position % 2 == 0:
            queries.append(label)
        else:
            queries.append(f"{label} {labels[(position + 2) % len(labels)]}")
    return queries


@pytest.fixture(scope="module")
def random_graph():
    return build_random_kg(RandomKGConfig(num_entities=160, seed=17))


@pytest.fixture(scope="module")
def serial_mlm(random_graph):
    """Per-pruning-mode baselines from the plain serial engine."""
    baselines = {}
    for pruning in PRUNING_MODES:
        engine = SearchEngine.from_graph(random_graph, SearchConfig(pruning=pruning))
        baselines[pruning] = {
            query: _hit_signature(engine.search(query))
            for query in _queries(random_graph)
        }
    return baselines


class TestSearchExecutorEquivalence:
    """All four scorers × executors × pruning modes × shard counts."""

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_engine_mlm_byte_identical(
        self, random_graph, serial_mlm, pruning, executor, shards
    ):
        engine = SearchEngine.from_graph(
            random_graph,
            SearchConfig(pruning=pruning, shards=shards, executor=executor, workers=WORKERS),
        )
        for query, expected in serial_mlm[pruning].items():
            assert _hit_signature(engine.search(query)) == expected

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_single_field_byte_identical(self, random_graph, pruning, executor):
        serial = SearchEngine.from_graph(
            random_graph, SearchConfig(pruning=pruning)
        ).single_field_scorer()
        scorer = SearchEngine.from_graph(
            random_graph,
            SearchConfig(pruning=pruning, shards=3, executor=executor, workers=WORKERS),
        ).single_field_scorer()
        for query in _queries(random_graph):
            parsed = parse_query(query)
            assert _signature(scorer.search(parsed, top_k=15)) == _signature(
                serial.search(parsed, top_k=15)
            )

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_bm25_and_bm25f_byte_identical(self, random_graph, pruning, executor):
        engine = SearchEngine.from_graph(random_graph)
        index = engine.index
        weights = engine.config.field_weights
        bm25_serial = BM25FieldScorer(index, "names", pruning=pruning)
        bm25f_serial = BM25FScorer(index, weights, pruning=pruning)
        bm25 = BM25FieldScorer(
            index, "names", pruning=pruning, shards=3, executor=executor, workers=WORKERS
        )
        bm25f = BM25FScorer(
            index, weights, pruning=pruning, shards=3, executor=executor, workers=WORKERS
        )
        for query in _queries(random_graph):
            parsed = parse_query(query)
            assert _signature(bm25.search(parsed, top_k=15)) == _signature(
                bm25_serial.search(parsed, top_k=15)
            )
            assert _signature(bm25f.search(parsed, top_k=15)) == _signature(
                bm25f_serial.search(parsed, top_k=15)
            )

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_batch_search_byte_identical(self, random_graph, serial_mlm, executor):
        engine = SearchEngine.from_graph(
            random_graph,
            SearchConfig(shards=2, executor=executor, workers=WORKERS),
        )
        queries = _queries(random_graph)
        expected = [serial_mlm["maxscore"][query] for query in queries]
        assert [
            _hit_signature(hits) for hits in engine.search_many(queries)
        ] == expected


@pytest.fixture(scope="module")
def ranking_index(random_graph):
    """One shared feature index: engines differ only in config knobs."""
    return SemanticFeatureIndex.build(random_graph)


@pytest.fixture(scope="module")
def serial_recommend(random_graph, ranking_index):
    """Per-pruning-mode recommendation baselines from the serial engine."""
    largest = max(random_graph.types(), key=lambda t: (random_graph.type_count(t), t))
    seeds = sorted(random_graph.entities_of_type(largest))[:2]
    baselines = {}
    for pruning in PRUNING_MODES:
        engine = RecommendationEngine(
            random_graph,
            feature_index=ranking_index,
            config=RankingConfig(pruning=pruning),
        )
        result = engine.recommend_for_seeds(seeds)
        baselines[pruning] = (
            [(e.entity_id, e.score) for e in result.entities],
            [(f.feature.notation(), f.score) for f in result.features],
        )
    return seeds, baselines


class TestRankingExecutorEquivalence:
    """Both rankers (entity + semantic feature) under every executor.

    The PR 8 axis on top: every executor × shard count runs with the
    columnar ranker kernels on (the default) *and* off — the kernels only
    move survivor selection; the exact re-scoring epilogue pins the
    floats, so every cell must be byte-identical to the serial baseline.
    """

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("columnar", (True, False))
    def test_recommendation_byte_identical(
        self, random_graph, ranking_index, serial_recommend, pruning, executor, shards, columnar
    ):
        seeds, baselines = serial_recommend
        parallel = RecommendationEngine(
            random_graph,
            feature_index=ranking_index,
            config=RankingConfig(
                pruning=pruning,
                shards=shards,
                executor=executor,
                workers=WORKERS,
                columnar=columnar,
            ),
        )
        expected_entities, expected_features = baselines[pruning]
        actual = parallel.recommend_for_seeds(seeds)
        assert [(e.entity_id, e.score) for e in actual.entities] == expected_entities
        assert [(f.feature.notation(), f.score) for f in actual.features] == expected_features


class TestProcessExecutorStats:
    def test_process_engine_reports_executor_record(self, random_graph):
        engine = SearchEngine.from_graph(
            random_graph,
            SearchConfig(shards=2, executor="process", workers=WORKERS),
        )
        with engine:
            for query in _queries(random_graph, count=3):
                engine.search(query)
            record = engine.stats().executor
            assert record is not None
            assert record.mode == "process"
            assert record.effective == "process"
            assert record.workers == WORKERS
            assert record.snapshots_published >= 1
            assert record.snapshot_bytes > 0
            info = engine.stats().as_dict()["executor"]
            assert info["mode"] == "process"
            active_before = record.snapshots_active
            assert active_before >= 1
        # close() released this engine's published snapshot (the registry
        # may still hold other engines' segments, hence the delta check).
        assert engine.stats().executor.snapshots_active == active_before - 1


class TestConcurrentProcessServing:
    """Readers drive the process pool while a mutator publishes epochs."""

    def test_readers_survive_epoch_churn(self, tiny_kg):
        graph = tiny_kg
        engine = SearchEngine.from_graph(
            graph, SearchConfig(shards=2, executor="process", workers=WORKERS)
        )
        stop = threading.Event()
        errors: list[BaseException] = []
        counter = [0]
        lock = threading.Lock()

        def mutate():
            with lock:
                counter[0] += 1
                number = counter[0]
            entity = f"ex:NEW{number}"
            graph.add_label(entity, f"Fresh Film {number}")
            graph.add_type(entity, "ex:Film")
            graph.add(entity, "ex:starring", "ex:A1")
            engine.add_entity(entity)

        def read():
            for hit in engine.search("film actor"):
                assert hit.score == hit.score

        def guard(worker):
            def run():
                try:
                    while not stop.is_set():
                        worker()
                except BaseException as error:  # noqa: BLE001 - reported below
                    errors.append(error)
                    stop.set()

            return run

        threads = [threading.Thread(target=guard(w)) for w in (mutate, read, read)]
        for thread in threads:
            thread.start()
        stop.wait(1.5)
        stop.set()
        for thread in threads:
            thread.join(timeout=20.0)
        try:
            if errors:
                raise errors[0]
            # The incremental epochs indexed the new entities …
            assert any(
                "NEW" in hit.entity_id for hit in engine.search("fresh film")
            )
            # … and after a full rebuild (add_entity's documented scope is
            # one entity) the process-served engine agrees exactly with a
            # from-scratch serial build.
            engine.build()
            fresh = SearchEngine.from_graph(graph)
            assert _hit_signature(engine.search("fresh film")) == _hit_signature(
                fresh.search("fresh film")
            )
        finally:
            engine.close()
