"""Unit, property and round-trip coverage of the columnar graph topology.

The PR 10 contract: :class:`~repro.kg.GraphTopology` — CSR adjacency over
string-sorted entity ordinals plus the interval-encoded type containment
forest — must answer every traversal the scalar walks answer, byte for
byte.  These tests pin the structural invariants (offset monotonicity,
row sort order, interval nesting, subtree-union == member-set), prove
kernel equivalence on fixed and hypothesis-generated random graphs,
exercise the per-epoch memo (cache hits, stale-epoch rebuilds after
mutation) and round-trip the arrays through the PR 9 segment codec both
in RAM and via an actual shared-memory publish → attach cycle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import RandomKGConfig, build_random_kg
from repro.index.fielded_index import next_index_uid
from repro.kg import (
    GraphTopology,
    KnowledgeGraph,
    bfs_reachable,
    bfs_reachable_scalar,
    connecting_entities,
    connecting_entities_scalar,
    graph_topology,
    install_topology,
    topology_counters,
    traversal_stats,
)
from repro.storage import SegmentBuilder, SegmentView, SnapshotUnavailable
from repro.storage.codec import encode_graph_topology


@pytest.fixture(scope="module")
def random_graph():
    return build_random_kg(RandomKGConfig(num_entities=120, seed=11))


@pytest.fixture(scope="module")
def topology(random_graph):
    return graph_topology(random_graph)


def _probes(graph, count=8):
    entities = sorted(graph.entities())
    step = max(1, len(entities) // count)
    return entities[::step][:count]


class TestStructuralInvariants:
    def test_entity_ordinals_are_string_sorted(self, topology):
        assert topology.entity_ids == sorted(topology.entity_ids)
        assert topology.predicates == sorted(topology.predicates)
        assert topology.type_ids == sorted(topology.type_ids)

    def test_csr_offsets_are_monotone_and_complete(self, random_graph, topology):
        for offsets, values in (
            (topology.out_offsets, topology.out_targets),
            (topology.in_offsets, topology.in_sources),
            (topology.type_offsets, topology.type_members),
        ):
            assert offsets[0] == 0
            assert offsets[-1] == len(values)
            assert np.all(np.diff(offsets) >= 0)
        assert len(topology.out_offsets) == topology.num_entities + 1
        assert len(topology.out_targets) == len(topology.out_preds)
        assert len(topology.in_sources) == len(topology.in_preds)

    def test_adjacency_rows_sorted_by_neighbour_then_predicate(self, topology):
        for offsets, neighbours, predicates in (
            (topology.out_offsets, topology.out_targets, topology.out_preds),
            (topology.in_offsets, topology.in_sources, topology.in_preds),
        ):
            for ordinal in range(topology.num_entities):
                lo, hi = int(offsets[ordinal]), int(offsets[ordinal + 1])
                rows = list(zip(neighbours[lo:hi].tolist(), predicates[lo:hi].tolist()))
                assert rows == sorted(rows)

    def test_adjacency_matches_graph_edges(self, random_graph, topology):
        for entity_id in _probes(random_graph):
            ordinal = topology.ordinal_of[entity_id]
            lo, hi = int(topology.out_offsets[ordinal]), int(topology.out_offsets[ordinal + 1])
            decoded = sorted(
                (topology.predicates[p], topology.entity_ids[t])
                for t, p in zip(
                    topology.out_targets[lo:hi].tolist(),
                    topology.out_preds[lo:hi].tolist(),
                )
            )
            assert decoded == sorted(random_graph.outgoing(entity_id))

    def test_interval_nesting(self, topology):
        """Child intervals sit strictly inside their parent's."""
        for ordinal, parent in enumerate(topology.type_parents.tolist()):
            if parent < 0:
                continue
            assert topology.type_pre[parent] < topology.type_pre[ordinal]
            assert topology.type_post[ordinal] < topology.type_post[parent]

    def test_types_under_is_the_pre_order_slice(self, topology):
        """The interval predicate and the slice agree for every root."""
        pre, post = topology.type_pre, topology.type_post
        for ordinal in range(len(topology.type_ids)):
            by_predicate = {
                other
                for other in range(len(topology.type_ids))
                if pre[ordinal] <= pre[other] and post[other] <= post[ordinal]
            }
            assert set(topology.types_under(ordinal).tolist()) == by_predicate

    def test_subtree_union_equals_member_set(self, random_graph, topology):
        """The containment construction's load-bearing property: the
        union of every descendant's members is the type's own member row
        — what keeps the interval filter byte-identical to the scalar
        ``entity_id in members`` probe."""
        for type_id in topology.type_ids:
            expected = sorted(
                topology.ordinal_of[m] for m in random_graph.entities_of_type(type_id)
            )
            assert topology.entities_under_id(type_id).tolist() == expected

    def test_ordinals_of_flags_unknown_ids(self, topology):
        known_id = topology.entity_ids[3]
        ordinals, known = topology.ordinals_of([known_id, "ex:not_a_thing", ""])
        assert known.tolist() == [True, False, False]
        assert ordinals[0] == 3
        empty_ordinals, empty_known = topology.ordinals_of([])
        assert empty_ordinals.size == 0 and empty_known.size == 0

    def test_unknown_type_yields_empty_members(self, topology):
        assert topology.entities_under_id("ex:NoSuchType").size == 0


class TestKernelEquivalence:
    """Vectorized kernels vs the scalar walks, on a fixed random KG."""

    @pytest.mark.parametrize("max_hops", [0, 1, 2, 3])
    def test_bfs_matches_scalar(self, random_graph, max_hops):
        for probe in _probes(random_graph):
            assert bfs_reachable(random_graph, probe, max_hops=max_hops) == (
                bfs_reachable_scalar(random_graph, probe, max_hops=max_hops)
            )

    def test_connecting_matches_scalar(self, random_graph):
        probes = _probes(random_graph, count=6)
        for left in probes[:3]:
            for right in probes[3:]:
                assert connecting_entities(random_graph, left, right) == (
                    connecting_entities_scalar(random_graph, left, right)
                )

    def test_connecting_self_pair(self, random_graph):
        probe = _probes(random_graph, count=1)[0]
        assert connecting_entities(random_graph, probe, probe) == (
            connecting_entities_scalar(random_graph, probe, probe)
        )

    def test_unknown_entity_raises_like_scalar(self, random_graph):
        with pytest.raises(Exception):
            bfs_reachable(random_graph, "ex:not_a_thing")


# --------------------------------------------------------------------------- #
# Hypothesis property tests
# --------------------------------------------------------------------------- #
identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True).map(lambda s: f"ex:{s}")
predicates = st.sampled_from(["ex:p1", "ex:p2", "ex:p3"])
edge_triples = st.tuples(identifiers, predicates, identifiers).filter(lambda t: t[0] != t[2])


@st.composite
def small_graphs(draw) -> KnowledgeGraph:
    kg = KnowledgeGraph("topo-prop")
    for subject, predicate, obj in draw(st.lists(edge_triples, min_size=1, max_size=40)):
        kg.add(subject, predicate, obj)
    types = ["ex:TypeA", "ex:TypeB", "ex:TypeC", "ex:TypeD"]
    for index, entity in enumerate(sorted(kg.entities())):
        kg.add_type(entity, types[index % len(types)])
        if index % 3 == 0:  # overlapping second type → non-trivial containment
            kg.add_type(entity, types[(index + 1) % len(types)])
    return kg


@given(small_graphs(), st.integers(min_value=0, max_value=3))
@settings(max_examples=30, deadline=None)
def test_property_bfs_equivalence(kg: KnowledgeGraph, max_hops: int):
    for probe in sorted(kg.entities())[:4]:
        assert bfs_reachable(kg, probe, max_hops=max_hops) == (
            bfs_reachable_scalar(kg, probe, max_hops=max_hops)
        )


@given(small_graphs())
@settings(max_examples=30, deadline=None)
def test_property_connecting_equivalence(kg: KnowledgeGraph):
    probes = sorted(kg.entities())[:4]
    for left in probes:
        for right in probes:
            assert connecting_entities(kg, left, right) == (
                connecting_entities_scalar(kg, left, right)
            )


@given(small_graphs())
@settings(max_examples=30, deadline=None)
def test_property_interval_filter_equals_member_sets(kg: KnowledgeGraph):
    topology = graph_topology(kg)
    for type_id in kg.types():
        expected = sorted(topology.ordinal_of[m] for m in kg.entities_of_type(type_id))
        assert topology.entities_under_id(type_id).tolist() == expected


# --------------------------------------------------------------------------- #
# Memoisation and telemetry
# --------------------------------------------------------------------------- #
class TestMemoAndCounters:
    def test_same_epoch_is_a_cache_hit(self):
        kg = build_random_kg(RandomKGConfig(num_entities=40, seed=3))
        first = graph_topology(kg)
        counters = topology_counters(kg)
        rebuilds = counters.rebuilds
        hits = counters.cache_hits
        assert graph_topology(kg) is first
        assert counters.rebuilds == rebuilds
        assert counters.cache_hits == hits + 1

    def test_mutation_triggers_rebuild_with_fresh_edges(self):
        """Stale-epoch regression: a graph mutation must invalidate the
        memo, and the rebuilt topology must see the new edge."""
        kg = build_random_kg(RandomKGConfig(num_entities=40, seed=3))
        first = graph_topology(kg)
        probe = sorted(kg.entities())[0]
        kg.add_label("ex:pr10_fresh", "Fresh Entity")
        kg.add(probe, "ex:linked_to", "ex:pr10_fresh")
        second = graph_topology(kg)
        assert second is not first
        assert second.epoch == kg.epoch
        assert "ex:pr10_fresh" in second.ordinal_of
        assert bfs_reachable(kg, probe, max_hops=1) == (
            bfs_reachable_scalar(kg, probe, max_hops=1)
        )
        assert topology_counters(kg).rebuilds == 2

    def test_install_topology_rejects_stale_epochs(self):
        kg = build_random_kg(RandomKGConfig(num_entities=40, seed=3))
        stale = graph_topology(kg)
        kg.add("ex:a_subject", "ex:p", "ex:an_object")
        install_topology(kg, stale)  # silently ignored: epoch moved on
        assert graph_topology(kg) is not stale

    def test_traversal_stats_freeze_the_counters(self):
        kg = build_random_kg(RandomKGConfig(num_entities=40, seed=5))
        probe = sorted(kg.entities())[0]
        bfs_reachable(kg, probe, max_hops=2)
        stats = traversal_stats(kg)
        assert stats.bfs_queries == 1
        assert stats.rebuilds == 1
        assert stats.frontier_entities >= 1
        assert stats.as_dict()["bfs_queries"] == 1

    def test_scalar_arms_leave_kernel_counters_untouched(self):
        kg = build_random_kg(RandomKGConfig(num_entities=40, seed=7))
        probe = sorted(kg.entities())[0]
        bfs_reachable_scalar(kg, probe, max_hops=2)
        bfs_reachable(kg, probe, max_hops=2, topology=False)
        assert traversal_stats(kg).bfs_queries == 0


# --------------------------------------------------------------------------- #
# Segment codec round-trips (RAM + shared memory)
# --------------------------------------------------------------------------- #
def _encode_to_buffer(topology, uid=7):
    from repro.exec import SnapshotSource

    manifest, builder = encode_graph_topology(
        SnapshotSource(uid=uid, epoch=topology.epoch), topology
    )
    encoded = SegmentBuilder.encode_manifest(manifest)
    total, _ = builder.total_size(encoded)
    buf = bytearray(total)
    builder.write_into(buf, encoded)
    return buf


class TestSegmentRoundTrip:
    def test_codec_round_trip_preserves_every_kernel(self, random_graph, topology):
        buf = _encode_to_buffer(topology)
        view = SegmentView(buf, name="unit", expected_uid=7, expected_epoch=topology.epoch)
        restored = view.graph_topology()
        assert restored.entity_ids == topology.entity_ids
        assert restored.predicates == topology.predicates
        assert restored.type_ids == topology.type_ids
        probe = topology.ordinal_of[_probes(random_graph, count=1)[0]]
        reached_a, depths_a = topology.bfs_reachable_ords(probe, 2)
        reached_b, depths_b = restored.bfs_reachable_ords(probe, 2)
        assert np.array_equal(reached_a, reached_b)
        assert np.array_equal(depths_a, depths_b)
        for type_id in topology.type_ids[:4]:
            assert np.array_equal(
                restored.entities_under_id(type_id), topology.entities_under_id(type_id)
            )

    def test_wrong_kind_is_rejected(self, topology):
        buf = _encode_to_buffer(topology)
        view = SegmentView(buf, name="unit")
        view._manifest = dict(view._manifest, kind="feature-tables")
        with pytest.raises(SnapshotUnavailable, match="graph topology"):
            view.graph_topology()

    def test_flipped_byte_fails_the_array_crc(self, topology):
        """The disk tier attaches with ``verify=True`` — a flipped array
        byte must surface as SnapshotUnavailable, not silent garbage."""
        buf = _encode_to_buffer(topology)
        arrays_base = int.from_bytes(bytes(buf[24:32]), "little")
        buf[arrays_base] ^= 0xFF
        with pytest.raises(SnapshotUnavailable, match="checksum"):
            SegmentView(buf, name="unit", verify=True)

    def test_shared_memory_publish_attach_round_trip(self, random_graph, topology):
        """The real worker path: registry publish → AttachedSnapshot →
        zero-copy kernels over the shm arrays."""
        from repro.exec import snapshot_registry
        from repro.exec.shm import AttachedSnapshot, SnapshotSource, publish_graph_topology

        registry = snapshot_registry()
        source = SnapshotSource(uid=next_index_uid(), epoch=random_graph.epoch)
        published = registry.publish(source, topology, builder=publish_graph_topology)
        assert published is not None
        try:
            attached = AttachedSnapshot(
                published.name,
                expected_uid=source.uid,
                expected_epoch=source.epoch,
            )
            try:
                remote = attached.graph_topology()
                probe = topology.ordinal_of[_probes(random_graph, count=1)[0]]
                reached_a, _ = topology.bfs_reachable_ords(probe, 2)
                reached_b, _ = remote.bfs_reachable_ords(probe, 2)
                assert np.array_equal(reached_a, reached_b)
                anchors_a = topology.connecting_ords(probe, (probe + 1) % topology.num_entities)
                anchors_b = remote.connecting_ords(probe, (probe + 1) % topology.num_entities)
                for ours, theirs in zip(anchors_a, anchors_b):
                    assert np.array_equal(ours, theirs)
            finally:
                attached.close()
        finally:
            registry.release(source.uid)

    def test_from_arrays_matches_from_graph(self, topology):
        clone = GraphTopology.from_arrays(
            epoch=topology.epoch,
            entity_ids=topology.entity_ids,
            predicates=topology.predicates,
            type_ids=topology.type_ids,
            out_offsets=topology.out_offsets,
            out_targets=topology.out_targets,
            out_preds=topology.out_preds,
            in_offsets=topology.in_offsets,
            in_sources=topology.in_sources,
            in_preds=topology.in_preds,
            type_offsets=topology.type_offsets,
            type_members=topology.type_members,
            type_parents=topology.type_parents,
            type_pre=topology.type_pre,
            type_post=topology.type_post,
            pre_order=topology.pre_order,
            subtree_sizes=topology.subtree_sizes,
        )
        assert clone.ordinal_of == topology.ordinal_of
        assert np.array_equal(clone._pre_positions, topology._pre_positions)
