"""Tests for repro.search.query: keyword query parsing."""

from __future__ import annotations

import pytest

from repro.exceptions import EmptyQueryError
from repro.search import parse_query


class TestParseQuery:
    def test_simple_keywords(self):
        query = parse_query("forrest gump")
        assert query.terms == ("forrest", "gump")
        assert not query.phrases
        assert not query.field_restrictions

    def test_raw_preserved(self):
        assert parse_query("Forrest Gump").raw == "Forrest Gump"

    def test_quoted_phrase_collected(self):
        query = parse_query('"forrest gump" film')
        assert ("forrest", "gump") in query.phrases
        assert "film" in query.terms
        # Phrase terms also appear in the flat term list.
        assert "forrest" in query.terms

    def test_field_restriction_on_known_field(self):
        query = parse_query("names:gump american")
        assert query.field_restrictions == {"names": ("gump",)}
        assert "american" in query.terms
        assert "gump" not in query.terms

    def test_unknown_field_treated_as_text(self):
        query = parse_query("title:gump")
        assert not query.field_restrictions
        assert "title" in query.terms and "gump" in query.terms

    def test_all_terms_includes_restrictions(self):
        query = parse_query("names:gump american")
        assert sorted(query.all_terms()) == ["american", "gump"]

    def test_empty_query_raises(self):
        with pytest.raises(EmptyQueryError):
            parse_query("")
        with pytest.raises(EmptyQueryError):
            parse_query("   !!! ,,,")

    def test_stopword_only_query_kept(self):
        # NAME_ANALYZER keeps stopwords so "the who" still has terms.
        query = parse_query("the who")
        assert query.terms == ("the", "who")

    def test_case_and_punctuation_normalized(self):
        query = parse_query("FORREST-GUMP!")
        assert query.terms == ("forrest", "gump")

    def test_is_empty_property(self):
        query = parse_query("gump")
        assert not query.is_empty
