"""Tests for repro.search.language_model: smoothing strategies."""

from __future__ import annotations

import math

import pytest

from repro.search import (
    SmoothingParams,
    dirichlet_probability,
    jelinek_mercer_probability,
    log_probability,
    smoothed_probability,
)


class TestDirichlet:
    def test_matches_formula(self):
        # (tf + mu * p_c) / (|d| + mu)
        value = dirichlet_probability(3, 10, 0.01, mu=100.0)
        assert value == pytest.approx((3 + 100 * 0.01) / (10 + 100))

    def test_zero_tf_still_positive(self):
        assert dirichlet_probability(0, 10, 0.01, mu=100.0) > 0.0

    def test_empty_document_uses_collection(self):
        value = dirichlet_probability(0, 0, 0.02, mu=100.0)
        assert value == pytest.approx(0.02)

    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            dirichlet_probability(1, 10, 0.01, mu=0.0)

    def test_longer_document_dilutes_smoothing(self):
        short = dirichlet_probability(1, 5, 0.01, mu=100.0)
        long_ = dirichlet_probability(1, 500, 0.01, mu=100.0)
        assert short > long_


class TestJelinekMercer:
    def test_matches_formula(self):
        value = jelinek_mercer_probability(2, 10, 0.05, lam=0.1)
        assert value == pytest.approx(0.9 * 0.2 + 0.1 * 0.05)

    def test_lambda_one_is_pure_collection(self):
        assert jelinek_mercer_probability(5, 10, 0.07, lam=1.0) == pytest.approx(0.07)

    def test_lambda_zero_is_pure_ml(self):
        assert jelinek_mercer_probability(5, 10, 0.07, lam=0.0) == pytest.approx(0.5)

    def test_empty_document(self):
        assert jelinek_mercer_probability(0, 0, 0.07, lam=0.5) == pytest.approx(0.035)

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            jelinek_mercer_probability(1, 10, 0.01, lam=1.5)


class TestDispatchAndParams:
    def test_smoothing_params_validation(self):
        with pytest.raises(ValueError):
            SmoothingParams(method="bogus")
        with pytest.raises(ValueError):
            SmoothingParams(dirichlet_mu=-1)
        with pytest.raises(ValueError):
            SmoothingParams(jm_lambda=2.0)

    def test_dispatch_dirichlet(self):
        params = SmoothingParams(method="dirichlet", dirichlet_mu=50.0)
        assert smoothed_probability(1, 10, 0.01, params) == pytest.approx(
            dirichlet_probability(1, 10, 0.01, 50.0)
        )

    def test_dispatch_jelinek_mercer(self):
        params = SmoothingParams(method="jelinek-mercer", jm_lambda=0.3)
        assert smoothed_probability(1, 10, 0.01, params) == pytest.approx(
            jelinek_mercer_probability(1, 10, 0.01, 0.3)
        )

    def test_log_probability_floors(self):
        assert log_probability(0.0) == math.log(1e-12)
        assert log_probability(0.5) == pytest.approx(math.log(0.5))
