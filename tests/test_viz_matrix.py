"""Tests for repro.viz.matrix_view, profile and path rendering."""

from __future__ import annotations

import pytest

from repro.explore import (
    ExplorationSession,
    RecommendationEngine,
    SelectEntity,
    SubmitKeywords,
)
from repro.kg import KnowledgeGraph
from repro.viz import (
    build_heatmap,
    build_matrix_view,
    entity_profile,
    profile_as_dict,
    render_matrix_ascii,
    render_path_ascii,
    render_path_mermaid,
    render_profile_text,
)


@pytest.fixture
def matrix_view(tiny_kg: KnowledgeGraph):
    engine = RecommendationEngine(tiny_kg)
    recommendation = engine.recommend_for_seeds(["ex:F1", "ex:F2"])
    heatmap = build_heatmap(recommendation.correlations)
    return build_matrix_view(tiny_kg, recommendation, heatmap)


class TestMatrixView:
    def test_axes_populated(self, matrix_view):
        assert matrix_view.entity_axis()
        assert matrix_view.feature_axis()

    def test_entity_axis_uses_labels(self, matrix_view):
        labels = [label for _, label, _ in matrix_view.entity_axis()]
        assert "F3 Film" in labels

    def test_feature_axis_has_descriptions(self, matrix_view):
        descriptions = [description for _, description, _ in matrix_view.feature_axis()]
        assert any("A1 Actor" in description or "starring" in description for description in descriptions)

    def test_cell_level_accessible(self, matrix_view):
        entity_id = matrix_view.entities[0].entity_id
        notation = matrix_view.features[0].feature.notation()
        assert 0 <= matrix_view.cell_level(entity_id, notation) < matrix_view.heatmap.num_levels

    def test_shape_consistency(self, matrix_view):
        assert matrix_view.shape == matrix_view.heatmap.shape


class TestAsciiRendering:
    def test_render_contains_entities_and_features(self, matrix_view):
        text = render_matrix_ascii(matrix_view)
        assert "E1:" in text
        assert "levels:" in text
        assert "Query:" in text

    def test_render_truncates(self, matrix_view):
        text = render_matrix_ascii(matrix_view, max_entities=1, max_features=1)
        assert "E2:" not in text

    def test_long_feature_names_ellipsised(self, matrix_view):
        text = render_matrix_ascii(matrix_view, label_width=10)
        assert "..." in text


class TestProfiles:
    def test_entity_profile_render(self, tiny_kg: KnowledgeGraph):
        profile = entity_profile(tiny_kg, "ex:F1")
        text = render_profile_text(profile)
        assert "F1 Film" in text
        assert "ex:Film" in text
        assert "wikipedia" in text

    def test_profile_as_dict(self, tiny_kg: KnowledgeGraph):
        payload = profile_as_dict(entity_profile(tiny_kg, "ex:F1"))
        assert payload["id"] == "ex:F1"
        assert payload["types"] == ["ex:Film"]
        assert payload["facts"]


class TestPathRendering:
    @pytest.fixture
    def session(self) -> ExplorationSession:
        session = ExplorationSession("render")
        session.apply(SubmitKeywords("gump"))
        session.apply(SelectEntity("dbr:Forrest_Gump"))
        return session

    def test_ascii_tree(self, session: ExplorationSession):
        text = render_path_ascii(session.path)
        assert "current" in text
        assert "select entity" in text

    def test_ascii_empty_path(self):
        from repro.explore import ExplorationPath

        assert "(empty exploration path)" in render_path_ascii(ExplorationPath())

    def test_mermaid_output(self, session: ExplorationSession):
        text = render_path_mermaid(session.path)
        assert text.startswith("graph TD")
        assert "-->" in text
