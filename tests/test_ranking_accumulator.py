"""Equivalence of the accumulator recommendation pipeline and the seed path.

PR 2 rebuilt both §2.3 rankers around the type-grouped accumulator
decomposition of ``p(pi | e)`` (see ``repro/ranking/ranking_support.py``)
and the correlation matrix around numpy assembly from contribution vectors.
These tests enforce the contract the refactor promises: ``rank()`` (fast)
and ``rank_exhaustive()`` (seed path) produce identical rankings — same
entities, same features, same scores — on the hand-built, synthetic and
random knowledge graphs, and the fast matrix equals the cell-by-cell one.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RankingConfig
from repro.datasets import RandomKGConfig, build_random_kg
from repro.features import SemanticFeatureIndex
from repro.kg import KnowledgeGraph
from repro.ranking import (
    EntityRanker,
    SemanticFeatureRanker,
    build_correlation_matrix,
    build_correlation_matrix_exhaustive,
)


def _seeds_from_largest_type(graph: KnowledgeGraph, count: int) -> list[str]:
    largest_type = max(graph.types(), key=lambda t: (graph.type_count(t), t))
    members = sorted(graph.entities_of_type(largest_type))
    return members[:count]


def _feature_signature(scored) -> list:
    return [(item.feature, item.score, dict(item.seed_probabilities)) for item in scored]


def _entity_signature(scored) -> list:
    return [(item.entity_id, item.score, dict(item.contributions)) for item in scored]


def assert_pipeline_equivalent(
    graph: KnowledgeGraph,
    seeds: list[str],
    config: RankingConfig | None = None,
    top_k: int | None = None,
) -> None:
    """Fast and exhaustive rankings (and matrices) must match exactly.

    The default config runs with ``pruning="maxscore"``, so this helper is
    simultaneously the pruned-vs-exhaustive equivalence check demanded by
    the threshold-pruning layer.
    """
    config = config or RankingConfig()
    index = SemanticFeatureIndex.build(graph)
    feature_ranker = SemanticFeatureRanker(graph, index, config=config)
    entity_ranker = EntityRanker(graph, index, config=config, feature_ranker=feature_ranker)

    fast_features = feature_ranker.rank(seeds, top_k=top_k)
    slow_features = feature_ranker.rank_exhaustive(seeds, top_k=top_k)
    assert _feature_signature(fast_features) == _feature_signature(slow_features)

    fast_entities = entity_ranker.rank(seeds, top_k=top_k, scored_features=fast_features)
    slow_entities = entity_ranker.rank_exhaustive(
        seeds, top_k=top_k, scored_features=slow_features
    )
    assert _entity_signature(fast_entities) == _entity_signature(slow_entities)

    model = feature_ranker.probability_model
    fast_matrix = build_correlation_matrix(model, fast_entities, fast_features)
    slow_matrix = build_correlation_matrix_exhaustive(model, slow_entities, slow_features)
    assert fast_matrix.entities == slow_matrix.entities
    assert fast_matrix.features == slow_matrix.features
    assert np.array_equal(fast_matrix.values, slow_matrix.values)


class TestEquivalenceOnCuratedGraphs:
    def test_tiny_kg(self, tiny_kg: KnowledgeGraph):
        assert_pipeline_equivalent(tiny_kg, ["ex:F1", "ex:F2"])

    def test_tiny_kg_single_seed_small_k(self, tiny_kg: KnowledgeGraph):
        assert_pipeline_equivalent(tiny_kg, ["ex:F1"], top_k=2)

    def test_movie_kg(self, movie_kg: KnowledgeGraph):
        assert_pipeline_equivalent(movie_kg, ["dbr:Forrest_Gump", "dbr:Apollo_13_(film)"])

    def test_academic_kg(self, academic_kg: KnowledgeGraph):
        assert_pipeline_equivalent(academic_kg, _seeds_from_largest_type(academic_kg, 2))

    def test_without_type_smoothing(self, tiny_kg: KnowledgeGraph):
        config = RankingConfig(type_smoothing=False)
        assert_pipeline_equivalent(tiny_kg, ["ex:F1", "ex:F2"], config=config)

    def test_ablation_switches(self, tiny_kg: KnowledgeGraph):
        for changes in (
            {"use_discriminability": False},
            {"use_commonality": False},
            {"use_discriminability": False, "use_commonality": False},
        ):
            config = RankingConfig().with_(**changes)
            assert_pipeline_equivalent(tiny_kg, ["ex:F1", "ex:F2"], config=config)

    def test_duplicate_seeds(self, tiny_kg: KnowledgeGraph):
        assert_pipeline_equivalent(tiny_kg, ["ex:F1", "ex:F2", "ex:F1"])


class TestEquivalenceOnRandomGraphs:
    """The property-based check: random KGs, several structures and seeds."""

    @pytest.mark.parametrize("kg_seed", [1, 7, 13])
    @pytest.mark.parametrize("seed_count", [1, 3])
    def test_random_kg(self, kg_seed: int, seed_count: int):
        graph = build_random_kg(
            RandomKGConfig(num_entities=150, num_types=6, seed=kg_seed)
        )
        seeds = _seeds_from_largest_type(graph, seed_count)
        assert_pipeline_equivalent(graph, seeds)
        assert_pipeline_equivalent(graph, seeds, top_k=5)

    @settings(max_examples=20, deadline=None, derandomize=True)
    @given(
        kg_seed=st.integers(min_value=0, max_value=10_000),
        num_entities=st.integers(min_value=20, max_value=80),
        num_types=st.integers(min_value=2, max_value=8),
        seed_count=st.integers(min_value=1, max_value=3),
        top_k=st.one_of(st.none(), st.integers(min_value=1, max_value=10)),
        pruning=st.sampled_from(["maxscore", "blockmax", "off"]),
    )
    def test_random_kg_property(
        self, kg_seed, num_entities, num_types, seed_count, top_k, pruning
    ):
        graph = build_random_kg(
            RandomKGConfig(num_entities=num_entities, num_types=num_types, seed=kg_seed)
        )
        seeds = _seeds_from_largest_type(graph, seed_count)
        assert_pipeline_equivalent(
            graph, seeds, top_k=top_k, config=RankingConfig(pruning=pruning)
        )

    @settings(max_examples=12, deadline=None, derandomize=True)
    @given(
        kg_seed=st.integers(min_value=0, max_value=10_000),
        num_entities=st.integers(min_value=40, max_value=120),
        seed_count=st.integers(min_value=1, max_value=4),
        top_k=st.integers(min_value=1, max_value=8),
    )
    def test_random_skewed_kg_pruned_property(self, kg_seed, num_entities, seed_count, top_k):
        """Hub-anchored graphs: the regime where type groups actually die."""
        graph = build_random_kg(
            RandomKGConfig(
                num_entities=num_entities, seed=kg_seed, target_skew=1.5, avg_out_degree=6.0
            )
        )
        seeds = _seeds_from_largest_type(graph, seed_count)
        for pruning in ("maxscore", "blockmax"):
            assert_pipeline_equivalent(
                graph, seeds, top_k=top_k, config=RankingConfig(pruning=pruning)
            )


class TestMaxscorePruningOnRankers:
    """Explicit pruned-vs-plain-vs-exhaustive checks plus counter sanity."""

    def test_pruned_equals_plain_entity_ranking(self, movie_kg: KnowledgeGraph):
        index = SemanticFeatureIndex.build(movie_kg)
        seeds = ["dbr:Forrest_Gump", "dbr:Apollo_13_(film)"]
        rankers = {
            mode: EntityRanker(movie_kg, index, config=RankingConfig(pruning=mode))
            for mode in ("maxscore", "blockmax", "off")
        }
        features = rankers["maxscore"].feature_ranker.rank(seeds)
        plain = rankers["off"].rank(seeds, scored_features=features)
        exhaustive = rankers["maxscore"].rank_exhaustive(seeds, scored_features=features)
        assert _entity_signature(plain) == _entity_signature(exhaustive)
        for mode in ("maxscore", "blockmax"):
            pruned = rankers[mode].rank(seeds, scored_features=features)
            assert _entity_signature(pruned) == _entity_signature(plain)

    def test_blockmax_chunk_counters_fire_at_scale(self):
        """Chunked bounds must retire or kill groups at chunk boundaries."""
        graph = build_random_kg(
            RandomKGConfig(num_entities=600, seed=42, target_skew=1.5, avg_out_degree=8.0)
        )
        index = SemanticFeatureIndex.build(graph)
        ranker = EntityRanker(graph, index, config=RankingConfig(pruning="blockmax"))
        largest = max(
            index.all_features(), key=lambda f: (len(index.holders_of(f)), f.notation())
        )
        seeds = sorted(index.holders_of(largest))[:4]
        ranker.rank(seeds, top_k=10)
        info = ranker.pruning_info()
        assert info["groups_skipped"] > 0
        assert info["blocks_total"] > 0
        assert info["blocks_skipped"] > 0
        assert info["rescored"] > 0

    def test_pruning_counters_fire_at_scale(self):
        graph = build_random_kg(
            RandomKGConfig(num_entities=600, seed=42, target_skew=1.5, avg_out_degree=8.0)
        )
        index = SemanticFeatureIndex.build(graph)
        ranker = EntityRanker(graph, index)
        largest = max(
            index.all_features(), key=lambda f: (len(index.holders_of(f)), f.notation())
        )
        seeds = sorted(index.holders_of(largest))[:4]
        ranker.rank(seeds, top_k=10)
        info = ranker.pruning_info()
        assert info["queries"] == 1
        assert info["groups_total"] > 0
        assert info["groups_skipped"] > 0
        assert info["candidates_pruned"] > 0
        assert info["rescored"] > 0

    def test_pruning_off_disables_counters(self, movie_kg: KnowledgeGraph):
        index = SemanticFeatureIndex.build(movie_kg)
        ranker = EntityRanker(movie_kg, index, config=RankingConfig(pruning="off"))
        ranker.rank(["dbr:Forrest_Gump"])
        assert ranker.pruning_info()["queries"] == 0

    def test_invalid_pruning_mode_rejected(self):
        with pytest.raises(ValueError):
            RankingConfig(pruning="wand")

    def test_correction_bound_dominates_actual_corrections(self, movie_kg: KnowledgeGraph):
        """The per-type bound must be ≥ the correction of every member."""
        index = SemanticFeatureIndex.build(movie_kg)
        ranker = EntityRanker(movie_kg, index)
        seeds = ["dbr:Forrest_Gump", "dbr:Apollo_13_(film)"]
        features = ranker.feature_ranker.rank(seeds)
        support = ranker.feature_ranker.probability_model.support()
        relevance = [scored.score for scored in features]
        candidates = ranker.candidates(seeds, features)
        accumulators = support.score_entities(candidates, features)
        for entity_id in candidates:
            type_id = support.dominant_type(entity_id)
            base_row = [support.base_probability(s.feature, type_id) for s in features]
            base_score = sum(b * r for b, r in zip(base_row, relevance))
            bound = support.correction_bound(type_id, base_row, features, relevance)
            correction = accumulators[entity_id] - base_score
            assert correction <= bound + 1e-12


class TestRankingSupportLayer:
    def test_support_probability_matches_model(self, tiny_kg: KnowledgeGraph):
        index = SemanticFeatureIndex.build(tiny_kg)
        ranker = SemanticFeatureRanker(tiny_kg, index)
        model = ranker.probability_model
        support = model.support()
        for feature in index.all_features():
            for entity_id in sorted(tiny_kg.entities()):
                assert support.probability(feature, entity_id) == model.probability(
                    feature, entity_id
                )

    def test_support_cached_per_epoch(self, tiny_kg: KnowledgeGraph):
        index = SemanticFeatureIndex.build(tiny_kg)
        model = SemanticFeatureRanker(tiny_kg, index).probability_model
        first = model.support()
        assert model.support() is first
        tiny_kg.add("ex:F9", "ex:starring", "ex:A1")
        second = model.support()
        assert second is not first
        assert second.epoch > first.epoch

    def test_holders_are_no_copy(self, tiny_kg: KnowledgeGraph):
        index = SemanticFeatureIndex.build(tiny_kg)
        feature = index.all_features()[0]
        assert index.holders_of(feature) is index.holders_of(feature)
        # Unknown features share one empty set — no per-miss allocation.
        from repro.features import SemanticFeature

        ghost = SemanticFeature("ex:nobody", "ex:nothing")
        assert index.holders_of(ghost) is index.holders_of(ghost)
        # The public accessor still returns an independent copy.
        copy = index.entities_matching(feature)
        copy.add("ex:intruder")
        assert "ex:intruder" not in index.holders_of(feature)

    def test_index_epoch_tracks_graph(self, tiny_kg: KnowledgeGraph):
        index = SemanticFeatureIndex.build(tiny_kg)
        before = index.epoch
        assert before == tiny_kg.epoch
        tiny_kg.add("ex:F9", "ex:starring", "ex:A1")
        assert index.epoch == tiny_kg.epoch
        assert index.epoch > before
        # The rebuilt index sees the new holder.
        from repro.features import Direction, SemanticFeature

        starring_a1 = SemanticFeature("ex:A1", "ex:starring", Direction.OBJECT_OF)
        assert "ex:F9" in index.holders_of(starring_a1)

    def test_index_candidates_match_graph_walk(self, movie_kg: KnowledgeGraph):
        from repro.features import candidate_entities

        index = SemanticFeatureIndex.build(movie_kg)
        features = index.features_of("dbr:Forrest_Gump")
        ordered = sorted(features)
        assert index.candidates_matching_any(
            ordered, exclude=["dbr:Forrest_Gump"], limit=50
        ) == candidate_entities(movie_kg, ordered, exclude=["dbr:Forrest_Gump"], limit=50)


class TestCorrelationMatrixDuplicates:
    def test_duplicate_entities_match_exhaustive(self, tiny_kg: KnowledgeGraph):
        index = SemanticFeatureIndex.build(tiny_kg)
        ranker = EntityRanker(tiny_kg, index)
        features = ranker.feature_ranker.rank(["ex:F1", "ex:F2"])
        entities = ranker.rank(["ex:F1", "ex:F2"], scored_features=features)
        doubled = list(entities) + list(entities)  # duplicate ids are legal input
        model = ranker.feature_ranker.probability_model
        fast = build_correlation_matrix(model, doubled, features)
        slow = build_correlation_matrix_exhaustive(model, doubled, features)
        assert np.array_equal(fast.values, slow.values)


class TestCorrelationMatrixPositions:
    def test_lookups_use_memoised_positions(self, tiny_kg: KnowledgeGraph):
        index = SemanticFeatureIndex.build(tiny_kg)
        ranker = EntityRanker(tiny_kg, index)
        features = ranker.feature_ranker.rank(["ex:F1", "ex:F2"])
        entities = ranker.rank(["ex:F1", "ex:F2"], scored_features=features)
        matrix = build_correlation_matrix(
            ranker.feature_ranker.probability_model, entities, features
        )
        first = entities[0].entity_id
        assert matrix.value(first, features[0].feature) == pytest.approx(
            float(matrix.values[0, 0])
        )
        # The position maps are materialised once and reused.
        assert "_entity_positions" in matrix.__dict__
        assert matrix.entity_row(first) == {
            scored.feature.notation(): pytest.approx(float(matrix.values[0, column]))
            for column, scored in enumerate(features)
        }
        column_map = matrix.feature_column(features[0].feature)
        assert set(column_map) == set(matrix.entities)
