"""Tests for repro.index: postings, single-field and fielded indexes."""

from __future__ import annotations

import pytest

from repro.exceptions import FieldNotFoundError
from repro.index import (
    FieldedIndex,
    InvertedIndex,
    Posting,
    PostingList,
    intersect,
    merge_frequencies,
    union,
)


class TestPostingList:
    def test_add_and_frequency(self):
        postings = PostingList()
        postings.add("d1", 2)
        postings.add("d1", 1)
        postings.add("d2")
        assert postings.frequency("d1") == 3
        assert postings.frequency("d2") == 1
        assert postings.frequency("d3") == 0

    def test_document_and_collection_frequency(self):
        postings = PostingList()
        postings.add("d1", 2)
        postings.add("d2", 5)
        assert postings.document_frequency() == 2
        assert postings.collection_frequency() == 7

    def test_doc_ids_sorted(self):
        postings = PostingList()
        for doc in ["z", "a", "m"]:
            postings.add(doc)
        assert postings.doc_ids() == ["a", "m", "z"]

    def test_iteration_yields_postings(self):
        postings = PostingList()
        postings.add("d1", 2)
        items = list(postings)
        assert items == [Posting("d1", 2)]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            PostingList().add("d1", 0)

    def test_posting_invalid_frequency(self):
        with pytest.raises(ValueError):
            Posting("d1", 0)

    def test_contains_and_len(self):
        postings = PostingList()
        postings.add("d1")
        assert "d1" in postings
        assert len(postings) == 1

    def test_block_summary_chunks_sorted_postings(self):
        postings = PostingList()
        for number in range(10):
            postings.add(f"d{number:02d}", number + 1)
        summary = postings.block_summary(block_size=4)
        assert summary.lasts == ("d03", "d07", "d09")
        assert summary.max_frequencies == (4, 8, 10)
        assert len(summary) == 3

    def test_block_summary_empty_and_invalid(self):
        assert len(PostingList().block_summary()) == 0
        with pytest.raises(ValueError):
            PostingList().block_summary(block_size=0)

    def test_block_summary_memoised_per_epoch(self):
        index = FieldedIndex(["names"])
        index.add_document("d1", {"names": ["film", "film"]})
        index.add_document("d2", {"names": ["film"]})
        support = index.scoring_support()
        first = support.postings_block_summary("names", "film")
        assert first is not None
        assert first.max_frequencies == (2,)
        assert support.postings_block_summary("names", "film") is first
        assert support.postings_block_summary("names", "nope") is None
        index.add_document("d3", {"names": ["film"] * 5})
        refreshed = index.scoring_support().postings_block_summary("names", "film")
        assert refreshed is not first
        assert refreshed.max_frequencies == (5,)

    def test_intersect_union_merge(self):
        left, right = PostingList(), PostingList()
        for doc in ["a", "b", "c"]:
            left.add(doc)
        for doc in ["b", "c", "d"]:
            right.add(doc, 2)
        assert intersect(left, right) == ["b", "c"]
        assert union(left, right) == ["a", "b", "c", "d"]
        merged = merge_frequencies([left, right])
        assert merged == {"a": 1, "b": 3, "c": 3, "d": 2}


class TestInvertedIndex:
    @pytest.fixture
    def index(self) -> InvertedIndex:
        idx = InvertedIndex("names")
        idx.add_document("d1", ["forrest", "gump", "gump"])
        idx.add_document("d2", ["apollo", "13"])
        idx.add_document("d3", [])
        return idx

    def test_term_frequency(self, index: InvertedIndex):
        assert index.term_frequency("gump", "d1") == 2
        assert index.term_frequency("gump", "d2") == 0

    def test_document_frequency(self, index: InvertedIndex):
        assert index.document_frequency("gump") == 1
        assert index.document_frequency("missing") == 0

    def test_collection_statistics(self, index: InvertedIndex):
        assert index.collection_frequency("gump") == 2
        assert index.total_terms == 5
        assert index.collection_probability("gump") == pytest.approx(2 / 5)

    def test_document_lengths(self, index: InvertedIndex):
        assert index.document_length("d1") == 3
        assert index.document_length("d3") == 0
        assert index.document_length("missing") == 0

    def test_empty_document_registered(self, index: InvertedIndex):
        assert "d3" in index.documents()
        assert index.num_documents == 3

    def test_documents_containing(self, index: InvertedIndex):
        assert index.documents_containing("gump") == ["d1"]
        assert index.documents_containing_any(["gump", "apollo"]) == {"d1", "d2"}

    def test_vocabulary_and_contains(self, index: InvertedIndex):
        assert "forrest" in index
        assert "missing" not in index
        assert len(index) == 4

    def test_average_document_length(self, index: InvertedIndex):
        assert index.average_document_length == pytest.approx(5 / 3)

    def test_incremental_add_same_document(self):
        idx = InvertedIndex()
        idx.add_document("d1", ["a"])
        idx.add_document("d1", ["b", "a"])
        assert idx.document_length("d1") == 3
        assert idx.term_frequency("a", "d1") == 2


class TestFieldedIndex:
    @pytest.fixture
    def index(self) -> FieldedIndex:
        idx = FieldedIndex(["names", "categories"])
        idx.add_document("e1", {"names": ["forrest", "gump"], "categories": ["american", "film"]})
        idx.add_document("e2", {"names": ["apollo"], "categories": ["american", "film"]})
        return idx

    def test_requires_at_least_one_field(self):
        with pytest.raises(ValueError):
            FieldedIndex([])

    def test_unknown_field_rejected_on_add(self, index: FieldedIndex):
        with pytest.raises(FieldNotFoundError):
            index.add_document("e3", {"bogus": ["x"]})

    def test_unknown_field_rejected_on_lookup(self, index: FieldedIndex):
        with pytest.raises(FieldNotFoundError):
            index.term_frequency("bogus", "x", "e1")

    def test_missing_field_indexed_empty(self):
        idx = FieldedIndex(["names", "categories"])
        idx.add_document("e1", {"names": ["x"]})
        assert idx.document_length("categories", "e1") == 0
        assert idx.num_documents == 1

    def test_term_frequency_per_field(self, index: FieldedIndex):
        assert index.term_frequency("names", "gump", "e1") == 1
        assert index.term_frequency("categories", "gump", "e1") == 0

    def test_candidate_documents(self, index: FieldedIndex):
        assert index.candidate_documents(["gump"]) == {"e1"}
        assert index.candidate_documents(["american"]) == {"e1", "e2"}
        assert index.candidate_documents(["missing"]) == set()

    def test_statistics(self, index: FieldedIndex):
        stats = index.statistics()
        assert stats.num_documents == 2
        assert stats.field("names").total_terms == 3
        assert stats.field("categories").average_length == 2.0
        assert stats.vocabulary_size() >= 4

    def test_collection_probability(self, index: FieldedIndex):
        assert index.collection_probability("categories", "american") == pytest.approx(0.5)

    def test_contains_and_len(self, index: FieldedIndex):
        assert "e1" in index
        assert len(index) == 2
