"""Tests for repro.search.mlm: the mixture-of-language-models scorer."""

from __future__ import annotations

import pytest

from repro.config import SearchConfig
from repro.index import FieldedIndex
from repro.search import MixtureLanguageModelScorer, SingleFieldScorer, parse_query


@pytest.fixture
def index() -> FieldedIndex:
    idx = FieldedIndex(["names", "attributes", "categories", "similar_entity_names", "related_entity_names"])
    idx.add_document(
        "e:gump",
        {
            "names": ["forrest", "gump"],
            "categories": ["american", "film"],
            "related_entity_names": ["tom", "hanks"],
        },
    )
    idx.add_document(
        "e:apollo",
        {
            "names": ["apollo", "13"],
            "categories": ["american", "film"],
            "related_entity_names": ["tom", "hanks"],
        },
    )
    idx.add_document(
        "e:terminator",
        {
            "names": ["the", "terminator"],
            "categories": ["american", "film"],
            "related_entity_names": ["arnold", "schwarzenegger"],
        },
    )
    return idx


class TestMixtureScorer:
    def test_exact_name_match_ranks_first(self, index: FieldedIndex):
        scorer = MixtureLanguageModelScorer(index)
        results = scorer.search(parse_query("forrest gump"))
        assert results[0].doc_id == "e:gump"

    def test_related_name_boosts(self, index: FieldedIndex):
        scorer = MixtureLanguageModelScorer(index)
        results = scorer.search(parse_query("tom hanks"))
        top_two = {result.doc_id for result in results[:2]}
        assert top_two == {"e:gump", "e:apollo"}

    def test_scores_are_descending(self, index: FieldedIndex):
        scorer = MixtureLanguageModelScorer(index)
        results = scorer.search(parse_query("american film"))
        scores = [result.score for result in results]
        assert scores == sorted(scores, reverse=True)

    def test_candidates_restricted_to_matching_documents(self, index: FieldedIndex):
        scorer = MixtureLanguageModelScorer(index)
        results = scorer.search(parse_query("terminator"))
        assert [result.doc_id for result in results] == ["e:terminator"]

    def test_no_match_returns_empty(self, index: FieldedIndex):
        scorer = MixtureLanguageModelScorer(index)
        assert scorer.search(parse_query("zzzzz")) == []

    def test_field_weights_normalised(self, index: FieldedIndex):
        scorer = MixtureLanguageModelScorer(index)
        assert sum(scorer.field_weights.values()) == pytest.approx(1.0)

    def test_field_restriction_scoring(self, index: FieldedIndex):
        scorer = MixtureLanguageModelScorer(index)
        results = scorer.search(parse_query("names:gump"))
        assert results[0].doc_id == "e:gump"

    def test_term_probability_positive_even_without_match(self, index: FieldedIndex):
        scorer = MixtureLanguageModelScorer(index)
        assert scorer.term_probability("gump", "e:terminator") > 0.0

    def test_top_k_respected(self, index: FieldedIndex):
        scorer = MixtureLanguageModelScorer(index, SearchConfig(top_k=1))
        assert len(scorer.search(parse_query("american"))) == 1

    def test_term_scores_breakdown(self, index: FieldedIndex):
        scorer = MixtureLanguageModelScorer(index)
        scored = scorer.score_document(parse_query("forrest gump"), "e:gump")
        assert set(scored.term_scores) == {"forrest", "gump"}
        assert scored.score == pytest.approx(sum(scored.term_scores.values()))

    def test_zero_weight_mass_rejected(self, index: FieldedIndex):
        config = SearchConfig(
            field_weights={field: 0.0 for field in index.fields} | {"names": 0.0}
        )
        with pytest.raises(ValueError):
            MixtureLanguageModelScorer(index, config)


class TestSingleFieldScorer:
    def test_names_only_misses_related_evidence(self, index: FieldedIndex):
        names_only = SingleFieldScorer(index, "names")
        results = names_only.search(parse_query("tom hanks"))
        # No document has "tom hanks" in its name, so all candidate scores tie
        # at the collection-smoothed floor; the mixture model does better
        # (see TestMixtureScorer.test_related_name_boosts).
        scores = {result.doc_id: result.score for result in results}
        if scores:
            assert max(scores.values()) == pytest.approx(min(scores.values()))

    def test_exact_name_still_works(self, index: FieldedIndex):
        names_only = SingleFieldScorer(index, "names")
        results = names_only.search(parse_query("terminator"))
        assert results[0].doc_id == "e:terminator"
