"""Tests for repro.eval.metrics."""

from __future__ import annotations

import pytest

from repro.eval import (
    aggregate_metrics,
    average_precision,
    dcg_at_k,
    evaluate_ranking,
    mean_average_precision,
    mean_of,
    mean_reciprocal_rank,
    ndcg_at_k,
    precision_at_k,
    r_precision,
    recall_at_k,
    reciprocal_rank,
)

RANKED = ["a", "x", "b", "y", "c"]
RELEVANT = ["a", "b", "c"]


class TestPrecisionRecall:
    def test_precision_at_k(self):
        assert precision_at_k(RANKED, RELEVANT, 1) == 1.0
        assert precision_at_k(RANKED, RELEVANT, 2) == 0.5
        assert precision_at_k(RANKED, RELEVANT, 5) == pytest.approx(3 / 5)

    def test_precision_k_beyond_ranking(self):
        assert precision_at_k(["a"], RELEVANT, 10) == pytest.approx(1 / 10)

    def test_precision_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k(RANKED, RELEVANT, 0)

    def test_recall_at_k(self):
        assert recall_at_k(RANKED, RELEVANT, 1) == pytest.approx(1 / 3)
        assert recall_at_k(RANKED, RELEVANT, 5) == 1.0

    def test_r_precision(self):
        assert r_precision(RANKED, RELEVANT) == pytest.approx(2 / 3)

    def test_empty_relevant_set_rejected(self):
        with pytest.raises(ValueError):
            precision_at_k(RANKED, [], 1)

    def test_empty_ranking(self):
        assert precision_at_k([], RELEVANT, 5) == 0.0
        assert recall_at_k([], RELEVANT, 5) == 0.0


class TestAveragePrecisionAndRR:
    def test_perfect_ranking(self):
        assert average_precision(["a", "b", "c"], RELEVANT) == 1.0

    def test_interleaved_ranking(self):
        # hits at positions 1, 3, 5 -> (1/1 + 2/3 + 3/5) / 3
        assert average_precision(RANKED, RELEVANT) == pytest.approx((1 + 2 / 3 + 3 / 5) / 3)

    def test_no_hits(self):
        assert average_precision(["x", "y"], RELEVANT) == 0.0

    def test_reciprocal_rank(self):
        assert reciprocal_rank(RANKED, RELEVANT) == 1.0
        assert reciprocal_rank(["x", "a"], RELEVANT) == 0.5
        assert reciprocal_rank(["x", "y"], RELEVANT) == 0.0

    def test_map_and_mrr(self):
        rankings = [["a", "b"], ["x", "a"]]
        relevants = [["a"], ["a"]]
        assert mean_average_precision(rankings, relevants) == pytest.approx((1.0 + 0.5) / 2)
        assert mean_reciprocal_rank(rankings, relevants) == pytest.approx((1.0 + 0.5) / 2)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_average_precision([["a"]], [["a"], ["b"]])


class TestNdcg:
    def test_dcg(self):
        assert dcg_at_k([1.0, 1.0], 2) == pytest.approx(1.0 + 1.0 / 1.5849625007211562)

    def test_dcg_invalid_k(self):
        with pytest.raises(ValueError):
            dcg_at_k([1.0], 0)

    def test_perfect_ndcg(self):
        assert ndcg_at_k(["a", "b", "c"], RELEVANT, 3) == pytest.approx(1.0)

    def test_ndcg_penalises_late_hits(self):
        early = ndcg_at_k(["a", "x", "y"], RELEVANT, 3)
        late = ndcg_at_k(["x", "y", "a"], RELEVANT, 3)
        assert early > late

    def test_ndcg_zero_when_no_hits(self):
        assert ndcg_at_k(["x", "y"], RELEVANT, 2) == 0.0


class TestAggregation:
    def test_mean_of(self):
        assert mean_of([1.0, 2.0, 3.0]) == 2.0
        assert mean_of([]) == 0.0

    def test_evaluate_ranking_keys(self):
        metrics = evaluate_ranking(RANKED, RELEVANT, ks=(1, 5))
        assert {"ap", "rr", "r_precision", "p@1", "p@5", "recall@1", "recall@5", "ndcg@1", "ndcg@5"} <= set(metrics)

    def test_aggregate_metrics(self):
        aggregated = aggregate_metrics([{"ap": 1.0, "p@5": 0.4}, {"ap": 0.5, "p@5": 0.6}])
        assert aggregated["ap"] == pytest.approx(0.75)
        assert aggregated["p@5"] == pytest.approx(0.5)

    def test_aggregate_empty(self):
        assert aggregate_metrics([]) == {}
