"""Tests for repro.explore.session and repro.explore.path."""

from __future__ import annotations

import pytest

from repro.exceptions import SessionStateError
from repro.explore import (
    ExplorationPath,
    ExplorationQuery,
    ExplorationSession,
    LookupEntity,
    Pivot,
    SelectEntity,
    SubmitKeywords,
)


class TestSessionTimeline:
    def test_initial_state_empty(self):
        session = ExplorationSession("s1")
        assert session.current_query.is_empty
        assert len(session) == 0
        assert len(session.path) == 1  # the start node

    def test_apply_records_timeline(self):
        session = ExplorationSession()
        session.apply(SubmitKeywords("forrest gump"))
        session.apply(SelectEntity("dbr:Forrest_Gump"))
        assert len(session) == 2
        assert session.timeline[0].operation_kind == "submit"
        assert session.current_query.has_seed("dbr:Forrest_Gump")

    def test_lookup_recorded_but_state_unchanged(self):
        session = ExplorationSession()
        session.apply(SubmitKeywords("gump"))
        before = session.current_query
        session.apply(LookupEntity("dbr:Forrest_Gump"))
        assert session.current_query == before
        assert session.lookups == ("dbr:Forrest_Gump",)

    def test_behaviour_summary_counts(self):
        session = ExplorationSession()
        session.apply(SubmitKeywords("gump"))
        session.apply(SelectEntity("a"))
        session.apply(SelectEntity("b"))
        summary = session.behaviour_summary()
        assert summary == {"submit": 1, "select-entity": 2}

    def test_revisit_restores_query(self):
        session = ExplorationSession()
        session.apply(SubmitKeywords("gump"))
        session.apply(SelectEntity("a"))
        session.apply(SelectEntity("b"))
        restored = session.revisit(1)
        assert restored.seed_entities == ("a",)
        assert session.current_query.seed_entities == ("a",)

    def test_revisit_out_of_range(self):
        session = ExplorationSession()
        with pytest.raises(SessionStateError):
            session.revisit(0)

    def test_visited_queries_unique(self):
        session = ExplorationSession()
        session.apply(SubmitKeywords("gump"))
        session.apply(LookupEntity("x"))  # same query state
        session.apply(SelectEntity("a"))
        assert len(session.visited_queries()) == 2

    def test_apply_all(self):
        session = ExplorationSession()
        session.apply_all([SubmitKeywords("gump"), SelectEntity("a")])
        assert len(session) == 2

    def test_describe_transcript(self):
        session = ExplorationSession("demo")
        session.apply(SubmitKeywords("gump"))
        text = session.describe()
        assert "demo" in text and "submit" in text


class TestSessionPath:
    def test_path_grows_with_state_changes(self):
        session = ExplorationSession()
        session.apply(SubmitKeywords("gump"))
        session.apply(SelectEntity("a"))
        # start + 2 new states
        assert len(session.path) == 3
        assert len(session.path.edges) == 2

    def test_lookup_does_not_add_path_node(self):
        session = ExplorationSession()
        session.apply(SubmitKeywords("gump"))
        nodes_before = len(session.path)
        session.apply(LookupEntity("x"))
        assert len(session.path) == nodes_before

    def test_branching_after_revisit(self):
        session = ExplorationSession()
        session.apply(SubmitKeywords("gump"))
        session.apply(SelectEntity("a"))
        session.revisit(0)
        session.apply(SelectEntity("b"))
        # The node for the keyword query has two outgoing branches now.
        keyword_node = next(
            node for node in session.path.nodes if node.query.keywords == "gump" and not node.query.seed_entities
        )
        assert len(session.path.branches_from(keyword_node.node_id)) == 2

    def test_pivot_recorded_in_path(self):
        session = ExplorationSession()
        session.apply(SelectEntity("dbr:Forrest_Gump"))
        session.apply(Pivot("dbr:Tom_Hanks", "dbo:Actor"))
        kinds = {edge.operation_kind for edge in session.path.edges}
        assert "pivot" in kinds


class TestExplorationPathDirect:
    def test_add_state_and_current(self):
        path = ExplorationPath()
        node = path.add_state(ExplorationQuery(keywords="a"))
        assert path.current_node == node
        assert len(path) == 1

    def test_jump_to(self):
        path = ExplorationPath()
        first = path.add_state(ExplorationQuery(keywords="a"))
        path.add_state(ExplorationQuery(keywords="b"), SubmitKeywords("b"))
        path.jump_to(first.node_id)
        assert path.current_node == first

    def test_node_out_of_range(self):
        with pytest.raises(IndexError):
            ExplorationPath().node(0)

    def test_as_dict_structure(self):
        path = ExplorationPath()
        path.add_state(ExplorationQuery(keywords="a"))
        path.add_state(ExplorationQuery(keywords="b"), SubmitKeywords("b"))
        payload = path.as_dict()
        assert len(payload["nodes"]) == 2
        assert len(payload["edges"]) == 1
        assert payload["current"] == 1

    def test_describe_lists_nodes(self):
        path = ExplorationPath()
        path.add_state(ExplorationQuery(keywords="a"))
        assert "[0]" in path.describe()
