"""The process execution tier: shared-memory snapshots, θ slab, worker pool.

Covers the satellite contracts of the multiprocess executor:

* snapshot publish → attach round-trip, including a probe executed in a
  *spawned worker process* against the shared segment;
* segment unlink on close/release (no ``/dev/shm`` leaks);
* stale-epoch / stale-uid attach rejection;
* the cross-process θ slab's monotone, NaN-proof seqlock semantics;
* executor resolution, memoisation and lifecycle (close / context
  manager), and the fallback recovery path of the process pool.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.exec import (
    ProcessShardExecutor,
    ProcessTask,
    ShardExecutor,
    SnapshotSource,
    SnapshotUnavailable,
    ThetaSlab,
    default_executor,
    publish_feature_tables,
    publish_snapshot,
    resolve_executor,
    shard_of,
    shard_stats_from,
    snapshot_registry,
)
from repro.exec.shm import AttachedSnapshot
from repro.features.columnar import build_ranker_inputs, columnar_tables
from repro.index import FieldedIndex, columnar_view
from repro.topk import NO_THRESHOLD, PruningStats

DOCS = {
    "dbr:Forrest_Gump": {"names": ["forrest", "gump"], "text": ["film", "drama", "hanks"]},
    "dbr:Apollo_13": {"names": ["apollo", "13"], "text": ["film", "space", "hanks"]},
    "dbr:Cast_Away": {"names": ["cast", "away"], "text": ["film", "island", "hanks"]},
    "dbr:Tom_Hanks": {"names": ["tom", "hanks"], "text": ["actor", "hanks"]},
    "dbr:Drama": {"names": ["drama"], "text": ["genre"]},
}


def small_index() -> FieldedIndex:
    index = FieldedIndex(["names", "text"])
    for doc_id, fields in DOCS.items():
        index.add_document(doc_id, fields)
    return index


def segment_exists(name: str) -> bool:
    """Whether the shm segment is still linked (POSIX /dev/shm backing)."""
    if os.path.isdir("/dev/shm"):
        return os.path.exists(os.path.join("/dev/shm", name))
    try:  # pragma: no cover - non-tmpfs platforms
        AttachedSnapshot(name)
    except SnapshotUnavailable:
        return False
    return True


class TestSnapshotRoundTrip:
    def test_publish_attach_roundtrip(self):
        index = small_index()
        view = columnar_view(index)
        published = publish_snapshot(index, view)
        try:
            attached = AttachedSnapshot(
                published.name, expected_uid=index.uid, expected_epoch=index.epoch
            )
            try:
                assert attached.num_documents == view.num_documents
                assert attached.fields == list(index.fields)
                for field in index.fields:
                    np.testing.assert_array_equal(
                        attached.field_lengths(field), view.field_lengths(field)
                    )
                    for term in index.field_index(field).vocabulary():
                        expected = view.postings(field, term)
                        got = attached.postings(field, term)
                        assert got is not None and expected is not None
                        np.testing.assert_array_equal(got.ordinals, expected.ordinals)
                        np.testing.assert_array_equal(
                            got.frequencies, expected.frequencies
                        )
                        np.testing.assert_array_equal(
                            attached.dense_frequencies(field, term),
                            view.dense_frequencies(field, term),
                        )
            finally:
                attached.close()
        finally:
            published.close()

    @pytest.mark.parametrize("num_shards", [2, 3, 5])
    def test_shard_owners_match_parent_routing(self, num_shards):
        index = small_index()
        view = columnar_view(index)
        published = publish_snapshot(index, view)
        try:
            attached = AttachedSnapshot(published.name)
            try:
                expected = [shard_of(doc_id, num_shards) for doc_id in view.doc_ids]
                np.testing.assert_array_equal(
                    attached.shard_owners(num_shards), np.asarray(expected)
                )
            finally:
                attached.close()
        finally:
            published.close()

    def test_close_unlinks_segment(self):
        index = small_index()
        published = publish_snapshot(index, columnar_view(index))
        name = published.name
        assert segment_exists(name)
        published.close()
        assert not segment_exists(name)
        published.close()  # idempotent
        with pytest.raises(SnapshotUnavailable):
            AttachedSnapshot(name)

    def test_stale_epoch_attach_rejected(self):
        index = small_index()
        published = publish_snapshot(index, columnar_view(index))
        try:
            with pytest.raises(SnapshotUnavailable):
                AttachedSnapshot(
                    published.name,
                    expected_uid=index.uid,
                    expected_epoch=index.epoch + 1,
                )
            with pytest.raises(SnapshotUnavailable):
                AttachedSnapshot(published.name, expected_uid=index.uid + 1)
            # The right expectation still attaches after the rejections.
            attached = AttachedSnapshot(
                published.name, expected_uid=index.uid, expected_epoch=index.epoch
            )
            attached.close()
        finally:
            published.close()

    def test_registry_replaces_older_epoch(self):
        registry = snapshot_registry()
        index = small_index()
        first = registry.publish(index, columnar_view(index))
        assert first is not None
        first_name = first.name
        index.add_document("dbr:Philadelphia", {"names": ["philadelphia"], "text": ["film"]})
        second = registry.publish(index, columnar_view(index))
        assert second is not None and second.epoch == index.epoch
        try:
            # The newer epoch replaced the older segment for this uid.
            assert not segment_exists(first_name)
            assert registry.publish(index, columnar_view(index)) is second
        finally:
            registry.release(index.uid)
        assert not segment_exists(second.name)

    def test_release_is_scoped_by_uid(self):
        registry = snapshot_registry()
        left, right = small_index(), small_index()
        published_left = registry.publish(left, columnar_view(left))
        published_right = registry.publish(right, columnar_view(right))
        assert published_left is not None and published_right is not None
        registry.release(left.uid)
        assert not segment_exists(published_left.name)
        assert segment_exists(published_right.name)
        registry.release(right.uid)
        assert not segment_exists(published_right.name)


def small_feature_index():
    """A tiny typed KG with a hub feature (shared director) per PR 8."""
    from repro.kg import KnowledgeGraph

    kg = KnowledgeGraph("shm-rank")
    for number in range(6):
        film = f"ex:Film{number}"
        kg.add_type(film, "ex:Film")
        kg.add(film, "ex:directedBy", "ex:D1" if number % 2 else "ex:D2")
        kg.add(film, "ex:starring", f"ex:A{number % 3}")
    for actor in range(3):
        kg.add_type(f"ex:A{actor}", "ex:Actor")
    from repro.features import SemanticFeatureIndex

    return SemanticFeatureIndex.build(kg)


class TestFeatureTableSnapshot:
    """PR 8: the ranker's feature tables over the same segment plumbing."""

    def test_publish_attach_roundtrip(self):
        index = small_feature_index()
        tables = columnar_tables(index.snapshot())
        published = publish_feature_tables(
            SnapshotSource(index.uid, tables.epoch), tables
        )
        try:
            attached = AttachedSnapshot(
                published.name, expected_uid=index.uid, expected_epoch=tables.epoch
            )
            try:
                remote = attached.feature_tables()
                assert attached.feature_tables() is remote  # memoised per attach
                assert remote.epoch == tables.epoch
                assert remote.num_entities == tables.num_entities
                assert remote.num_types == tables.num_types
                assert remote.feature_ord == tables.feature_ord
                # Workers run purely in ordinal space: no entity-id
                # strings travel through the segment.
                assert remote.entity_ids is None and remote.ordinal_of is None
                for array in (
                    "holder_offsets",
                    "holder_ordinals",
                    "dominant_ords",
                    "type_populations",
                    "member_offsets",
                    "member_type_ords",
                ):
                    np.testing.assert_array_equal(
                        getattr(remote, array), getattr(tables, array)
                    )
                for ordinal in tables.feature_ord.values():
                    np.testing.assert_array_equal(
                        remote.holders(ordinal), tables.holders(ordinal)
                    )
                    np.testing.assert_array_equal(
                        remote.intersections(ordinal), tables.intersections(ordinal)
                    )
            finally:
                attached.close()
        finally:
            published.close()

    def test_rebuilt_kernel_inputs_match_parent(self):
        """A worker's per-query inputs equal the parent's, array for array."""
        index = small_feature_index()
        tables = columnar_tables(index.snapshot())
        feature_keys = sorted(tables.feature_ord, key=tables.feature_ord.__getitem__)
        relevance = [1.0 / (position + 1) for position in range(len(feature_keys))]
        candidates = np.arange(tables.num_entities, dtype=np.int64)
        expected = build_ranker_inputs(
            tables, feature_keys, relevance, candidates, 1e-9, type_smoothing=True
        )
        published = publish_feature_tables(
            SnapshotSource(index.uid, tables.epoch), tables
        )
        try:
            attached = AttachedSnapshot(published.name)
            try:
                actual = build_ranker_inputs(
                    attached.feature_tables(),
                    feature_keys,
                    relevance,
                    candidates,
                    1e-9,
                    type_smoothing=True,
                )
                for field in (
                    "ordinals",
                    "type_index",
                    "type_counts",
                    "base_scores",
                    "corrections",
                    "suffix_bounds",
                ):
                    np.testing.assert_array_equal(
                        getattr(actual, field), getattr(expected, field)
                    )
                assert len(actual.holder_positions) == len(expected.holder_positions)
                for got, want in zip(actual.holder_positions, expected.holder_positions):
                    np.testing.assert_array_equal(got, want)
            finally:
                attached.close()
        finally:
            published.close()

    def test_stale_epoch_attach_rejected(self):
        index = small_feature_index()
        tables = columnar_tables(index.snapshot())
        published = publish_feature_tables(
            SnapshotSource(index.uid, tables.epoch), tables
        )
        try:
            with pytest.raises(SnapshotUnavailable):
                AttachedSnapshot(
                    published.name,
                    expected_uid=index.uid,
                    expected_epoch=tables.epoch + 1,
                )
            with pytest.raises(SnapshotUnavailable):
                AttachedSnapshot(published.name, expected_uid=index.uid + 1)
        finally:
            published.close()
        assert not segment_exists(published.name)

    def test_postings_segment_never_serves_feature_tables(self):
        """A mixed-up descriptor degrades cleanly, not via a KeyError."""
        index = small_index()
        published = publish_snapshot(index, columnar_view(index))
        try:
            attached = AttachedSnapshot(published.name)
            try:
                with pytest.raises(SnapshotUnavailable):
                    attached.feature_tables()
            finally:
                attached.close()
        finally:
            published.close()

    def test_registry_replaces_older_feature_epoch(self):
        registry = snapshot_registry()
        index = small_feature_index()
        tables = columnar_tables(index.snapshot())
        source = SnapshotSource(index.uid, tables.epoch)
        first = registry.publish(source, tables, builder=publish_feature_tables)
        assert first is not None and first.epoch == tables.epoch
        try:
            # Same (uid, epoch) → the registry hands back the live segment.
            assert registry.publish(source, tables, builder=publish_feature_tables) is first
            newer = SnapshotSource(index.uid, tables.epoch + 1)
            second = registry.publish(newer, tables, builder=publish_feature_tables)
            assert second is not None and second.epoch == tables.epoch + 1
            assert not segment_exists(first.name)
        finally:
            registry.release(index.uid)


class TestThetaSlab:
    def test_kth_largest_of_union_pool(self):
        slab = ThetaSlab.create(k=2, num_slots=2)
        try:
            assert slab.value() == NO_THRESHOLD
            assert slab.offer(0, [5.0, 4.0, 3.0]) == 4.0  # extra bounds truncated to k
            assert slab.offer(1, [6.0]) == 5.0  # union pool {5, 4, 6} → 2nd largest
        finally:
            slab.close()

    def test_theta_is_monotone(self):
        slab = ThetaSlab.create(k=2, num_slots=2)
        try:
            slab.offer(0, [9.0, 8.0])
            assert slab.value() == 8.0
            # A shard replacing its pool with worse bounds cannot lower θ:
            # the global-max cell keeps the best threshold ever observed.
            assert slab.offer(0, [1.0, 1.0]) == 8.0
        finally:
            slab.close()

    def test_primed_floor_and_nan_filtering(self):
        slab = ThetaSlab.create(k=2, num_slots=1, primed=10.0)
        try:
            assert slab.value() == 10.0
            assert slab.offer(0, [float("nan"), 3.0, 2.0]) == 10.0
        finally:
            slab.close()

    def test_attach_sees_writer_offers(self):
        slab = ThetaSlab.create(k=1, num_slots=2)
        try:
            reader = ThetaSlab.attach(slab.descriptor)
            try:
                slot = slab.slot(1)
                assert slot.value == NO_THRESHOLD
                slot.offer([7.5])
                assert reader.value() == 7.5
            finally:
                reader.close()
        finally:
            slab.close()
        with pytest.raises(SnapshotUnavailable):
            ThetaSlab.attach({"name": "psm-gone-xyz", "k": 1, "slots": 1})

    def test_slot_range_checked(self):
        slab = ThetaSlab.create(k=1, num_slots=2)
        try:
            with pytest.raises(IndexError):
                slab.slot(2)
        finally:
            slab.close()


class TestExecutorResolution:
    def test_auto_default_is_process_wide(self):
        assert resolve_executor("auto", 0) is default_executor()

    def test_memoised_per_mode_and_workers(self):
        first = resolve_executor("thread", 2)
        assert resolve_executor("thread", 2) is first
        assert resolve_executor("thread", 3) is not first
        assert resolve_executor("inline", 2) is not first

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            resolve_executor("fiber", 1)
        with pytest.raises(ValueError):
            resolve_executor("thread", -1)

    def test_closed_process_executor_is_recreated(self):
        first = resolve_executor("process", 2)
        assert isinstance(first, ProcessShardExecutor) and first.is_process
        first.close()
        replacement = resolve_executor("process", 2)
        assert replacement is not first and not replacement._closed

    def test_inline_mode_never_pools(self):
        executor = resolve_executor("inline", 4)
        assert executor.effective_mode() == "inline"
        assert executor.run([lambda: 1, lambda: 2, lambda: 3]) == [1, 2, 3]

    def test_thread_executor_context_manager(self):
        with ShardExecutor(max_workers=2, mode="threads") as executor:
            assert executor.effective_mode() == "thread"
            assert executor.run([lambda: "a", lambda: "b"]) == ["a", "b"]


class TestShardStatsFrom:
    def test_passthrough_and_dict_coercion(self):
        stats = PruningStats()
        assert shard_stats_from(stats) is stats
        stats.queries = 1
        stats.terms_total = 4
        rebuilt = shard_stats_from(stats.as_dict())
        assert rebuilt.as_dict() == stats.as_dict()


@pytest.fixture(scope="module")
def process_pool():
    """A private two-worker pool, torn down with the module."""
    executor = ProcessShardExecutor(max_workers=2)
    yield executor
    executor.close()


def probe_task(published, field: str, term: str, shards: int) -> ProcessTask:
    payload = {
        "kind": "probe",
        "snapshot": published.descriptor,
        "field": field,
        "term": term,
        "shards": shards,
    }
    return ProcessTask(payload, fallback=lambda: {"fallback": True})


class TestProcessPool:
    def test_probe_runs_in_spawned_worker(self, process_pool):
        index = small_index()
        view = columnar_view(index)
        published = publish_snapshot(index, view)
        try:
            # Task 0 always runs inline via its fallback; tasks 1.. reach
            # the spawned workers and answer from the shared segment.
            results = process_pool.run_tasks(
                [
                    probe_task(published, "text", "hanks", 3),
                    probe_task(published, "text", "hanks", 3),
                    probe_task(published, "names", "no-such-term", 2),
                ]
            )
            assert results[0] == {"fallback": True}
            remote = results[1]
            assert remote["num_documents"] == view.num_documents
            assert remote["fields"] == list(index.fields)
            expected = view.postings("text", "hanks")
            np.testing.assert_array_equal(remote["ordinals"], expected.ordinals)
            np.testing.assert_array_equal(remote["frequencies"], expected.frequencies)
            np.testing.assert_array_equal(remote["lengths"], view.field_lengths("text"))
            np.testing.assert_array_equal(
                remote["owners"],
                np.asarray([shard_of(doc_id, 3) for doc_id in view.doc_ids]),
            )
            assert results[2]["ordinals"] is None
            assert process_pool.tasks_dispatched >= 2
            assert process_pool.snapshot_attaches >= 1
        finally:
            published.close()

    def test_stale_snapshot_recovers_via_fallback(self, process_pool):
        index = small_index()
        published = publish_snapshot(index, columnar_view(index))
        published.close()  # unlink before dispatch: workers must fail to attach
        recovered_before = process_pool.tasks_recovered
        results = process_pool.run_tasks(
            [
                probe_task(published, "text", "film", 2),
                probe_task(published, "text", "film", 2),
            ]
        )
        assert results == [{"fallback": True}, {"fallback": True}]
        assert process_pool.tasks_recovered == recovered_before + 1

    def test_single_task_batches_never_dispatch(self, process_pool):
        dispatched = process_pool.tasks_dispatched
        results = process_pool.run_tasks(
            [ProcessTask({"kind": "probe"}, fallback=lambda: 42)]
        )
        assert results == [42]
        assert process_pool.tasks_dispatched == dispatched

    def test_closure_batches_degrade_inline(self, process_pool):
        assert process_pool.run([lambda: 1, lambda: 2]) == [1, 2]

    def test_closed_pool_falls_back_inline(self):
        executor = ProcessShardExecutor(max_workers=2)
        executor.close()
        executor.close()  # idempotent
        results = executor.run_tasks(
            [
                ProcessTask({"kind": "probe"}, fallback=lambda: "a"),
                ProcessTask({"kind": "probe"}, fallback=lambda: "b"),
            ]
        )
        assert results == ["a", "b"]
