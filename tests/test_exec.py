"""Tests for repro.exec: the sharded, batch-parallel execution layer."""

from __future__ import annotations

import threading

import pytest

from repro.exec import (
    ShardExecutor,
    dedupe_batch,
    default_executor,
    merge_shard_stats,
    partition_candidates,
    partition_ids,
    shard_of,
    split_frequencies,
)
from repro.index import ShardedFieldedIndex
from repro.topk import NO_THRESHOLD, PruningStats, SharedThreshold


class TestSharding:
    def test_shard_of_is_deterministic_and_in_range(self):
        for n in (1, 2, 3, 5, 8):
            for identifier in ("dbr:A", "dbr:B", "ex:F1", ""):
                shard = shard_of(identifier, n)
                assert 0 <= shard < n
                assert shard == shard_of(identifier, n)

    def test_single_shard_routes_everything_to_zero(self):
        assert shard_of("anything", 1) == 0
        assert partition_ids(["a", "b", "c"], 1) == [["a", "b", "c"]]

    def test_partition_covers_exactly_once(self):
        ids = [f"ex:e{i}" for i in range(100)]
        for n in (2, 3, 5):
            buckets = partition_ids(ids, n)
            assert len(buckets) == n
            flat = [identifier for bucket in buckets for identifier in bucket]
            assert sorted(flat) == sorted(ids)
            for bucket in buckets:
                for identifier in bucket:
                    assert shard_of(identifier, n) == buckets.index(bucket)

    def test_partition_preserves_order_within_shard(self):
        ids = [f"ex:e{i}" for i in range(50)]
        buckets = partition_ids(ids, 3)
        position = {identifier: index for index, identifier in enumerate(ids)}
        for bucket in buckets:
            assert bucket == sorted(bucket, key=position.__getitem__)

    def test_split_frequencies_matches_partition(self):
        frequencies = {f"ex:e{i}": i + 1 for i in range(40)}
        shards = split_frequencies(frequencies, 4)
        assert len(shards) == 4
        merged: dict[str, int] = {}
        for index, shard in enumerate(shards):
            for doc_id, tf in shard.items():
                assert shard_of(doc_id, 4) == index
                merged[doc_id] = tf
        assert merged == frequencies

    def test_partition_candidates_prefers_index_routing(self):
        index = ShardedFieldedIndex(("names",), num_shards=3)
        ids = [f"ex:e{i}" for i in range(20)]
        for identifier in ids:
            index.add_document(identifier, {"names": ["term"]})
        via_index = partition_candidates(index, ids, 3)
        via_crc = partition_ids(ids, 3)
        assert via_index == via_crc
        # A shard-count mismatch falls back to CRC routing.
        assert partition_candidates(index, ids, 2) == partition_ids(ids, 2)


class TestSharedThreshold:
    def test_publish_is_monotone(self):
        shared = SharedThreshold()
        assert shared.value == NO_THRESHOLD
        shared.publish(1.0)
        shared.publish(0.5)
        assert shared.value == 1.0
        shared.publish(2.0)
        assert shared.value == 2.0

    def test_combine_returns_tightest_and_publishes(self):
        shared = SharedThreshold()
        assert shared.combine(3.0) == 3.0
        assert shared.value == 3.0
        assert shared.combine(1.0) == 3.0  # looser local adopts published
        assert shared.value == 3.0

    def test_nan_never_published(self):
        shared = SharedThreshold(float("nan"))
        assert shared.value == NO_THRESHOLD
        shared.publish(float("nan"))
        assert shared.value == NO_THRESHOLD
        shared.publish(1.5)
        shared.publish(float("nan"))
        assert shared.value == 1.5

    def test_concurrent_publishes_keep_max(self):
        shared = SharedThreshold()
        values = [float(i) for i in range(500)]

        def worker(chunk):
            for value in chunk:
                shared.publish(value)

        threads = [
            threading.Thread(target=worker, args=(values[i::4],)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert shared.value == 499.0


class TestShardExecutor:
    @pytest.mark.parametrize("mode", ["auto", "threads", "inline"])
    def test_results_in_task_order(self, mode):
        executor = ShardExecutor(max_workers=2, mode=mode)
        try:
            assert executor.run([lambda i=i: i * i for i in range(7)]) == [
                i * i for i in range(7)
            ]
        finally:
            executor.shutdown()

    def test_single_task_runs_inline(self):
        executor = ShardExecutor(max_workers=2, mode="threads")
        caller = threading.current_thread().name
        try:
            assert executor.run([lambda: threading.current_thread().name]) == [caller]
        finally:
            executor.shutdown()

    def test_threads_mode_uses_pool_for_tail_tasks(self):
        executor = ShardExecutor(max_workers=2, mode="threads")
        caller = threading.current_thread().name
        try:
            names = executor.run(
                [lambda: threading.current_thread().name for _ in range(3)]
            )
            assert names[0] == caller
            assert all(name != caller for name in names[1:])
        finally:
            executor.shutdown()

    def test_inline_mode_never_leaves_the_caller(self):
        executor = ShardExecutor(max_workers=2, mode="inline")
        caller = threading.current_thread().name
        assert executor.run(
            [lambda: threading.current_thread().name for _ in range(3)]
        ) == [caller] * 3

    @pytest.mark.parametrize("mode", ["threads", "inline"])
    def test_empty_and_errors(self, mode):
        executor = ShardExecutor(max_workers=2, mode=mode)
        try:
            assert executor.run([]) == []

            def boom():
                raise RuntimeError("shard failed")

            with pytest.raises(RuntimeError, match="shard failed"):
                executor.run([lambda: 1, boom, lambda: 3])
        finally:
            executor.shutdown()

    def test_default_executor_is_shared(self):
        assert default_executor() is default_executor()

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardExecutor(max_workers=0)
        with pytest.raises(ValueError):
            ShardExecutor(mode="bogus")


class TestMergeShardStats:
    def test_query_counted_once_everything_else_summed(self):
        target = PruningStats()
        shards = []
        for index in range(3):
            local = PruningStats()
            local.queries = 1  # every driver counts its own traversal
            local.terms_total = 4
            local.terms_skipped = index
            local.candidates_total = 10 * (index + 1)
            local.candidates_pruned = index + 1
            shards.append(local)
        merge_shard_stats(target, shards)
        assert target.queries == 1  # no double-counting across the merge
        assert target.terms_total == 12
        assert target.terms_skipped == 0 + 1 + 2
        assert target.candidates_total == 60
        assert target.candidates_pruned == 6

    def test_merge_accumulates_across_queries(self):
        target = PruningStats()
        shard = PruningStats()
        shard.queries = 1
        shard.candidates_total = 5
        merge_shard_stats(target, [shard])
        merge_shard_stats(target, [shard])
        assert target.queries == 2
        assert target.candidates_total == 10


class TestDedupeBatch:
    def test_duplicates_computed_once(self):
        calls: list[str] = []

        def compute(request: str) -> str:
            calls.append(request)
            return request.upper()

        results = dedupe_batch(["a", "b", "a", "c", "b"], lambda r: r, compute)
        assert results == ["A", "B", "A", "C", "B"]
        assert calls == ["a", "b", "c"]  # first-appearance order, once each

    def test_empty_batch(self):
        assert dedupe_batch([], lambda r: r, lambda r: r) == []
