"""Tests for repro.ranking.diversification: MMR re-ranking."""

from __future__ import annotations

import pytest

from repro.explore import RecommendationEngine
from repro.features import SemanticFeatureIndex
from repro.kg import KnowledgeGraph
from repro.ranking import (
    DiversifiedEntity,
    EntityRanker,
    MMRDiversifier,
    coverage,
    jaccard,
)


@pytest.fixture
def ranked(tiny_kg: KnowledgeGraph, tiny_feature_index: SemanticFeatureIndex):
    ranker = EntityRanker(tiny_kg, tiny_feature_index)
    entities, features = ranker.rank_with_features(["ex:F1"])
    return entities, features


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard({1, 2}, {1, 2}) == 1.0

    def test_disjoint_sets(self):
        assert jaccard({1}, {2}) == 0.0

    def test_empty_sets(self):
        assert jaccard(set(), set()) == 0.0

    def test_partial_overlap(self):
        assert jaccard({1, 2, 3}, {2, 3, 4}) == pytest.approx(0.5)


class TestDiversifyEntities:
    def test_lambda_one_preserves_order(self, tiny_feature_index, ranked):
        entities, _ = ranked
        diversifier = MMRDiversifier(tiny_feature_index, trade_off=1.0)
        reranked = diversifier.diversify_entities(entities)
        assert [d.entity_id for d in reranked] == [e.entity_id for e in entities]

    def test_first_pick_is_top_scored(self, tiny_feature_index, ranked):
        entities, _ = ranked
        diversifier = MMRDiversifier(tiny_feature_index, trade_off=0.5)
        reranked = diversifier.diversify_entities(entities)
        assert reranked[0].entity_id == entities[0].entity_id
        assert reranked[0].max_similarity_to_selected == 0.0

    def test_no_duplicates_and_same_population(self, tiny_feature_index, ranked):
        entities, _ = ranked
        diversifier = MMRDiversifier(tiny_feature_index, trade_off=0.5)
        reranked = diversifier.diversify_entities(entities)
        assert sorted(d.entity_id for d in reranked) == sorted(e.entity_id for e in entities)

    def test_top_k_truncation(self, tiny_feature_index, ranked):
        entities, _ = ranked
        diversifier = MMRDiversifier(tiny_feature_index, trade_off=0.5)
        assert len(diversifier.diversify_entities(entities, top_k=2)) == min(2, len(entities))

    def test_empty_input(self, tiny_feature_index):
        assert MMRDiversifier(tiny_feature_index).diversify_entities([]) == []

    def test_invalid_trade_off(self, tiny_feature_index):
        with pytest.raises(ValueError):
            MMRDiversifier(tiny_feature_index, trade_off=1.5)

    def test_returns_dataclass(self, tiny_feature_index, ranked):
        entities, _ = ranked
        reranked = MMRDiversifier(tiny_feature_index).diversify_entities(entities)
        assert all(isinstance(item, DiversifiedEntity) for item in reranked)


class TestDiversifyFeatures:
    def test_lambda_one_preserves_order(self, tiny_feature_index, ranked):
        _, features = ranked
        diversifier = MMRDiversifier(tiny_feature_index, trade_off=1.0)
        reranked = diversifier.diversify_features(features)
        assert [f.feature for f in reranked] == [f.feature for f in features]

    def test_diversification_separates_identical_extensions(self, tiny_kg, tiny_feature_index):
        """Features matching exactly the same entities are spread apart."""
        ranker = EntityRanker(tiny_kg, tiny_feature_index)
        _, features = ranker.rank_with_features(["ex:F1", "ex:F2"])
        diversifier = MMRDiversifier(tiny_feature_index, trade_off=0.3)
        reranked = diversifier.diversify_features(features, top_k=3)
        extensions = [frozenset(tiny_feature_index.entities_matching(f.feature)) for f in reranked]
        # The top-3 diversified features do not all share one extension.
        assert len(set(extensions)) >= 2

    def test_top_k(self, tiny_feature_index, ranked):
        _, features = ranked
        reranked = MMRDiversifier(tiny_feature_index, trade_off=0.5).diversify_features(features, top_k=2)
        assert len(reranked) == min(2, len(features))

    def test_empty_input(self, tiny_feature_index):
        assert MMRDiversifier(tiny_feature_index).diversify_features([]) == []


class TestCoverage:
    def test_coverage_counts_distinct_features(self, tiny_feature_index):
        single = coverage(tiny_feature_index, ["ex:F1"])
        double = coverage(tiny_feature_index, ["ex:F1", "ex:F4"])
        assert double > single

    def test_coverage_on_movie_recommendation(self, movie_kg):
        """Diversified top-k covers at least as many features as the raw top-k."""
        engine = RecommendationEngine(movie_kg)
        recommendation = engine.recommend_for_seeds(
            ["dbr:Forrest_Gump", "dbr:Apollo_13_(film)"], top_entities=15
        )
        index = engine.feature_index
        raw_top5 = recommendation.entity_ids()[:5]
        diversifier = MMRDiversifier(index, trade_off=0.5)
        diversified_top5 = [
            d.entity_id for d in diversifier.diversify_entities(recommendation.entities, top_k=5)
        ]
        assert coverage(index, diversified_top5) >= coverage(index, raw_top5)
