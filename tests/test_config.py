"""Tests for repro.config and repro.exceptions."""

from __future__ import annotations

import pytest

from repro import PivotEError
from repro.config import (
    DEFAULT_FIELDS,
    DEFAULT_FIELD_WEIGHTS,
    HeatmapConfig,
    PivotEConfig,
    RankingConfig,
    SearchConfig,
)
from repro.exceptions import (
    EmptyQueryError,
    EntityNotFoundError,
    ExplorationError,
    KnowledgeGraphError,
    NoSeedEntitiesError,
    RankingError,
    SearchError,
)


class TestSearchConfig:
    def test_defaults(self):
        config = SearchConfig()
        assert config.fields == DEFAULT_FIELDS
        assert config.smoothing == "dirichlet"
        assert sum(DEFAULT_FIELD_WEIGHTS.values()) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchConfig(smoothing="bogus")
        with pytest.raises(ValueError):
            SearchConfig(dirichlet_mu=0)
        with pytest.raises(ValueError):
            SearchConfig(jm_lambda=1.5)
        with pytest.raises(ValueError):
            SearchConfig(top_k=0)
        with pytest.raises(ValueError):
            SearchConfig(field_weights={"names": 1.0})  # missing other fields

    def test_with_override(self):
        config = SearchConfig().with_(top_k=5)
        assert config.top_k == 5
        assert SearchConfig().top_k == 20

    def test_graph_topology_defaults_on(self):
        assert SearchConfig().graph_topology is True
        assert SearchConfig().with_(graph_topology=False).graph_topology is False


class TestRankingConfig:
    def test_defaults(self):
        config = RankingConfig()
        assert config.type_smoothing is True
        assert config.top_entities == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            RankingConfig(top_entities=0)
        with pytest.raises(ValueError):
            RankingConfig(max_candidates=0)
        with pytest.raises(ValueError):
            RankingConfig(epsilon=1.0)

    def test_with_override(self):
        assert RankingConfig().with_(top_features=5).top_features == 5

    def test_graph_topology_defaults_on(self):
        assert RankingConfig().graph_topology is True
        assert RankingConfig().with_(graph_topology=False).graph_topology is False


class TestHeatmapConfig:
    def test_paper_default_is_seven_levels(self):
        assert HeatmapConfig().levels == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            HeatmapConfig(levels=1)
        with pytest.raises(ValueError):
            HeatmapConfig(scale="bogus")


class TestPivotEConfig:
    def test_default_bundles_components(self):
        config = PivotEConfig.default()
        assert isinstance(config.search, SearchConfig)
        assert isinstance(config.ranking, RankingConfig)
        assert isinstance(config.heatmap, HeatmapConfig)


class TestExceptionHierarchy:
    def test_all_derive_from_pivote_error(self):
        for exc_type in (
            EntityNotFoundError("x"),
            EmptyQueryError("x"),
            NoSeedEntitiesError("x"),
        ):
            assert isinstance(exc_type, PivotEError)

    def test_domain_bases(self):
        assert issubclass(EntityNotFoundError, KnowledgeGraphError)
        assert issubclass(EmptyQueryError, SearchError)
        assert issubclass(NoSeedEntitiesError, RankingError)
        assert issubclass(ExplorationError, PivotEError)

    def test_entity_not_found_carries_identifier(self):
        error = EntityNotFoundError("dbr:X")
        assert error.entity_id == "dbr:X"
        assert "dbr:X" in str(error)


class TestShardConfig:
    """The PR 5 ``shards`` knob on both engine configurations."""

    def test_default_is_single_shard(self):
        assert SearchConfig().shards == 1
        assert RankingConfig().shards == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchConfig(shards=0)
        with pytest.raises(ValueError):
            RankingConfig(shards=-1)

    def test_with_override(self):
        assert SearchConfig().with_(shards=4).shards == 4
        assert RankingConfig().with_(shards=3).shards == 3
