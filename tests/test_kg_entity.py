"""Tests for repro.kg.entity: Entity snapshots and profiles."""

from __future__ import annotations

from repro.kg import Entity, KnowledgeGraph, build_profile, wikipedia_url


class TestEntity:
    def test_name_prefers_label(self):
        entity = Entity(identifier="dbr:Forrest_Gump", labels=("Forrest Gump", "FG"))
        assert entity.name == "Forrest Gump"

    def test_name_falls_back_to_identifier(self):
        entity = Entity(identifier="dbr:Forrest_Gump")
        assert entity.name == "Forrest Gump"

    def test_primary_type(self):
        assert Entity(identifier="x", types=("dbo:Film", "dbo:Work")).primary_type == "dbo:Film"
        assert Entity(identifier="x").primary_type == ""

    def test_has_type(self):
        entity = Entity(identifier="x", types=("dbo:Film",))
        assert entity.has_type("dbo:Film")
        assert not entity.has_type("dbo:Actor")

    def test_attribute_values_flattened_sorted_by_predicate(self):
        entity = Entity(
            identifier="x",
            attributes={"b:runtime": ("142 minutes",), "a:budget": ("55M", "60M")},
        )
        assert entity.attribute_values() == ("55M", "60M", "142 minutes")

    def test_degree_and_neighbours(self):
        entity = Entity(
            identifier="x",
            outgoing=(("p", "a"), ("p", "b")),
            incoming=(("q", "c"), ("q", "a")),
        )
        assert entity.degree() == 4
        assert entity.neighbours() == ("a", "b", "c")

    def test_summary_contains_name_and_types(self):
        entity = Entity(identifier="dbr:X", labels=("X",), types=("dbo:Film",))
        summary = entity.summary()
        assert "X" in summary
        assert "dbo:Film" in summary


class TestProfile:
    def test_wikipedia_url(self):
        assert wikipedia_url("dbr:Forrest_Gump") == "https://en.wikipedia.org/wiki/Forrest_Gump"

    def test_build_profile_orders_facts(self):
        entity = Entity(
            identifier="dbr:X",
            attributes={"dbo:runtime": ("142 minutes",)},
            outgoing=(("dbo:starring", "dbr:Tom_Hanks"),),
            incoming=(("dbo:sequel", "dbr:Y"),),
        )
        profile = build_profile(entity)
        assert profile.top_facts[0] == ("dbo:runtime", "142 minutes")
        assert ("dbo:starring", "dbr:Tom_Hanks") in profile.top_facts
        assert ("^dbo:sequel", "dbr:Y") in profile.top_facts

    def test_build_profile_truncates(self):
        entity = Entity(
            identifier="dbr:X",
            outgoing=tuple((f"p{i}", f"o{i}") for i in range(30)),
        )
        profile = build_profile(entity, max_facts=5)
        assert len(profile.top_facts) == 5

    def test_profile_title(self):
        entity = Entity(identifier="dbr:X", labels=("The X",))
        assert build_profile(entity).title == "The X"

    def test_profile_from_graph_snapshot(self, tiny_kg: KnowledgeGraph):
        profile = build_profile(tiny_kg.entity("ex:F1"))
        assert profile.entity.identifier == "ex:F1"
        assert profile.external_url.endswith("/F1")
        assert profile.top_facts
