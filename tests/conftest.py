"""Shared fixtures for the test suite.

``tiny_kg`` is a small hand-built graph with exactly known contents, used
wherever tests assert precise numbers.  ``movie_kg`` / ``movie_system`` are
session-scoped instances of the synthetic movie dataset and the full PivotE
system, reused across test modules to keep the suite fast.
"""

from __future__ import annotations

import pytest

from repro import PivotE
from repro.datasets import small_academic_kg, small_movie_kg
from repro.features import SemanticFeatureIndex
from repro.kg import GraphBuilder, KnowledgeGraph


def build_tiny_kg() -> KnowledgeGraph:
    """A miniature film KG with exactly known structure.

    Films:    F1, F2, F3, F4 (type Film)
    Actors:   A1 (stars in F1, F2, F3), A2 (stars in F1, F2), A3 (stars in F4)
    Director: D1 (directs F1, F4)
    Genre:    G1 (F1, F2, F3), G2 (F4)
    """
    builder = GraphBuilder("tiny")
    for film, year in (("ex:F1", "1994"), ("ex:F2", "1995"), ("ex:F3", "1999"), ("ex:F4", "2000")):
        builder.entity(
            film,
            label=film.split(":")[1] + " Film",
            types=["ex:Film"],
            categories=["exc:Films"],
            attributes={"ex:year": year},
        )
    for actor in ("ex:A1", "ex:A2", "ex:A3"):
        builder.entity(actor, label=actor.split(":")[1] + " Actor", types=["ex:Actor"])
    builder.entity("ex:D1", label="D1 Director", types=["ex:Director"])
    builder.entity("ex:G1", label="Drama", types=["ex:Genre"])
    builder.entity("ex:G2", label="Comedy", types=["ex:Genre"])

    builder.edge("ex:F1", "ex:starring", "ex:A1")
    builder.edge("ex:F1", "ex:starring", "ex:A2")
    builder.edge("ex:F2", "ex:starring", "ex:A1")
    builder.edge("ex:F2", "ex:starring", "ex:A2")
    builder.edge("ex:F3", "ex:starring", "ex:A1")
    builder.edge("ex:F4", "ex:starring", "ex:A3")
    builder.edge("ex:F1", "ex:director", "ex:D1")
    builder.edge("ex:F4", "ex:director", "ex:D1")
    builder.edge("ex:F1", "ex:genre", "ex:G1")
    builder.edge("ex:F2", "ex:genre", "ex:G1")
    builder.edge("ex:F3", "ex:genre", "ex:G1")
    builder.edge("ex:F4", "ex:genre", "ex:G2")
    return builder.build()


@pytest.fixture
def tiny_kg() -> KnowledgeGraph:
    """Fresh tiny graph per test (cheap to build, safe to mutate)."""
    return build_tiny_kg()


@pytest.fixture(scope="session")
def movie_kg() -> KnowledgeGraph:
    """The small synthetic movie KG, shared across the session (read-only)."""
    return small_movie_kg()


@pytest.fixture(scope="session")
def academic_kg() -> KnowledgeGraph:
    """The small synthetic academic KG, shared across the session (read-only)."""
    return small_academic_kg()


@pytest.fixture(scope="session")
def movie_system(movie_kg: KnowledgeGraph) -> PivotE:
    """A fully built PivotE system over the movie KG (read-only)."""
    return PivotE(movie_kg)


@pytest.fixture
def tiny_feature_index(tiny_kg: KnowledgeGraph) -> SemanticFeatureIndex:
    """A semantic-feature index over the tiny graph."""
    return SemanticFeatureIndex.build(tiny_kg)
