"""Tests for repro.explore.query_state."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidOperationError
from repro.explore import ExplorationQuery
from repro.features import SemanticFeature

TOM_HANKS_STARRING = SemanticFeature("dbr:Tom_Hanks", "dbo:starring")


class TestConstruction:
    def test_empty_query(self):
        query = ExplorationQuery()
        assert query.is_empty
        assert not query.is_keyword_only

    def test_keyword_only(self):
        query = ExplorationQuery(keywords="forrest gump")
        assert query.is_keyword_only
        assert not query.is_empty

    def test_seed_deduplication(self):
        query = ExplorationQuery(seed_entities=("a", "b", "a"))
        assert query.seed_entities == ("a", "b")

    def test_feature_deduplication(self):
        query = ExplorationQuery(pinned_features=(TOM_HANKS_STARRING, TOM_HANKS_STARRING))
        assert query.pinned_features == (TOM_HANKS_STARRING,)


class TestManipulation:
    def test_add_entity_returns_new_query(self):
        query = ExplorationQuery()
        new = query.add_entity("dbr:Forrest_Gump")
        assert new is not query
        assert new.has_seed("dbr:Forrest_Gump")
        assert not query.has_seed("dbr:Forrest_Gump")

    def test_add_duplicate_entity_is_noop(self):
        query = ExplorationQuery(seed_entities=("a",))
        assert query.add_entity("a") is query

    def test_add_empty_entity_rejected(self):
        with pytest.raises(InvalidOperationError):
            ExplorationQuery().add_entity("")

    def test_remove_entity(self):
        query = ExplorationQuery(seed_entities=("a", "b"))
        assert query.remove_entity("a").seed_entities == ("b",)

    def test_remove_missing_entity_raises(self):
        with pytest.raises(InvalidOperationError):
            ExplorationQuery().remove_entity("a")

    def test_add_and_remove_feature(self):
        query = ExplorationQuery().add_feature(TOM_HANKS_STARRING)
        assert query.has_feature(TOM_HANKS_STARRING)
        assert not query.remove_feature(TOM_HANKS_STARRING).pinned_features

    def test_remove_missing_feature_raises(self):
        with pytest.raises(InvalidOperationError):
            ExplorationQuery().remove_feature(TOM_HANKS_STARRING)

    def test_add_duplicate_feature_is_noop(self):
        query = ExplorationQuery(pinned_features=(TOM_HANKS_STARRING,))
        assert query.add_feature(TOM_HANKS_STARRING) is query

    def test_with_keywords_and_domain(self):
        query = ExplorationQuery().with_keywords("gump").with_domain("dbo:Film")
        assert query.keywords == "gump"
        assert query.domain_type == "dbo:Film"

    def test_replace_seeds_and_clear_features(self):
        query = ExplorationQuery(
            seed_entities=("a",), pinned_features=(TOM_HANKS_STARRING,)
        )
        replaced = query.replace_seeds(["x", "y", "x"]).clear_features()
        assert replaced.seed_entities == ("x", "y")
        assert replaced.pinned_features == ()


class TestPresentation:
    def test_describe_empty(self):
        assert ExplorationQuery().describe() == "(empty query)"

    def test_describe_mentions_parts(self):
        query = ExplorationQuery(
            keywords="gump",
            seed_entities=("dbr:Forrest_Gump",),
            pinned_features=(TOM_HANKS_STARRING,),
            domain_type="dbo:Film",
        )
        text = query.describe()
        assert "gump" in text
        assert "dbr:Forrest_Gump" in text
        assert "Tom_Hanks" in text
        assert "dbo:Film" in text

    def test_signature_detects_equivalence(self):
        left = ExplorationQuery(keywords="Gump  ", seed_entities=("a",))
        right = ExplorationQuery(keywords="gump", seed_entities=("a",))
        assert left.signature() == right.signature()

    def test_signature_differs_for_different_seeds(self):
        assert (
            ExplorationQuery(seed_entities=("a",)).signature()
            != ExplorationQuery(seed_entities=("b",)).signature()
        )
