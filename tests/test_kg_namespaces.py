"""Tests for repro.kg.namespaces."""

from __future__ import annotations

import pytest

from repro.kg import NamespaceRegistry, label_from_identifier


class TestNamespaceRegistry:
    def test_default_prefixes_present(self):
        registry = NamespaceRegistry()
        assert "dbr" in registry
        assert "dbo" in registry
        assert len(registry) >= 5

    def test_expand_known_prefix(self):
        registry = NamespaceRegistry()
        assert registry.expand("dbr:Forrest_Gump") == "http://dbpedia.org/resource/Forrest_Gump"

    def test_expand_unknown_prefix_passthrough(self):
        registry = NamespaceRegistry()
        assert registry.expand("foo:Bar") == "foo:Bar"

    def test_expand_plain_identifier_passthrough(self):
        registry = NamespaceRegistry()
        assert registry.expand("Forrest_Gump") == "Forrest_Gump"

    def test_compact_roundtrip(self):
        registry = NamespaceRegistry()
        iri = registry.expand("dbo:starring")
        assert registry.compact(iri) == "dbo:starring"

    def test_compact_unknown_iri_passthrough(self):
        registry = NamespaceRegistry()
        assert registry.compact("http://example.org/x") == "http://example.org/x"

    def test_register_new_namespace(self):
        registry = NamespaceRegistry()
        registry.register("ex", "http://example.org/")
        assert registry.expand("ex:Thing") == "http://example.org/Thing"
        assert registry.compact("http://example.org/Thing") == "ex:Thing"

    def test_register_invalid_prefix(self):
        registry = NamespaceRegistry()
        with pytest.raises(ValueError):
            registry.register("bad:prefix", "http://example.org/")
        with pytest.raises(ValueError):
            registry.register("", "http://example.org/")

    def test_register_empty_base_iri(self):
        registry = NamespaceRegistry()
        with pytest.raises(ValueError):
            registry.register("ex", "")

    def test_split_with_prefix(self):
        registry = NamespaceRegistry()
        assert registry.split("dbr:Tom_Hanks") == ("dbr", "Tom_Hanks")

    def test_split_without_prefix(self):
        registry = NamespaceRegistry()
        assert registry.split("unprefixed") == ("", "unprefixed")

    def test_local_name(self):
        registry = NamespaceRegistry()
        assert registry.local_name("dbo:starring") == "starring"

    def test_iteration_yields_prefixes(self):
        registry = NamespaceRegistry()
        assert set(iter(registry)) == set(registry.prefixes)


class TestLabelFromIdentifier:
    def test_underscores_become_spaces(self):
        assert label_from_identifier("dbr:Forrest_Gump") == "Forrest Gump"

    def test_plain_name(self):
        assert label_from_identifier("Tom_Hanks") == "Tom Hanks"

    def test_iri_uses_last_segment(self):
        assert label_from_identifier("http://dbpedia.org/resource/Tom_Hanks") == "Tom Hanks"
