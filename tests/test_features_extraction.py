"""Tests for repro.features.extraction and feature_index."""

from __future__ import annotations

import pytest

from repro.exceptions import EntityNotFoundError
from repro.features import (
    Direction,
    SemanticFeature,
    SemanticFeatureIndex,
    anchor_type_directions,
    candidate_entities,
    entity_matches,
    feature_target_types,
    features_of_entities,
    features_of_entity,
    matching_entities,
)
from repro.kg import KnowledgeGraph

STARRING_A1 = SemanticFeature("ex:A1", "ex:starring", Direction.OBJECT_OF)
STARRING_A2 = SemanticFeature("ex:A2", "ex:starring", Direction.OBJECT_OF)
GENRE_G1 = SemanticFeature("ex:G1", "ex:genre", Direction.OBJECT_OF)
F1_STARS = SemanticFeature("ex:F1", "ex:starring", Direction.SUBJECT_OF)


class TestFeaturesOfEntity:
    def test_film_features_are_outgoing_object_of(self, tiny_kg: KnowledgeGraph):
        features = set(features_of_entity(tiny_kg, "ex:F1"))
        assert STARRING_A1 in features
        assert STARRING_A2 in features
        assert GENRE_G1 in features

    def test_actor_features_are_incoming_subject_of(self, tiny_kg: KnowledgeGraph):
        features = set(features_of_entity(tiny_kg, "ex:A1"))
        assert F1_STARS in features
        assert SemanticFeature("ex:F2", "ex:starring", Direction.SUBJECT_OF) in features

    def test_unknown_entity_raises(self, tiny_kg: KnowledgeGraph):
        with pytest.raises(EntityNotFoundError):
            features_of_entity(tiny_kg, "ex:nope")

    def test_feature_count_matches_degree(self, tiny_kg: KnowledgeGraph):
        assert len(features_of_entity(tiny_kg, "ex:F1")) == tiny_kg.degree("ex:F1")


class TestMatchingEntities:
    def test_object_of_matches_subjects(self, tiny_kg: KnowledgeGraph):
        # Films starring A1.
        assert matching_entities(tiny_kg, STARRING_A1) == {"ex:F1", "ex:F2", "ex:F3"}

    def test_subject_of_matches_objects(self, tiny_kg: KnowledgeGraph):
        # Entities F1 stars: its actors.
        assert matching_entities(tiny_kg, F1_STARS) == {"ex:A1", "ex:A2"}

    def test_unknown_feature_empty(self, tiny_kg: KnowledgeGraph):
        missing = SemanticFeature("ex:A1", "ex:nonexistent")
        assert matching_entities(tiny_kg, missing) == set()

    def test_entity_matches(self, tiny_kg: KnowledgeGraph):
        assert entity_matches(tiny_kg, "ex:F1", STARRING_A1)
        assert not entity_matches(tiny_kg, "ex:F4", STARRING_A1)


class TestAggregation:
    def test_features_of_entities_holders(self, tiny_kg: KnowledgeGraph):
        holders = features_of_entities(tiny_kg, ["ex:F1", "ex:F2"])
        assert holders[STARRING_A1] == {"ex:F1", "ex:F2"}
        assert holders[GENRE_G1] == {"ex:F1", "ex:F2"}

    def test_candidate_entities_ordered_by_overlap(self, tiny_kg: KnowledgeGraph):
        candidates = candidate_entities(
            tiny_kg, [STARRING_A1, STARRING_A2, GENRE_G1], exclude=["ex:F1"]
        )
        # F2 matches all three features, F3 matches two, F4 none.
        assert candidates[0] == "ex:F2"
        assert "ex:F1" not in candidates
        assert "ex:F4" not in candidates

    def test_candidate_entities_limit(self, tiny_kg: KnowledgeGraph):
        candidates = candidate_entities(tiny_kg, [STARRING_A1], limit=1)
        assert len(candidates) == 1

    def test_feature_target_types(self, tiny_kg: KnowledgeGraph):
        types = feature_target_types(tiny_kg, STARRING_A1)
        assert types == {"ex:Film": 3}

    def test_anchor_type_directions(self, tiny_kg: KnowledgeGraph):
        directions = anchor_type_directions(tiny_kg, "ex:F1")
        assert directions["ex:Actor"] == 2
        assert directions["ex:Director"] == 1
        assert directions["ex:Genre"] == 1


class TestSemanticFeatureIndex:
    def test_index_matches_direct_extraction(self, tiny_kg: KnowledgeGraph, tiny_feature_index: SemanticFeatureIndex):
        for entity in tiny_kg.entities():
            assert tiny_feature_index.features_of(entity) == frozenset(
                features_of_entity(tiny_kg, entity)
            )

    def test_entities_matching(self, tiny_feature_index: SemanticFeatureIndex):
        assert tiny_feature_index.entities_matching(STARRING_A1) == {"ex:F1", "ex:F2", "ex:F3"}
        assert tiny_feature_index.matching_count(STARRING_A1) == 3

    def test_holds(self, tiny_feature_index: SemanticFeatureIndex):
        assert tiny_feature_index.holds("ex:F1", STARRING_A1)
        assert not tiny_feature_index.holds("ex:F4", STARRING_A1)

    def test_unknown_entity_and_feature_empty(self, tiny_feature_index: SemanticFeatureIndex):
        assert tiny_feature_index.features_of("ex:ghost") == frozenset()
        assert tiny_feature_index.entities_matching(SemanticFeature("x", "y")) == set()

    def test_all_features_sorted_and_counted(self, tiny_feature_index: SemanticFeatureIndex):
        features = tiny_feature_index.all_features()
        assert features == sorted(features)
        assert tiny_feature_index.num_features() == len(features)

    def test_features_of_any(self, tiny_feature_index: SemanticFeatureIndex):
        holders = tiny_feature_index.features_of_any(["ex:F1", "ex:F4"])
        assert holders[SemanticFeature("ex:D1", "ex:director")] == {"ex:F1", "ex:F4"}

    def test_type_conditional_count(self, tiny_feature_index: SemanticFeatureIndex):
        intersection, population = tiny_feature_index.type_conditional_count(STARRING_A1, "ex:Film")
        assert (intersection, population) == (3, 4)

    def test_type_conditional_unknown_type(self, tiny_feature_index: SemanticFeatureIndex):
        assert tiny_feature_index.type_conditional_count(STARRING_A1, "ex:Nope") == (0, 0)

    def test_shared_features(self, tiny_feature_index: SemanticFeatureIndex):
        shared = tiny_feature_index.shared_features("ex:F1", "ex:F2")
        assert STARRING_A1 in shared and GENRE_G1 in shared
        assert SemanticFeature("ex:D1", "ex:director") not in shared

    def test_frequency_histogram(self, tiny_feature_index: SemanticFeatureIndex):
        histogram = tiny_feature_index.feature_frequency_histogram()
        assert sum(histogram.values()) == tiny_feature_index.num_features()

    def test_rebuild_after_graph_change(self, tiny_kg: KnowledgeGraph):
        index = SemanticFeatureIndex.build(tiny_kg)
        before = index.matching_count(STARRING_A1)
        tiny_kg.add("ex:F4", "ex:starring", "ex:A1")
        index.rebuild()
        assert index.matching_count(STARRING_A1) == before + 1
