"""Tests for repro.ranking.baselines."""

from __future__ import annotations

import pytest

from repro.exceptions import EntityNotFoundError, NoSeedEntitiesError
from repro.features import SemanticFeatureIndex
from repro.kg import KnowledgeGraph
from repro.ranking import (
    PersonalizedPageRankRanker,
    make_baselines,
)


@pytest.fixture
def baselines(tiny_kg: KnowledgeGraph, tiny_feature_index: SemanticFeatureIndex):
    return make_baselines(tiny_kg, tiny_feature_index)


class TestRegistry:
    def test_all_three_baselines_present(self, baselines):
        assert set(baselines) == {"jaccard", "co-occurrence", "ppr"}


class TestJaccard:
    def test_most_similar_film_first(self, baselines):
        ranked = baselines["jaccard"].rank(["ex:F1", "ex:F2"])
        assert ranked[0][0] == "ex:F3"

    def test_scores_in_unit_interval(self, baselines):
        for _, score in baselines["jaccard"].rank(["ex:F1"]):
            assert 0.0 < score <= 1.0

    def test_seeds_excluded(self, baselines):
        ids = [entity for entity, _ in baselines["jaccard"].rank(["ex:F1", "ex:F2"])]
        assert "ex:F1" not in ids and "ex:F2" not in ids

    def test_empty_seeds_raise(self, baselines):
        with pytest.raises(NoSeedEntitiesError):
            baselines["jaccard"].rank([])

    def test_unknown_seed_raises(self, baselines):
        with pytest.raises(EntityNotFoundError):
            baselines["jaccard"].rank(["ex:ghost"])


class TestCoOccurrence:
    def test_counts_shared_features(self, baselines):
        ranked = dict(baselines["co-occurrence"].rank(["ex:F1", "ex:F2"]))
        # F3 shares starring:A1 and genre:G1 with the seed union.
        assert ranked["ex:F3"] == 2.0
        # F4 shares only director:D1 (held by F1).
        assert ranked["ex:F4"] == 1.0

    def test_ordering(self, baselines):
        ranked = baselines["co-occurrence"].rank(["ex:F1", "ex:F2"])
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)


class TestPersonalizedPageRank:
    def test_scores_positive_and_ordered(self, baselines):
        ranked = baselines["ppr"].rank(["ex:F1"])
        assert ranked
        scores = [score for _, score in ranked]
        assert all(score > 0 for score in scores)
        assert scores == sorted(scores, reverse=True)

    def test_neighbours_score_higher_than_distant_entities(self, baselines):
        ranked = dict(baselines["ppr"].rank(["ex:F1"], top_k=20))
        # Direct neighbours (A1) receive more mass than two-hop entities (F3).
        assert ranked["ex:A1"] > ranked.get("ex:F3", 0.0)

    def test_parameter_validation(self, tiny_kg, tiny_feature_index):
        with pytest.raises(ValueError):
            PersonalizedPageRankRanker(tiny_kg, tiny_feature_index, damping=1.5)
        with pytest.raises(ValueError):
            PersonalizedPageRankRanker(tiny_kg, tiny_feature_index, iterations=0)

    def test_mass_approximately_conserved(self, tiny_kg, tiny_feature_index):
        ranker = PersonalizedPageRankRanker(tiny_kg, tiny_feature_index, iterations=50)
        ranked = ranker.rank(["ex:F1"], top_k=1000)
        total = sum(score for _, score in ranked)
        # Seeds keep some mass, so the off-seed total must stay below 1.
        assert 0.0 < total < 1.0


class TestComparativeBehaviour:
    def test_pivote_ranker_beats_cooccurrence_on_specificity(self, tiny_kg, tiny_feature_index):
        """Frequency-blind counting cannot distinguish specific from generic features."""
        from repro.ranking import EntityRanker

        # Add a generic feature shared by every film (country) so co-occurrence
        # counts it as heavily as starring.
        for film in ("ex:F1", "ex:F2", "ex:F3", "ex:F4"):
            tiny_kg.add(film, "ex:country", "ex:USA")
        index = SemanticFeatureIndex.build(tiny_kg)
        pivote = EntityRanker(tiny_kg, index)
        ranked = pivote.rank(["ex:F1", "ex:F2"])
        # The discriminability term keeps F3 (shares the specific actor) above
        # F4 (shares only the generic country and the director of F1).
        ids = [entity.entity_id for entity in ranked]
        assert ids.index("ex:F3") < ids.index("ex:F4")
