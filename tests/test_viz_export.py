"""Tests for repro.viz.export: JSON payloads of the UI artefacts."""

from __future__ import annotations

import json

import pytest

from repro.explore import (
    ExplorationSession,
    RecommendationEngine,
    SelectEntity,
    SubmitKeywords,
)
from repro.kg import KnowledgeGraph
from repro.viz import (
    build_heatmap,
    build_matrix_view,
    heatmap_to_dict,
    matrix_view_to_dict,
    path_to_dict,
    recommendation_to_dict,
    session_to_dict,
    write_json,
)


@pytest.fixture
def recommendation(tiny_kg: KnowledgeGraph):
    return RecommendationEngine(tiny_kg).recommend_for_seeds(["ex:F1", "ex:F2"])


class TestExports:
    def test_recommendation_payload(self, recommendation):
        payload = recommendation_to_dict(recommendation)
        assert payload["entities"]
        assert payload["features"]
        json.dumps(payload)  # must be JSON-serialisable

    def test_heatmap_payload(self, recommendation):
        heatmap = build_heatmap(recommendation.correlations)
        payload = heatmap_to_dict(heatmap)
        assert payload["num_levels"] == 7
        assert len(payload["levels"]) == len(payload["entities"])
        json.dumps(payload)

    def test_matrix_view_payload(self, tiny_kg, recommendation):
        heatmap = build_heatmap(recommendation.correlations)
        view = build_matrix_view(tiny_kg, recommendation, heatmap)
        payload = matrix_view_to_dict(view)
        assert payload["entities"][0]["label"]
        assert payload["features"][0]["notation"]
        assert "heatmap" in payload
        json.dumps(payload)

    def test_session_and_path_payloads(self):
        session = ExplorationSession("export")
        session.apply(SubmitKeywords("gump"))
        session.apply(SelectEntity("dbr:Forrest_Gump"))
        session_payload = session_to_dict(session)
        assert session_payload["session_id"] == "export"
        assert len(session_payload["timeline"]) == 2
        path_payload = path_to_dict(session.path)
        assert path_payload["nodes"]
        json.dumps(session_payload)
        json.dumps(path_payload)

    def test_write_json(self, tmp_path, recommendation):
        target = tmp_path / "rec.json"
        written = write_json(recommendation_to_dict(recommendation), target)
        assert written.exists()
        loaded = json.loads(written.read_text(encoding="utf-8"))
        assert loaded["entities"]
