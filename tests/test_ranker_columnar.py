"""Ranker columnar equivalence: the PR 8 kernels vs the scalar walks.

The contract of the columnar recommendation ranker
(``repro.features.columnar`` + ``repro.topk.kernels``): with
``RankingConfig.columnar`` on (the default) the entity accumulator runs
through the per-epoch feature tables and the ``columnar_rank`` /
``accumulate_rank`` kernels, and for every pruning mode, shard count and
feature-chunk schedule the rankings must be *exactly* the rankings the
scalar per-holder walk returns — same ids, same floats — and both must
equal the exhaustive reference.  The kernels only ever select survivor
supersets; the exact re-scoring epilogue owns the returned floats, so
any divergence here means a kernel pruned a true top-k entity.

The suites enforce that on a hub-skewed random KG (dense candidate
pools, the workload §2.3 targets), at the support-wrapper level where
the unpruned kernel must reproduce the full accumulator map bitwise,
and — via hypothesis — on arbitrary random KGs × pruning × chunking.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PRUNING_MODES, RankingConfig
from repro.datasets import RandomKGConfig, build_random_kg
from repro.explore import RecommendationEngine
from repro.features import SemanticFeatureIndex
from repro.topk import PruningStats

SHARD_COUNTS = (1, 2, 3)


def _entity_signature(results) -> list[tuple[str, float]]:
    return [(entity.entity_id, entity.score) for entity in results]


def _feature_signature(scored) -> list[tuple[str, float]]:
    return [(item.feature.notation(), item.score) for item in scored]


def _seeds(graph, count: int = 2) -> list[str]:
    largest = max(graph.types(), key=lambda t: (graph.type_count(t), t))
    return sorted(graph.entities_of_type(largest))[:count]


@pytest.fixture(scope="module")
def random_graph():
    return build_random_kg(
        RandomKGConfig(num_entities=140, seed=23, target_skew=1.4, avg_out_degree=6.0)
    )


@pytest.fixture(scope="module")
def feature_index(random_graph):
    return SemanticFeatureIndex.build(random_graph)


def _engine(graph, index, **knobs) -> RecommendationEngine:
    return RecommendationEngine(
        graph,
        feature_index=index,
        config=RankingConfig(recommendation_cache_size=0, **knobs),
    )


class TestEntityRankerEquivalence:
    """scalar == columnar == exhaustive across pruning × shards × chunking."""

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_rank_byte_identical(self, random_graph, feature_index, pruning, shards):
        seeds = _seeds(random_graph)
        columnar = _engine(
            random_graph, feature_index, pruning=pruning, shards=shards
        ).expander.entity_ranker
        scalar = _engine(
            random_graph, feature_index, pruning=pruning, shards=shards, columnar=False
        ).expander.entity_ranker
        expected = _entity_signature(columnar.rank_exhaustive(seeds))
        assert _entity_signature(columnar.rank(seeds)) == expected
        assert _entity_signature(scalar.rank(seeds)) == expected

    @pytest.mark.parametrize("feature_chunk", (1, 2, 3, 7))
    def test_blockmax_chunk_schedule_is_semantics_free(
        self, random_graph, feature_index, feature_chunk
    ):
        seeds = _seeds(random_graph)
        reference = _engine(random_graph, feature_index, pruning="off")
        chunked = _engine(
            random_graph,
            feature_index,
            pruning="blockmax",
            feature_chunk=feature_chunk,
        )
        assert _entity_signature(
            chunked.expander.entity_ranker.rank(seeds)
        ) == _entity_signature(reference.expander.entity_ranker.rank(seeds))

    def test_feature_ranker_is_arm_independent(self, random_graph, feature_index):
        """The columnar knob only touches entity scoring, never stage 1."""
        seeds = _seeds(random_graph)
        on = _engine(random_graph, feature_index)
        off = _engine(random_graph, feature_index, columnar=False)
        assert _feature_signature(
            on.expander.entity_ranker.feature_ranker.rank(seeds)
        ) == _feature_signature(off.expander.entity_ranker.feature_ranker.rank(seeds))


class TestSupportWrapperEquivalence:
    """The kernel wrappers against the scalar walks they replace."""

    @pytest.fixture()
    def query(self, random_graph, feature_index):
        ranker = _engine(random_graph, feature_index).expander.entity_ranker
        support = ranker.feature_ranker.probability_model.support()
        seeds = _seeds(random_graph)
        scored = ranker.feature_ranker.rank(seeds)
        candidates = ranker.candidates(seeds, scored)
        return support, candidates, scored

    def test_unpruned_kernel_reproduces_accumulators(self, query):
        support, candidates, scored = query
        expected = support.score_entities(candidates, scored)
        actual = support.score_entities_columnar(candidates, scored)
        assert actual is not None
        assert set(actual) == set(expected)
        # Partials are selection inputs, not returned scores: the matrix
        # reductions sum in a different order than the scalar walk, so
        # agreement is to the last ULP, not bitwise (the exact re-scoring
        # epilogue owns the floats callers ever see).
        assert all(
            math.isclose(value, expected[entity_id], rel_tol=1e-12, abs_tol=1e-300)
            for entity_id, value in actual.items()
        )

    def test_pruned_kernel_survivors_cover_the_top_k(self, query):
        support, candidates, scored = query
        full = support.score_entities(candidates, scored)
        survivors = support.score_entities_pruned_columnar(
            candidates, scored, 10, PruningStats()
        )
        assert survivors is not None and survivors
        # Survivors are a candidate subset and the margin-selected
        # superset retains the true top-10 by full-walk partials — the
        # exact property the re-scoring epilogue relies on.
        assert set(survivors) <= set(full)
        top = sorted(full.items(), key=lambda item: (-item[1], item[0]))[:10]
        assert set(dict(top)) <= set(survivors)

    def test_kernel_queries_counted_per_arm(self, query):
        support, candidates, scored = query
        stats = PruningStats()
        support.score_entities_pruned(candidates, scored, 10, stats)
        assert stats.kernel_queries == 0  # the scalar walk never kernels
        support.score_entities_pruned_columnar(candidates, scored, 10, stats)
        assert stats.kernel_queries == 1

    def test_unknown_candidate_falls_back_to_scalar(self, query):
        support, candidates, scored = query
        assert (
            support.score_entities_columnar([*candidates, "ex:not-indexed"], scored)
            is None
        )
        assert (
            support.score_entities_pruned_columnar(
                [*candidates, "ex:not-indexed"], scored, 10, PruningStats()
            )
            is None
        )


class TestEngineCounters:
    def test_columnar_engine_reports_kernel_queries(self, random_graph, feature_index):
        seeds = _seeds(random_graph)
        on = _engine(random_graph, feature_index)
        off = _engine(random_graph, feature_index, columnar=False)
        on.recommend_for_seeds(seeds)
        off.recommend_for_seeds(seeds)
        assert on.pruning_info()["kernel_queries"] > 0
        assert off.pruning_info()["kernel_queries"] == 0
        assert on.stats().columnar is True
        assert off.stats().columnar is False


# --------------------------------------------------------------------------- #
# Hypothesis: arbitrary random KGs × pruning × chunk schedule
# --------------------------------------------------------------------------- #
@given(
    num_entities=st.integers(min_value=30, max_value=90),
    kg_seed=st.integers(min_value=0, max_value=10_000),
    pruning=st.sampled_from(PRUNING_MODES),
    feature_chunk=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=12, deadline=None)
def test_rank_columnar_equals_scalar_on_random_kgs(
    num_entities, kg_seed, pruning, feature_chunk
):
    graph = build_random_kg(RandomKGConfig(num_entities=num_entities, seed=kg_seed))
    index = SemanticFeatureIndex.build(graph)
    seeds = _seeds(graph)
    if not seeds:
        return
    columnar = _engine(
        graph, index, pruning=pruning, feature_chunk=feature_chunk
    ).expander.entity_ranker
    scalar = _engine(
        graph, index, pruning=pruning, feature_chunk=feature_chunk, columnar=False
    ).expander.entity_ranker
    expected = _entity_signature(columnar.rank_exhaustive(seeds))
    assert _entity_signature(columnar.rank(seeds)) == expected
    assert _entity_signature(scalar.rank(seeds)) == expected
