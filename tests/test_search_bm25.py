"""Tests for repro.search.bm25: BM25 and BM25F baselines."""

from __future__ import annotations

import pytest

from repro.index import FieldedIndex
from repro.search import BM25FScorer, BM25FieldScorer, BM25Params, idf, parse_query


@pytest.fixture
def index() -> FieldedIndex:
    idx = FieldedIndex(["names", "categories"])
    idx.add_document("e:gump", {"names": ["forrest", "gump"], "categories": ["american", "film"]})
    idx.add_document("e:apollo", {"names": ["apollo", "13"], "categories": ["american", "film"]})
    idx.add_document("e:long", {"names": ["gump"] + ["filler"] * 30, "categories": ["film"]})
    return idx


class TestIdf:
    def test_rare_term_higher(self):
        assert idf(100, 1) > idf(100, 50)

    def test_never_negative(self):
        assert idf(10, 10) >= 0.0
        assert idf(10, 9) >= 0.0

    def test_zero_df(self):
        assert idf(100, 0) > idf(100, 1)


class TestBM25Params:
    def test_validation(self):
        with pytest.raises(ValueError):
            BM25Params(k1=-1)
        with pytest.raises(ValueError):
            BM25Params(b=2.0)

    def test_defaults(self):
        params = BM25Params()
        assert params.k1 == pytest.approx(1.2)
        assert params.b == pytest.approx(0.75)


class TestBM25FieldScorer:
    def test_exact_match_ranks_first(self, index: FieldedIndex):
        scorer = BM25FieldScorer(index, "names")
        results = scorer.search(parse_query("forrest gump"))
        assert results[0].doc_id == "e:gump"

    def test_length_normalisation_penalises_long_documents(self, index: FieldedIndex):
        scorer = BM25FieldScorer(index, "names")
        results = {r.doc_id: r.score for r in scorer.search(parse_query("gump"))}
        assert results["e:gump"] > results["e:long"]

    def test_non_matching_document_scores_zero(self, index: FieldedIndex):
        scorer = BM25FieldScorer(index, "names")
        scored = scorer.score_document(parse_query("apollo"), "e:gump")
        assert scored.score == 0.0

    def test_scores_descending(self, index: FieldedIndex):
        scorer = BM25FieldScorer(index, "categories")
        results = scorer.search(parse_query("american film"))
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)


class TestBM25FScorer:
    def test_combines_fields(self, index: FieldedIndex):
        scorer = BM25FScorer(index, {"names": 0.7, "categories": 0.3})
        results = scorer.search(parse_query("gump film"))
        assert results[0].doc_id in {"e:gump", "e:long"}
        assert results[0].score > 0

    def test_weight_normalisation_required(self, index: FieldedIndex):
        with pytest.raises(ValueError):
            BM25FScorer(index, {"names": 0.0, "categories": 0.0})

    def test_category_only_match(self, index: FieldedIndex):
        scorer = BM25FScorer(index, {"names": 0.5, "categories": 0.5})
        results = scorer.search(parse_query("american"))
        assert {r.doc_id for r in results} == {"e:gump", "e:apollo"}

    def test_top_k(self, index: FieldedIndex):
        scorer = BM25FScorer(index, {"names": 0.5, "categories": 0.5})
        assert len(scorer.search(parse_query("film"), top_k=2)) == 2
