"""Tests for repro.text: tokenization, normalization, analyzers."""

from __future__ import annotations

import pytest

from repro.text import (
    Analyzer,
    ENGLISH_STOPWORDS,
    NAME_ANALYZER,
    TEXT_ANALYZER,
    character_ngrams,
    is_stopword,
    light_stem,
    make_stopword_set,
    ngrams,
    normalize_text,
    normalize_token,
    split_camel_case,
    strip_accents,
    tokenize,
    tokenize_all,
)


class TestNormalization:
    def test_strip_accents(self):
        assert strip_accents("Amélie") == "Amelie"

    def test_split_camel_case(self):
        assert split_camel_case("PandaSearch") == "Panda Search"

    def test_normalize_token(self):
        assert normalize_token("Tom") == "tom"
        assert normalize_token("Café") == "cafe"

    def test_normalize_text_underscores_and_punctuation(self):
        assert normalize_text("Forrest_Gump (1994)") == "forrest gump 1994"

    def test_normalize_text_camel_case(self):
        assert normalize_text("PandaSearch") == "panda search"

    def test_light_stem_plural(self):
        assert light_stem("films") == "film"
        assert light_stem("movies") == "movy"  # light stemmer: ies -> y
        assert light_stem("actresses") == "actress"

    def test_light_stem_preserves_short_and_ss_us(self):
        assert light_stem("bus") == "bus"
        assert light_stem("class") == "class"
        assert light_stem("as") == "as"

    def test_light_stem_possessive(self):
        assert light_stem("hanks's") == "hanks"


class TestTokenizer:
    def test_tokenize_basic(self):
        assert tokenize("Forrest_Gump (1994 film)") == ["forrest", "gump", "1994", "film"]

    def test_tokenize_empty(self):
        assert tokenize("") == []
        assert tokenize("   ") == []

    def test_tokenize_all(self):
        assert tokenize_all(["Tom Hanks", "Gary Sinise"]) == ["tom", "hanks", "gary", "sinise"]

    def test_ngrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]
        assert ngrams(["a"], 2) == []

    def test_ngrams_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    def test_character_ngrams(self):
        grams = character_ngrams("Tom", 2)
        assert grams == ["to", "om"]

    def test_character_ngrams_short_text(self):
        assert character_ngrams("a", 3) == ["a"]
        assert character_ngrams("", 3) == []

    def test_character_ngrams_invalid_n(self):
        with pytest.raises(ValueError):
            character_ngrams("abc", 0)


class TestStopwords:
    def test_common_stopwords_present(self):
        assert "the" in ENGLISH_STOPWORDS
        assert "and" in ENGLISH_STOPWORDS

    def test_is_stopword_case_insensitive(self):
        assert is_stopword("The")
        assert not is_stopword("gump")

    def test_make_stopword_set_extra_and_remove(self):
        custom = make_stopword_set(extra=["film"], remove=["the"])
        assert "film" in custom
        assert "the" not in custom
        # The base set is untouched.
        assert "the" in ENGLISH_STOPWORDS


class TestAnalyzer:
    def test_text_analyzer_removes_stopwords_and_stems(self):
        assert TEXT_ANALYZER.analyze("the best films") == ["best", "film"]

    def test_name_analyzer_keeps_stopwords(self):
        assert NAME_ANALYZER.analyze("The Terminal") == ["the", "terminal"]

    def test_min_token_length(self):
        analyzer = Analyzer(remove_stopwords=False, stem=False, min_token_length=3)
        assert analyzer.analyze("a an the gump") == ["the", "gump"]

    def test_analyze_all_flattens(self):
        assert TEXT_ANALYZER.analyze_all(["American films", "War films"]) == [
            "american",
            "film",
            "war",
            "film",
        ]

    def test_analyze_query_falls_back_for_all_stopword_query(self):
        # "The Who" is entirely stopwords but must still produce terms.
        terms = TEXT_ANALYZER.analyze_query("The Who")
        assert terms == ["the", "who"]

    def test_analyze_query_normal_path(self):
        assert TEXT_ANALYZER.analyze_query("american films") == ["american", "film"]

    def test_analyzer_is_frozen_dataclass(self):
        with pytest.raises(Exception):
            TEXT_ANALYZER.stem = False  # type: ignore[misc]
