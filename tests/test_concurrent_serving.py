"""Concurrent serving: snapshot-isolated queries while the graph mutates.

The PR 5 contract: reader threads hammer search and recommendation while
a mutator thread grows the knowledge graph (and re-indexes through the
engines' copy-on-write mutation paths).  No reader may ever observe a
torn structure (``RuntimeError: dictionary changed size``, ``KeyError``
on a half-applied swap, …), every in-flight query finishes on the epoch
snapshot it pinned, and once mutations quiesce, fresh queries must agree
exactly with a system built from scratch on the final graph.
"""

from __future__ import annotations

import threading

from repro.config import RankingConfig, SearchConfig
from repro.explore import RecommendationEngine
from repro.features import SemanticFeatureIndex
from repro.search import SearchEngine, parse_query


def _run_threads(workers, duration: float = 1.0):
    """Run workers until the deadline; re-raise the first worker error."""
    stop = threading.Event()
    errors: list[BaseException] = []

    def guard(worker):
        def run():
            try:
                while not stop.is_set():
                    worker()
            except BaseException as error:  # noqa: BLE001 - reported below
                errors.append(error)
                stop.set()

        return run

    threads = [threading.Thread(target=guard(worker)) for worker in workers]
    for thread in threads:
        thread.start()
    stop.wait(duration)
    stop.set()
    for thread in threads:
        thread.join(timeout=10.0)
    if errors:
        raise errors[0]


class TestConcurrentSearch:
    def test_readers_survive_engine_mutations(self, tiny_kg):
        graph = tiny_kg
        engine = SearchEngine.from_graph(graph, SearchConfig(shards=2))
        counter = [0]
        lock = threading.Lock()

        def mutate():
            with lock:
                counter[0] += 1
                number = counter[0]
            entity = f"ex:NEW{number}"
            graph.add_label(entity, f"Fresh Film {number}")
            graph.add_type(entity, "ex:Film")
            graph.add(entity, "ex:starring", "ex:A1")
            engine.add_entity(entity)

        def read():
            hits = engine.search("film actor")
            # Every hit must resolve against the reader's pinned snapshot:
            # scores are finite floats produced by one consistent index.
            for hit in hits:
                assert hit.score == hit.score

        def read_batch():
            for hits in engine.search_many(["film", "drama actor", "film"]):
                assert isinstance(hits, list)

        _run_threads([mutate, read, read, read_batch])

        # Post-epoch visibility: the incremental path indexed the new
        # entities (no stale cache hit hides them) …
        incremental = [entity_id for entity_id, _ in (
            (h.entity_id, h.score) for h in engine.search("fresh film")
        )]
        assert any("NEW" in entity_id for entity_id in incremental)
        # … and after a full rebuild (which re-derives the *related*
        # entities' documents too — add_entity's documented scope is one
        # entity) the engine agrees exactly with one built from scratch.
        engine.build()
        fresh = SearchEngine.from_graph(graph, SearchConfig(shards=2))
        rebuilt = [(h.entity_id, h.score) for h in engine.search("fresh film")]
        scratch = [(h.entity_id, h.score) for h in fresh.search("fresh film")]
        assert rebuilt == scratch

    def test_inflight_snapshot_pinning(self, tiny_kg):
        """A scorer captured before a mutation keeps its epoch's results."""
        graph = tiny_kg
        engine = SearchEngine.from_graph(graph)
        pinned = engine.mlm_scorer  # the snapshot an in-flight query holds
        before = [(r.doc_id, r.score) for r in pinned.search_exhaustive(parse_query("film"))]
        graph.add_label("ex:NEWFILM", "Another Film")
        graph.add_type("ex:NEWFILM", "ex:Film")
        engine.add_entity("ex:NEWFILM")
        after_pinned = [(r.doc_id, r.score) for r in pinned.search_exhaustive(parse_query("film"))]
        assert after_pinned == before  # the old snapshot never moved
        current = [h.entity_id for h in engine.search("another film")]
        assert "ex:NEWFILM" in current  # the engine serves the new epoch


class TestConcurrentRecommendation:
    def test_readers_survive_graph_mutations(self, tiny_kg):
        graph = tiny_kg
        engine = RecommendationEngine(graph, config=RankingConfig(shards=2))
        counter = [0]
        lock = threading.Lock()

        def mutate():
            with lock:
                counter[0] += 1
                number = counter[0]
            entity = f"ex:NF{number}"
            graph.add_type(entity, "ex:Film")
            graph.add(entity, "ex:starring", "ex:A1")
            graph.add(entity, "ex:genre", "ex:G1")

        def read():
            recommendation = engine.recommend_for_seeds(["ex:F1"])
            for entity in recommendation.entities:
                assert entity.score == entity.score

        def read_batch():
            for payload in engine.recommend_many([["ex:F1"], ["ex:F1", "ex:F2"]]):
                assert payload.entities is not None

        _run_threads([mutate, read, read, read_batch])

        # Post-epoch correctness against a from-scratch system.
        fresh = RecommendationEngine(graph, config=RankingConfig(shards=2))
        got = engine.recommend_for_seeds(["ex:F1"])
        expected = fresh.recommend_for_seeds(["ex:F1"])
        assert [(e.entity_id, e.score) for e in got.entities] == [
            (e.entity_id, e.score) for e in expected.entities
        ]

    def test_feature_index_snapshot_pinning(self, tiny_kg):
        """A pinned snapshot keeps pre-mutation holder sets forever."""
        graph = tiny_kg
        index = SemanticFeatureIndex.build(graph)
        snapshot = index.snapshot()
        from repro.features import Direction, SemanticFeature

        starring_a1 = SemanticFeature("ex:A1", "ex:starring", Direction.OBJECT_OF)
        before = set(snapshot.holders_of(starring_a1))
        graph.add("ex:F4", "ex:starring", "ex:A1")
        # The live index refreshes; the pinned snapshot does not.
        assert "ex:F4" in index.holders_of(starring_a1)
        assert set(snapshot.holders_of(starring_a1)) == before

    def test_snapshot_pins_type_smoothing(self, tiny_kg):
        """Type tables are pinned: no epoch blend even on first lookup.

        Regression for the review finding: a pinned snapshot's
        ``type_conditional_count`` / ``dominant_type`` must reflect the
        snapshot's own epoch even when the *first* request for a pair
        arrives after a concurrent type mutation.
        """
        from repro.features import Direction, SemanticFeature

        graph = tiny_kg
        index = SemanticFeatureIndex.build(graph)
        snapshot = index.snapshot()
        starring_a1 = SemanticFeature("ex:A1", "ex:starring", Direction.OBJECT_OF)
        graph.add_type("ex:F9", "ex:Film")  # new Film member, no lookups yet
        fresh = index.snapshot()
        assert fresh is not snapshot
        old_count = snapshot.type_conditional_count(starring_a1, "ex:Film")
        new_count = fresh.type_conditional_count(starring_a1, "ex:Film")
        assert old_count == (3, 4)  # F1/F2/F3 star A1, four pre-mutation Films
        assert new_count == (3, 5)  # the new epoch sees the fifth Film
        assert snapshot.dominant_type("ex:F9") == ""  # untyped at this epoch
        assert fresh.dominant_type("ex:F9") == "ex:Film"

    def test_concurrent_refresh_races_produce_one_epoch(self, tiny_kg):
        """Parallel readers racing a stale index agree on the new epoch."""
        graph = tiny_kg
        index = SemanticFeatureIndex.build(graph)
        graph.add("ex:F2", "ex:starring", "ex:A3")
        snapshots = []
        barrier = threading.Barrier(4)

        def refresh():
            barrier.wait()
            snapshots.append(index.snapshot())

        threads = [threading.Thread(target=refresh) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(snapshot) for snapshot in snapshots}) == 1  # built once
        assert snapshots[0].epoch == graph.epoch


class TestConcurrentKnowledgeGraph:
    def test_locked_readers_never_tear(self, tiny_kg):
        graph = tiny_kg
        counter = [0]
        lock = threading.Lock()

        def mutate():
            with lock:
                counter[0] += 1
                number = counter[0]
            graph.add_type(f"ex:T{number}", "ex:Film")
            graph.add(f"ex:T{number}", "ex:starring", "ex:A1")
            graph.add_label(f"ex:T{number}", f"T {number}")

        def read():
            for entity in list(graph.entities())[:20]:
                graph.dominant_type(entity)
                graph.label(entity)
            graph.entities_of_type("ex:Film")
            graph.outgoing("ex:F1")

        _run_threads([mutate, read, read], duration=0.8)
        assert graph.num_entities() > 10
