"""Tests for repro.kg.triple: Triple and Literal primitives."""

from __future__ import annotations

import pytest

from repro.exceptions import InvalidTripleError
from repro.kg import Literal, Triple, make_triple


class TestLiteral:
    def test_plain_literal(self):
        literal = Literal("142 minutes")
        assert literal.value == "142 minutes"
        assert literal.datatype == "string"
        assert literal.language == ""

    def test_literal_with_datatype_and_language(self):
        literal = Literal("1994", datatype="integer", language="en")
        assert literal.datatype == "integer"
        assert literal.language == "en"

    def test_literal_str(self):
        assert str(Literal("hello")) == "hello"

    def test_non_string_value_rejected(self):
        with pytest.raises(InvalidTripleError):
            Literal(142)  # type: ignore[arg-type]

    def test_literal_equality_and_hash(self):
        assert Literal("x") == Literal("x")
        assert hash(Literal("x")) == hash(Literal("x"))
        assert Literal("x") != Literal("y")


class TestTriple:
    def test_entity_edge_triple(self):
        triple = Triple("dbr:Forrest_Gump", "dbo:starring", "dbr:Tom_Hanks")
        assert triple.is_entity_edge
        assert not triple.is_literal
        assert triple.object_value == "dbr:Tom_Hanks"

    def test_literal_triple(self):
        triple = Triple("dbr:Forrest_Gump", "dbo:runtime", Literal("142 minutes"))
        assert triple.is_literal
        assert not triple.is_entity_edge
        assert triple.object_value == "142 minutes"

    def test_empty_subject_rejected(self):
        with pytest.raises(InvalidTripleError):
            Triple("", "dbo:starring", "dbr:Tom_Hanks")

    def test_empty_predicate_rejected(self):
        with pytest.raises(InvalidTripleError):
            Triple("dbr:Forrest_Gump", "", "dbr:Tom_Hanks")

    def test_empty_object_identifier_rejected(self):
        with pytest.raises(InvalidTripleError):
            Triple("dbr:Forrest_Gump", "dbo:starring", "")

    def test_invalid_object_type_rejected(self):
        with pytest.raises(InvalidTripleError):
            Triple("dbr:Forrest_Gump", "dbo:starring", 3)  # type: ignore[arg-type]

    def test_reversed_swaps_subject_and_object(self):
        triple = Triple("a", "p", "b")
        reversed_ = triple.reversed()
        assert reversed_.subject == "b"
        assert reversed_.object == "a"
        assert reversed_.predicate == "p"

    def test_reversed_literal_raises(self):
        with pytest.raises(InvalidTripleError):
            Triple("a", "p", Literal("x")).reversed()

    def test_as_tuple(self):
        triple = Triple("a", "p", "b")
        assert triple.as_tuple() == ("a", "p", "b")

    def test_str_entity_edge(self):
        assert str(Triple("a", "p", "b")) == "<a, p, b>"

    def test_str_literal(self):
        assert str(Triple("a", "p", Literal("x"))) == '<a, p, "x">'

    def test_make_triple_helper(self):
        assert make_triple("a", "p", "b") == Triple("a", "p", "b")

    def test_triples_hashable_and_deduplicate(self):
        triples = {Triple("a", "p", "b"), Triple("a", "p", "b"), Triple("a", "p", "c")}
        assert len(triples) == 2
