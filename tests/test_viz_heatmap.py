"""Tests for repro.viz.heatmap: the seven-level heat map."""

from __future__ import annotations

import numpy as np

from repro.config import HeatmapConfig
from repro.explore import RecommendationEngine
from repro.features import SemanticFeature
from repro.kg import KnowledgeGraph
from repro.ranking.correlation import CorrelationMatrix
from repro.viz import build_heatmap


def make_matrix(values: np.ndarray) -> CorrelationMatrix:
    entities = tuple(f"e{i}" for i in range(values.shape[0]))
    features = tuple(SemanticFeature(f"a{j}", "p") for j in range(values.shape[1]))
    return CorrelationMatrix(entities=entities, features=features, values=values)


class TestBuildHeatmap:
    def test_seven_levels_by_default(self):
        values = np.linspace(0.0, 1.0, 21).reshape(3, 7)
        heatmap = build_heatmap(make_matrix(values))
        assert heatmap.num_levels == 7
        assert heatmap.levels.max() <= 6
        assert heatmap.levels.min() >= 0

    def test_zero_cells_get_level_zero(self):
        values = np.array([[0.0, 0.5], [1.0, 0.0]])
        heatmap = build_heatmap(make_matrix(values))
        assert heatmap.level("e0", "a0:p") == 0
        assert heatmap.level("e1", "a1:p") == 0

    def test_monotonic_with_correlation(self):
        values = np.array([[0.1, 0.5, 0.9]])
        heatmap = build_heatmap(make_matrix(values), HeatmapConfig(scale="linear"))
        levels = [heatmap.level("e0", f"a{j}:p") for j in range(3)]
        assert levels == sorted(levels)

    def test_strongest_value_gets_highest_level(self):
        values = np.linspace(0.01, 1.0, 70).reshape(7, 10)
        heatmap = build_heatmap(make_matrix(values), HeatmapConfig(scale="quantile"))
        assert heatmap.levels.max() == 6

    def test_constant_positive_matrix(self):
        values = np.full((2, 3), 0.5)
        heatmap = build_heatmap(make_matrix(values))
        # All equal positive values share one positive level; no crash.
        unique_levels = set(np.unique(heatmap.levels))
        assert len(unique_levels) == 1
        assert unique_levels != {0}

    def test_all_zero_matrix(self):
        values = np.zeros((2, 2))
        heatmap = build_heatmap(make_matrix(values))
        assert heatmap.levels.max() == 0

    def test_empty_matrix(self):
        values = np.zeros((0, 0))
        heatmap = build_heatmap(make_matrix(values))
        assert heatmap.shape == (0, 0)

    def test_linear_and_log_scales(self):
        values = np.array([[0.001, 0.01, 0.1, 1.0]])
        linear = build_heatmap(make_matrix(values), HeatmapConfig(scale="linear"))
        log = build_heatmap(make_matrix(values), HeatmapConfig(scale="log"))
        # The log scale spreads small values over more levels than linear.
        linear_levels = [linear.level("e0", f"a{j}:p") for j in range(4)]
        log_levels = [log.level("e0", f"a{j}:p") for j in range(4)]
        assert len(set(log_levels)) >= len(set(linear_levels))

    def test_custom_level_count(self):
        values = np.linspace(0.01, 1.0, 30).reshape(3, 10)
        heatmap = build_heatmap(make_matrix(values), HeatmapConfig(levels=4))
        assert heatmap.num_levels == 4
        assert heatmap.levels.max() <= 3

    def test_level_counts_sum_to_cells(self):
        values = np.random.default_rng(0).random((5, 6))
        heatmap = build_heatmap(make_matrix(values))
        assert sum(heatmap.level_counts().values()) == 30

    def test_strongest_cells_sorted(self):
        values = np.array([[0.1, 0.9], [0.5, 0.2]])
        heatmap = build_heatmap(make_matrix(values))
        cells = heatmap.strongest_cells(4)
        levels = [level for _, _, level in cells]
        assert levels == sorted(levels, reverse=True)


class TestHeatmapOnRealRecommendation:
    def test_heatmap_from_tiny_recommendation(self, tiny_kg: KnowledgeGraph):
        engine = RecommendationEngine(tiny_kg)
        recommendation = engine.recommend_for_seeds(["ex:F1", "ex:F2"])
        heatmap = build_heatmap(recommendation.correlations)
        assert heatmap.shape == recommendation.correlations.shape
        # Cells for features the entity actually holds are the darkest.
        strongest = heatmap.strongest_cells(1)[0]
        assert strongest[2] >= heatmap.num_levels - 2
