"""Tests for repro.eval.significance: paired significance tests."""

from __future__ import annotations

import random

import pytest

from repro.eval import (
    mean_difference,
    paired_bootstrap_test,
    paired_randomization_test,
)
from repro.exceptions import EvaluationError


class TestMeanDifference:
    def test_simple(self):
        assert mean_difference([1.0, 0.5], [0.5, 0.5]) == pytest.approx(0.25)

    def test_length_mismatch(self):
        with pytest.raises(EvaluationError):
            mean_difference([1.0], [0.5, 0.5])

    def test_empty(self):
        with pytest.raises(EvaluationError):
            mean_difference([], [])


class TestRandomizationTest:
    def test_clear_difference_is_significant(self):
        first = [0.9, 0.95, 0.85, 0.9, 0.92, 0.88, 0.93, 0.9]
        second = [0.2, 0.25, 0.3, 0.22, 0.28, 0.21, 0.26, 0.24]
        result = paired_randomization_test(first, second, iterations=2000, seed=1)
        assert result.significant_at_05
        assert result.mean_difference > 0.5
        assert result.p_value < 0.05

    def test_identical_vectors_not_significant(self):
        scores = [0.5, 0.6, 0.7, 0.4, 0.55]
        result = paired_randomization_test(scores, scores, iterations=500, seed=2)
        assert not result.significant_at_05
        assert result.mean_difference == pytest.approx(0.0)
        assert result.p_value == pytest.approx(1.0)

    def test_noise_difference_not_significant(self):
        rng = random.Random(3)
        first = [rng.random() for _ in range(10)]
        second = [value + rng.uniform(-0.01, 0.01) for value in first]
        result = paired_randomization_test(first, second, iterations=1000, seed=4)
        assert result.p_value > 0.05

    def test_deterministic_given_seed(self):
        first = [0.8, 0.7, 0.9]
        second = [0.5, 0.6, 0.4]
        a = paired_randomization_test(first, second, iterations=500, seed=9)
        b = paired_randomization_test(first, second, iterations=500, seed=9)
        assert a.p_value == b.p_value

    def test_invalid_iterations(self):
        with pytest.raises(EvaluationError):
            paired_randomization_test([1.0], [0.5], iterations=0)

    def test_describe(self):
        result = paired_randomization_test([0.9] * 5, [0.1] * 5, iterations=200, seed=5)
        text = result.describe()
        assert "p =" in text and "mean diff" in text


class TestBootstrapTest:
    def test_clear_difference_is_significant(self):
        first = [0.9, 0.95, 0.85, 0.9, 0.92, 0.88]
        second = [0.2, 0.25, 0.3, 0.22, 0.28, 0.21]
        result = paired_bootstrap_test(first, second, iterations=2000, seed=6)
        assert result.significant_at_05
        assert result.p_value < 0.05

    def test_reversed_difference_not_significant(self):
        first = [0.2, 0.25, 0.3]
        second = [0.9, 0.95, 0.85]
        result = paired_bootstrap_test(first, second, iterations=1000, seed=7)
        assert not result.significant_at_05
        assert result.p_value > 0.5

    def test_deterministic_given_seed(self):
        a = paired_bootstrap_test([0.9, 0.8], [0.5, 0.4], iterations=300, seed=8)
        b = paired_bootstrap_test([0.9, 0.8], [0.5, 0.4], iterations=300, seed=8)
        assert a.p_value == b.p_value

    def test_validation(self):
        with pytest.raises(EvaluationError):
            paired_bootstrap_test([1.0], [0.5, 0.4])
        with pytest.raises(EvaluationError):
            paired_bootstrap_test([1.0], [0.5], iterations=-1)


class TestOnRealComparison:
    def test_pivote_vs_cooccurrence_significance(self, movie_kg):
        """The E6 margin between PivotE and co-occurrence is statistically solid."""
        from repro.datasets import expansion_tasks_from_features
        from repro.eval import ExpansionEvaluator

        evaluator = ExpansionEvaluator(movie_kg, top_k=20)
        tasks = expansion_tasks_from_features(movie_kg, num_tasks=10, seeds_per_task=2)
        results = evaluator.compare(tasks)
        pivote_ap = [metrics["ap"] for metrics in results["pivote"].per_task]
        cooc_ap = [metrics["ap"] for metrics in results["co-occurrence"].per_task]
        outcome = paired_randomization_test(pivote_ap, cooc_ap, iterations=2000, seed=10)
        assert outcome.mean_difference > 0
        assert outcome.significant_at_05
