"""Unit tests of the shared threshold-pruned top-k execution layer."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topk import (
    BlockedSparseTermEntry,
    DenseTermEntry,
    PruningStats,
    SparseTermEntry,
    ThresholdHeap,
    maxscore_dense,
    maxscore_sparse,
    safety_slack,
    select_survivors,
    threshold_of,
)


class TestThresholdHeap:
    def test_no_threshold_until_full(self):
        heap = ThresholdHeap(3)
        heap.offer(1.0)
        heap.offer(5.0)
        assert heap.threshold == float("-inf")
        assert not heap.full
        heap.offer(3.0)
        assert heap.full
        assert heap.threshold == 1.0

    def test_threshold_is_kth_best(self):
        heap = ThresholdHeap(2)
        heap.offer_many([1.0, 9.0, 4.0, 7.0])
        assert heap.threshold == 7.0
        heap.offer(8.0)
        assert heap.threshold == 8.0
        heap.offer(2.0)  # below θ: no change
        assert heap.threshold == 8.0

    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            ThresholdHeap(0)


class TestThresholdOf:
    def test_matches_sorted_kth(self):
        values = [3.0, -1.0, 7.5, 7.5, 0.0]
        for k in range(1, len(values) + 1):
            assert threshold_of(values, k) == sorted(values, reverse=True)[k - 1]

    def test_short_input_has_no_threshold(self):
        assert threshold_of([1.0, 2.0], 3) == float("-inf")
        assert threshold_of([], 1) == float("-inf")
        assert threshold_of([1.0], 0) == float("-inf")


class TestThetaEdgeCases:
    """Hypothesis properties of the θ primitives (heap.py edge cases)."""

    @settings(max_examples=100, deadline=None, derandomize=True)
    @given(
        scores=st.lists(
            st.one_of(st.floats(allow_nan=False, allow_infinity=False), st.just(float("nan"))),
            max_size=30,
        ),
        k=st.integers(min_value=1, max_value=40),
    )
    def test_threshold_never_nan_and_stays_sound(self, scores, k):
        """NaN lower bounds cannot witness θ and must never poison it.

        A NaN θ would make every bound comparison false and silently
        discard all candidates, so ``threshold_of`` never returns NaN:
        on NaN-free input it is exactly the k-th largest score (or
        ``-inf`` when fewer than k exist, including the mid-traversal
        case of k exceeding the surviving pool); with NaNs present it is
        either the k-th largest comparable score or degrades to ``-inf``
        (pruning disabled — sound, never unsound).
        """
        threshold = threshold_of(scores, k)
        assert not math.isnan(threshold)
        comparable = sorted((s for s in scores if s == s), reverse=True)
        if len(comparable) < k:
            assert threshold == float("-inf")
        elif len(comparable) == len(scores):
            assert threshold == comparable[k - 1]
        else:
            assert threshold in (float("-inf"), comparable[k - 1])
        # θ must always be witnessed by k real scores (sound lower bound).
        if threshold != float("-inf"):
            assert sum(1 for s in comparable if s >= threshold) >= k

    @settings(max_examples=100, deadline=None, derandomize=True)
    @given(
        scores=st.lists(st.floats(allow_nan=False, allow_infinity=False), max_size=10),
        extra=st.integers(min_value=0, max_value=50),
    )
    def test_k_larger_than_pool_yields_no_threshold(self, scores, extra):
        """k beyond the candidate pool must never produce a live θ."""
        assert threshold_of(scores, len(scores) + 1 + extra) == float("-inf")

    @settings(max_examples=100, deadline=None, derandomize=True)
    @given(
        a=st.floats(allow_nan=False, allow_infinity=False, width=32),
        b=st.floats(allow_nan=False, allow_infinity=False, width=32),
    )
    def test_safety_slack_monotone_in_magnitude(self, a, b):
        """``safety_slack`` grows with |θ|: a larger θ needs a larger guard."""
        lo, hi = sorted((abs(a), abs(b)))
        assert safety_slack(lo) <= safety_slack(hi)
        assert safety_slack(a) == safety_slack(-a)
        assert safety_slack(a) > 0.0


class TestSafetySlack:
    def test_positive_and_scales_with_magnitude(self):
        assert safety_slack(0.0) > 0.0
        assert safety_slack(-50.0) == safety_slack(50.0)
        assert safety_slack(1e6) > safety_slack(1.0)

    def test_far_above_rounding_error(self):
        score = 123.456
        assert safety_slack(score) > 1000 * abs(score - (score + 1e-16))


class TestSelectSurvivors:
    def test_keeps_everything_within_budget(self):
        accumulators = {"b": 1.0, "a": 2.0}
        assert set(select_survivors(accumulators, 1, margin=1)) == {"a", "b"}

    def test_truncates_by_score_then_id(self):
        accumulators = {f"d{i}": float(i % 3) for i in range(10)}
        kept = select_survivors(accumulators, 2, margin=1)
        assert len(kept) == 3
        expected = sorted(accumulators.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
        assert kept == [doc for doc, _ in expected]


def _dense_entry(key: str, contributions: dict, floor: float, upper: float) -> DenseTermEntry:
    def accumulate(accumulators, cut):
        doomed = []
        for doc_id, partial in accumulators.items():
            if partial < cut:
                doomed.append(doc_id)
                continue
            accumulators[doc_id] = partial + contributions.get(doc_id, floor)
        for doc_id in doomed:
            del accumulators[doc_id]
        return accumulators

    return DenseTermEntry(key=key, floor=floor, upper=upper, accumulate=accumulate)


class TestMaxscoreDense:
    def test_no_pruning_when_k_covers_all(self):
        contributions = {f"d{i}": float(i) for i in range(5)}
        entry = _dense_entry("t", contributions, 0.0, 4.0)
        stats = PruningStats()
        survivors = maxscore_dense(contributions.keys(), [entry], 10, stats)
        assert set(survivors) == set(contributions)
        assert stats.candidates_pruned == 0

    def test_prunes_hopeless_candidates(self):
        # Term 1 separates candidates by 0..99; term 2 can only add 0.5,
        # so after term 1 everything far below the top-2 is hopeless.
        docs = [f"d{i:02d}" for i in range(100)]
        first = _dense_entry("t1", {doc: float(i) for i, doc in enumerate(docs)}, 0.0, 99.0)
        second = _dense_entry("t2", dict.fromkeys(docs, 0.5), 0.0, 0.5)
        third = _dense_entry("t3", dict.fromkeys(docs, 0.1), 0.0, 0.1)
        stats = PruningStats()
        survivors = maxscore_dense(docs, [first, second, third], 2, stats)
        assert {"d99", "d98"} <= set(survivors)
        assert stats.candidates_pruned > 0
        # Survivor values are exact sums unless the traversal stopped early.
        if stats.terms_skipped == 0:
            assert survivors["d99"] == 99.0 + 0.5 + 0.1

    def test_skips_remaining_terms_once_set_is_small(self):
        docs = ["a", "b", "c"]
        entries = [
            _dense_entry("t1", {"a": 5.0, "b": 4.0, "c": 3.0}, 0.0, 5.0),
            _dense_entry("t2", dict.fromkeys(docs, 1.0), 0.0, 1.0),
        ]
        stats = PruningStats()
        survivors = maxscore_dense(docs, entries, 3, stats)
        assert set(survivors) == set(docs)
        assert stats.terms_skipped == 2  # |candidates| <= k: nothing to do

    def test_empty_inputs(self):
        stats = PruningStats()
        assert maxscore_dense([], [_dense_entry("t", {}, 0.0, 1.0)], 5, stats) == {}
        assert maxscore_dense(["d"], [], 5, stats) == {"d": 0.0}


def _sparse_entry(key: str, postings: dict, upper: float) -> SparseTermEntry:
    def expand(accumulators):
        for doc_id, value in postings.items():
            accumulators[doc_id] = accumulators.get(doc_id, 0.0) + value

    def refine(accumulators):
        for doc_id in accumulators:
            value = postings.get(doc_id)
            if value is not None:
                accumulators[doc_id] += value

    return SparseTermEntry(key=key, upper=upper, expand=expand, refine=refine)


class TestMaxscoreSparse:
    def test_exact_totals_without_pruning_opportunity(self):
        entries = [
            _sparse_entry("t1", {"a": 2.0, "b": 1.0}, 2.0),
            _sparse_entry("t2", {"b": 3.0, "c": 0.5}, 3.0),
        ]
        stats = PruningStats()
        survivors = maxscore_sparse(entries, 10, stats)
        assert survivors == {"a": 2.0, "b": 4.0, "c": 0.5}
        assert stats.terms_skipped == 0

    def test_or_to_and_switch_skips_postings_walks(self):
        # One dominant term fills the heap; the tail terms cannot lift a
        # new document past θ, so their postings are only consulted for
        # documents already accumulated.
        heavy = {f"d{i:02d}": 10.0 + i for i in range(30)}
        light = {"zz": 0.1}  # would be a new doc, must not enter
        light_docs = dict.fromkeys(list(heavy)[:5], 0.1)
        light_docs.update(light)
        entries = [
            _sparse_entry("heavy", heavy, 40.0),
            _sparse_entry("light", light_docs, 0.1),
        ]
        stats = PruningStats()
        survivors = maxscore_sparse(entries, 5, stats)
        assert "zz" not in survivors
        assert stats.terms_skipped == 1
        # Refined survivors hold exact totals.
        top = sorted(survivors.items(), key=lambda kv: -kv[1])[0]
        assert top[1] == (10.0 + 29)  # d29 matched only the heavy term

    def test_empty(self):
        stats = PruningStats()
        assert maxscore_sparse([], 5, stats) == {}


def _blocked_entry(
    key: str, postings: dict, upper: float, block_size: int = 2
) -> BlockedSparseTermEntry:
    """A blocked sparse entry with per-block uppers from the actual values."""
    ids = sorted(postings)
    lasts: list[str] = []
    uppers: list[float] = []
    for start in range(0, len(ids), block_size):
        block = ids[start : start + block_size]
        lasts.append(block[-1])
        uppers.append(max(postings[doc_id] for doc_id in block))

    def expand(accumulators):
        for doc_id, value in postings.items():
            accumulators[doc_id] = accumulators.get(doc_id, 0.0) + value

    def refine(accumulators):
        for doc_id in accumulators:
            value = postings.get(doc_id)
            if value is not None:
                accumulators[doc_id] += value

    return BlockedSparseTermEntry(
        key=key,
        upper=upper,
        expand=expand,
        refine=refine,
        block_lasts=tuple(lasts),
        block_uppers=tuple(uppers),
        contribution=lambda doc_id: postings.get(doc_id, 0.0),
    )


def _top_k(accumulators: dict, k: int) -> list:
    return sorted(accumulators.items(), key=lambda kv: (-kv[1], kv[0]))[:k]


class TestMaxscoreSparseCounters:
    def test_candidates_total_counts_entrants_not_peak(self):
        """Regression: entrants after an eviction must still be counted.

        The old implementation tracked the *peak* accumulator count over
        the expand passes; documents expanded after an earlier eviction
        shrank the map below the peak were silently uncounted, so bench
        skip-ratio reports overstated pruning.
        """
        first = _sparse_entry("t1", {"a": 10.0, "b": 9.0, "c": -5.0}, 10.0)
        second = _sparse_entry("t2", {"z": 0.5}, 10.0)
        stats = PruningStats()
        survivors = maxscore_sparse([first, second], 1, stats)
        # "c" is evicted after the first pass (θ=10.0, remaining upper
        # 10.0), yet "z" still expands on the second pass: four distinct
        # accumulators entered the traversal while the peak size was 3.
        assert survivors == {"a": 10.0, "b": 9.0, "z": 0.5}
        assert stats.candidates_total == 4
        assert stats.candidates_pruned == 1


class TestMaxscoreSparseBlockmax:
    def test_matches_plain_refinement_totals(self):
        heavy = {f"d{i:02d}": 10.0 + i for i in range(30)}
        light = dict.fromkeys(list(heavy)[:5], 0.1)
        light["zz"] = 0.1
        entries_plain = [
            _sparse_entry("heavy", heavy, 40.0),
            _sparse_entry("light", light, 0.1),
        ]
        entries_blocked = [
            _blocked_entry("heavy", heavy, 40.0),
            _blocked_entry("light", light, 0.1),
        ]
        plain = maxscore_sparse(entries_plain, 5, PruningStats())
        stats = PruningStats()
        blocked = maxscore_sparse(entries_blocked, 5, stats, blockmax=True)
        assert "zz" not in blocked
        assert _top_k(blocked, 5) == _top_k(plain, 5)
        # Survivor totals stay exact under the galloping refinement.
        for doc_id, total in blocked.items():
            assert total == heavy[doc_id] + light.get(doc_id, 0.0)
        assert stats.terms_skipped == 1

    def test_block_bounds_evict_and_skip_blocks(self):
        # Ten close survivors; the refined term matches only one block,
        # so survivors outside it face a zero block bound and die where
        # the global bound (5.0) would have kept them alive.
        heavy = {f"d{i:02d}": 30.0 + i for i in range(10)}
        mid = {"d01": 5.0}
        tiny = dict.fromkeys(heavy, 0.05)
        entries = [
            _blocked_entry("heavy", heavy, 39.0),
            _blocked_entry("mid", mid, 5.0),
            _blocked_entry("tiny", tiny, 0.05, block_size=3),
        ]
        stats = PruningStats()
        survivors = maxscore_sparse(entries, 3, stats, blockmax=True)
        top = _top_k(survivors, 3)
        assert [doc_id for doc_id, _ in top] == ["d09", "d08", "d07"]
        for doc_id, total in top:
            assert total == heavy[doc_id] + mid.get(doc_id, 0.0) + tiny[doc_id]
        assert stats.blocks_total > 0
        assert stats.blocks_skipped > 0
        assert stats.candidates_pruned > 0

    def test_entries_without_blocks_fall_back_to_refine(self):
        heavy = {f"d{i:02d}": 10.0 + i for i in range(30)}
        light = dict.fromkeys(list(heavy)[:5], 0.1)
        entries = [
            _blocked_entry("heavy", heavy, 40.0),
            _sparse_entry("light", light, 0.1),  # no block summaries
        ]
        stats = PruningStats()
        survivors = maxscore_sparse(entries, 5, stats, blockmax=True)
        assert stats.blocks_total == 0
        for doc_id, total in survivors.items():
            assert total == heavy[doc_id] + light.get(doc_id, 0.0)

    @settings(max_examples=40, deadline=None, derandomize=True)
    @given(
        data=st.lists(
            st.dictionaries(
                st.sampled_from([f"d{i:02d}" for i in range(20)]),
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                max_size=20,
            ),
            min_size=1,
            max_size=5,
        ),
        top_k=st.integers(min_value=1, max_value=8),
        block_size=st.integers(min_value=1, max_value=4),
    )
    def test_random_property_matches_exhaustive_totals(self, data, top_k, block_size):
        """Survivors are a superset of the true top-k with near-exact totals.

        The driver may associate the same floating-point terms in a
        different order than a per-document sum, so callers re-score
        survivors exactly; the contract tested here is the one they rely
        on — no true top-k document is ever evicted, and survivor values
        agree with the exhaustive totals to within the safety slack.
        """
        totals: dict[str, float] = {}
        for postings in data:
            for doc_id, value in postings.items():
                totals[doc_id] = totals.get(doc_id, 0.0) + value
        entries = [
            _blocked_entry(f"t{i}", postings, max(postings.values()), block_size)
            for i, postings in enumerate(data)
            if postings
        ]
        survivors = maxscore_sparse(entries, top_k, PruningStats(), blockmax=True)
        true_top = {doc_id for doc_id, _ in _top_k(totals, top_k)}
        assert true_top <= set(survivors)
        for doc_id, total in survivors.items():
            assert total == pytest.approx(totals[doc_id], rel=1e-9, abs=1e-9)


class TestPruningStats:
    def test_counters_and_reset(self):
        stats = PruningStats()
        stats.queries += 2
        stats.groups_skipped += 3
        info = stats.as_dict()
        assert info["queries"] == 2
        assert info["groups_skipped"] == 3
        assert set(info) == set(PruningStats.__slots__)
        stats.reset()
        assert all(value == 0 for value in stats.as_dict().values())

    def test_repr_lists_counters(self):
        assert "queries=0" in repr(PruningStats())


class TestSlackGuardsBoundComparisons:
    def test_threshold_minus_slack_below_threshold(self):
        for value in (0.0, 1e-12, -37.5, 1e9):
            assert value - safety_slack(value) < value
            assert math.isfinite(value - safety_slack(value))
