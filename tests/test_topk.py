"""Unit tests of the shared threshold-pruned top-k execution layer."""

from __future__ import annotations

import math

import pytest

from repro.topk import (
    DenseTermEntry,
    PruningStats,
    SparseTermEntry,
    ThresholdHeap,
    maxscore_dense,
    maxscore_sparse,
    safety_slack,
    select_survivors,
    threshold_of,
)


class TestThresholdHeap:
    def test_no_threshold_until_full(self):
        heap = ThresholdHeap(3)
        heap.offer(1.0)
        heap.offer(5.0)
        assert heap.threshold == float("-inf")
        assert not heap.full
        heap.offer(3.0)
        assert heap.full
        assert heap.threshold == 1.0

    def test_threshold_is_kth_best(self):
        heap = ThresholdHeap(2)
        heap.offer_many([1.0, 9.0, 4.0, 7.0])
        assert heap.threshold == 7.0
        heap.offer(8.0)
        assert heap.threshold == 8.0
        heap.offer(2.0)  # below θ: no change
        assert heap.threshold == 8.0

    def test_rejects_non_positive_k(self):
        with pytest.raises(ValueError):
            ThresholdHeap(0)


class TestThresholdOf:
    def test_matches_sorted_kth(self):
        values = [3.0, -1.0, 7.5, 7.5, 0.0]
        for k in range(1, len(values) + 1):
            assert threshold_of(values, k) == sorted(values, reverse=True)[k - 1]

    def test_short_input_has_no_threshold(self):
        assert threshold_of([1.0, 2.0], 3) == float("-inf")
        assert threshold_of([], 1) == float("-inf")
        assert threshold_of([1.0], 0) == float("-inf")


class TestSafetySlack:
    def test_positive_and_scales_with_magnitude(self):
        assert safety_slack(0.0) > 0.0
        assert safety_slack(-50.0) == safety_slack(50.0)
        assert safety_slack(1e6) > safety_slack(1.0)

    def test_far_above_rounding_error(self):
        score = 123.456
        assert safety_slack(score) > 1000 * abs(score - (score + 1e-16))


class TestSelectSurvivors:
    def test_keeps_everything_within_budget(self):
        accumulators = {"b": 1.0, "a": 2.0}
        assert set(select_survivors(accumulators, 1, margin=1)) == {"a", "b"}

    def test_truncates_by_score_then_id(self):
        accumulators = {f"d{i}": float(i % 3) for i in range(10)}
        kept = select_survivors(accumulators, 2, margin=1)
        assert len(kept) == 3
        expected = sorted(accumulators.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
        assert kept == [doc for doc, _ in expected]


def _dense_entry(key: str, contributions: dict, floor: float, upper: float) -> DenseTermEntry:
    def accumulate(accumulators, cut):
        doomed = []
        for doc_id, partial in accumulators.items():
            if partial < cut:
                doomed.append(doc_id)
                continue
            accumulators[doc_id] = partial + contributions.get(doc_id, floor)
        for doc_id in doomed:
            del accumulators[doc_id]
        return accumulators

    return DenseTermEntry(key=key, floor=floor, upper=upper, accumulate=accumulate)


class TestMaxscoreDense:
    def test_no_pruning_when_k_covers_all(self):
        contributions = {f"d{i}": float(i) for i in range(5)}
        entry = _dense_entry("t", contributions, 0.0, 4.0)
        stats = PruningStats()
        survivors = maxscore_dense(contributions.keys(), [entry], 10, stats)
        assert set(survivors) == set(contributions)
        assert stats.candidates_pruned == 0

    def test_prunes_hopeless_candidates(self):
        # Term 1 separates candidates by 0..99; term 2 can only add 0.5,
        # so after term 1 everything far below the top-2 is hopeless.
        docs = [f"d{i:02d}" for i in range(100)]
        first = _dense_entry("t1", {doc: float(i) for i, doc in enumerate(docs)}, 0.0, 99.0)
        second = _dense_entry("t2", dict.fromkeys(docs, 0.5), 0.0, 0.5)
        third = _dense_entry("t3", dict.fromkeys(docs, 0.1), 0.0, 0.1)
        stats = PruningStats()
        survivors = maxscore_dense(docs, [first, second, third], 2, stats)
        assert {"d99", "d98"} <= set(survivors)
        assert stats.candidates_pruned > 0
        # Survivor values are exact sums unless the traversal stopped early.
        if stats.terms_skipped == 0:
            assert survivors["d99"] == 99.0 + 0.5 + 0.1

    def test_skips_remaining_terms_once_set_is_small(self):
        docs = ["a", "b", "c"]
        entries = [
            _dense_entry("t1", {"a": 5.0, "b": 4.0, "c": 3.0}, 0.0, 5.0),
            _dense_entry("t2", dict.fromkeys(docs, 1.0), 0.0, 1.0),
        ]
        stats = PruningStats()
        survivors = maxscore_dense(docs, entries, 3, stats)
        assert set(survivors) == set(docs)
        assert stats.terms_skipped == 2  # |candidates| <= k: nothing to do

    def test_empty_inputs(self):
        stats = PruningStats()
        assert maxscore_dense([], [_dense_entry("t", {}, 0.0, 1.0)], 5, stats) == {}
        assert maxscore_dense(["d"], [], 5, stats) == {"d": 0.0}


def _sparse_entry(key: str, postings: dict, upper: float) -> SparseTermEntry:
    def expand(accumulators):
        for doc_id, value in postings.items():
            accumulators[doc_id] = accumulators.get(doc_id, 0.0) + value

    def refine(accumulators):
        for doc_id in accumulators:
            value = postings.get(doc_id)
            if value is not None:
                accumulators[doc_id] += value

    return SparseTermEntry(key=key, upper=upper, expand=expand, refine=refine)


class TestMaxscoreSparse:
    def test_exact_totals_without_pruning_opportunity(self):
        entries = [
            _sparse_entry("t1", {"a": 2.0, "b": 1.0}, 2.0),
            _sparse_entry("t2", {"b": 3.0, "c": 0.5}, 3.0),
        ]
        stats = PruningStats()
        survivors = maxscore_sparse(entries, 10, stats)
        assert survivors == {"a": 2.0, "b": 4.0, "c": 0.5}
        assert stats.terms_skipped == 0

    def test_or_to_and_switch_skips_postings_walks(self):
        # One dominant term fills the heap; the tail terms cannot lift a
        # new document past θ, so their postings are only consulted for
        # documents already accumulated.
        heavy = {f"d{i:02d}": 10.0 + i for i in range(30)}
        light = {"zz": 0.1}  # would be a new doc, must not enter
        light_docs = dict.fromkeys(list(heavy)[:5], 0.1)
        light_docs.update(light)
        entries = [
            _sparse_entry("heavy", heavy, 40.0),
            _sparse_entry("light", light_docs, 0.1),
        ]
        stats = PruningStats()
        survivors = maxscore_sparse(entries, 5, stats)
        assert "zz" not in survivors
        assert stats.terms_skipped == 1
        # Refined survivors hold exact totals.
        top = sorted(survivors.items(), key=lambda kv: -kv[1])[0]
        assert top[1] == (10.0 + 29)  # d29 matched only the heavy term

    def test_empty(self):
        stats = PruningStats()
        assert maxscore_sparse([], 5, stats) == {}


class TestPruningStats:
    def test_counters_and_reset(self):
        stats = PruningStats()
        stats.queries += 2
        stats.groups_skipped += 3
        info = stats.as_dict()
        assert info["queries"] == 2
        assert info["groups_skipped"] == 3
        assert set(info) == set(PruningStats.__slots__)
        stats.reset()
        assert all(value == 0 for value in stats.as_dict().values())

    def test_repr_lists_counters(self):
        assert "queries=0" in repr(PruningStats())


class TestSlackGuardsBoundComparisons:
    def test_threshold_minus_slack_below_threshold(self):
        for value in (0.0, 1e-12, -37.5, 1e9):
            assert value - safety_slack(value) < value
            assert math.isfinite(value - safety_slack(value))
