"""Tests for repro.engine.explanation."""

from __future__ import annotations

import pytest

from repro.engine import ExplanationBuilder
from repro.features import SemanticFeatureIndex
from repro.kg import KnowledgeGraph
from repro.ranking import SemanticFeatureRanker


@pytest.fixture
def builder(tiny_kg: KnowledgeGraph, tiny_feature_index: SemanticFeatureIndex) -> ExplanationBuilder:
    return ExplanationBuilder(tiny_kg, tiny_feature_index)


class TestPairExplanations:
    def test_shared_actor_explanation(self, builder: ExplanationBuilder):
        explanation = builder.explain_pair("ex:F1", "ex:F2")
        assert "A1 Actor" in explanation.text
        assert "A2 Actor" in explanation.text
        assert len(explanation.shared_features) >= 3  # A1, A2, G1

    def test_no_shared_features(self, builder: ExplanationBuilder):
        explanation = builder.explain_pair("ex:F3", "ex:A3")
        assert "share no direct semantic features" in explanation.text
        assert explanation.shared_features == ()

    def test_max_features_limits_clauses(self, builder: ExplanationBuilder):
        explanation = builder.explain_pair("ex:F1", "ex:F2", max_features=1)
        # All shared features are still reported in the structured field.
        assert len(explanation.shared_features) >= 3

    def test_paper_example(self, movie_system):
        """Forrest Gump & Apollo 13: both performed by Tom Hanks and Gary Sinise."""
        explanation = movie_system.explainer.explain_pair(
            "dbr:Forrest_Gump", "dbr:Apollo_13_(film)"
        )
        assert "Tom Hanks" in explanation.text and "Gary Sinise" in explanation.text


class TestCellExplanations:
    def test_direct_cell(self, builder: ExplanationBuilder, tiny_kg, tiny_feature_index):
        ranker = SemanticFeatureRanker(tiny_kg, tiny_feature_index)
        scored = ranker.rank(["ex:F1", "ex:F2"])
        starring = next(s for s in scored if s.feature.anchor == "ex:A1")
        cell = builder.explain_cell("ex:F3", starring)
        assert cell.holds
        assert cell.correlation == pytest.approx(starring.score)
        assert "direct" in cell.evidence

    def test_smoothed_cell(self, builder: ExplanationBuilder, tiny_kg, tiny_feature_index):
        ranker = SemanticFeatureRanker(tiny_kg, tiny_feature_index)
        scored = ranker.rank(["ex:F1", "ex:F2"])
        starring_a2 = next(s for s in scored if s.feature.anchor == "ex:A2")
        cell = builder.explain_cell("ex:F3", starring_a2)
        assert not cell.holds
        assert 0 < cell.correlation < starring_a2.score
        assert "type-smoothed" in cell.evidence

    def test_recommendation_justification(self, builder: ExplanationBuilder, tiny_kg, tiny_feature_index):
        ranker = SemanticFeatureRanker(tiny_kg, tiny_feature_index)
        scored = ranker.rank(["ex:F1", "ex:F2"])
        text = builder.explain_recommendation_of("ex:F3", scored)
        assert "F3 Film" in text
        assert "recommended because" in text

    def test_justification_without_evidence(self, builder: ExplanationBuilder, tiny_kg, tiny_feature_index):
        text = builder.explain_recommendation_of("ex:A3", [])
        assert "no strong semantic features" in text
