"""Tests for repro.ranking.correlation: the entity x feature matrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features import SemanticFeatureIndex
from repro.kg import KnowledgeGraph
from repro.ranking import EntityRanker, build_correlation_matrix


@pytest.fixture
def ranked(tiny_kg: KnowledgeGraph, tiny_feature_index: SemanticFeatureIndex):
    ranker = EntityRanker(tiny_kg, tiny_feature_index)
    entities, features = ranker.rank_with_features(["ex:F1", "ex:F2"])
    model = ranker.feature_ranker.probability_model
    return model, entities, features


class TestCorrelationMatrix:
    def test_shape_matches_axes(self, ranked):
        model, entities, features = ranked
        matrix = build_correlation_matrix(model, entities, features)
        assert matrix.shape == (len(entities), len(features))

    def test_cell_values_match_model(self, ranked):
        model, entities, features = ranked
        matrix = build_correlation_matrix(model, entities, features)
        entity = entities[0].entity_id
        feature = features[0]
        expected = model.probability(feature.feature, entity) * feature.score
        assert matrix.value(entity, feature.feature) == pytest.approx(expected)

    def test_entity_row_and_feature_column(self, ranked):
        model, entities, features = ranked
        matrix = build_correlation_matrix(model, entities, features)
        row = matrix.entity_row(entities[0].entity_id)
        assert len(row) == len(features)
        column = matrix.feature_column(features[0].feature)
        assert len(column) == len(entities)

    def test_values_non_negative(self, ranked):
        model, entities, features = ranked
        matrix = build_correlation_matrix(model, entities, features)
        assert (matrix.values >= 0).all()

    def test_row_sums_equal_entity_scores(self, ranked):
        """The heat map is a decomposition of r(e, Q): rows sum to the score."""
        model, entities, features = ranked
        matrix = build_correlation_matrix(model, entities, features)
        for index, entity in enumerate(entities):
            assert float(matrix.values[index].sum()) == pytest.approx(entity.score, rel=1e-6)

    def test_shape_mismatch_rejected(self, ranked):
        from repro.ranking.correlation import CorrelationMatrix

        model, entities, features = ranked
        with pytest.raises(ValueError):
            CorrelationMatrix(
                entities=tuple(e.entity_id for e in entities),
                features=tuple(f.feature for f in features),
                values=np.zeros((1, 1)),
            )

    def test_unknown_entity_lookup_raises(self, ranked):
        model, entities, features = ranked
        matrix = build_correlation_matrix(model, entities, features)
        with pytest.raises(ValueError):
            matrix.value("ex:ghost", features[0].feature)
