"""Tests for repro.kg.paths."""

from __future__ import annotations

import pytest

from repro.exceptions import EntityNotFoundError
from repro.kg import (
    KnowledgeGraph,
    bfs_reachable,
    connecting_entities,
    paths_between,
    shortest_path,
)


class TestBfsReachable:
    def test_zero_hops_is_self(self, tiny_kg: KnowledgeGraph):
        assert bfs_reachable(tiny_kg, "ex:F1", max_hops=0) == {"ex:F1": 0}

    def test_one_hop_neighbours(self, tiny_kg: KnowledgeGraph):
        distances = bfs_reachable(tiny_kg, "ex:F1", max_hops=1)
        assert distances["ex:A1"] == 1
        assert distances["ex:D1"] == 1
        assert "ex:F2" not in distances

    def test_two_hops_reaches_sibling_films(self, tiny_kg: KnowledgeGraph):
        distances = bfs_reachable(tiny_kg, "ex:F1", max_hops=2)
        assert distances["ex:F2"] == 2
        assert distances["ex:F4"] == 2  # via D1

    def test_unknown_entity_raises(self, tiny_kg: KnowledgeGraph):
        with pytest.raises(EntityNotFoundError):
            bfs_reachable(tiny_kg, "ex:nope")


class TestShortestPath:
    def test_same_entity(self, tiny_kg: KnowledgeGraph):
        path = shortest_path(tiny_kg, "ex:F1", "ex:F1")
        assert path is not None and path.length == 0

    def test_one_hop(self, tiny_kg: KnowledgeGraph):
        path = shortest_path(tiny_kg, "ex:F1", "ex:A1")
        assert path is not None
        assert path.length == 1
        assert path.end == "ex:A1"

    def test_two_hops_via_shared_actor(self, tiny_kg: KnowledgeGraph):
        path = shortest_path(tiny_kg, "ex:F1", "ex:F2")
        assert path is not None
        assert path.length == 2
        assert path.entities()[1] in {"ex:A1", "ex:A2", "ex:G1"}

    def test_unreachable_within_bound(self, tiny_kg: KnowledgeGraph):
        assert shortest_path(tiny_kg, "ex:F1", "ex:A3", max_hops=1) is None

    def test_describe_contains_predicates(self, tiny_kg: KnowledgeGraph):
        path = shortest_path(tiny_kg, "ex:F1", "ex:A1")
        assert "ex:starring" in path.describe()


class TestConnectingEntities:
    def test_shared_actor_and_genre(self, tiny_kg: KnowledgeGraph):
        connections = connecting_entities(tiny_kg, "ex:F1", "ex:F2")
        anchors = {anchor for anchor, _, _ in connections}
        assert anchors == {"ex:A1", "ex:A2", "ex:G1"}

    def test_predicates_reported(self, tiny_kg: KnowledgeGraph):
        connections = connecting_entities(tiny_kg, "ex:F1", "ex:F2")
        for anchor, left_pred, right_pred in connections:
            assert left_pred in {"ex:starring", "ex:genre"}
            assert right_pred in {"ex:starring", "ex:genre"}

    def test_no_connection(self, tiny_kg: KnowledgeGraph):
        # F3 and A3 share no common neighbour.
        assert connecting_entities(tiny_kg, "ex:F3", "ex:A3") == []

    def test_excludes_endpoints(self, tiny_kg: KnowledgeGraph):
        connections = connecting_entities(tiny_kg, "ex:F1", "ex:A1")
        anchors = {anchor for anchor, _, _ in connections}
        assert "ex:F1" not in anchors and "ex:A1" not in anchors


class TestPathsBetween:
    def test_multiple_paths_found(self, tiny_kg: KnowledgeGraph):
        paths = paths_between(tiny_kg, "ex:F1", "ex:F2", max_hops=2)
        assert len(paths) >= 3  # via A1, A2 and G1
        assert all(path.end == "ex:F2" for path in paths)

    def test_limit_respected(self, tiny_kg: KnowledgeGraph):
        paths = paths_between(tiny_kg, "ex:F1", "ex:F2", max_hops=2, limit=2)
        assert len(paths) <= 2

    def test_max_hops_respected(self, tiny_kg: KnowledgeGraph):
        paths = paths_between(tiny_kg, "ex:F1", "ex:F2", max_hops=2)
        assert all(path.length <= 2 for path in paths)
