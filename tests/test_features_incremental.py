"""Incremental ``SemanticFeatureIndex`` refresh: delta == full rebuild.

The feature index tracks the graph's append-only triple log and applies
only the delta on epoch change (full rebuild past
``max_delta_fraction``).  These tests enforce the contract: a
delta-refreshed index is indistinguishable from a freshly built one.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import RandomKGConfig, build_random_kg
from repro.features import SemanticFeature, SemanticFeatureIndex
from repro.kg import KnowledgeGraph


def _assert_index_equals_fresh(index: SemanticFeatureIndex, graph: KnowledgeGraph) -> None:
    snapshot = index.snapshot()  # trigger the lazy refresh before inspecting
    fresh = SemanticFeatureIndex.build(graph)
    fresh_snapshot = fresh.snapshot()
    assert snapshot.entity_features == fresh_snapshot.entity_features
    assert snapshot.feature_entities == fresh_snapshot.feature_entities
    for feature in fresh.all_features()[:25]:
        for type_id in sorted(graph.types())[:5]:
            assert index.type_conditional_count(feature, type_id) == (
                fresh.type_conditional_count(feature, type_id)
            )


def _mutate(graph: KnowledgeGraph, rounds: int = 1) -> None:
    for number in range(rounds):
        graph.add(f"ex:new_{number}", "ex:linksTo", "ex:new_target")
        graph.add_type(f"ex:new_{number}", "ex:NewType")
        graph.add_label(f"ex:new_{number}", f"New {number}")
        graph.add("ex:new_target", "ex:linksTo", f"ex:new_{number}")
        graph.add_category(f"ex:new_{number}", "ex:category_new")
        graph.add_alias(f"ex:new_{number}", f"ex:new_{number}_alias")


class TestDeltaEqualsFullRebuild:
    def test_tiny_kg_small_delta(self, tiny_kg: KnowledgeGraph):
        index = SemanticFeatureIndex.build(tiny_kg)
        tiny_kg.add("ex:F1", "ex:starring", "ex:A2")
        tiny_kg.add_type("ex:F1", "ex:Blockbuster")
        assert index.epoch == tiny_kg.epoch  # triggers the refresh
        assert index.rebuild_info()["delta_rebuilds"] == 1
        _assert_index_equals_fresh(index, tiny_kg)

    def test_new_entities_and_aliases(self, tiny_kg: KnowledgeGraph):
        index = SemanticFeatureIndex.build(tiny_kg)
        _mutate(tiny_kg)
        index.epoch
        assert index.rebuild_info()["delta_rebuilds"] == 1
        assert index.rebuild_info()["full_rebuilds"] == 1
        _assert_index_equals_fresh(index, tiny_kg)

    def test_repeated_small_deltas(self, movie_kg: KnowledgeGraph):
        graph = movie_kg.copy()
        index = SemanticFeatureIndex.build(graph)
        for round_number in range(4):
            graph.add(f"dbr:Extra_{round_number}", "dbo:starring", "dbr:Tom_Hanks")
            _assert_index_equals_fresh(index, graph)
        assert index.rebuild_info()["delta_rebuilds"] == 4
        assert index.rebuild_info()["full_rebuilds"] == 1

    def test_delta_visible_through_public_accessors(self, tiny_kg: KnowledgeGraph):
        from repro.features import Direction

        index = SemanticFeatureIndex.build(tiny_kg)
        tiny_kg.add("ex:F9", "ex:starring", "ex:A1")
        starring_a1 = SemanticFeature("ex:A1", "ex:starring", Direction.OBJECT_OF)
        assert "ex:F9" in index.holders_of(starring_a1)
        assert index.holds("ex:F9", starring_a1)
        assert starring_a1 in index.features_of("ex:F9")


class TestFullRebuildFallback:
    def test_large_delta_triggers_full_rebuild(self, tiny_kg: KnowledgeGraph):
        index = SemanticFeatureIndex(tiny_kg, max_delta_fraction=0.05)
        index.rebuild()
        _mutate(tiny_kg, rounds=10)  # way past 5% of the tiny graph
        index.epoch
        info = index.rebuild_info()
        assert info["full_rebuilds"] == 2
        assert info["delta_rebuilds"] == 0
        _assert_index_equals_fresh(index, tiny_kg)

    def test_fraction_validation(self, tiny_kg: KnowledgeGraph):
        import pytest

        with pytest.raises(ValueError):
            SemanticFeatureIndex(tiny_kg, max_delta_fraction=1.5)

    def test_delta_counters_report_affected_entities(self, tiny_kg: KnowledgeGraph):
        index = SemanticFeatureIndex.build(tiny_kg)
        tiny_kg.add("ex:F3", "ex:starring", "ex:A3")  # genuinely new edge
        index.epoch
        assert index.rebuild_info()["delta_entities"] >= 2  # both endpoints


class TestDeltaEqualsFullRebuildProperty:
    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(
        kg_seed=st.integers(min_value=0, max_value=1000),
        num_entities=st.integers(min_value=15, max_value=60),
        extra_edges=st.integers(min_value=1, max_value=6),
    )
    def test_random_kg_delta(self, kg_seed: int, num_entities: int, extra_edges: int):
        graph = build_random_kg(RandomKGConfig(num_entities=num_entities, seed=kg_seed))
        index = SemanticFeatureIndex.build(graph)
        entities = sorted(graph.entities())
        for number in range(extra_edges):
            source = entities[(kg_seed + number) % len(entities)]
            target = entities[(kg_seed + 3 * number + 1) % len(entities)]
            graph.add(source, f"ex:delta_rel_{number % 2}", target)
            graph.add_type(source, "ex:DeltaType")
        snapshot = index.snapshot()
        fresh = SemanticFeatureIndex.build(graph).snapshot()
        assert snapshot.entity_features == fresh.entity_features
        assert snapshot.feature_entities == fresh.feature_entities
