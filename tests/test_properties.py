"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    average_precision,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)
from repro.features import Direction, SemanticFeature, SemanticFeatureIndex
from repro.index import InvertedIndex
from repro.kg import KnowledgeGraph, Literal, Triple
from repro.kg.io import parse_ntriples_line, triple_to_ntriples
from repro.ranking import FeatureProbabilityModel, SemanticFeatureRanker
from repro.search import dirichlet_probability, jelinek_mercer_probability
from repro.text import normalize_text, tokenize

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #
identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True).map(lambda s: f"ex:{s}")
predicates = st.sampled_from(["ex:p1", "ex:p2", "ex:p3"])
edge_triples = st.tuples(identifiers, predicates, identifiers).filter(lambda t: t[0] != t[2])


@st.composite
def small_graphs(draw) -> KnowledgeGraph:
    """Random small KGs with typed entities and edges."""
    kg = KnowledgeGraph("prop")
    edges = draw(st.lists(edge_triples, min_size=1, max_size=30))
    types = ["ex:TypeA", "ex:TypeB", "ex:TypeC"]
    for subject, predicate, obj in edges:
        kg.add(subject, predicate, obj)
    for index, entity in enumerate(sorted(kg.entities())):
        kg.add_type(entity, types[index % len(types)])
    return kg


# --------------------------------------------------------------------------- #
# KG invariants
# --------------------------------------------------------------------------- #
@given(small_graphs())
@settings(max_examples=30, deadline=None)
def test_outgoing_incoming_are_mirror_images(kg: KnowledgeGraph):
    """Every outgoing edge of s appears as an incoming edge of o and vice versa."""
    for entity in kg.entities():
        for predicate, target in kg.outgoing(entity):
            assert (predicate, entity) in kg.incoming(target)
        for predicate, source in kg.incoming(entity):
            assert (predicate, entity) in kg.outgoing(source)


@given(small_graphs())
@settings(max_examples=30, deadline=None)
def test_edge_count_consistency(kg: KnowledgeGraph):
    """num_edges equals the sum over predicates of their frequencies."""
    assert kg.num_edges() == sum(
        kg.predicate_frequency(predicate) for predicate in kg.edge_predicates()
    )


@given(small_graphs())
@settings(max_examples=30, deadline=None)
def test_duplicate_insertion_is_idempotent(kg: KnowledgeGraph):
    before = len(kg)
    for triple in list(kg.triples):
        assert kg.add_triple(triple) is False
    assert len(kg) == before


@given(edge_triples)
def test_ntriples_roundtrip_for_edges(edge):
    subject, predicate, obj = edge
    triple = Triple(subject, predicate, obj)
    assert parse_ntriples_line(triple_to_ntriples(triple)) == triple


@given(st.text(alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters='"\\\n\r'), max_size=30).filter(str.strip))
def test_ntriples_roundtrip_for_literals(value):
    triple = Triple("ex:s", "ex:p", Literal(value))
    parsed = parse_ntriples_line(triple_to_ntriples(triple))
    assert parsed is not None and parsed.object_value == value


# --------------------------------------------------------------------------- #
# Semantic feature invariants
# --------------------------------------------------------------------------- #
@given(small_graphs())
@settings(max_examples=25, deadline=None)
def test_feature_extension_matches_holders(kg: KnowledgeGraph):
    """E(pi) from the index is exactly the set of entities whose feature set contains pi."""
    index = SemanticFeatureIndex.build(kg)
    for feature in index.all_features():
        matching = index.entities_matching(feature)
        holders = {entity for entity in kg.entities() if feature in index.features_of(entity)}
        assert matching == holders


@given(small_graphs())
@settings(max_examples=25, deadline=None)
def test_probability_bounds_property(kg: KnowledgeGraph):
    """p(pi | e) always lies in (0, 1] and equals 1 exactly for holders."""
    index = SemanticFeatureIndex.build(kg)
    model = FeatureProbabilityModel(kg, index)
    features = index.all_features()[:10]
    entities = sorted(kg.entities())[:10]
    for feature in features:
        for entity in entities:
            probability = model.probability(feature, entity)
            assert 0.0 < probability <= 1.0
            if index.holds(entity, feature):
                assert probability == 1.0


@given(small_graphs())
@settings(max_examples=20, deadline=None)
def test_sf_scores_non_negative_and_sorted(kg: KnowledgeGraph):
    index = SemanticFeatureIndex.build(kg)
    ranker = SemanticFeatureRanker(kg, index)
    seeds = sorted(kg.entities())[:2]
    scored = ranker.rank(seeds, top_k=20)
    scores = [item.score for item in scored]
    assert all(score >= 0.0 for score in scores)
    assert scores == sorted(scores, reverse=True)


@given(st.text(max_size=50))
def test_semantic_feature_parse_never_crashes_on_valid_notation(text):
    feature = SemanticFeature(anchor="ex:a", predicate="ex:p", direction=Direction.SUBJECT_OF)
    assert SemanticFeature.parse(feature.notation()) == feature


# --------------------------------------------------------------------------- #
# Text and index invariants
# --------------------------------------------------------------------------- #
@given(st.text(max_size=80))
def test_tokenize_output_is_normalized(text):
    for token in tokenize(text):
        assert token == token.lower()
        assert " " not in token
        assert token  # non-empty


@given(st.text(max_size=80))
def test_normalize_text_idempotent(text):
    once = normalize_text(text)
    assert normalize_text(once) == once


@given(st.lists(st.sampled_from(["a", "b", "c", "d"]), max_size=30))
def test_inverted_index_frequencies_sum_to_length(terms):
    index = InvertedIndex()
    index.add_document("d", terms)
    assert index.document_length("d") == len(terms)
    assert sum(index.term_frequency(t, "d") for t in set(terms)) == len(terms)


# --------------------------------------------------------------------------- #
# Language model invariants
# --------------------------------------------------------------------------- #
@given(
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=500),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.1, max_value=5000),
)
def test_dirichlet_probability_bounds(tf, doc_len, collection_p, mu):
    tf = min(tf, doc_len)
    value = dirichlet_probability(tf, doc_len, collection_p, mu)
    assert 0.0 <= value <= 1.0 + 1e-9


@given(
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=1, max_value=500),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_jm_probability_bounds(tf, doc_len, collection_p, lam):
    tf = min(tf, doc_len)
    value = jelinek_mercer_probability(tf, doc_len, collection_p, lam)
    assert 0.0 <= value <= 1.0 + 1e-9


# --------------------------------------------------------------------------- #
# Metric invariants
# --------------------------------------------------------------------------- #
ranked_lists = st.lists(st.sampled_from([f"e{i}" for i in range(12)]), unique=True, max_size=12)
relevant_sets = st.sets(st.sampled_from([f"e{i}" for i in range(12)]), min_size=1, max_size=6)


@given(ranked_lists, relevant_sets, st.integers(min_value=1, max_value=15))
def test_metric_bounds(ranked, relevant, k):
    assert 0.0 <= precision_at_k(ranked, relevant, k) <= 1.0
    assert 0.0 <= recall_at_k(ranked, relevant, k) <= 1.0
    assert 0.0 <= average_precision(ranked, relevant) <= 1.0
    assert 0.0 <= ndcg_at_k(ranked, relevant, k) <= 1.0 + 1e-9


@given(relevant_sets)
def test_perfect_ranking_has_perfect_metrics(relevant):
    ranked = sorted(relevant)
    assert average_precision(ranked, relevant) == 1.0
    assert math.isclose(ndcg_at_k(ranked, relevant, len(ranked)), 1.0)
    assert recall_at_k(ranked, relevant, len(ranked)) == 1.0
