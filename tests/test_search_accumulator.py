"""Equivalence of accumulator-based top-k retrieval with exhaustive scoring.

The accumulator hot path (term-at-a-time traversal + bounded-heap top-k,
see ``repro.index.scoring_support``) must produce byte-identical rankings
to the score-all-then-sort reference path for every scorer, on every
dataset, under both smoothing strategies and the ``(-score, doc_id)``
tie-break.
"""

from __future__ import annotations

import pytest

from repro.config import SearchConfig
from repro.index import select_top_k, select_top_k_with_zero_fill
from repro.search import SearchEngine, parse_query

QUERIES = (
    "forrest gump",
    "drama",
    "film director",
    "the science of research",
    "names:gump",
    'gump "forrest gump" categories:drama',
    "a",
)

TOP_KS = (1, 5, 20, 10_000)


def _queries_for(graph, limit: int = 12):
    """Multi-term queries derived from the dataset's own labels."""
    queries = list(QUERIES)
    for entity_id in sorted(graph.entities())[:limit]:
        label = graph.label(entity_id)
        if label and label.strip():
            queries.append(label)
    return queries


def _assert_identical(fast_results, slow_results):
    assert len(fast_results) == len(slow_results)
    for fast, slow in zip(fast_results, slow_results):
        assert fast.doc_id == slow.doc_id
        assert fast.score == slow.score  # byte-identical, no tolerance
        assert dict(fast.term_scores) == dict(slow.term_scores)


@pytest.fixture(scope="module", params=["movie", "academic"])
def dataset_engine(request, movie_kg, academic_kg):
    graph = movie_kg if request.param == "movie" else academic_kg
    return graph, SearchEngine.from_graph(graph)


class TestAccumulatorEquivalence:
    def test_mlm_matches_exhaustive(self, dataset_engine):
        graph, engine = dataset_engine
        scorer = engine.mlm_scorer
        for raw in _queries_for(graph):
            try:
                query = parse_query(raw)
            except Exception:
                continue
            for top_k in TOP_KS:
                _assert_identical(
                    scorer.search(query, top_k=top_k),
                    scorer.search_exhaustive(query, top_k=top_k),
                )

    def test_single_field_matches_exhaustive(self, dataset_engine):
        graph, engine = dataset_engine
        scorer = engine.single_field_scorer("names")
        for raw in _queries_for(graph):
            query = parse_query(raw)
            for top_k in TOP_KS:
                _assert_identical(
                    scorer.search(query, top_k=top_k),
                    scorer.search_exhaustive(query, top_k=top_k),
                )

    def test_bm25_matches_exhaustive(self, dataset_engine):
        graph, engine = dataset_engine
        scorer = engine.bm25_names_scorer()
        for raw in _queries_for(graph):
            query = parse_query(raw)
            for top_k in TOP_KS:
                _assert_identical(
                    scorer.search(query, top_k=top_k),
                    scorer.search_exhaustive(query, top_k=top_k),
                )

    def test_bm25f_matches_exhaustive(self, dataset_engine):
        graph, engine = dataset_engine
        scorer = engine.bm25f_scorer()
        for raw in _queries_for(graph):
            query = parse_query(raw)
            for top_k in TOP_KS:
                _assert_identical(
                    scorer.search(query, top_k=top_k),
                    scorer.search_exhaustive(query, top_k=top_k),
                )

    def test_jelinek_mercer_smoothing_matches(self, movie_kg):
        config = SearchConfig(smoothing="jelinek-mercer", jm_lambda=0.3)
        engine = SearchEngine.from_graph(movie_kg, config=config)
        scorer = engine.mlm_scorer
        for raw in _queries_for(movie_kg, limit=6):
            query = parse_query(raw)
            _assert_identical(
                scorer.search(query, top_k=25),
                scorer.search_exhaustive(query, top_k=25),
            )

    def test_field_restrictions_match(self, movie_system):
        scorer = movie_system.search_engine.mlm_scorer
        query = parse_query("names:gump categories:drama forrest")
        _assert_identical(
            scorer.search(query, top_k=15), scorer.search_exhaustive(query, top_k=15)
        )

    def test_tiny_kg_all_scorers(self, tiny_kg):
        engine = SearchEngine.from_graph(tiny_kg)
        scorers = [
            engine.mlm_scorer,
            engine.single_field_scorer("names"),
            engine.bm25_names_scorer(),
            engine.bm25f_scorer(),
        ]
        query = parse_query("film drama actor")
        for scorer in scorers:
            for top_k in (1, 3, 100):
                _assert_identical(
                    scorer.search(query, top_k=top_k),
                    scorer.search_exhaustive(query, top_k=top_k),
                )


class TestEquivalenceAfterIndexMutation:
    def test_scorers_built_before_mutation_stay_equivalent(self, tiny_kg):
        """Both paths must agree even when the index grew under a live scorer.

        BM25 scorers snapshot N and average length at construction; the
        accumulator path must use the same snapshot, not fresh statistics
        (regression test for a divergence found in review).
        """
        engine = SearchEngine.from_graph(tiny_kg)
        scorers = [
            engine.mlm_scorer,
            engine.single_field_scorer("names"),
            engine.bm25_names_scorer(),
            engine.bm25f_scorer(),
        ]
        for number in range(5, 12):
            tiny_kg.add_label(f"ex:F{number}", f"F{number} Drama Film")
            tiny_kg.add_type(f"ex:F{number}", "ex:Film")
            engine.add_entity(f"ex:F{number}")
        for raw in ("film drama", "drama", "f5 film"):
            query = parse_query(raw)
            for scorer in scorers:
                for top_k in (3, 50):
                    _assert_identical(
                        scorer.search(query, top_k=top_k),
                        scorer.search_exhaustive(query, top_k=top_k),
                    )


class TestCachedStatisticsComponents:
    def test_collection_probability_memoised(self, tiny_kg):
        engine = SearchEngine.from_graph(tiny_kg)
        stats = engine.index.statistics()
        first = stats.collection_probability("names", "film")
        assert first > 0.0
        assert stats.collection_probability("names", "film") == first
        assert stats.collection_probability("names", "no-such-term") == 0.0

    def test_idf_memoised_and_matches_bm25(self, tiny_kg):
        from repro.search import idf as bm25_idf

        engine = SearchEngine.from_graph(tiny_kg)
        stats = engine.index.statistics()
        names = stats.field("names")
        expected = bm25_idf(names.document_count, names.document_frequency("film"))
        assert stats.idf("names", "film") == expected
        assert stats.idf("names", "film") == expected  # served from the memo

    def test_statistics_cached_per_epoch(self, tiny_kg):
        engine = SearchEngine.from_graph(tiny_kg)
        index = engine.index
        assert index.statistics() is index.statistics()
        epoch = index.epoch
        tiny_kg.add_label("ex:NEW", "New Entity")
        engine.add_entity("ex:NEW")
        assert index.epoch > epoch
        assert index.statistics().num_documents == index.num_documents


class TestTopKSelection:
    def test_select_orders_by_score_then_doc_id(self):
        accumulators = {"d3": 1.0, "d1": 2.0, "d2": 1.0, "d4": 3.0}
        assert select_top_k(accumulators, 3) == [("d4", 3.0), ("d1", 2.0), ("d2", 1.0)]

    def test_select_matches_full_sort_for_large_k(self):
        accumulators = {f"d{i}": float(i % 5) for i in range(50)}
        expected = sorted(accumulators.items(), key=lambda kv: (-kv[1], kv[0]))
        assert select_top_k(accumulators, 1000) == expected
        assert select_top_k(accumulators, 7) == expected[:7]

    def test_select_zero_k(self):
        assert select_top_k({"d1": 1.0}, 0) == []

    def test_zero_fill_appends_missing_candidates_by_doc_id(self):
        accumulators = {"d2": 1.5}
        result = select_top_k_with_zero_fill(accumulators, {"d1", "d2", "d3", "d4"}, 3)
        assert result == [("d2", 1.5), ("d1", 0.0), ("d3", 0.0)]

    def test_zero_fill_not_needed_when_heap_full(self):
        accumulators = {"d1": 2.0, "d2": 1.0}
        result = select_top_k_with_zero_fill(accumulators, {"d1", "d2", "d3"}, 2)
        assert result == [("d1", 2.0), ("d2", 1.0)]


class TestBM25ZeroScoredTail:
    def test_zero_scored_candidates_included(self, tiny_kg):
        """Docs matching only in unscored fields keep their 0.0-score tail rank."""
        engine = SearchEngine.from_graph(tiny_kg)
        scorer = engine.bm25_names_scorer()
        # "drama" appears in category/related fields of films but in the
        # names field only for the genre entity, so the candidate set is
        # larger than the set of names matches.
        query = parse_query("drama")
        fast = scorer.search(query, top_k=50)
        slow = scorer.search_exhaustive(query, top_k=50)
        _assert_identical(fast, slow)
        assert any(result.score == 0.0 for result in fast)
