"""Equivalence of accumulator-based top-k retrieval with exhaustive scoring.

The accumulator hot path (term-at-a-time traversal + bounded-heap top-k,
see ``repro.index.scoring_support``) must produce byte-identical rankings
to the score-all-then-sort reference path for every scorer, on every
dataset, under both smoothing strategies and the ``(-score, doc_id)``
tie-break.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SearchConfig
from repro.datasets import RandomKGConfig, build_random_kg
from repro.index import select_top_k, select_top_k_with_zero_fill
from repro.search import SearchEngine, parse_query

QUERIES = (
    "forrest gump",
    "drama",
    "film director",
    "the science of research",
    "names:gump",
    'gump "forrest gump" categories:drama',
    "a",
)

TOP_KS = (1, 5, 20, 10_000)


def _queries_for(graph, limit: int = 12):
    """Multi-term queries derived from the dataset's own labels."""
    queries = list(QUERIES)
    for entity_id in sorted(graph.entities())[:limit]:
        label = graph.label(entity_id)
        if label and label.strip():
            queries.append(label)
    return queries


def _assert_identical(fast_results, slow_results):
    assert len(fast_results) == len(slow_results)
    for fast, slow in zip(fast_results, slow_results):
        assert fast.doc_id == slow.doc_id
        assert fast.score == slow.score  # byte-identical, no tolerance
        assert dict(fast.term_scores) == dict(slow.term_scores)


@pytest.fixture(scope="module", params=["movie", "academic"])
def dataset_engine(request, movie_kg, academic_kg):
    graph = movie_kg if request.param == "movie" else academic_kg
    return graph, SearchEngine.from_graph(graph)


class TestAccumulatorEquivalence:
    def test_mlm_matches_exhaustive(self, dataset_engine):
        graph, engine = dataset_engine
        scorer = engine.mlm_scorer
        for raw in _queries_for(graph):
            try:
                query = parse_query(raw)
            except Exception:
                continue
            for top_k in TOP_KS:
                _assert_identical(
                    scorer.search(query, top_k=top_k),
                    scorer.search_exhaustive(query, top_k=top_k),
                )

    def test_single_field_matches_exhaustive(self, dataset_engine):
        graph, engine = dataset_engine
        scorer = engine.single_field_scorer("names")
        for raw in _queries_for(graph):
            query = parse_query(raw)
            for top_k in TOP_KS:
                _assert_identical(
                    scorer.search(query, top_k=top_k),
                    scorer.search_exhaustive(query, top_k=top_k),
                )

    def test_bm25_matches_exhaustive(self, dataset_engine):
        graph, engine = dataset_engine
        scorer = engine.bm25_names_scorer()
        for raw in _queries_for(graph):
            query = parse_query(raw)
            for top_k in TOP_KS:
                _assert_identical(
                    scorer.search(query, top_k=top_k),
                    scorer.search_exhaustive(query, top_k=top_k),
                )

    def test_bm25f_matches_exhaustive(self, dataset_engine):
        graph, engine = dataset_engine
        scorer = engine.bm25f_scorer()
        for raw in _queries_for(graph):
            query = parse_query(raw)
            for top_k in TOP_KS:
                _assert_identical(
                    scorer.search(query, top_k=top_k),
                    scorer.search_exhaustive(query, top_k=top_k),
                )

    def test_jelinek_mercer_smoothing_matches(self, movie_kg):
        config = SearchConfig(smoothing="jelinek-mercer", jm_lambda=0.3)
        engine = SearchEngine.from_graph(movie_kg, config=config)
        scorer = engine.mlm_scorer
        for raw in _queries_for(movie_kg, limit=6):
            query = parse_query(raw)
            _assert_identical(
                scorer.search(query, top_k=25),
                scorer.search_exhaustive(query, top_k=25),
            )

    def test_field_restrictions_match(self, movie_system):
        scorer = movie_system.search_engine.mlm_scorer
        query = parse_query("names:gump categories:drama forrest")
        _assert_identical(
            scorer.search(query, top_k=15), scorer.search_exhaustive(query, top_k=15)
        )

    def test_tiny_kg_all_scorers(self, tiny_kg):
        engine = SearchEngine.from_graph(tiny_kg)
        scorers = [
            engine.mlm_scorer,
            engine.single_field_scorer("names"),
            engine.bm25_names_scorer(),
            engine.bm25f_scorer(),
        ]
        query = parse_query("film drama actor")
        for scorer in scorers:
            for top_k in (1, 3, 100):
                _assert_identical(
                    scorer.search(query, top_k=top_k),
                    scorer.search_exhaustive(query, top_k=top_k),
                )


def _all_scorers(engine: SearchEngine):
    return [
        ("mlm", engine.mlm_scorer),
        ("single", engine.single_field_scorer("names")),
        ("bm25", engine.bm25_names_scorer()),
        ("bm25f", engine.bm25f_scorer()),
    ]


class TestMaxscorePruningEquivalence:
    """``pruning="maxscore"`` must be byte-identical to exhaustive scoring.

    The default engine configuration enables pruning, so the equivalence
    tests above already exercise it; these tests pin the contract down
    explicitly — pruned vs plain-accumulator vs exhaustive for all four
    scorers — and add the LM smoothing edge cases and the property-based
    random-graph check the threshold-pruning layer demands.
    """

    @pytest.mark.parametrize("mode", ["maxscore", "blockmax"])
    def test_pruned_equals_plain_accumulator_and_exhaustive(self, movie_kg, mode):
        pruned_engine = SearchEngine.from_graph(movie_kg, config=SearchConfig(pruning=mode))
        plain_engine = SearchEngine.from_graph(movie_kg, config=SearchConfig(pruning="off"))
        for raw in _queries_for(movie_kg, limit=8):
            query = parse_query(raw)
            for (_, pruned), (_, plain) in zip(
                _all_scorers(pruned_engine), _all_scorers(plain_engine)
            ):
                for top_k in (1, 5, 20, 10_000):
                    pruned_results = pruned.search(query, top_k=top_k)
                    _assert_identical(pruned_results, plain.search(query, top_k=top_k))
                    _assert_identical(pruned_results, pruned.search_exhaustive(query, top_k=top_k))

    @pytest.mark.parametrize(
        "smoothing_changes",
        [
            {"smoothing": "dirichlet", "dirichlet_mu": 0.5},
            {"smoothing": "dirichlet", "dirichlet_mu": 5000.0},
            {"smoothing": "jelinek-mercer", "jm_lambda": 0.0},
            {"smoothing": "jelinek-mercer", "jm_lambda": 1.0},
            {"smoothing": "jelinek-mercer", "jm_lambda": 0.5},
        ],
    )
    @pytest.mark.parametrize("mode", ["maxscore", "blockmax"])
    def test_lm_smoothing_edge_cases(self, movie_kg, smoothing_changes, mode):
        config = SearchConfig(pruning=mode, **smoothing_changes)
        engine = SearchEngine.from_graph(movie_kg, config=config)
        for scorer in (engine.mlm_scorer, engine.single_field_scorer("names")):
            for raw in _queries_for(movie_kg, limit=5):
                query = parse_query(raw)
                _assert_identical(
                    scorer.search(query, top_k=15),
                    scorer.search_exhaustive(query, top_k=15),
                )

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(
        kg_seed=st.integers(min_value=0, max_value=10_000),
        num_entities=st.integers(min_value=20, max_value=120),
        top_k=st.integers(min_value=1, max_value=30),
        smoothing=st.sampled_from(["dirichlet", "jelinek-mercer"]),
        pruning=st.sampled_from(["maxscore", "blockmax"]),
    )
    def test_random_kg_property(self, kg_seed, num_entities, top_k, smoothing, pruning):
        graph = build_random_kg(RandomKGConfig(num_entities=num_entities, seed=kg_seed))
        config = SearchConfig(pruning=pruning, smoothing=smoothing)
        engine = SearchEngine.from_graph(graph, config=config)
        entities = sorted(graph.entities())
        queries = [
            graph.label(entities[kg_seed % len(entities)]),
            graph.label(entities[0]) + " " + graph.label(entities[-1]),
        ]
        for raw in queries:
            query = parse_query(raw)
            for _, scorer in _all_scorers(engine):
                _assert_identical(
                    scorer.search(query, top_k=top_k),
                    scorer.search_exhaustive(query, top_k=top_k),
                )

    def test_pruning_counters_fire_at_scale(self):
        graph = build_random_kg(RandomKGConfig(num_entities=500, seed=42))
        engine = SearchEngine.from_graph(graph)
        entities = sorted(graph.entities())
        for entity_id in entities[:6]:
            query = parse_query(graph.label(entities[0]) + " " + graph.label(entity_id))
            engine.mlm_scorer.search(query, top_k=5)
        info = engine.pruning_info()
        assert info["queries"] > 0
        assert info["candidates_total"] > 0
        assert info["candidates_pruned"] > 0  # smoothing no longer scores everyone
        assert info["rescored"] > 0
        bm25 = engine.bm25_names_scorer()
        # Many rare terms fill the θ heap before the ubiquitous "entity"
        # token, so its 500-document postings walk is refined instead.
        long_query = parse_query(" ".join(graph.label(e) for e in entities[:8]))
        bm25.search(long_query, top_k=5)
        bm25_info = bm25.pruning_info()
        assert bm25_info["queries"] == 1
        assert bm25_info["terms_skipped"] + bm25_info["candidates_pruned"] > 0

    def test_blockmax_block_counters_fire_at_scale(self):
        """The galloping AND phase must actually skip posting blocks.

        Every label of the random KG shares the "entity" token, whose
        500-document posting list is refined in AND mode once the rare
        terms fill the θ heap; with block-max bounds attached, most of
        its blocks hold no survivor and are galloped over unprobed.
        """
        graph = build_random_kg(RandomKGConfig(num_entities=500, seed=42))
        engine = SearchEngine.from_graph(graph, config=SearchConfig(pruning="blockmax"))
        entities = sorted(graph.entities())
        bm25 = engine.bm25_names_scorer()
        long_query = parse_query(" ".join(graph.label(e) for e in entities[:8]))
        _assert_identical(
            bm25.search(long_query, top_k=5),
            bm25.search_exhaustive(long_query, top_k=5),
        )
        info = bm25.pruning_info()
        assert info["terms_skipped"] > 0
        assert info["blocks_total"] > 0
        assert info["blocks_skipped"] > 0
        bm25f = engine.bm25f_scorer()
        _assert_identical(
            bm25f.search(long_query, top_k=5),
            bm25f.search_exhaustive(long_query, top_k=5),
        )
        assert bm25f.pruning_info()["blocks_skipped"] > 0

    def test_blockmax_theta_priming_prunes_no_less_than_maxscore(self):
        """The subset-pool θ prime may only tighten the dense traversal."""
        graph = build_random_kg(RandomKGConfig(num_entities=500, seed=42))
        engines = {
            mode: SearchEngine.from_graph(graph, config=SearchConfig(pruning=mode))
            for mode in ("maxscore", "blockmax")
        }
        entities = sorted(graph.entities())
        for entity_id in entities[:6]:
            query = parse_query(graph.label(entities[0]) + " " + graph.label(entity_id))
            for engine in engines.values():
                engine.mlm_scorer.search(query, top_k=5)
        primed = engines["blockmax"].pruning_info()
        unprimed = engines["maxscore"].pruning_info()
        assert primed["candidates_pruned"] >= unprimed["candidates_pruned"]
        assert primed["candidates_pruned"] > 0

    def test_pruning_off_disables_counters(self, movie_kg):
        engine = SearchEngine.from_graph(movie_kg, config=SearchConfig(pruning="off"))
        engine.search("forrest gump")
        assert engine.pruning_info()["queries"] == 0

    def test_invalid_pruning_mode_rejected(self):
        with pytest.raises(ValueError):
            SearchConfig(pruning="wand")


class TestEquivalenceAfterIndexMutation:
    def test_scorers_built_before_mutation_stay_equivalent(self, tiny_kg):
        """Both paths must agree even when the index grew under a live scorer.

        BM25 scorers snapshot N and average length at construction; the
        accumulator path must use the same snapshot, not fresh statistics
        (regression test for a divergence found in review).
        """
        engine = SearchEngine.from_graph(tiny_kg)
        scorers = [
            engine.mlm_scorer,
            engine.single_field_scorer("names"),
            engine.bm25_names_scorer(),
            engine.bm25f_scorer(),
        ]
        for number in range(5, 12):
            tiny_kg.add_label(f"ex:F{number}", f"F{number} Drama Film")
            tiny_kg.add_type(f"ex:F{number}", "ex:Film")
            engine.add_entity(f"ex:F{number}")
        for raw in ("film drama", "drama", "f5 film"):
            query = parse_query(raw)
            for scorer in scorers:
                for top_k in (3, 50):
                    _assert_identical(
                        scorer.search(query, top_k=top_k),
                        scorer.search_exhaustive(query, top_k=top_k),
                    )


class TestBoundCacheAcrossScorerSnapshots:
    def test_bm25f_scorers_with_different_snapshots_stay_sound(self, tiny_kg):
        """The memoised bound key must include the scorer's avg-length snapshot.

        Two BM25F scorers built before and after index growth share the
        epoch-current statistics object; a bound memoised by the newer
        scorer (smaller averages) would be unsound for the older one and
        could prune a true top-k document (regression test for a review
        finding).
        """
        engine = SearchEngine.from_graph(tiny_kg)
        old_scorer = engine.bm25f_scorer()
        for number in range(20, 29):
            tiny_kg.add_label(f"ex:S{number}", f"S{number} drama")
            tiny_kg.add_type(f"ex:S{number}", "ex:Film")
            engine.add_entity(f"ex:S{number}")
        new_scorer = engine.bm25f_scorer()
        for raw in ("drama film", "s20 drama", "film s21 drama"):
            query = parse_query(raw)
            # The newer snapshot memoises its bounds first ...
            new_scorer.search(query, top_k=5)
            # ... and the older scorer must still match its own exhaustive path.
            for scorer in (old_scorer, new_scorer):
                for top_k in (2, 5, 50):
                    _assert_identical(
                        scorer.search(query, top_k=top_k),
                        scorer.search_exhaustive(query, top_k=top_k),
                    )


class TestBlockBoundCacheAcrossScorerSnapshots:
    def test_blockmax_scorers_with_different_snapshots_stay_sound(self, tiny_kg):
        """The memoised per-block values must be idf-free.

        Like the scalar bounds, the block memo key cannot carry the
        construction-time document count: two scorers built before and
        after index growth share the epoch-current statistics object, so
        the cached per-block values are the weight-independent parts and
        each scorer multiplies its own idf snapshot outside the memo.  A
        weight-scaled cache entry from the older scorer (larger idf per
        term) would otherwise serve the newer one, or vice versa.
        """
        engine = SearchEngine.from_graph(tiny_kg, config=SearchConfig(pruning="blockmax"))
        old_scorers = [engine.bm25_names_scorer(), engine.bm25f_scorer()]
        for number in range(40, 49):
            tiny_kg.add_label(f"ex:B{number}", f"B{number} drama film")
            tiny_kg.add_type(f"ex:B{number}", "ex:Film")
            engine.add_entity(f"ex:B{number}")
        new_scorers = [engine.bm25_names_scorer(), engine.bm25f_scorer()]
        for raw in ("drama film", "b40 drama", "film b41 drama b42 b43 b44"):
            query = parse_query(raw)
            # The older snapshot memoises its per-term blocks first ...
            for scorer in old_scorers:
                scorer.search(query, top_k=3)
            # ... and both snapshots must still match their own exhaustive
            # paths byte-for-byte.
            for scorer in (*old_scorers, *new_scorers):
                for top_k in (2, 5, 50):
                    _assert_identical(
                        scorer.search(query, top_k=top_k),
                        scorer.search_exhaustive(query, top_k=top_k),
                    )


class TestCachedStatisticsComponents:
    def test_collection_probability_memoised(self, tiny_kg):
        engine = SearchEngine.from_graph(tiny_kg)
        stats = engine.index.statistics()
        first = stats.collection_probability("names", "film")
        assert first > 0.0
        assert stats.collection_probability("names", "film") == first
        assert stats.collection_probability("names", "no-such-term") == 0.0

    def test_idf_memoised_and_matches_bm25(self, tiny_kg):
        from repro.search import idf as bm25_idf

        engine = SearchEngine.from_graph(tiny_kg)
        stats = engine.index.statistics()
        names = stats.field("names")
        expected = bm25_idf(names.document_count, names.document_frequency("film"))
        assert stats.idf("names", "film") == expected
        assert stats.idf("names", "film") == expected  # served from the memo

    def test_statistics_cached_per_epoch(self, tiny_kg):
        engine = SearchEngine.from_graph(tiny_kg)
        index = engine.index
        assert index.statistics() is index.statistics()
        epoch = index.epoch
        tiny_kg.add_label("ex:NEW", "New Entity")
        engine.add_entity("ex:NEW")
        # Mutations publish a copy-on-write successor (snapshot isolation):
        # the captured instance is untouched, the engine's current index
        # carries the advanced epoch and fresh statistics.
        assert index.epoch == epoch
        assert engine.index is not index
        assert engine.index.epoch > epoch
        assert engine.index.statistics().num_documents == engine.index.num_documents
        assert "ex:NEW" not in index


class TestTopKSelection:
    def test_select_orders_by_score_then_doc_id(self):
        accumulators = {"d3": 1.0, "d1": 2.0, "d2": 1.0, "d4": 3.0}
        assert select_top_k(accumulators, 3) == [("d4", 3.0), ("d1", 2.0), ("d2", 1.0)]

    def test_select_matches_full_sort_for_large_k(self):
        accumulators = {f"d{i}": float(i % 5) for i in range(50)}
        expected = sorted(accumulators.items(), key=lambda kv: (-kv[1], kv[0]))
        assert select_top_k(accumulators, 1000) == expected
        assert select_top_k(accumulators, 7) == expected[:7]

    def test_select_zero_k(self):
        assert select_top_k({"d1": 1.0}, 0) == []

    def test_zero_fill_appends_missing_candidates_by_doc_id(self):
        accumulators = {"d2": 1.5}
        result = select_top_k_with_zero_fill(accumulators, {"d1", "d2", "d3", "d4"}, 3)
        assert result == [("d2", 1.5), ("d1", 0.0), ("d3", 0.0)]

    def test_zero_fill_not_needed_when_heap_full(self):
        accumulators = {"d1": 2.0, "d2": 1.0}
        result = select_top_k_with_zero_fill(accumulators, {"d1", "d2", "d3"}, 2)
        assert result == [("d1", 2.0), ("d2", 1.0)]


class TestBM25ZeroScoredTail:
    def test_zero_scored_candidates_included(self, tiny_kg):
        """Docs matching only in unscored fields keep their 0.0-score tail rank."""
        engine = SearchEngine.from_graph(tiny_kg)
        scorer = engine.bm25_names_scorer()
        # "drama" appears in category/related fields of films but in the
        # names field only for the genre entity, so the candidate set is
        # larger than the set of names matches.
        query = parse_query("drama")
        fast = scorer.search(query, top_k=50)
        slow = scorer.search_exhaustive(query, top_k=50)
        _assert_identical(fast, slow)
        assert any(result.score == 0.0 for result in fast)
