"""Tests for repro.eval.harness, latency and report."""

from __future__ import annotations

import time

import pytest

from repro.datasets import (
    expansion_tasks_from_features,
    search_tasks_from_labels,
    tom_hanks_task,
)
from repro.eval import (
    ExpansionEvaluator,
    LatencyStats,
    SearchEvaluator,
    Stopwatch,
    format_table,
    method_comparison_rows,
    print_experiment,
    write_report_json,
)
from repro.search import SearchEngine


class TestExpansionEvaluator:
    @pytest.fixture(scope="class")
    def results(self, request):
        movie_kg = request.getfixturevalue("movie_kg")
        evaluator = ExpansionEvaluator(movie_kg, top_k=20)
        tasks = expansion_tasks_from_features(movie_kg, num_tasks=5, seeds_per_task=2)
        tasks.append(tom_hanks_task(movie_kg))
        return evaluator.compare(tasks)

    def test_all_methods_evaluated(self, results):
        assert set(results) == {"pivote", "jaccard", "co-occurrence", "ppr"}

    def test_metrics_in_unit_interval(self, results):
        for result in results.values():
            for name, value in result.metrics.items():
                assert 0.0 <= value <= 1.0, (result.method, name, value)

    def test_per_task_recorded(self, results):
        assert all(len(result.per_task) == 6 for result in results.values())

    def test_pivote_competitive_with_baselines(self, results):
        """The headline shape: PivotE's model is at least as good as the baselines."""
        pivote_map = results["pivote"].metric("ap")
        assert pivote_map >= results["co-occurrence"].metric("ap") - 0.05
        assert pivote_map >= results["ppr"].metric("ap") - 0.05
        assert pivote_map > 0.1


class TestSearchEvaluator:
    @pytest.fixture(scope="class")
    def results(self, request):
        movie_kg = request.getfixturevalue("movie_kg")
        engine = SearchEngine.from_graph(movie_kg)
        evaluator = SearchEvaluator(engine, top_k=20)
        tasks = search_tasks_from_labels(movie_kg, num_tasks=15)
        return evaluator.compare(tasks)

    def test_all_methods_evaluated(self, results):
        assert set(results) == {"mlm-5field", "lm-names-only", "bm25f"}

    def test_mlm_retrieves_well(self, results):
        assert results["mlm-5field"].metric("rr") > 0.4

    def test_metrics_bounded(self, results):
        for result in results.values():
            assert 0.0 <= result.metric("ap") <= 1.0


class TestStopwatch:
    def test_measure_context(self):
        watch = Stopwatch()
        with watch.measure("op"):
            time.sleep(0.001)
        stats = watch.stats("op")
        assert stats.count == 1
        assert stats.mean > 0

    def test_time_callable_repeats(self):
        watch = Stopwatch()
        stats = watch.time_callable("fn", lambda: sum(range(100)), repeats=5)
        assert stats.count == 5
        assert watch.labels() == ["fn"]

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            Stopwatch().time_callable("fn", lambda: None, repeats=0)

    def test_latency_stats_percentile_and_dict(self):
        stats = LatencyStats("x", samples=[0.001, 0.002, 0.003, 0.004])
        assert stats.median == pytest.approx(0.0025)
        assert stats.minimum == 0.001 and stats.maximum == 0.004
        assert stats.percentile(50) == pytest.approx(0.0025)
        payload = stats.as_dict()
        assert payload["count"] == 4

    def test_latency_stats_validation(self):
        stats = LatencyStats("x")
        with pytest.raises(ValueError):
            stats.add(-1)
        with pytest.raises(ValueError):
            stats.percentile(0)

    def test_report_structure(self):
        watch = Stopwatch()
        watch.time_callable("a", lambda: None)
        report = watch.report()
        assert "a" in report and "mean_ms" in report["a"]


class TestReporting:
    def test_format_table(self):
        rows = [{"method": "pivote", "ap": 0.9}, {"method": "jaccard", "ap": 0.5}]
        table = format_table(rows)
        assert "method" in table and "0.9000" in table

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_method_comparison_rows_sorted(self):
        rows = method_comparison_rows(
            {"a": {"ap": 0.2}, "b": {"ap": 0.8}}, metrics=("ap",)
        )
        assert rows[0]["method"] == "b"

    def test_print_experiment(self, capsys):
        text = print_experiment("E0 demo", [{"x": 1}], notes="note")
        captured = capsys.readouterr()
        assert "E0 demo" in captured.out
        assert "note" in text

    def test_write_report_json(self, tmp_path):
        path = write_report_json({"a": 1}, tmp_path / "sub" / "report.json")
        assert path.exists()
