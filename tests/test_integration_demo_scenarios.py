"""Integration tests replaying the paper's demo scenarios (§3) end to end.

Scenario 1 (entity investigation, §3.1): keyword query "Forrest Gump",
inspect the entity, express "films starring Tom Hanks" via the semantic
feature, and "films similar to Forrest Gump" via the entity.

Scenario 2 (search domain exploration, §3.2): from the film domain the user
pivots into the Actor domain via Tom Hanks, explores actors, and revisits a
historical query from the timeline (Fig 4).
"""

from __future__ import annotations


from repro import PivotE
from repro.datasets import CURATED_TOM_HANKS_FILMS
from repro.features import SemanticFeature
from repro.viz import render_matrix_ascii, render_path_ascii, session_to_dict

TOM_HANKS_STARRING = SemanticFeature("dbr:Tom_Hanks", "dbo:starring")


class TestScenario1EntityInvestigation:
    def test_keyword_to_entities_to_similar_films(self, movie_system: PivotE):
        session = movie_system.start_session("scenario-1")

        # 1. Keyword query (Fig 3-a).
        response = movie_system.submit_keywords(session, "Forrest Gump")
        assert response.hits[0].entity_id == "dbr:Forrest_Gump"
        assert response.matrix is not None

        # 2. Look up the entity profile (Fig 3-d).
        profile = movie_system.lookup_in_session(session, "dbr:Forrest_Gump")
        assert profile.title == "Forrest Gump"
        assert any("dbo:starring" == p for p, _ in profile.top_facts) or profile.top_facts

        # 3. "Find films similar to Forrest Gump": select the entity as example.
        response = movie_system.select_entity(session, "dbr:Forrest_Gump")
        recommendation = response.recommendation
        assert recommendation is not None
        similar = recommendation.entity_ids()
        # Other Tom Hanks films are recommended among the top results.
        assert set(similar[:10]) & set(CURATED_TOM_HANKS_FILMS)

        # 4. "Find films starring Tom Hanks": pin the semantic feature.
        response = movie_system.pin_feature(session, TOM_HANKS_STARRING)
        recommendation = response.recommendation
        assert recommendation is not None
        for entity_id in recommendation.entity_ids():
            assert movie_system.feature_index.holds(entity_id, TOM_HANKS_STARRING)

        # The Tom Hanks feature itself is among the recommended features.
        assert TOM_HANKS_STARRING.notation() in recommendation.feature_notations()

    def test_heat_map_explains_recommendation(self, movie_system: PivotE):
        recommendation = movie_system.recommend(
            ["dbr:Forrest_Gump", "dbr:Apollo_13_(film)"]
        )
        matrix = movie_system.matrix_for(recommendation)
        text = render_matrix_ascii(matrix)
        assert "Query:" in text
        # Dark cells exist: some (entity, feature) pairs are direct matches.
        assert matrix.heatmap.levels.max() >= matrix.heatmap.num_levels - 2
        # The explanation area verbalises the shared-actor evidence.
        explanation = movie_system.explain("dbr:Forrest_Gump", "dbr:Apollo_13_(film)")
        assert "Tom Hanks" in explanation.text and "Gary Sinise" in explanation.text


class TestScenario2DomainExploration:
    def test_pivot_to_actor_domain_and_traceback(self, movie_system: PivotE):
        session = movie_system.start_session("scenario-2")

        movie_system.submit_keywords(session, "Forrest Gump")
        movie_system.select_entity(session, "dbr:Forrest_Gump")

        # Pivot: double-click Tom Hanks to switch the search domain.
        response = movie_system.pivot(session, "dbr:Tom_Hanks")
        assert session.current_query.domain_type == "dbo:Actor"
        recommendation = response.recommendation
        assert recommendation is not None
        for entity_id in recommendation.entity_ids():
            assert "dbo:Actor" in movie_system.graph.types_of(entity_id)
        # Gary Sinise (co-star in two seed films) is among the recommended actors.
        assert "dbr:Gary_Sinise" in recommendation.entity_ids()

        # The exploratory path records the whole trajectory (Fig 4).
        path_text = render_path_ascii(session.path)
        assert "pivot" in path_text

        # Timeline traceback: revisit the first query.
        restored = session.revisit(0)
        assert restored.keywords == "Forrest Gump"
        response = movie_system.investigate(session)
        assert response.hits or response.recommendation is not None

    def test_session_export_is_complete(self, movie_system: PivotE):
        session = movie_system.start_session("scenario-export")
        movie_system.submit_keywords(session, "tom hanks")
        movie_system.select_entity(session, "dbr:Tom_Hanks")
        movie_system.pivot(session, "dbr:Forrest_Gump")
        payload = session_to_dict(session)
        assert payload["behaviour"]["pivot"] == 1
        assert len(payload["timeline"]) == 3
        assert payload["path"]["nodes"]

    def test_pivot_targets_point_to_other_domains(self, movie_system: PivotE):
        recommendation = movie_system.recommend(["dbr:Forrest_Gump", "dbr:Apollo_13_(film)"])
        targets = movie_system.recommendation_engine.pivot_targets(recommendation)
        target_types = {anchor_type for _, anchor_type, _ in targets}
        # The exploration pointers lead out of the Film domain into Actor/Director/...
        assert any(t != "dbo:Film" for t in target_types)
        anchors = {anchor for anchor, _, _ in targets}
        assert "dbr:Tom_Hanks" in anchors


class TestCrossDomainAcademic:
    def test_expansion_works_on_academic_graph(self, academic_kg):
        """The ranking model is domain-agnostic: it works on the academic KG too."""
        system = PivotE(academic_kg)
        papers = sorted(academic_kg.entities_of_type("pivote:Paper"))
        venue = next(iter(academic_kg.objects(papers[0], "pivote:publishedIn")))
        same_venue = sorted(academic_kg.subjects("pivote:publishedIn", venue))
        if len(same_venue) >= 3:
            seeds = same_venue[:2]
            recommendation = system.recommend(seeds)
            assert recommendation.entity_ids()
            # The venue feature is recognised as relevant.
            assert any(venue in notation for notation in recommendation.feature_notations())
