"""Unit tests of the shared LRU cache used by both engines."""

from __future__ import annotations

import pytest

from repro.utils import LRUCache


class TestLRUCache:
    def test_hit_miss_counters(self):
        cache: LRUCache[str, int] = LRUCache(2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        info = cache.cache_info()
        assert info == {"hits": 1, "misses": 1, "size": 1, "maxsize": 2}

    def test_evicts_least_recently_used(self):
        cache: LRUCache[str, int] = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh recency of a
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_peek_does_not_touch_stats_or_recency(self):
        cache: LRUCache[str, int] = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.peek("missing") is None
        assert cache.cache_info()["hits"] == 0
        assert cache.cache_info()["misses"] == 0
        cache.put("c", 3)  # "a" was not refreshed: it is the LRU victim
        assert "a" not in cache

    def test_zero_maxsize_disables_storage(self):
        cache: LRUCache[str, int] = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.cache_info()["maxsize"] == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_clear_keeps_counters(self):
        cache: LRUCache[str, int] = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.cache_info()["hits"] == 1

    def test_sync_epoch_clears_on_change_only(self):
        cache: LRUCache[str, int] = LRUCache(4)
        assert cache.sync_epoch(7) is False  # first sight adopts the epoch
        cache.put("a", 1)
        assert cache.sync_epoch(7) is False
        assert len(cache) == 1
        assert cache.sync_epoch(8) is True
        assert len(cache) == 0

    def test_cached_none_is_a_hit(self):
        """Regression: a legitimately cached ``None`` payload is not a miss.

        ``get`` used ``None`` as the ``dict.get`` default, so a stored
        ``None`` counted as a miss and never refreshed its recency — the
        entry could be evicted while logically most recently used.
        """
        cache: LRUCache[str, int | None] = LRUCache(2)
        cache.put("a", None)
        cache.put("b", 2)
        assert cache.get("a") is None  # a hit, by contract
        info = cache.cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 0
        cache.put("c", 3)  # "a" was refreshed by the hit: "b" is the victim
        assert "a" in cache
        assert "b" not in cache

    def test_cached_falsy_values_are_hits(self):
        cache: LRUCache[str, object] = LRUCache(4)
        for key, value in (("t", ()), ("d", {}), ("z", 0), ("s", "")):
            cache.put(key, value)
        for key, value in (("t", ()), ("d", {}), ("z", 0), ("s", "")):
            assert cache.get(key) == value
        info = cache.cache_info()
        assert info["hits"] == 4
        assert info["misses"] == 0

    def test_update_refreshes_recency(self):
        cache: LRUCache[str, int] = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh via overwrite
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 10
