"""Unit tests of the shared LRU cache used by both engines."""

from __future__ import annotations

import pytest

from repro.utils import LRUCache


class TestLRUCache:
    def test_hit_miss_counters(self):
        cache: LRUCache[str, int] = LRUCache(2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        info = cache.cache_info()
        assert info == {"hits": 1, "misses": 1, "size": 1, "maxsize": 2}

    def test_evicts_least_recently_used(self):
        cache: LRUCache[str, int] = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh recency of a
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_peek_does_not_touch_stats_or_recency(self):
        cache: LRUCache[str, int] = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.peek("missing") is None
        assert cache.cache_info()["hits"] == 0
        assert cache.cache_info()["misses"] == 0
        cache.put("c", 3)  # "a" was not refreshed: it is the LRU victim
        assert "a" not in cache

    def test_zero_maxsize_disables_storage(self):
        cache: LRUCache[str, int] = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.cache_info()["maxsize"] == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_clear_keeps_counters(self):
        cache: LRUCache[str, int] = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.cache_info()["hits"] == 1

    def test_sync_epoch_clears_on_change_only(self):
        cache: LRUCache[str, int] = LRUCache(4)
        assert cache.sync_epoch(7) is False  # first sight adopts the epoch
        cache.put("a", 1)
        assert cache.sync_epoch(7) is False
        assert len(cache) == 1
        assert cache.sync_epoch(8) is True
        assert len(cache) == 0

    def test_cached_none_is_a_hit(self):
        """Regression: a legitimately cached ``None`` payload is not a miss.

        ``get`` used ``None`` as the ``dict.get`` default, so a stored
        ``None`` counted as a miss and never refreshed its recency — the
        entry could be evicted while logically most recently used.
        """
        cache: LRUCache[str, int | None] = LRUCache(2)
        cache.put("a", None)
        cache.put("b", 2)
        assert cache.get("a") is None  # a hit, by contract
        info = cache.cache_info()
        assert info["hits"] == 1
        assert info["misses"] == 0
        cache.put("c", 3)  # "a" was refreshed by the hit: "b" is the victim
        assert "a" in cache
        assert "b" not in cache

    def test_cached_falsy_values_are_hits(self):
        cache: LRUCache[str, object] = LRUCache(4)
        for key, value in (("t", ()), ("d", {}), ("z", 0), ("s", "")):
            cache.put(key, value)
        for key, value in (("t", ()), ("d", {}), ("z", 0), ("s", "")):
            assert cache.get(key) == value
        info = cache.cache_info()
        assert info["hits"] == 4
        assert info["misses"] == 0

    def test_update_refreshes_recency(self):
        cache: LRUCache[str, int] = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh via overwrite
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 10


class TestEpochGuardedPut:
    def test_put_rejected_when_epoch_moved(self):
        cache: LRUCache[str, int] = LRUCache(4)
        cache.sync_epoch(1)
        assert cache.put("a", 1, epoch=1)
        # A concurrent mutation moved the cache on; the stale result is
        # atomically dropped instead of masquerading as a fresh entry.
        cache.sync_epoch(2)
        assert not cache.put("b", 2, epoch=1)
        assert "a" not in cache  # cleared by the sync
        assert "b" not in cache

    def test_put_without_epoch_is_unconditional(self):
        cache: LRUCache[str, int] = LRUCache(4)
        cache.sync_epoch(1)
        cache.sync_epoch(2)
        assert cache.put("a", 1)
        assert cache.get("a") == 1

    def test_put_with_epoch_before_any_sync_stores(self):
        cache: LRUCache[str, int] = LRUCache(4)
        assert cache.put("a", 1, epoch=7)
        assert cache.get("a") == 1


class TestThreadSafety:
    """Satellite of PR 5: the cache must survive concurrent hammering."""

    def test_concurrent_get_put_clear_consistent(self):
        import threading

        cache: LRUCache[int, int] = LRUCache(32)
        errors: list[BaseException] = []
        stop = threading.Event()

        def hammer(seed: int):
            try:
                for i in range(4000):
                    key = (seed * 31 + i) % 64
                    cache.put(key, i)
                    cache.get(key)
                    cache.get(key + 1)
                    if i % 512 == 0:
                        cache.clear()
                    if i % 257 == 0:
                        cache.sync_epoch(i)
                    len(cache)
                    cache.cache_info()
            except BaseException as error:  # noqa: BLE001 - reported below
                errors.append(error)
                stop.set()

        threads = [threading.Thread(target=hammer, args=(n,)) for n in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        info = cache.cache_info()
        # Six threads, 4000 iterations, two gets each: every get counted
        # exactly once as a hit or a miss — no lost updates.
        assert info["hits"] + info["misses"] == 6 * 4000 * 2
        assert info["size"] <= info["maxsize"]

    def test_concurrent_puts_never_exceed_maxsize(self):
        import threading

        cache: LRUCache[int, int] = LRUCache(8)

        def fill(base: int):
            for i in range(2000):
                cache.put(base * 10000 + i, i)

        threads = [threading.Thread(target=fill, args=(n,)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) <= 8
