"""Disk round-trip equivalence: cold-started systems vs in-RAM builds.

The PR 9 contract extends the executor-equivalence invariant to the
durable tier: a system cold-started from ``PivotE.save(dir)`` via
``PivotE.load(dir)`` must produce *byte-identical* search and
recommendation rankings to the in-RAM build it was saved from — across
all four search scorers, every pruning mode, shard counts 1–3 and every
executor.  A corrupted or missing component must degrade to rebuilding
exactly that component from the (sound) replayed graph, with the same
rankings and a counted failure; a corrupt graph fails the whole load.
Also here: the snapshot-registry lifecycle regressions (double close,
rebuild after close, atexit hook under registry replacement) and the
``storage`` knob's "off"/"disk" behaviours.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import textwrap

import pytest

import repro
from repro.config import PRUNING_MODES, PivotEConfig, RankingConfig, SearchConfig
from repro.datasets import RandomKGConfig, build_random_kg
from repro.engine import PivotE
from repro.exec import snapshot_registry
from repro.kg import bfs_reachable
from repro.search import BM25FieldScorer, BM25FScorer, SearchEngine, parse_query
from repro.storage import SnapshotUnavailable

EXECUTORS = ("inline", "thread", "process")
SHARD_COUNTS = (1, 2, 3)
WORKERS = 2


def _signature(results) -> list[tuple[str, float]]:
    return [(result.doc_id, result.score) for result in results]


def _hit_signature(hits) -> list[tuple[str, float]]:
    return [(hit.entity_id, hit.score) for hit in hits]


def _queries(graph, count: int = 5) -> list[str]:
    entities = sorted(graph.entities())
    step = max(1, len(entities) // count)
    labels = [graph.label(entities[index]) for index in range(0, len(entities), step)]
    queries = []
    for position, label in enumerate(labels[:count]):
        if position % 2 == 0:
            queries.append(label)
        else:
            queries.append(f"{label} {labels[(position + 2) % len(labels)]}")
    return queries


def _system_config(pruning="maxscore", shards=1, executor="auto", workers=0):
    return PivotEConfig(
        search=SearchConfig(
            pruning=pruning, shards=shards, executor=executor, workers=workers
        ),
        ranking=RankingConfig(
            pruning=pruning, shards=shards, executor=executor, workers=workers
        ),
    )


@pytest.fixture(scope="module")
def random_graph():
    return build_random_kg(RandomKGConfig(num_entities=160, seed=17))


@pytest.fixture(scope="module")
def seeds(random_graph):
    largest = max(
        random_graph.types(), key=lambda t: (random_graph.type_count(t), t)
    )
    return sorted(random_graph.entities_of_type(largest))[:2]


@pytest.fixture(scope="module")
def saved_dir(tmp_path_factory, random_graph):
    """One system saved once; every cold-start test loads from here."""
    directory = str(tmp_path_factory.mktemp("pivote-snapshot"))
    system = PivotE(random_graph)
    manifest = system.save(directory)
    assert manifest["keys"] == ["search-index", "feature-tables", "graph-topology"]
    system.close()
    return directory


@pytest.fixture(scope="module")
def serial_baselines(random_graph, seeds):
    """Per-pruning-mode search + recommendation baselines, built in RAM."""
    queries = _queries(random_graph)
    search = {}
    recommend = {}
    for pruning in PRUNING_MODES:
        system = PivotE(random_graph, config=_system_config(pruning=pruning))
        search[pruning] = {
            query: _hit_signature(system.search(query)) for query in queries
        }
        result = system.recommend(seeds)
        recommend[pruning] = (
            [(e.entity_id, e.score) for e in result.entities],
            [(f.feature.notation(), f.score) for f in result.features],
        )
        system.close()
    return queries, search, recommend


@pytest.fixture(scope="module")
def scorer_baselines(random_graph):
    """Serial baselines of the three non-engine scorers, per pruning mode."""
    engine = SearchEngine.from_graph(random_graph)
    index = engine.index
    weights = engine.config.field_weights
    queries = _queries(random_graph)
    baselines = {}
    for pruning in PRUNING_MODES:
        bm25 = BM25FieldScorer(index, "names", pruning=pruning)
        bm25f = BM25FScorer(index, weights, pruning=pruning)
        single = SearchEngine.from_graph(
            random_graph, SearchConfig(pruning=pruning)
        ).single_field_scorer()
        baselines[pruning] = {
            query: (
                _signature(bm25.search(parse_query(query), top_k=15)),
                _signature(bm25f.search(parse_query(query), top_k=15)),
                _signature(single.search(parse_query(query), top_k=15)),
            )
            for query in queries
        }
    return baselines


def _load_clean(directory, config=None) -> PivotE:
    """Cold-start and assert every component attached (no silent rebuild)."""
    system = PivotE.load(directory, config=config)
    storage = system.stats().storage
    assert storage is not None
    assert storage.failures == 0
    assert storage.attaches == 3
    assert storage.cold_start_ms > 0.0
    return system


class TestColdStartEquivalence:
    """Loaded systems vs in-RAM builds: the full executor matrix."""

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_engine_mlm_byte_identical(
        self, saved_dir, serial_baselines, pruning, executor, shards
    ):
        queries, search_base, _ = serial_baselines
        system = _load_clean(
            saved_dir,
            _system_config(
                pruning=pruning, shards=shards, executor=executor, workers=WORKERS
            ),
        )
        try:
            for query in queries:
                assert _hit_signature(system.search(query)) == search_base[pruning][query]
        finally:
            system.close()

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_baseline_scorers_byte_identical(
        self, saved_dir, serial_baselines, scorer_baselines, pruning, executor
    ):
        """The other three scorers, driven off the *restored* index."""
        queries, _, _ = serial_baselines
        system = _load_clean(
            saved_dir,
            _system_config(
                pruning=pruning, shards=3, executor=executor, workers=WORKERS
            ),
        )
        try:
            engine = system.search_engine
            bm25 = BM25FieldScorer(
                engine.index,
                "names",
                pruning=pruning,
                shards=3,
                executor=executor,
                workers=WORKERS,
            )
            bm25f = BM25FScorer(
                engine.index,
                engine.config.field_weights,
                pruning=pruning,
                shards=3,
                executor=executor,
                workers=WORKERS,
            )
            single = engine.single_field_scorer()
            for query in queries:
                parsed = parse_query(query)
                expected_bm25, expected_bm25f, expected_single = scorer_baselines[
                    pruning
                ][query]
                assert _signature(bm25.search(parsed, top_k=15)) == expected_bm25
                assert _signature(bm25f.search(parsed, top_k=15)) == expected_bm25f
                assert _signature(single.search(parsed, top_k=15)) == expected_single
        finally:
            system.close()

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_recommendation_byte_identical(
        self, saved_dir, serial_baselines, seeds, pruning, executor, shards
    ):
        _, _, recommend_base = serial_baselines
        system = _load_clean(
            saved_dir,
            _system_config(
                pruning=pruning, shards=shards, executor=executor, workers=WORKERS
            ),
        )
        try:
            expected_entities, expected_features = recommend_base[pruning]
            result = system.recommend(seeds)
            assert [(e.entity_id, e.score) for e in result.entities] == expected_entities
            assert [
                (f.feature.notation(), f.score) for f in result.features
            ] == expected_features
        finally:
            system.close()

    def test_lazy_documents_and_mutations_after_load(
        self, saved_dir, serial_baselines, random_graph
    ):
        """The restored engine stays a full engine: documents rebuild
        lazily, graph mutations index incrementally, rebuilds work."""
        queries, search_base, _ = serial_baselines
        system = _load_clean(saved_dir)
        try:
            entity = next(iter(system.graph.entities()))
            document = system.search_engine.document(entity)
            assert document.entity_id == entity
            graph = system.graph
            graph.add_label("ex:PR9", "Durable Snapshot Epic")
            graph.add_type("ex:PR9", "ex:Film")
            system.search_engine.add_entity("ex:PR9")
            assert any(
                hit.entity_id == "ex:PR9"
                for hit in system.search("durable snapshot epic")
            )
            system.search_engine.build()
            assert any(
                hit.entity_id == "ex:PR9"
                for hit in system.search("durable snapshot epic")
            )
        finally:
            system.close()


class TestFreshProcessColdStart:
    def test_subprocess_load_matches_parent_build(
        self, saved_dir, serial_baselines, seeds
    ):
        """A brand-new interpreter loads the snapshot and agrees exactly."""
        queries, search_base, recommend_base = serial_baselines
        script = textwrap.dedent(
            """
            import json, sys
            from repro.engine import PivotE

            directory, queries, seeds = (
                sys.argv[1], json.loads(sys.argv[2]), json.loads(sys.argv[3])
            )
            system = PivotE.load(directory)
            storage = system.stats().storage
            result = system.recommend(seeds)
            print(json.dumps({
                "failures": storage.failures,
                "attaches": storage.attaches,
                "search": {
                    q: [[h.entity_id, h.score] for h in system.search(q)]
                    for q in queries
                },
                "entities": [[e.entity_id, e.score] for e in result.entities],
                "features": [
                    [f.feature.notation(), f.score] for f in result.features
                ],
            }))
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.dirname(os.path.dirname(repro.__file__))]
            + env.get("PYTHONPATH", "").split(os.pathsep)
        ).rstrip(os.pathsep)
        completed = subprocess.run(
            [
                sys.executable,
                "-c",
                script,
                saved_dir,
                json.dumps(queries),
                json.dumps(list(seeds)),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert completed.returncode == 0, completed.stderr
        payload = json.loads(completed.stdout)
        assert payload["failures"] == 0
        assert payload["attaches"] == 3
        default_pruning = SearchConfig().pruning
        for query in queries:
            assert payload["search"][query] == [
                list(pair) for pair in search_base[default_pruning][query]
            ]
        expected_entities, expected_features = recommend_base[
            RankingConfig().pruning
        ]
        assert payload["entities"] == [list(pair) for pair in expected_entities]
        assert payload["features"] == [list(pair) for pair in expected_features]


def _corrupt_copy(saved_dir, tmp_path) -> str:
    target = str(tmp_path / "corrupt")
    shutil.copytree(saved_dir, target)
    return target


def _snap_path(directory: str, key: str) -> str:
    key_dir = os.path.join(directory, "store", key)
    (name,) = [n for n in os.listdir(key_dir) if n.endswith(".snap")]
    return os.path.join(key_dir, name)


class TestCorruptionFallback:
    """Every corruption mode degrades to a fresh in-RAM build of the
    affected component — identical rankings, counted failure."""

    def _assert_degraded_but_identical(self, directory, serial_baselines, seeds):
        queries, search_base, recommend_base = serial_baselines
        system = PivotE.load(directory)
        try:
            storage = system.stats().storage
            assert storage is not None
            assert storage.failures >= 1
            for query in queries:
                assert (
                    _hit_signature(system.search(query))
                    == search_base[SearchConfig().pruning][query]
                )
            expected_entities, _ = recommend_base[RankingConfig().pruning]
            result = system.recommend(seeds)
            assert [
                (e.entity_id, e.score) for e in result.entities
            ] == expected_entities
        finally:
            system.close()

    def test_truncated_index_file_falls_back(
        self, saved_dir, tmp_path, serial_baselines, seeds
    ):
        directory = _corrupt_copy(saved_dir, tmp_path)
        path = _snap_path(directory, "search-index")
        with open(path, "rb") as handle:
            head = handle.read(100)
        with open(path, "wb") as handle:
            handle.write(head)
        self._assert_degraded_but_identical(directory, serial_baselines, seeds)

    def test_flipped_byte_fails_crc_and_falls_back(
        self, saved_dir, tmp_path, serial_baselines, seeds
    ):
        directory = _corrupt_copy(saved_dir, tmp_path)
        path = _snap_path(directory, "feature-tables")
        with open(path, "r+b") as handle:
            payload = bytearray(handle.read())
            arrays_base = int.from_bytes(payload[24:32], "little")
            payload[arrays_base] ^= 0xFF
            handle.seek(0)
            handle.write(payload)
        self._assert_degraded_but_identical(directory, serial_baselines, seeds)

    def test_stale_format_version_falls_back(
        self, saved_dir, tmp_path, serial_baselines, seeds
    ):
        directory = _corrupt_copy(saved_dir, tmp_path)
        for key in ("search-index", "feature-tables"):
            path = _snap_path(directory, key)
            with open(path, "r+b") as handle:
                handle.seek(8)
                handle.write(int(99).to_bytes(8, "little"))
        self._assert_degraded_but_identical(directory, serial_baselines, seeds)

    def test_tampered_manifest_epoch_falls_back(
        self, saved_dir, tmp_path, serial_baselines, seeds
    ):
        directory = _corrupt_copy(saved_dir, tmp_path)
        manifest_path = os.path.join(directory, "store", "MANIFEST.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["search-index"]["epoch"] = 999999
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        self._assert_degraded_but_identical(directory, serial_baselines, seeds)

    def test_corrupt_topology_degrades_to_counted_rebuild(
        self, saved_dir, tmp_path, serial_baselines, seeds
    ):
        """A bad topology segment falls back to the scalar-walk rebuild:
        the failure is counted, the first traversal re-derives the CSR
        from the replayed graph, rankings stay identical."""
        directory = _corrupt_copy(saved_dir, tmp_path)
        path = _snap_path(directory, "graph-topology")
        with open(path, "rb") as handle:
            head = handle.read(100)
        with open(path, "wb") as handle:
            handle.write(head)
        system = PivotE.load(directory)
        try:
            storage = system.stats().storage
            assert storage is not None
            assert storage.failures >= 1
            entity = sorted(system.graph.entities())[0]
            bfs_reachable(system.graph, entity, max_hops=2)
            traversal = system.stats().traversal
            assert traversal is not None
            assert traversal.rebuilds == 1
        finally:
            system.close()
        self._assert_degraded_but_identical(directory, serial_baselines, seeds)

    def test_corrupt_graph_fails_the_whole_load(self, saved_dir, tmp_path):
        directory = _corrupt_copy(saved_dir, tmp_path)
        graph_path = os.path.join(directory, "graph.jsonl")
        with open(graph_path, "a") as handle:
            handle.write("{this is not json\n")
        with pytest.raises(SnapshotUnavailable, match="malformed"):
            PivotE.load(directory)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(SnapshotUnavailable, match="no loadable system"):
            PivotE.load(str(tmp_path / "nowhere"))


class TestTopologyAttach:
    def test_load_installs_persisted_topology(self, saved_dir):
        """A clean load seeds the per-epoch topology memo from the
        snapshot: the first traversal is a cache hit, never a rebuild."""
        system = _load_clean(saved_dir)
        try:
            entity = sorted(system.graph.entities())[0]
            reached = bfs_reachable(system.graph, entity, max_hops=2)
            assert reached[entity] == 0
            traversal = system.stats().traversal
            assert traversal is not None
            assert traversal.rebuilds == 0
            assert traversal.cache_hits >= 1
            assert traversal.bfs_queries >= 1
        finally:
            system.close()

    def test_attached_topology_matches_scalar_walks(self, saved_dir):
        """Kernels over the restored (mmap-copied) arrays agree byte-for-
        byte with the scalar walks over the replayed graph."""
        from repro.kg import bfs_reachable_scalar

        system = _load_clean(saved_dir)
        try:
            graph = system.graph
            probes = sorted(graph.entities())[:6]
            for probe in probes:
                assert bfs_reachable(graph, probe, max_hops=2) == (
                    bfs_reachable_scalar(graph, probe, max_hops=2)
                )
        finally:
            system.close()


class TestRegistryLifecycle:
    """Satellite: close-ordering regressions of the snapshot registry."""

    def test_double_close_and_rebuild_after_close(self, random_graph):
        system = PivotE(
            random_graph,
            config=_system_config(shards=2, executor="process", workers=WORKERS),
        )
        query = _queries(random_graph, count=1)[0]
        expected = _hit_signature(system.search(query))
        system.close()
        system.close()  # second close must be a no-op, not an error
        # The engines stay usable after close: the next process-tier
        # query simply republishes its snapshot segment.
        assert _hit_signature(system.search(query)) == expected
        system.search_engine.build()  # rebuild after close
        assert _hit_signature(system.search(query)) == expected
        system.close()

    def test_engine_close_is_idempotent_under_registry_replacement(
        self, random_graph
    ):
        from repro.exec import shm

        engine = SearchEngine.from_graph(
            random_graph,
            SearchConfig(shards=2, executor="process", workers=WORKERS),
        )
        engine.search(_queries(random_graph, count=1)[0])
        original = shm._REGISTRY
        try:
            shm._REGISTRY = shm.SnapshotRegistry()
            engine.close()  # old registry's segment stays; new one is empty
            engine.close()
        finally:
            replacement = shm._REGISTRY
            shm._REGISTRY = original
            replacement.release()
        engine.close()  # now actually releases against the original registry

    def test_atexit_hook_reads_current_registry(self):
        from repro.exec import shm

        original = shm._REGISTRY
        try:
            shm._REGISTRY = shm.SnapshotRegistry()
            shm._release_registry_at_exit()  # releases the *current* registry
            shm._release_registry_at_exit()  # and is idempotent
            assert shm._REGISTRY.active() == 0
        finally:
            shm._REGISTRY = original


class TestStorageKnobs:
    def test_storage_off_publishes_nothing(self, random_graph):
        registry = snapshot_registry()
        serial = SearchEngine.from_graph(random_graph)
        engine = SearchEngine.from_graph(
            random_graph,
            SearchConfig(
                shards=2, executor="process", workers=WORKERS, storage="off"
            ),
        )
        before = registry.publishes
        try:
            for query in _queries(random_graph, count=3):
                assert _hit_signature(engine.search(query)) == _hit_signature(
                    serial.search(query)
                )
            assert registry.publishes == before
            record = engine.stats().storage
            assert record is not None
            assert record.backend == "off"
            assert record.publishes == 0
        finally:
            engine.close()
            serial.close()

    def test_storage_disk_build_publishes_epoch(self, random_graph, tmp_path):
        engine = SearchEngine.from_graph(
            random_graph,
            SearchConfig(storage="disk", snapshot_dir=str(tmp_path)),
        )
        try:
            record = engine.stats().storage
            assert record is not None
            assert record.backend == "disk"
            assert record.publishes == 1
            assert record.published_bytes > 0
            assert record.failures == 0
            manifest_path = tmp_path / "store" / "MANIFEST.json"
            manifest = json.loads(manifest_path.read_text())
            assert manifest["search-index"]["epoch"] == engine.index.epoch
            # A rebuild publishes the successor epoch and GCs the old file.
            engine.build()
            manifest = json.loads(manifest_path.read_text())
            assert manifest["search-index"]["epoch"] == engine.index.epoch
            snaps = [
                name
                for name in os.listdir(tmp_path / "store" / "search-index")
                if name.endswith(".snap")
            ]
            assert len(snaps) == 1
            assert engine.stats().storage.publishes == 2
        finally:
            engine.close()

    def test_config_validation(self):
        with pytest.raises(ValueError, match="snapshot_dir"):
            SearchConfig(storage="disk")
        with pytest.raises(ValueError, match="storage"):
            SearchConfig(storage="bogus")
        with pytest.raises(ValueError, match="snapshot_dir"):
            RankingConfig(storage="disk")
