"""Sharded / batched execution equivalence: byte-identical to 1-shard serial.

The contract of the PR 5 execution layer (``repro.exec``): for every shard
count, every pruning mode, all four search scorers and both rankers, the
sharded fan-out (and the batch APIs) must return *exactly* the rankings
the serial single-shard path returns — same ids, same floats.  The suites
here enforce that on the hand-built graphs and, via hypothesis, on random
KGs; the counter-audit tests pin the ``merge_shard_stats`` semantics at
scale (one logical query, candidates summing exactly over the partition).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PRUNING_MODES, RankingConfig, SearchConfig
from repro.datasets import RandomKGConfig, build_random_kg
from repro.explore import RecommendationEngine
from repro.search import (
    BM25FieldScorer,
    BM25FScorer,
    SearchEngine,
    parse_query,
)

SHARD_COUNTS = (2, 3, 5)


def _signature(results) -> list[tuple[str, float]]:
    return [(result.doc_id, result.score) for result in results]


def _hit_signature(hits) -> list[tuple[str, float]]:
    return [(hit.entity_id, hit.score) for hit in hits]


def _queries(graph, count: int = 6) -> list[str]:
    entities = sorted(graph.entities())
    step = max(1, len(entities) // count)
    labels = [graph.label(entities[index]) for index in range(0, len(entities), step)]
    queries = []
    for position, label in enumerate(labels[:count]):
        if position % 2 == 0:
            queries.append(label)
        else:
            queries.append(f"{label} {labels[(position + 2) % len(labels)]}")
    return queries


@pytest.fixture(scope="module")
def random_graph():
    return build_random_kg(RandomKGConfig(num_entities=250, seed=11))


class TestShardedSearchEquivalence:
    """All four scorers, every pruning mode, N ∈ {2, 3, 5} vs serial."""

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_engine_mlm_byte_identical(self, random_graph, pruning, shards):
        serial = SearchEngine.from_graph(random_graph, SearchConfig(pruning=pruning))
        sharded = SearchEngine.from_graph(
            random_graph, SearchConfig(pruning=pruning, shards=shards)
        )
        for query in _queries(random_graph):
            assert _hit_signature(sharded.search(query)) == _hit_signature(
                serial.search(query)
            )

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_single_field_byte_identical(self, random_graph, pruning, shards):
        serial = SearchEngine.from_graph(
            random_graph, SearchConfig(pruning=pruning)
        ).single_field_scorer()
        sharded = SearchEngine.from_graph(
            random_graph, SearchConfig(pruning=pruning, shards=shards)
        ).single_field_scorer()
        for query in _queries(random_graph):
            parsed = parse_query(query)
            assert _signature(sharded.search(parsed, top_k=15)) == _signature(
                serial.search(parsed, top_k=15)
            )

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_bm25_and_bm25f_byte_identical(self, random_graph, pruning, shards):
        engine = SearchEngine.from_graph(random_graph)
        index = engine.index
        weights = engine.config.field_weights
        bm25_serial = BM25FieldScorer(index, "names", pruning=pruning)
        bm25_sharded = BM25FieldScorer(index, "names", pruning=pruning, shards=shards)
        bm25f_serial = BM25FScorer(index, weights, pruning=pruning)
        bm25f_sharded = BM25FScorer(index, weights, pruning=pruning, shards=shards)
        for query in _queries(random_graph):
            parsed = parse_query(query)
            assert _signature(bm25_sharded.search(parsed, top_k=15)) == _signature(
                bm25_serial.search(parsed, top_k=15)
            )
            assert _signature(bm25f_sharded.search(parsed, top_k=15)) == _signature(
                bm25f_serial.search(parsed, top_k=15)
            )

    def test_sharded_matches_exhaustive_reference(self, random_graph):
        """Transitivity spot check: sharded == serial == exhaustive."""
        engine = SearchEngine.from_graph(random_graph, SearchConfig(shards=4))
        scorer = engine.mlm_scorer
        for query in _queries(random_graph, count=3):
            parsed = parse_query(query)
            assert _signature(scorer.search(parsed)) == _signature(
                scorer.search_exhaustive(parsed)
            )


class TestShardedRecommendationEquivalence:
    """Both rankers (entity + semantic feature), every mode, vs serial."""

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_recommendation_byte_identical(self, random_graph, pruning, shards):
        largest = max(random_graph.types(), key=lambda t: (random_graph.type_count(t), t))
        seeds = sorted(random_graph.entities_of_type(largest))[:2]
        serial = RecommendationEngine(random_graph, config=RankingConfig(pruning=pruning))
        sharded = RecommendationEngine(
            random_graph, config=RankingConfig(pruning=pruning, shards=shards)
        )
        expected = serial.recommend_for_seeds(seeds)
        actual = sharded.recommend_for_seeds(seeds)
        assert [(e.entity_id, e.score) for e in actual.entities] == [
            (e.entity_id, e.score) for e in expected.entities
        ]
        assert [(f.feature.notation(), f.score) for f in actual.features] == [
            (f.feature.notation(), f.score) for f in expected.features
        ]
        assert (actual.correlations.values == expected.correlations.values).all()

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_sharded_ranker_matches_exhaustive(self, random_graph, shards):
        largest = max(random_graph.types(), key=lambda t: (random_graph.type_count(t), t))
        seeds = sorted(random_graph.entities_of_type(largest))[:2]
        engine = RecommendationEngine(random_graph, config=RankingConfig(shards=shards))
        ranker = engine.expander.entity_ranker
        fast = ranker.rank(seeds)
        slow = ranker.rank_exhaustive(seeds)
        assert [(e.entity_id, e.score) for e in fast] == [
            (e.entity_id, e.score) for e in slow
        ]


class TestBatchEquivalence:
    def test_search_many_matches_serial_calls(self, random_graph):
        engine = SearchEngine.from_graph(random_graph)
        queries = _queries(random_graph)
        batch_input = queries + queries[:3]  # duplicates computed once
        batched = engine.search_many(batch_input)
        serial = [engine.search(query) for query in batch_input]
        assert [
            _hit_signature(hits) for hits in batched
        ] == [_hit_signature(hits) for hits in serial]

    def test_search_many_with_shards(self, random_graph):
        serial = SearchEngine.from_graph(random_graph)
        sharded = SearchEngine.from_graph(random_graph, SearchConfig(shards=4))
        queries = _queries(random_graph)
        assert [
            _hit_signature(hits) for hits in sharded.search_many(queries)
        ] == [_hit_signature(hits) for hits in serial.search_many(queries)]

    def test_search_many_returns_caller_owned_lists(self, random_graph):
        engine = SearchEngine.from_graph(random_graph)
        query = _queries(random_graph)[0]
        first, second = engine.search_many([query, query])
        assert first == second
        first.clear()
        assert second  # duplicate positions never share the list object

    def test_recommend_many_matches_serial_calls(self, random_graph):
        largest = max(random_graph.types(), key=lambda t: (random_graph.type_count(t), t))
        members = sorted(random_graph.entities_of_type(largest))
        seed_lists = [members[:2], members[1:3], list(reversed(members[:2]))]
        engine = RecommendationEngine(random_graph)
        batched = engine.recommend_many(seed_lists)
        fresh = RecommendationEngine(random_graph)
        serial = [fresh.recommend_for_seeds(seeds) for seeds in seed_lists]
        for got, expected, seeds in zip(batched, serial, seed_lists):
            assert [(e.entity_id, e.score) for e in got.entities] == [
                (e.entity_id, e.score) for e in expected.entities
            ]
            assert got.query.seed_entities == tuple(seeds)

    def test_recommend_many_dedupes_permutations(self, random_graph):
        largest = max(random_graph.types(), key=lambda t: (random_graph.type_count(t), t))
        members = sorted(random_graph.entities_of_type(largest))
        engine = RecommendationEngine(random_graph)
        engine.recommend_many([members[:2], list(reversed(members[:2]))])
        info = engine.cache_info()
        assert info["misses"] == 1  # the permutation was served from the first


class TestShardedCounterAudit:
    """merge_shard_stats semantics at scale (the PR 5 small-fix satellite)."""

    def test_dense_counters_sum_exactly_over_partition(self, random_graph):
        query = parse_query(" ".join(_queries(random_graph, count=2)))
        serial = SearchEngine.from_graph(random_graph)
        sharded = SearchEngine.from_graph(random_graph, SearchConfig(shards=4))
        serial.search(query)
        sharded.search(query)
        serial_info = serial.pruning_info()
        sharded_info = sharded.pruning_info()
        # One logical query each, and the candidate partition covers the
        # pool exactly once — no double-counting across the merge.
        assert sharded_info["queries"] == serial_info["queries"] == 1
        assert sharded_info["candidates_total"] == serial_info["candidates_total"]

    def test_sharded_pruning_actually_bites_at_scale(self):
        graph = build_random_kg(RandomKGConfig(num_entities=600, seed=13))
        engine = SearchEngine.from_graph(graph, SearchConfig(shards=4))
        entities = sorted(graph.entities())
        # A multi-label query gives max-score enough terms to close the
        # θ gap (2-term label queries rarely evict at this scale).
        query = " ".join(graph.label(entity) for entity in entities[:6])
        engine.search(query)
        info = engine.pruning_info()
        assert info["queries"] == 1
        assert info["candidates_pruned"] > 0

    def test_ranking_counters_sum_exactly_over_partition(self):
        graph = build_random_kg(RandomKGConfig(num_entities=400, seed=29, target_skew=0.7))
        largest = max(graph.types(), key=lambda t: (graph.type_count(t), t))
        seeds = sorted(graph.entities_of_type(largest))[:2]
        serial = RecommendationEngine(graph, config=RankingConfig())
        sharded = RecommendationEngine(graph, config=RankingConfig(shards=4))
        serial.recommend_for_seeds(seeds)
        sharded.recommend_for_seeds(seeds)
        serial_info = serial.pruning_info()
        sharded_info = sharded.pruning_info()
        assert sharded_info["queries"] == serial_info["queries"] == 1
        assert sharded_info["candidates_total"] == serial_info["candidates_total"]
        assert sharded_info["groups_total"] >= serial_info["groups_total"]


class TestShardedEquivalenceProperty:
    """Hypothesis: random KGs, random shard counts, every pruning mode."""

    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(
        kg_seed=st.integers(min_value=0, max_value=500),
        num_entities=st.integers(min_value=30, max_value=90),
        shards=st.sampled_from(SHARD_COUNTS),
        pruning=st.sampled_from(PRUNING_MODES),
    )
    def test_search_sharded_equals_serial(self, kg_seed, num_entities, shards, pruning):
        graph = build_random_kg(RandomKGConfig(num_entities=num_entities, seed=kg_seed))
        serial = SearchEngine.from_graph(graph, SearchConfig(pruning=pruning))
        sharded = SearchEngine.from_graph(
            graph, SearchConfig(pruning=pruning, shards=shards)
        )
        for query in _queries(graph, count=3):
            assert _hit_signature(sharded.search(query)) == _hit_signature(
                serial.search(query)
            )

    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(
        kg_seed=st.integers(min_value=0, max_value=500),
        num_entities=st.integers(min_value=30, max_value=80),
        shards=st.sampled_from(SHARD_COUNTS),
        pruning=st.sampled_from(PRUNING_MODES),
    )
    def test_ranking_sharded_equals_serial(self, kg_seed, num_entities, shards, pruning):
        graph = build_random_kg(RandomKGConfig(num_entities=num_entities, seed=kg_seed))
        types = graph.types()
        if not types:
            return
        largest = max(types, key=lambda t: (graph.type_count(t), t))
        seeds = sorted(graph.entities_of_type(largest))[:2]
        if not seeds:
            return
        serial = RecommendationEngine(graph, config=RankingConfig(pruning=pruning))
        sharded = RecommendationEngine(
            graph, config=RankingConfig(pruning=pruning, shards=shards)
        )
        expected = serial.recommend_for_seeds(seeds)
        actual = sharded.recommend_for_seeds(seeds)
        assert [(e.entity_id, e.score) for e in actual.entities] == [
            (e.entity_id, e.score) for e in expected.entities
        ]
