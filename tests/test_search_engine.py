"""Tests for repro.search.engine: the SearchEngine facade."""

from __future__ import annotations

import pytest

from repro.config import SearchConfig
from repro.exceptions import EmptyQueryError
from repro.kg import KnowledgeGraph
from repro.search import SearchEngine


@pytest.fixture(scope="module")
def engine(request) -> SearchEngine:
    movie_kg = request.getfixturevalue("movie_kg")
    return SearchEngine.from_graph(movie_kg)


class TestSearchEngine:
    def test_indexes_every_entity(self, engine: SearchEngine, movie_kg: KnowledgeGraph):
        assert engine.num_indexed() == movie_kg.num_entities()

    def test_exact_name_search(self, engine: SearchEngine):
        hits = engine.search("forrest gump")
        assert hits[0].entity_id == "dbr:Forrest_Gump"
        assert hits[0].label == "Forrest Gump"

    def test_partial_name_search(self, engine: SearchEngine):
        hits = engine.search("apollo")
        assert hits[0].entity_id == "dbr:Apollo_13_(film)"

    def test_person_search(self, engine: SearchEngine):
        hits = engine.search("tom hanks")
        assert hits[0].entity_id == "dbr:Tom_Hanks"

    def test_alias_field_searchable(self, engine: SearchEngine):
        # "Gumpian" occurs in Forrest Gump's similar-entity-names field (the
        # alias entity itself matches on its name and may rank first).
        hits = engine.search("gumpian")
        assert "dbr:Forrest_Gump" in [hit.entity_id for hit in hits[:3]]

    def test_category_search(self, engine: SearchEngine):
        hits = engine.search("american films 1994")
        assert "dbr:Forrest_Gump" in [hit.entity_id for hit in hits[:5]]

    def test_top_k_respected(self, engine: SearchEngine):
        assert len(engine.search("film", top_k=3)) <= 3

    def test_empty_query_raises(self, engine: SearchEngine):
        with pytest.raises(EmptyQueryError):
            engine.search("")

    def test_no_match_returns_empty_list(self, engine: SearchEngine):
        assert engine.search("qqqqqqzzzz") == []

    def test_scores_descending(self, engine: SearchEngine):
        hits = engine.search("drama")
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_explain_breaks_down_terms(self, engine: SearchEngine):
        scored = engine.explain("forrest gump", "dbr:Forrest_Gump")
        assert set(scored.term_scores) == {"forrest", "gump"}

    def test_document_accessor(self, engine: SearchEngine):
        document = engine.document("dbr:Forrest_Gump")
        assert document.entity_id == "dbr:Forrest_Gump"

    def test_hit_as_dict(self, engine: SearchEngine):
        hit = engine.search("forrest gump")[0]
        payload = hit.as_dict()
        assert payload["entity"] == "dbr:Forrest_Gump"

    def test_baseline_scorers_constructible(self, engine: SearchEngine):
        assert engine.bm25f_scorer() is not None
        assert engine.bm25_names_scorer() is not None
        assert engine.single_field_scorer("names") is not None


class TestIncrementalIndexing:
    def test_add_entity_after_graph_change(self, tiny_kg: KnowledgeGraph):
        engine = SearchEngine.from_graph(tiny_kg)
        tiny_kg.add_label("ex:F9", "Brand New Film")
        tiny_kg.add_type("ex:F9", "ex:Film")
        engine.add_entity("ex:F9")
        hits = engine.search("brand new film")
        assert hits[0].entity_id == "ex:F9"

    def test_custom_config_used(self, tiny_kg: KnowledgeGraph):
        config = SearchConfig(top_k=2)
        engine = SearchEngine.from_graph(tiny_kg, config=config)
        assert engine.config.top_k == 2
        assert len(engine.search("film")) <= 2
