"""Tests for repro.engine.pivote: the PivotE system facade."""

from __future__ import annotations

import pytest

from repro import PivotE
from repro.exceptions import EntityNotFoundError
from repro.features import SemanticFeature

TOM_HANKS_STARRING = SemanticFeature("dbr:Tom_Hanks", "dbo:starring")


class TestStatelessSurface:
    def test_search(self, movie_system: PivotE):
        hits = movie_system.search("forrest gump")
        assert hits[0].entity_id == "dbr:Forrest_Gump"

    def test_recommend(self, movie_system: PivotE):
        recommendation = movie_system.recommend(["dbr:Forrest_Gump", "dbr:Apollo_13_(film)"])
        assert "dbr:Cast_Away" in recommendation.entity_ids()

    def test_lookup_profile(self, movie_system: PivotE):
        profile = movie_system.lookup("dbr:Forrest_Gump")
        assert profile.title == "Forrest Gump"
        assert "wikipedia.org" in profile.external_url

    def test_explain_pair_mentions_shared_actors(self, movie_system: PivotE):
        explanation = movie_system.explain("dbr:Forrest_Gump", "dbr:Apollo_13_(film)")
        assert "Tom Hanks" in explanation.text
        assert "Gary Sinise" in explanation.text

    def test_heatmap_and_matrix(self, movie_system: PivotE):
        recommendation = movie_system.recommend(["dbr:Forrest_Gump"])
        heatmap = movie_system.heatmap_for(recommendation)
        assert heatmap.num_levels == 7
        matrix = movie_system.matrix_for(recommendation)
        assert matrix.shape == heatmap.shape

    def test_component_accessors(self, movie_system: PivotE):
        assert movie_system.graph is not None
        assert movie_system.search_engine is not None
        assert movie_system.recommendation_engine is not None
        assert movie_system.feature_index is not None
        assert movie_system.config is not None


class TestSessionSurface:
    def test_start_and_retrieve_session(self, movie_system: PivotE):
        session = movie_system.start_session()
        assert movie_system.session(session.session_id) is session

    def test_unknown_session_raises(self, movie_system: PivotE):
        with pytest.raises(KeyError):
            movie_system.session("nope")

    def test_submit_keywords_returns_hits_and_matrix(self, movie_system: PivotE):
        session = movie_system.start_session()
        response = movie_system.submit_keywords(session, "forrest gump")
        assert response.hits[0].entity_id == "dbr:Forrest_Gump"
        assert response.has_recommendation
        assert response.matrix is not None

    def test_select_entity_drives_recommendation(self, movie_system: PivotE):
        session = movie_system.start_session()
        response = movie_system.select_entity(session, "dbr:Forrest_Gump")
        assert response.recommendation is not None
        assert "dbr:Forrest_Gump" not in response.recommendation.entity_ids()

    def test_select_unknown_entity_raises(self, movie_system: PivotE):
        session = movie_system.start_session()
        with pytest.raises(EntityNotFoundError):
            movie_system.select_entity(session, "dbr:Not_A_Thing")

    def test_pin_feature_restricts_results(self, movie_system: PivotE):
        session = movie_system.start_session()
        movie_system.select_entity(session, "dbr:Forrest_Gump")
        response = movie_system.pin_feature(session, TOM_HANKS_STARRING)
        assert response.recommendation is not None
        for entity_id in response.recommendation.entity_ids():
            assert movie_system.feature_index.holds(entity_id, TOM_HANKS_STARRING)

    def test_unpin_feature(self, movie_system: PivotE):
        session = movie_system.start_session()
        movie_system.select_entity(session, "dbr:Forrest_Gump")
        movie_system.pin_feature(session, TOM_HANKS_STARRING)
        response = movie_system.unpin_feature(session, TOM_HANKS_STARRING)
        assert not session.current_query.pinned_features
        assert response.recommendation is not None

    def test_pivot_switches_domain(self, movie_system: PivotE):
        session = movie_system.start_session()
        movie_system.select_entity(session, "dbr:Forrest_Gump")
        response = movie_system.pivot(session, "dbr:Tom_Hanks")
        assert session.current_query.seed_entities == ("dbr:Tom_Hanks",)
        assert session.current_query.domain_type == "dbo:Actor"
        assert response.recommendation is not None
        # Recommended entities are now actors.
        for entity_id in response.recommendation.entity_ids():
            assert "dbo:Actor" in movie_system.graph.types_of(entity_id)

    def test_lookup_in_session_records_behaviour(self, movie_system: PivotE):
        session = movie_system.start_session()
        movie_system.lookup_in_session(session, "dbr:Forrest_Gump")
        assert session.lookups == ("dbr:Forrest_Gump",)

    def test_investigate_without_seeds_returns_keyword_hits(self, movie_system: PivotE):
        session = movie_system.start_session()
        movie_system.submit_keywords(session, "tom hanks")
        response = movie_system.investigate(session)
        assert response.hits
        assert response.recommendation is None

    def test_investigate_without_anything_is_empty(self, movie_system: PivotE):
        session = movie_system.start_session()
        response = movie_system.investigate(session)
        assert not response.hits and response.recommendation is None

    def test_deselect_entity(self, movie_system: PivotE):
        session = movie_system.start_session()
        movie_system.select_entity(session, "dbr:Forrest_Gump")
        movie_system.select_entity(session, "dbr:Apollo_13_(film)")
        movie_system.deselect_entity(session, "dbr:Forrest_Gump")
        assert session.current_query.seed_entities == ("dbr:Apollo_13_(film)",)

    def test_set_domain_filters_entities(self, movie_system: PivotE):
        session = movie_system.start_session()
        movie_system.select_entity(session, "dbr:Tom_Hanks")
        response = movie_system.set_domain(session, "dbo:Actor")
        assert session.current_query.domain_type == "dbo:Actor"
        if response.recommendation is not None:
            for entity_id in response.recommendation.entity_ids():
                assert "dbo:Actor" in movie_system.graph.types_of(entity_id)
