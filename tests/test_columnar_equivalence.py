"""Columnar execution equivalence: byte-identical to the scalar paths.

The contract of the PR 6 columnar layer (``repro.index.columnar`` +
``repro.topk.kernels``): with ``columnar=True`` (the default) every
scorer scores through the structure-of-arrays postings view and the
vectorized traversal kernels, and for every pruning mode, every shard
count and all four search scorers the rankings must be *exactly* the
rankings the scalar paths return — same ids, same floats — and both
must equal the exhaustive reference.  The suites here enforce that on
the synthetic movie graph and, via hypothesis, on random KGs; the view
tests pin the ordinal-table/block-grid invariants the kernels rely on.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import PRUNING_MODES, RankingConfig, SearchConfig
from repro.datasets import RandomKGConfig, build_random_kg, small_movie_kg
from repro.exec import shard_of
from repro.explore import RecommendationEngine
from repro.index import BLOCK_SIZE, columnar_view
from repro.search import BM25FieldScorer, BM25FScorer, SearchEngine, parse_query

SHARD_COUNTS = (1, 2, 3, 5)

QUERIES = (
    "forrest gump hanks",
    "drama 1994",
    "comedy director",
    "science fiction space",
    "robert",
)


def _signature(results) -> list[tuple[str, float]]:
    return [(result.doc_id, result.score) for result in results]


def _hit_signature(hits) -> list[tuple[str, float]]:
    return [(hit.entity_id, hit.score) for hit in hits]


@pytest.fixture(scope="module")
def movie_graph():
    return small_movie_kg()


@pytest.fixture(scope="module")
def engines(movie_graph):
    """Lazily built engines per (pruning, shards, columnar), module-shared."""
    cache: dict[tuple[str, int, bool], SearchEngine] = {}

    def get(pruning: str, shards: int, columnar: bool) -> SearchEngine:
        key = (pruning, shards, columnar)
        if key not in cache:
            cache[key] = SearchEngine.from_graph(
                movie_graph,
                SearchConfig(pruning=pruning, shards=shards, columnar=columnar),
            )
        return cache[key]

    return get


class TestColumnarSearchEquivalence:
    """All four scorers, every pruning mode, every shard count, on == off."""

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_engine_mlm_byte_identical(self, engines, pruning, shards):
        columnar = engines(pruning, shards, True)
        scalar = engines(pruning, shards, False)
        reference = engines("off", 1, False).mlm_scorer
        for query in QUERIES:
            actual = _hit_signature(columnar.search(query))
            assert actual == _hit_signature(scalar.search(query))
            expected = _signature(reference.search_exhaustive(parse_query(query)))
            assert actual[: len(expected)] == expected[: len(actual)]

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_single_field_byte_identical(self, engines, pruning, shards):
        columnar = engines(pruning, shards, True).single_field_scorer()
        scalar = engines(pruning, shards, False).single_field_scorer()
        for query in QUERIES:
            parsed = parse_query(query)
            expected = _signature(scalar.search(parsed, top_k=15))
            assert _signature(columnar.search(parsed, top_k=15)) == expected
            assert expected == _signature(scalar.search_exhaustive(parsed, top_k=15))

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_bm25_and_bm25f_byte_identical(self, engines, pruning, shards):
        base = engines("maxscore", 1, True)
        index = base.index
        weights = base.config.field_weights
        for columnar_scorer, scalar_scorer in (
            (
                BM25FieldScorer(index, "names", pruning=pruning, shards=shards, columnar=True),
                BM25FieldScorer(index, "names", pruning=pruning, shards=shards, columnar=False),
            ),
            (
                BM25FScorer(index, weights, pruning=pruning, shards=shards, columnar=True),
                BM25FScorer(index, weights, pruning=pruning, shards=shards, columnar=False),
            ),
        ):
            for query in QUERIES:
                parsed = parse_query(query)
                expected = _signature(scalar_scorer.search(parsed, top_k=15))
                assert _signature(columnar_scorer.search(parsed, top_k=15)) == expected
                assert expected == _signature(
                    scalar_scorer.search_exhaustive(parsed, top_k=15)
                )

    def test_columnar_engines_report_the_knob(self, engines):
        on = engines("maxscore", 1, True)
        off = engines("maxscore", 1, False)
        assert on.stats().columnar is True
        assert off.stats().columnar is False


class TestColumnarRecommendationEquivalence:
    """``RankingConfig.columnar`` must not change recommendations."""

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    def test_recommendation_byte_identical(self, movie_graph, pruning):
        largest = max(
            movie_graph.types(), key=lambda t: (movie_graph.type_count(t), t)
        )
        seeds = sorted(movie_graph.entities_of_type(largest))[:2]
        on = RecommendationEngine(
            movie_graph, config=RankingConfig(pruning=pruning, columnar=True)
        )
        off = RecommendationEngine(
            movie_graph, config=RankingConfig(pruning=pruning, columnar=False)
        )
        expected = off.recommend_for_seeds(seeds)
        actual = on.recommend_for_seeds(seeds)
        assert [(e.entity_id, e.score) for e in actual.entities] == [
            (e.entity_id, e.score) for e in expected.entities
        ]
        assert [(f.feature.notation(), f.score) for f in actual.features] == [
            (f.feature.notation(), f.score) for f in expected.features
        ]
        assert (actual.correlations.values == expected.correlations.values).all()
        assert on.stats().columnar is True
        assert off.stats().columnar is False


class TestColumnarViewInvariants:
    """The ordinal-table/block-grid contracts the kernels rely on."""

    def test_ordinals_are_sorted_doc_id_order(self, engines):
        index = engines("maxscore", 1, True).index
        view = columnar_view(index)
        assert view.doc_ids == sorted(index.documents())
        ordinals = view.ordinals_of(view.doc_ids)
        assert ordinals.tolist() == list(range(view.num_documents))
        assert view.ids_of(ordinals) == view.doc_ids

    def test_view_is_memoised_per_epoch(self, engines):
        index = engines("maxscore", 1, True).index
        assert columnar_view(index) is columnar_view(index)

    def test_postings_match_scalar_postings(self, engines):
        index = engines("maxscore", 1, True).index
        view = columnar_view(index)
        support = index.scoring_support()
        term = "forrest"
        columnar = view.postings("names", term)
        frequencies = support.postings_frequencies("names", term)
        assert columnar is not None and frequencies
        assert view.ids_of(columnar.ordinals) == sorted(frequencies)
        assert columnar.frequencies.tolist() == [
            float(frequencies[doc_id]) for doc_id in sorted(frequencies)
        ]
        # Block grid chunks the same sorted posting order as the scalar
        # summaries: last ordinal and max frequency per BLOCK_SIZE chunk.
        count = columnar.ordinals.size
        expected_lasts = [
            columnar.ordinals[min(start + BLOCK_SIZE - 1, count - 1)]
            for start in range(0, count, BLOCK_SIZE)
        ]
        assert columnar.block_last_ordinals.tolist() == expected_lasts
        assert columnar.block_max_frequencies.tolist() == [
            max(columnar.frequencies[start : start + BLOCK_SIZE])
            for start in range(0, count, BLOCK_SIZE)
        ]

    def test_shard_map_matches_crc_routing(self, engines):
        view = columnar_view(engines("maxscore", 1, True).index)
        for num_shards in (2, 3, 5):
            owners = view.shard_map(num_shards)
            assert owners.tolist() == [
                shard_of(doc_id, num_shards) for doc_id in view.doc_ids
            ]

    def test_dense_frequencies_scatter(self, engines):
        view = columnar_view(engines("maxscore", 1, True).index)
        dense = view.dense_frequencies("names", "forrest")
        columnar = view.postings("names", "forrest")
        assert dense.size == view.num_documents
        assert np.count_nonzero(dense) == columnar.ordinals.size
        assert (dense[columnar.ordinals] == columnar.frequencies).all()


class TestColumnarEquivalenceProperty:
    """Hypothesis: random KGs, random shard counts, every pruning mode."""

    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(
        kg_seed=st.integers(min_value=0, max_value=500),
        num_entities=st.integers(min_value=30, max_value=90),
        shards=st.sampled_from(SHARD_COUNTS),
        pruning=st.sampled_from(PRUNING_MODES),
    )
    def test_search_columnar_equals_scalar(self, kg_seed, num_entities, shards, pruning):
        graph = build_random_kg(RandomKGConfig(num_entities=num_entities, seed=kg_seed))
        columnar = SearchEngine.from_graph(
            graph, SearchConfig(pruning=pruning, shards=shards, columnar=True)
        )
        scalar = SearchEngine.from_graph(
            graph, SearchConfig(pruning=pruning, shards=shards, columnar=False)
        )
        entities = sorted(graph.entities())
        step = max(1, len(entities) // 3)
        for position in range(0, len(entities), step):
            query = graph.label(entities[position])
            assert _hit_signature(columnar.search(query)) == _hit_signature(
                scalar.search(query)
            )

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(
        kg_seed=st.integers(min_value=0, max_value=500),
        num_entities=st.integers(min_value=30, max_value=80),
        pruning=st.sampled_from(PRUNING_MODES),
    )
    def test_bm25_columnar_equals_scalar(self, kg_seed, num_entities, pruning):
        graph = build_random_kg(RandomKGConfig(num_entities=num_entities, seed=kg_seed))
        engine = SearchEngine.from_graph(graph)
        index = engine.index
        on = BM25FieldScorer(index, "names", pruning=pruning, columnar=True)
        off = BM25FieldScorer(index, "names", pruning=pruning, columnar=False)
        entities = sorted(graph.entities())
        step = max(1, len(entities) // 3)
        for position in range(0, len(entities), step):
            parsed = parse_query(graph.label(entities[position]))
            assert _signature(on.search(parsed, top_k=10)) == _signature(
                off.search(parsed, top_k=10)
            )
