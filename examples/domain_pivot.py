#!/usr/bin/env python3
"""Cross-domain pivoting: from films through countries into geography.

The paper's challenge (3) is letting users "switch across the multi-domains
freely".  This example merges the movie KG with the geography KG — the two
share country entities — and walks a session that starts at a film, pivots
into the Country domain via ``dbo:country``, and continues exploring
countries, capitals and rivers that have no connection to cinema at all.
It also prints the statistical type couplings that make such pivots
possible (the "films are coupled with actors via starring" observation of
the introduction).

Run with:  python examples/domain_pivot.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import PivotE
from repro.datasets import build_geography_kg, build_movie_kg
from repro.kg import type_couplings
from repro.viz import render_path_ascii


def main() -> None:
    # Merge the two domains into one knowledge graph.
    graph = build_movie_kg()
    graph.merge(build_geography_kg())
    print(graph.describe())

    # The statistical couplings between entity types (introduction of the paper).
    print("\nstrongest type couplings:")
    for coupling in type_couplings(graph, min_strength=0.5)[:10]:
        print(
            f"  {coupling.source_type:<18} --{coupling.predicate}--> "
            f"{coupling.target_type:<18} strength={coupling.strength:.2f} edges={coupling.edge_count}"
        )

    system = PivotE(graph)
    session = system.start_session("cross-domain")

    # Start in the film domain.
    system.submit_keywords(session, "Forrest Gump")
    system.select_entity(session, "dbr:Forrest_Gump")

    # Pivot 1: films -> countries (via dbo:country).
    response = system.pivot(session, "dbr:United_States")
    print("\nafter pivoting into the Country domain, similar countries:")
    if response.recommendation is not None:
        for entity in response.recommendation.entities[:6]:
            print(f"  {entity.score:8.4f}  {graph.label(entity.entity_id)}")
        print("features pointing onwards:")
        for scored in response.recommendation.features[:6]:
            print(f"  {scored.score:8.4f}  {scored.feature.notation()}")

    # Pivot 2: countries -> cities (via dbo:capital).
    response = system.pivot(session, "dbr:Paris")
    print("\nafter pivoting into the City domain, similar cities:")
    if response.recommendation is not None:
        for entity in response.recommendation.entities[:6]:
            print(f"  {entity.score:8.4f}  {graph.label(entity.entity_id)}")

    print("\nexploratory path across three domains:")
    print(render_path_ascii(session.path))


if __name__ == "__main__":
    main()
