#!/usr/bin/env python3
"""Demo scenario 1 and 2 (§3): a full interactive exploration session.

Replays the paper's demo scenarios against the full synthetic movie KG:

1. *Entity investigation* — keyword query "Forrest Gump", look up the
   entity, express "films similar to Forrest Gump" by selecting the entity,
   and "films starring Tom Hanks" by pinning the semantic feature
   ``Tom_Hanks:starring``.
2. *Search domain exploration* — pivot into the Actor domain via Tom Hanks,
   investigate co-stars, then trace back through the query timeline and
   print the exploratory path (Fig 4).

Run with:  python examples/movie_exploration.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import PivotE
from repro.datasets import build_movie_kg
from repro.features import SemanticFeature
from repro.viz import render_matrix_ascii, render_path_ascii


def show_response(system: PivotE, response, title: str, max_rows: int = 6) -> None:
    print(f"\n=== {title} ===")
    if response.hits:
        print("hits:")
        for hit in response.hits[:max_rows]:
            print(f"  {hit.score:8.3f}  {hit.label}")
    if response.recommendation is not None:
        print("recommended entities:")
        for entity in response.recommendation.entities[:max_rows]:
            print(f"  {entity.score:8.4f}  {system.graph.label(entity.entity_id)}")
        print("recommended features:")
        for scored in response.recommendation.features[:max_rows]:
            print(f"  {scored.score:8.4f}  {scored.feature.notation()}")


def main() -> None:
    graph = build_movie_kg()
    system = PivotE(graph)
    session = system.start_session("movie-exploration")

    # --- Scenario 1: entity investigation ------------------------------- #
    response = system.submit_keywords(session, "Forrest Gump")
    show_response(system, response, 'submit keywords "Forrest Gump"')

    profile = system.lookup_in_session(session, "dbr:Forrest_Gump")
    print(f"\nlooked up: {profile.title} -> {profile.external_url}")

    response = system.select_entity(session, "dbr:Forrest_Gump")
    show_response(system, response, "investigate: films similar to Forrest Gump")

    response = system.pin_feature(session, SemanticFeature("dbr:Tom_Hanks", "dbo:starring"))
    show_response(system, response, "pin feature Tom_Hanks:starring (films starring Tom Hanks)")

    print("\n=== heat-map matrix for the current query ===")
    if response.matrix is not None:
        print(render_matrix_ascii(response.matrix, max_entities=6, max_features=10))

    # --- Scenario 2: search domain exploration --------------------------- #
    response = system.pivot(session, "dbr:Tom_Hanks")
    show_response(system, response, "pivot into the Actor domain via Tom Hanks")

    explanation = system.explain("dbr:Forrest_Gump", "dbr:Apollo_13_(film)")
    print(f"\nexplanation: {explanation.text}")

    # Trace back to the investigation query and branch in a new direction.
    session.revisit(2)
    response = system.select_entity(session, "dbr:Apollo_13_(film)")
    show_response(system, response, "traceback + add Apollo 13 as a second example")

    print("\n=== exploratory path (Fig 4) ===")
    print(render_path_ascii(session.path))

    print("\n=== behaviour summary ===")
    for kind, count in sorted(session.behaviour_summary().items()):
        print(f"  {kind:<16} {count}")


if __name__ == "__main__":
    main()
