#!/usr/bin/env python3
"""Structured (SPARQL-like) access vs. exploratory search, side by side.

The paper motivates PivotE by the difficulty of accessing a KG "in a
structured manner like SPARQL" when the user does not know the schema.
This example makes the contrast concrete on the same information need
("what else is like Forrest Gump, and who keeps showing up?"):

1. the **structured** route: hand-written graph-pattern queries with the
   built-in :class:`~repro.kg.QueryEngine` — precise, but the user must
   already know predicates such as ``dbo:starring`` and decide upfront what
   to ask;
2. the **exploratory** route: one click on Forrest Gump, and the
   recommendation engine surfaces the same films and the features that
   explain them, without the user naming a single predicate.

Run with:  python examples/structured_vs_exploratory.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import PivotE
from repro.datasets import build_movie_kg
from repro.kg import Filter, QueryEngine


def main() -> None:
    graph = build_movie_kg()

    # ------------------------------------------------------------------ #
    # Route 1: structured queries (the user must know the schema).
    # ------------------------------------------------------------------ #
    engine = QueryEngine(graph)

    print("== structured: films starring Tom Hanks ==")
    rows = engine.select(
        ["?film"],
        [("?film", "dbo:starring", "dbr:Tom_Hanks"), ("?film", "rdf:type", "dbo:Film")],
    )
    for row in rows:
        print(f"  {graph.label(row['film'])}")

    print("\n== structured: actors co-starring with Tom Hanks in a drama ==")
    rows = engine.select(
        ["?actor"],
        [
            ("?film", "dbo:starring", "dbr:Tom_Hanks"),
            ("?film", "dbo:genre", "dbr:Drama"),
            ("?film", "dbo:starring", "?actor"),
        ],
        filters=[Filter("?actor", "neq", "dbr:Tom_Hanks")],
    )
    for row in rows:
        print(f"  {graph.label(row['actor'])}")

    print("\n== structured: directors Tom Hanks has worked with, with the film ==")
    rows = engine.select(
        ["?director", "?film"],
        [
            ("?film", "dbo:starring", "dbr:Tom_Hanks"),
            ("?film", "dbo:director", "?director"),
        ],
    )
    for row in rows:
        print(f"  {graph.label(row['director']):<22} via {graph.label(row['film'])}")

    # ------------------------------------------------------------------ #
    # Route 2: exploratory search (no schema knowledge required).
    # ------------------------------------------------------------------ #
    system = PivotE(graph)
    print("\n== exploratory: one click on Forrest Gump ==")
    recommendation = system.recommend(["dbr:Forrest_Gump"])
    print("similar entities the system proposes:")
    for entity in recommendation.entities[:8]:
        print(f"  {entity.score:8.4f}  {graph.label(entity.entity_id)}")
    print("semantic features it discovered on the fly (the schema, learned as you go):")
    for scored in recommendation.features[:8]:
        print(f"  {scored.score:8.4f}  {scored.feature.notation()}")

    print(
        "\nThe exploratory route surfaces dbo:starring / dbo:director / dbo:genre and "
        "the same Tom Hanks films without the user writing a single triple pattern; "
        "the structured route remains available (repro.kg.QueryEngine) once the user "
        "knows exactly what to ask."
    )


if __name__ == "__main__":
    main()
