#!/usr/bin/env python3
"""Domain-independence demo: exploring an academic knowledge graph.

The ranking model of §2.3 uses nothing movie-specific — only triples, types
and set sizes.  This example runs the same investigation loop over the
synthetic academic KG (papers, authors, venues, fields): start from two
papers of one venue, expand to similar papers, inspect the recommended
semantic features, and pivot into the Author domain.

Run with:  python examples/academic_exploration.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import PivotE
from repro.datasets import build_academic_kg
from repro.kg import compute_statistics
from repro.viz import render_matrix_ascii


def main() -> None:
    graph = build_academic_kg()
    print(compute_statistics(graph).summary(top=5))

    system = PivotE(graph)

    # Pick two papers published at VLDB as the seed examples.
    vldb_papers = sorted(graph.subjects("pivote:publishedIn", "pv:VLDB"))
    seeds = vldb_papers[:2]
    print("\nseed papers:")
    for seed in seeds:
        print(f"  {graph.label(seed)}")

    # Investigation: papers similar to the seeds.
    recommendation = system.recommend(seeds)
    print("\nrecommended papers:")
    for entity in recommendation.entities[:8]:
        venues = ", ".join(sorted(graph.objects(entity.entity_id, "pivote:publishedIn")))
        print(f"  {entity.score:8.4f}  {graph.label(entity.entity_id):<40} ({venues})")

    print("\nrecommended semantic features:")
    for scored in recommendation.features[:8]:
        print(f"  {scored.score:8.4f}  {scored.feature.notation()}")

    print("\nmatrix / heat map:")
    print(render_matrix_ascii(system.matrix_for(recommendation), max_entities=6, max_features=8))

    # Pivot: switch into the Author domain via the most relevant author anchor.
    targets = system.recommendation_engine.pivot_targets(recommendation)
    author_targets = [t for t in targets if t[1] == "pivote:Author"]
    if author_targets:
        author = author_targets[0][0]
        session = system.start_session("academic")
        system.select_entity(session, seeds[0])
        response = system.pivot(session, author)
        print(f"\npivoted into the Author domain via {graph.label(author)}; similar authors:")
        if response.recommendation is not None:
            for entity in response.recommendation.entities[:6]:
                print(f"  {entity.score:8.4f}  {graph.label(entity.entity_id)}")

    # Keyword search also works across the five fields in this domain.
    print("\nsearch: 'entity search'")
    for hit in system.search("entity search", top_k=5):
        print(f"  {hit.score:8.3f}  {hit.label}")


if __name__ == "__main__":
    main()
