#!/usr/bin/env python3
"""Quickstart: search, recommend and visualise in ten lines of API.

Builds the small synthetic movie knowledge graph, runs a keyword query for
"Forrest Gump", asks the recommendation engine for similar films, and prints
the heat-map matrix and an explanation of why two films are related —
the complete PivotE loop from §2 of the paper.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import PivotE
from repro.datasets import small_movie_kg
from repro.kg import compute_statistics
from repro.viz import render_matrix_ascii, render_profile_text


def main() -> None:
    # 1. Build the knowledge graph and the PivotE system (Fig 2).
    graph = small_movie_kg()
    print(compute_statistics(graph).summary(top=5))
    print()

    system = PivotE(graph)

    # 2. Keyword entity search (the search engine, §2.2).
    print("== search: 'forrest gump' ==")
    for hit in system.search("forrest gump", top_k=5):
        print(f"  {hit.score:8.3f}  {hit.label}  ({hit.entity_id})")
    print()

    # 3. Entity profile (the presentation area, Fig 3-d).
    print("== profile ==")
    print(render_profile_text(system.lookup("dbr:Forrest_Gump")))
    print()

    # 4. Recommendation (the recommendation engine, §2.3): films similar to
    #    Forrest Gump and Apollo 13, with their semantic features.
    recommendation = system.recommend(["dbr:Forrest_Gump", "dbr:Apollo_13_(film)"])
    print("== recommended entities (x-axis) ==")
    for entity in recommendation.entities[:8]:
        print(f"  {entity.score:8.4f}  {graph.label(entity.entity_id)}")
    print()
    print("== recommended semantic features (y-axis) ==")
    for scored in recommendation.features[:8]:
        print(f"  {scored.score:8.4f}  {scored.feature.notation()}")
    print()

    # 5. The matrix with the seven-level heat map (Fig 3-f).
    print("== matrix / heat map ==")
    print(render_matrix_ascii(system.matrix_for(recommendation), max_entities=6, max_features=10))
    print()

    # 6. Explanation of a semantic correlation (the paper's example).
    explanation = system.explain("dbr:Forrest_Gump", "dbr:Apollo_13_(film)")
    print("== explanation ==")
    print(explanation.text)


if __name__ == "__main__":
    main()
