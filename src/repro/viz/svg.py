"""SVG rendering of the heat-map matrix and the exploratory path.

The ASCII renderers are fine for terminals and tests; for documentation and
for embedding in notebooks the same artefacts are also rendered as
standalone SVG documents, built with plain string assembly (no external
drawing dependency).  Two renderers are provided:

* :func:`render_heatmap_svg` — the Fig 3-f heat map: one coloured cell per
  (entity, semantic feature) pair, darker meaning stronger correlation,
  with axis labels;
* :func:`render_path_svg` — the Fig 4 exploratory path as a left-to-right
  node/edge diagram with operation labels.
"""

from __future__ import annotations
from xml.sax.saxutils import escape

from ..explore import ExplorationPath
from .heatmap import Heatmap
from .matrix_view import MatrixView

#: Greyscale fills for the correlation levels, white (level 0) to near-black.
LEVEL_FILLS: tuple[str, ...] = (
    "#ffffff",
    "#e8eef7",
    "#c6d7ec",
    "#9dbcdf",
    "#6f9ccf",
    "#3f78ba",
    "#1d4f91",
)


def _fill_for_level(level: int, num_levels: int) -> str:
    """Pick a fill colour for a level, interpolating over the palette."""
    if num_levels <= 1:
        return LEVEL_FILLS[-1]
    index = round(level * (len(LEVEL_FILLS) - 1) / (num_levels - 1))
    return LEVEL_FILLS[max(0, min(index, len(LEVEL_FILLS) - 1))]


def _truncate(text: str, limit: int) -> str:
    return text if len(text) <= limit else text[: limit - 3] + "..."


def render_heatmap_svg(
    view: MatrixView,
    cell_size: int = 22,
    label_width: int = 240,
    label_height: int = 110,
    max_entities: int = 20,
    max_features: int = 25,
) -> str:
    """Render the matrix view's heat map as a standalone SVG document."""
    entities = view.entities[:max_entities]
    features = view.features[:max_features]
    heatmap: Heatmap = view.heatmap

    width = label_width + cell_size * max(len(entities), 1) + 20
    height = label_height + cell_size * max(len(features), 1) + 20

    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]

    # Column (entity) labels, rotated.
    for column, entity in enumerate(entities):
        label = escape(_truncate(view.entity_labels.get(entity.entity_id, entity.entity_id), 18))
        x = label_width + column * cell_size + cell_size // 2
        parts.append(
            f'<text x="{x}" y="{label_height - 6}" text-anchor="start" '
            f'transform="rotate(-55 {x} {label_height - 6})">{label}</text>'
        )

    # Row (feature) labels and cells.
    for row, scored in enumerate(features):
        notation = scored.feature.notation()
        y = label_height + row * cell_size
        label = escape(_truncate(notation, 34))
        parts.append(
            f'<text x="{label_width - 6}" y="{y + cell_size - 7}" text-anchor="end">{label}</text>'
        )
        for column, entity in enumerate(entities):
            level = heatmap.level(entity.entity_id, notation)
            fill = _fill_for_level(level, heatmap.num_levels)
            x = label_width + column * cell_size
            title = escape(
                f"{view.entity_labels.get(entity.entity_id, entity.entity_id)} x {notation}: level {level}"
            )
            parts.append(
                f'<rect x="{x}" y="{y}" width="{cell_size - 2}" height="{cell_size - 2}" '
                f'fill="{fill}" stroke="#cccccc"><title>{title}</title></rect>'
            )

    parts.append("</svg>")
    return "\n".join(parts)


def render_path_svg(
    path: ExplorationPath,
    node_width: int = 190,
    node_height: int = 46,
    h_gap: int = 70,
    v_gap: int = 28,
) -> str:
    """Render the exploratory path as a left-to-right SVG diagram.

    Nodes are laid out by depth from the root (x) and discovery order within
    a depth (y); edges are straight lines labelled with the operation.
    """
    if len(path) == 0:
        return '<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"/>'

    # Depth of every node from its root (nodes without incoming edges).
    parents: dict[int, int] = {edge.target: edge.source for edge in path.edges}
    depths: dict[int, int] = {}
    for node in path.nodes:
        depth = 0
        current = node.node_id
        while current in parents:
            current = parents[current]
            depth += 1
        depths[node.node_id] = depth

    rows: dict[int, int] = {}
    per_depth_count: dict[int, int] = {}
    for node in path.nodes:
        depth = depths[node.node_id]
        rows[node.node_id] = per_depth_count.get(depth, 0)
        per_depth_count[depth] = rows[node.node_id] + 1

    max_depth = max(depths.values())
    max_rows = max(per_depth_count.values())
    width = 20 + (max_depth + 1) * (node_width + h_gap)
    height = 20 + max_rows * (node_height + v_gap)

    def position(node_id: int) -> tuple[int, int]:
        x = 10 + depths[node_id] * (node_width + h_gap)
        y = 10 + rows[node_id] * (node_height + v_gap)
        return x, y

    current_id = path.current_node.node_id if path.current_node else -1
    parts: list[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]

    for edge in path.edges:
        x1, y1 = position(edge.source)
        x2, y2 = position(edge.target)
        start_x, start_y = x1 + node_width, y1 + node_height // 2
        end_x, end_y = x2, y2 + node_height // 2
        mid_x, mid_y = (start_x + end_x) // 2, (start_y + end_y) // 2 - 4
        label = escape(_truncate(edge.description, 28))
        parts.append(
            f'<line x1="{start_x}" y1="{start_y}" x2="{end_x}" y2="{end_y}" '
            f'stroke="#888888" stroke-width="1.5"/>'
        )
        parts.append(f'<text x="{mid_x}" y="{mid_y}" text-anchor="middle" fill="#555555">{label}</text>')

    for node in path.nodes:
        x, y = position(node.node_id)
        stroke = "#1d4f91" if node.node_id == current_id else "#999999"
        stroke_width = 2.5 if node.node_id == current_id else 1.0
        label = escape(_truncate(node.label, 30))
        parts.append(
            f'<rect x="{x}" y="{y}" width="{node_width}" height="{node_height}" rx="6" '
            f'fill="#f4f7fb" stroke="{stroke}" stroke-width="{stroke_width}"/>'
        )
        parts.append(f'<text x="{x + 8}" y="{y + 18}" fill="#222222">({node.node_id})</text>')
        parts.append(f'<text x="{x + 8}" y="{y + 34}" fill="#222222">{label}</text>')

    parts.append("</svg>")
    return "\n".join(parts)
