"""JSON export of every UI artefact.

The original PivotE front end is a web application; this module produces the
JSON payloads such a front end would consume — the matrix (entities,
features, heat-map levels), the exploratory path and the timeline — so the
computed artefacts of the demo are fully serialisable and testable.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..explore import ExplorationPath, ExplorationSession, Recommendation
from .heatmap import Heatmap
from .matrix_view import MatrixView

_PathLike = str | Path


def matrix_view_to_dict(view: MatrixView) -> dict[str, object]:
    """JSON payload of the matrix interface (Fig 3-c, e, f)."""
    return {
        "query": view.query_description,
        "entities": [
            {
                "id": entity.entity_id,
                "label": view.entity_labels.get(entity.entity_id, entity.entity_id),
                "score": entity.score,
            }
            for entity in view.entities
        ],
        "features": [
            {
                "notation": scored.feature.notation(),
                "description": view.feature_descriptions.get(
                    scored.feature.notation(), scored.feature.notation()
                ),
                "score": scored.score,
                "discriminability": scored.discriminability,
                "commonality": scored.commonality,
            }
            for scored in view.features
        ],
        "heatmap": heatmap_to_dict(view.heatmap),
    }


def heatmap_to_dict(heatmap: Heatmap) -> dict[str, object]:
    """JSON payload of the heat map: levels per (entity, feature) cell."""
    return {
        "num_levels": heatmap.num_levels,
        "entities": list(heatmap.entities),
        "features": list(heatmap.feature_notations),
        "levels": heatmap.levels.tolist(),
        "thresholds": list(heatmap.thresholds),
    }


def recommendation_to_dict(recommendation: Recommendation) -> dict[str, object]:
    """JSON payload of a raw recommendation (before heat-map bucketing)."""
    return {
        "query": recommendation.query.describe(),
        "entities": [entity.as_dict() for entity in recommendation.entities],
        "features": [scored.as_dict() for scored in recommendation.features],
    }


def path_to_dict(path: ExplorationPath) -> dict[str, object]:
    """JSON payload of the exploratory path (Fig 4)."""
    return path.as_dict()


def session_to_dict(session: ExplorationSession) -> dict[str, object]:
    """JSON payload of a full session: timeline, path and behaviour summary."""
    return {
        "session_id": session.session_id,
        "timeline": [entry.as_dict() for entry in session.timeline],
        "path": session.path.as_dict(),
        "lookups": list(session.lookups),
        "behaviour": session.behaviour_summary(),
        "current_query": session.current_query.describe(),
    }


def write_json(payload: dict[str, object], path: _PathLike) -> Path:
    """Write a payload to disk as pretty-printed JSON; return the path."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return path
