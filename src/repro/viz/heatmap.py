"""The seven-level correlation heat map (Fig 3-f).

The paper: "We divide the correlation of entities and semantic features
into seven levels, and visualize them with a heat-map".  This module turns
the raw :class:`~repro.ranking.CorrelationMatrix` into a discrete heat map:
every cell is assigned a level in ``0 .. levels-1`` (darker = stronger
correlation), using one of three bucketing scales.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import HeatmapConfig
from ..exceptions import VisualizationError
from ..ranking import CorrelationMatrix


@dataclass(frozen=True)
class Heatmap:
    """A discretised correlation heat map."""

    entities: tuple[str, ...]
    feature_notations: tuple[str, ...]
    levels: np.ndarray
    num_levels: int
    thresholds: tuple[float, ...]

    def __post_init__(self) -> None:
        expected = (len(self.entities), len(self.feature_notations))
        if self.levels.shape != expected:
            raise VisualizationError(
                f"heat map shape {self.levels.shape} does not match "
                f"{len(self.entities)} x {len(self.feature_notations)}"
            )

    def level(self, entity_id: str, feature_notation: str) -> int:
        """Level of one cell (0 = weakest, ``num_levels - 1`` = strongest)."""
        row = self.entities.index(entity_id)
        column = self.feature_notations.index(feature_notation)
        return int(self.levels[row, column])

    def level_counts(self) -> dict[int, int]:
        """How many cells fall into each level."""
        values, counts = np.unique(self.levels, return_counts=True)
        result = {int(level): 0 for level in range(self.num_levels)}
        result.update({int(v): int(c) for v, c in zip(values, counts)})
        return result

    def strongest_cells(self, k: int = 10) -> list[tuple[str, str, int]]:
        """The ``k`` darkest cells as (entity, feature, level)."""
        cells: list[tuple[str, str, int]] = []
        for row, entity in enumerate(self.entities):
            for column, feature in enumerate(self.feature_notations):
                cells.append((entity, feature, int(self.levels[row, column])))
        cells.sort(key=lambda cell: (-cell[2], cell[0], cell[1]))
        return cells[:k]

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.entities), len(self.feature_notations))


def _linear_thresholds(values: np.ndarray, levels: int) -> np.ndarray:
    low, high = float(values.min()), float(values.max())
    if high <= low:
        return np.full(levels - 1, high)
    return np.linspace(low, high, levels + 1)[1:-1]


def _log_thresholds(values: np.ndarray, levels: int) -> np.ndarray:
    positive = values[values > 0]
    if positive.size == 0:
        return np.zeros(levels - 1)
    low = float(np.log10(positive.min()))
    high = float(np.log10(positive.max()))
    if high <= low:
        return np.full(levels - 1, positive.max())
    return np.power(10.0, np.linspace(low, high, levels + 1)[1:-1])


def _quantile_thresholds(values: np.ndarray, levels: int) -> np.ndarray:
    positive = values[values > 0]
    if positive.size == 0:
        return np.zeros(levels - 1)
    if levels <= 2:
        return np.array([float(np.median(positive))])
    # levels buckets over the positive values need levels - 1 internal cuts.
    quantiles = np.linspace(0.0, 1.0, levels + 1)[1:-1]
    return np.quantile(positive, quantiles)


def build_heatmap(matrix: CorrelationMatrix, config: HeatmapConfig | None = None) -> Heatmap:
    """Discretise a correlation matrix into a heat map.

    Zero correlations always map to level 0; positive correlations are
    bucketed into levels ``1 .. levels-1`` by the configured scale, so with
    the default seven levels there are six "shades" of positive correlation
    plus white.
    """
    config = config or HeatmapConfig()
    values = matrix.values
    rows, columns = values.shape
    levels = np.zeros((rows, columns), dtype=int)
    if values.size == 0:
        return Heatmap(
            entities=matrix.entities,
            feature_notations=tuple(f.notation() for f in matrix.features),
            levels=levels,
            num_levels=config.levels,
            thresholds=(),
        )

    positive_levels = config.levels - 1
    if config.scale == "linear":
        thresholds = _linear_thresholds(values[values > 0] if (values > 0).any() else values, positive_levels)
    elif config.scale == "log":
        thresholds = _log_thresholds(values, positive_levels)
    else:
        thresholds = _quantile_thresholds(values, positive_levels)
    thresholds = np.asarray(thresholds, dtype=float)

    for row in range(rows):
        for column in range(columns):
            value = values[row, column]
            if value <= 0.0:
                levels[row, column] = 0
                continue
            # Level 1 + number of thresholds the value exceeds, capped.
            level = 1 + int(np.searchsorted(thresholds, value, side="right"))
            levels[row, column] = min(level, config.levels - 1)

    return Heatmap(
        entities=matrix.entities,
        feature_notations=tuple(f.notation() for f in matrix.features),
        levels=levels,
        num_levels=config.levels,
        thresholds=tuple(float(t) for t in thresholds),
    )
