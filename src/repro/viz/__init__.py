"""Visualisation layer: heat map, matrix view, profiles, path rendering, export."""

from .export import (
    heatmap_to_dict,
    matrix_view_to_dict,
    path_to_dict,
    recommendation_to_dict,
    session_to_dict,
    write_json,
)
from .heatmap import Heatmap, build_heatmap
from .matrix_view import LEVEL_GLYPHS, MatrixView, build_matrix_view, render_matrix_ascii
from .path_render import render_path_ascii, render_path_mermaid
from .profile import entity_profile, profile_as_dict, render_profile_text
from .svg import render_heatmap_svg, render_path_svg

__all__ = [
    "Heatmap",
    "LEVEL_GLYPHS",
    "MatrixView",
    "build_heatmap",
    "build_matrix_view",
    "entity_profile",
    "heatmap_to_dict",
    "matrix_view_to_dict",
    "path_to_dict",
    "profile_as_dict",
    "recommendation_to_dict",
    "render_heatmap_svg",
    "render_matrix_ascii",
    "render_path_ascii",
    "render_path_svg",
    "render_path_mermaid",
    "render_profile_text",
    "session_to_dict",
    "write_json",
]
