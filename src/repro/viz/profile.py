"""Rendering of entity profiles (the presentation area, Fig 3-d)."""

from __future__ import annotations

from ..kg import EntityProfile, KnowledgeGraph, build_profile


def entity_profile(graph: KnowledgeGraph, entity_id: str, max_facts: int = 10) -> EntityProfile:
    """Build the presentation-area profile of an entity."""
    return build_profile(graph.entity(entity_id), max_facts=max_facts)


def render_profile_text(profile: EntityProfile) -> str:
    """Render a profile as readable text."""
    entity = profile.entity
    lines = [f"{entity.name}  <{entity.identifier}>"]
    if entity.types:
        lines.append("  types      : " + ", ".join(entity.types))
    if entity.categories:
        lines.append("  categories : " + ", ".join(entity.categories))
    if profile.top_facts:
        lines.append("  facts:")
        for predicate, value in profile.top_facts:
            lines.append(f"    {predicate:<24} {value}")
    lines.append(f"  more       : {profile.external_url}")
    return "\n".join(lines)


def profile_as_dict(profile: EntityProfile) -> dict[str, object]:
    """JSON payload of a profile for the web UI."""
    entity = profile.entity
    return {
        "id": entity.identifier,
        "name": entity.name,
        "types": list(entity.types),
        "categories": list(entity.categories),
        "attributes": {predicate: list(values) for predicate, values in entity.attributes.items()},
        "facts": [{"predicate": predicate, "value": value} for predicate, value in profile.top_facts],
        "external_url": profile.external_url,
    }
