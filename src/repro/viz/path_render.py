"""Textual rendering of the exploratory search path (Fig 4).

The exploratory path shows the sequence of queries a user went through,
with branches where the user backtracked via the timeline and explored in a
different direction.  The renderer produces an indented tree: every node is
one visited query, every edge is labelled with the operation that produced
it.
"""

from __future__ import annotations

from ..explore import ExplorationPath


def render_path_ascii(path: ExplorationPath) -> str:
    """Render the exploratory path as an indented ASCII tree."""
    if len(path) == 0:
        return "(empty exploration path)"

    children: dict[int, list[tuple[int, str]]] = {}
    has_parent: set[int] = set()
    for edge in path.edges:
        children.setdefault(edge.source, []).append((edge.target, edge.description))
        has_parent.add(edge.target)

    roots = [node.node_id for node in path.nodes if node.node_id not in has_parent]
    current = path.current_node.node_id if path.current_node else -1
    lines: list[str] = []

    def render(node_id: int, depth: int, via: str) -> None:
        node = path.node(node_id)
        marker = " <== current" if node_id == current else ""
        prefix = "    " * depth
        connector = f"--[{via}]--> " if via else ""
        lines.append(f"{prefix}{connector}({node_id}) {node.label}{marker}")
        for target, description in children.get(node_id, []):
            render(target, depth + 1, description)

    for root in roots:
        render(root, 0, "")
    return "\n".join(lines)


def render_path_mermaid(path: ExplorationPath) -> str:
    """Render the path as a Mermaid ``graph TD`` diagram (for docs/READMEs)."""
    lines = ["graph TD"]
    for node in path.nodes:
        label = node.label.replace('"', "'")
        lines.append(f'    n{node.node_id}["{label}"]')
    for edge in path.edges:
        description = edge.description.replace('"', "'")
        lines.append(f'    n{edge.source} -->|"{description}"| n{edge.target}')
    return "\n".join(lines)
