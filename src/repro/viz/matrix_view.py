"""The matrix view: the central UI artefact of PivotE (Fig 3).

The matrix plots the relationships between recommended entities (x-axis,
mostly of the same type) and their semantic features (y-axis); each cell
carries the discrete correlation level of the heat map.  The view bundles
everything a front end needs to draw the five areas of the workspace, and
the ASCII renderer draws a faithful textual version for terminals, tests
and the documentation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..explore import Recommendation
from ..kg import KnowledgeGraph
from ..ranking import ScoredEntity, ScoredFeature
from .heatmap import Heatmap


@dataclass(frozen=True)
class MatrixView:
    """The assembled matrix interface payload."""

    entities: tuple[ScoredEntity, ...]
    features: tuple[ScoredFeature, ...]
    heatmap: Heatmap
    entity_labels: dict[str, str]
    feature_descriptions: dict[str, str]
    query_description: str = ""

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.entities), len(self.features))

    def cell_level(self, entity_id: str, feature_notation: str) -> int:
        """Heat-map level of one matrix cell."""
        return self.heatmap.level(entity_id, feature_notation)

    def entity_axis(self) -> list[tuple[str, str, float]]:
        """The x-axis: (entity id, label, score) in rank order."""
        return [
            (entity.entity_id, self.entity_labels.get(entity.entity_id, entity.entity_id), entity.score)
            for entity in self.entities
        ]

    def feature_axis(self) -> list[tuple[str, str, float]]:
        """The y-axis: (feature notation, description, score) in rank order."""
        return [
            (
                scored.feature.notation(),
                self.feature_descriptions.get(scored.feature.notation(), scored.feature.notation()),
                scored.score,
            )
            for scored in self.features
        ]


def build_matrix_view(
    graph: KnowledgeGraph,
    recommendation: Recommendation,
    heatmap: Heatmap,
) -> MatrixView:
    """Assemble the matrix view from a recommendation and its heat map."""
    entity_labels = {
        entity.entity_id: graph.label(entity.entity_id) for entity in recommendation.entities
    }
    feature_descriptions = {}
    for scored in recommendation.features:
        feature = scored.feature
        feature_descriptions[feature.notation()] = feature.describe(
            anchor_label=graph.label(feature.anchor), predicate_label=feature.predicate
        )
    return MatrixView(
        entities=recommendation.entities,
        features=recommendation.features,
        heatmap=heatmap,
        entity_labels=entity_labels,
        feature_descriptions=feature_descriptions,
        query_description=recommendation.query.describe(),
    )


#: Characters used to render the seven heat-map levels in ASCII, from
#: weakest (blank) to strongest (full block).
LEVEL_GLYPHS: str = " .:-=+*#@"


def render_matrix_ascii(
    view: MatrixView,
    max_entities: int = 12,
    max_features: int = 15,
    label_width: int = 28,
) -> str:
    """Render the matrix view as monospace text.

    Entities are columns, features are rows (as in the paper's screenshot);
    each cell shows the glyph of its correlation level.
    """
    entities = view.entities[:max_entities]
    features = view.features[:max_features]
    glyphs = LEVEL_GLYPHS

    lines: list[str] = []
    if view.query_description:
        lines.append(f"Query: {view.query_description}")
    header_cells = []
    for index, entity in enumerate(entities):
        label = view.entity_labels.get(entity.entity_id, entity.entity_id)
        header_cells.append(f"E{index + 1}")
        lines.append(f"  E{index + 1}: {label} (score={entity.score:.4f})")
    lines.append("")
    header = " " * (label_width + 2) + " ".join(f"{cell:>3}" for cell in header_cells)
    lines.append(header)
    for scored in features:
        notation = scored.feature.notation()
        label = notation if len(notation) <= label_width else notation[: label_width - 3] + "..."
        row_cells = []
        for entity in entities:
            level = view.heatmap.level(entity.entity_id, notation)
            glyph_index = min(level, len(glyphs) - 1)
            row_cells.append(f"  {glyphs[glyph_index]}")
        lines.append(f"{label:<{label_width}}  " + " ".join(f"{cell:>3}" for cell in row_cells))
    lines.append("")
    lines.append(
        "levels: " + " ".join(f"{level}={glyphs[min(level, len(glyphs) - 1)]!r}" for level in range(view.heatmap.num_levels))
    )
    return "\n".join(lines)
