"""Scoring support for the accumulator-based retrieval hot path.

The scorers in :mod:`repro.search` walk each query term's postings once and
accumulate partial scores per document ("term-at-a-time" traversal).  This
module provides the shared substrate for that traversal:

* :class:`ScoringSupport` — per-(field, term) statistics resolved once per
  query term instead of once per scored document: the posting frequency map,
  the per-field document-length array built at index time, memoised
  collection probabilities and IDF weights (via
  :class:`~repro.index.statistics.CollectionStatistics`), and the
  cross-field document frequency BM25F needs.
* :func:`select_top_k` / :func:`select_top_k_with_zero_fill` — bounded-heap
  top-k selection over an accumulator map, with exactly the
  ``(-score, doc_id)`` ordering of the exhaustive sort, so accumulator
  results are byte-identical to score-all-then-sort results.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Mapping
from typing import TYPE_CHECKING

from .postings import BLOCK_SIZE, BlockSummary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .fielded_index import FieldedIndex
    from .statistics import CollectionStatistics

_EMPTY_FREQUENCIES: dict[str, int] = {}


def _rank_key(item: tuple[str, float]) -> tuple[float, str]:
    doc_id, score = item
    return (-score, doc_id)


def select_top_k(accumulators: Mapping[str, float], k: int) -> list[tuple[str, float]]:
    """The ``k`` best ``(doc_id, score)`` pairs, ordered by ``(-score, doc_id)``.

    Uses a bounded heap (``heapq.nsmallest``) instead of sorting the whole
    accumulator map; for ``k >= len(accumulators)`` this degenerates to a
    full sort and returns exactly what the exhaustive path would.
    """
    if k <= 0:
        return []
    items = accumulators.items()
    if k >= len(accumulators):
        return sorted(items, key=_rank_key)
    return heapq.nsmallest(k, items, key=_rank_key)


def select_top_k_with_zero_fill(
    accumulators: Mapping[str, float],
    candidates: Iterable[str],
    k: int,
) -> list[tuple[str, float]]:
    """Top-k selection over accumulators plus zero-scored leftover candidates.

    BM25-family scorers only accumulate documents with at least one matching
    term in a scored field, but the exhaustive path ranks *every* candidate
    (documents matching only in unscored fields get score ``0.0`` and sort
    after all positive scores, by ``doc_id``).  This reproduces that tail
    without scoring the zero documents.
    """
    top = select_top_k(accumulators, k)
    missing = k - len(top)
    if missing <= 0:
        return top
    zeros = sorted(doc_id for doc_id in candidates if doc_id not in accumulators)
    top.extend((doc_id, 0.0) for doc_id in zeros[:missing])
    return top


class ScoringSupport:
    """Per-query-term statistics lookups over one :class:`FieldedIndex`.

    An instance is only valid for the index epoch it was built at; the index
    hands out a fresh instance after any mutation (see
    :meth:`~repro.index.fielded_index.FieldedIndex.scoring_support`).
    """

    def __init__(self, index: "FieldedIndex", statistics: "CollectionStatistics") -> None:
        self._index = index
        self._statistics = statistics
        #: Per-field document-length arrays, shared by reference with the index.
        self._lengths: dict[str, dict[str, int]] = {
            field: index.field_index(field).document_lengths() for field in index.fields
        }
        self._any_field_df: dict[str, int] = {}

    @property
    def statistics(self) -> "CollectionStatistics":
        """The cached collection statistics backing this support object."""
        return self._statistics

    def field_lengths(self, field: str) -> Mapping[str, int]:
        """The ``doc_id -> length`` array of one field (read-only)."""
        return self._lengths[field]

    def postings_frequencies(self, field: str, term: str) -> Mapping[str, int]:
        """The ``doc_id -> tf`` map of one term in one field (read-only).

        Returns a shared empty mapping when the term does not occur, so the
        hot loop never allocates.
        """
        postings = self._index.field_index(field).get_postings(term)
        if postings is None:
            return _EMPTY_FREQUENCIES
        return postings.frequencies()

    def postings_block_summary(
        self, field: str, term: str, block_size: int = BLOCK_SIZE
    ) -> BlockSummary | None:
        """The term's block-max range summaries, memoised per index epoch.

        ``None`` when the term does not occur in the field.  The summary
        (block boundaries plus per-block maximum term frequencies) is
        scorer-independent; scorers derive their per-block contribution
        bounds from it and memoise those separately, keyed by their own
        hyper-parameters (see :meth:`CollectionStatistics.memoised_blocks`).
        """
        postings = self._index.field_index(field).get_postings(term)
        if postings is None:
            return None
        summary = self._statistics.memoised_blocks(
            ("blocks", field, term, block_size),
            lambda: postings.block_summary(block_size),
        )
        assert isinstance(summary, BlockSummary)
        return summary

    def collection_probability(self, field: str, term: str) -> float:
        """Memoised ``p(term | field collection)``."""
        return self._statistics.collection_probability(field, term)

    def idf(self, field: str, term: str) -> float:
        """Memoised per-field Robertson-Sparck-Jones IDF."""
        return self._statistics.idf(field, term)

    def document_frequency_any_field(self, term: str) -> int:
        """Documents containing ``term`` in at least one field (memoised).

        This is the cross-field document frequency BM25F weights terms by.
        """
        cached = self._any_field_df.get(term)
        if cached is not None:
            return cached
        docs: set[str] = set()
        for field in self._index.fields:
            postings = self._index.field_index(field).get_postings(term)
            if postings is not None:
                docs.update(postings.frequencies())
        df = len(docs)
        self._any_field_df[term] = df
        return df
