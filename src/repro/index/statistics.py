"""Collection statistics needed by the retrieval models.

Language-model smoothing needs collection term frequencies and field
lengths; BM25F needs document frequencies and average field lengths.  The
statistics object is computed once per index and shared by all scorers.

Per-(field, term) derived components — collection probabilities, IDF
weights and the contribution upper/lower bounds of the threshold-pruned
scorers (see :mod:`repro.topk`) — are memoised on the statistics object,
so the accumulator-based scorers pay the derivation once per query term
instead of once per scored document.  The caches live and die with the
statistics object, which the index rebuilds whenever a document is added
(see :meth:`repro.index.fielded_index.FieldedIndex.statistics`), so they
can never serve stale values.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field


@dataclass
class FieldStatistics:
    """Statistics of a single retrieval field across the collection."""

    name: str
    total_terms: int = 0
    document_count: int = 0
    #: Shortest / longest indexed field length across the collection, used
    #: by the pruned scorers to bound length-normalised contributions.
    min_length: int = 0
    max_length: int = 0
    term_collection_frequency: dict[str, int] = field(default_factory=dict)
    term_document_frequency: dict[str, int] = field(default_factory=dict)
    #: Largest term frequency of each term in any single document, the
    #: other ingredient of the per-(field, term) contribution bounds.
    term_max_frequency: dict[str, int] = field(default_factory=dict)
    #: Memoised ``term -> p(term | collection)`` (derived, never serialised).
    _probability_cache: dict[str, float] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Memoised ``term -> idf(term)`` (derived, never serialised).
    _idf_cache: dict[str, float] = field(default_factory=dict, repr=False, compare=False)

    @property
    def average_length(self) -> float:
        """Average number of terms per document in this field."""
        if self.document_count == 0:
            return 0.0
        return self.total_terms / self.document_count

    def collection_probability(self, term: str) -> float:
        """Maximum-likelihood probability of ``term`` in the field's collection model."""
        cached = self._probability_cache.get(term)
        if cached is not None:
            return cached
        if self.total_terms == 0:
            probability = 0.0
        else:
            probability = self.term_collection_frequency.get(term, 0) / self.total_terms
        self._probability_cache[term] = probability
        return probability

    def document_frequency(self, term: str) -> int:
        """Number of documents whose field contains ``term``."""
        return self.term_document_frequency.get(term, 0)

    def max_frequency(self, term: str) -> int:
        """Largest term frequency of ``term`` in any single document."""
        return self.term_max_frequency.get(term, 0)

    def idf(self, term: str) -> float:
        """Memoised Robertson-Sparck-Jones IDF of ``term`` within this field."""
        cached = self._idf_cache.get(term)
        if cached is not None:
            return cached
        df = self.term_document_frequency.get(term, 0)
        numerator = self.document_count - df + 0.5
        denominator = df + 0.5
        weight = max(0.0, math.log(1.0 + numerator / denominator))
        self._idf_cache[term] = weight
        return weight


@dataclass
class CollectionStatistics:
    """Statistics of the whole fielded collection."""

    num_documents: int = 0
    fields: dict[str, FieldStatistics] = field(default_factory=dict)
    #: Memoised per-(scorer, field, term) contribution bounds (see
    #: :meth:`memoised_bound`); derived, never serialised.
    _bound_cache: dict[tuple[object, ...], float] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Memoised per-(scorer, field, term) block-max summaries / per-block
    #: bound arrays (see :meth:`memoised_blocks`); derived, never serialised.
    _blocks_cache: dict[tuple[object, ...], object] = field(
        default_factory=dict, repr=False, compare=False
    )

    def field(self, name: str) -> FieldStatistics:
        """Statistics for one field, creating an empty record if unknown."""
        if name not in self.fields:
            self.fields[name] = FieldStatistics(name=name)
        return self.fields[name]

    def collection_probability(self, field_name: str, term: str) -> float:
        """Memoised ``p(term | collection)`` for one field."""
        return self.field(field_name).collection_probability(term)

    def idf(self, field_name: str, term: str) -> float:
        """Memoised per-field Robertson-Sparck-Jones IDF."""
        return self.field(field_name).idf(term)

    def memoised_bound(self, key: tuple[object, ...], compute: Callable[[], float]) -> float:
        """A per-(scorer, field, term) contribution bound, cached for this epoch.

        The statistics object is rebuilt on every index mutation, so bounds
        memoised here can never go stale.  ``key`` must include every input
        of the bound formula that is not part of the collection statistics
        (scorer kind and hyper-parameters), so different scorer instances
        sharing the index share the cache without collisions.
        """
        cached = self._bound_cache.get(key)
        if cached is not None:
            return cached
        value = compute()
        self._bound_cache[key] = value
        return value

    def memoised_blocks(self, key: tuple[object, ...], compute: Callable[[], object]) -> object:
        """A per-(scorer, field, term) block-max summary, cached for this epoch.

        The object-valued sibling of :meth:`memoised_bound`, used for the
        block boundary / per-block bound arrays of the ``blockmax``
        traversal (see :class:`~repro.index.postings.BlockSummary` and
        :class:`~repro.topk.bounds.BlockedSparseTermEntry`).  The same
        staleness argument applies: the statistics object is rebuilt on
        every index mutation, so block summaries memoised here live
        exactly one index epoch.  ``key`` must carry the scorer kind,
        hyper-parameters and block size alongside the (field, term) pair.
        """
        cached = self._blocks_cache.get(key)
        if cached is not None:
            return cached
        value = compute()
        self._blocks_cache[key] = value
        return value

    def vocabulary_size(self) -> int:
        """Number of distinct terms across all fields."""
        vocabulary: set[str] = set()
        for stats in self.fields.values():
            vocabulary.update(stats.term_collection_frequency)
        return len(vocabulary)

    def summary(self) -> Mapping[str, float]:
        """Per-field average lengths plus global counts, for reporting."""
        report: dict[str, float] = {"documents": float(self.num_documents)}
        for name, stats in sorted(self.fields.items()):
            report[f"avg_len[{name}]"] = stats.average_length
            report[f"terms[{name}]"] = float(stats.total_terms)
        return report
