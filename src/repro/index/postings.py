"""Posting lists for the fielded inverted index.

A posting records how often a term occurs in one document field.  Posting
lists keep their entries sorted by document identifier so that they can be
merged and intersected efficiently; the index itself only ever appends via
:meth:`PostingList.add`, which maintains the invariant.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterator
from dataclasses import dataclass, field

#: Documents per block-max range summary (see :meth:`PostingList.block_summary`).
#: 128 ids keeps block boundaries cache-friendly and matches the block
#: sizes of the BMW dynamic-pruning literature.
BLOCK_SIZE = 128


@dataclass(frozen=True)
class BlockSummary:
    """Block-max range summaries of one posting list.

    The doc-id-sorted postings are chunked into ranges of at most
    ``block_size`` documents; ``lasts[i]`` is the largest document id of
    block ``i`` and ``max_frequencies[i]`` the largest term frequency of
    any document inside it.  A scorer turns ``max_frequencies`` into
    per-block contribution upper bounds, which a block-max traversal uses
    to skip whole ranges the single list-wide bound cannot (see
    :mod:`repro.topk`).  Summaries are immutable snapshots — the fielded
    index memoises them per mutation epoch on
    :class:`~repro.index.statistics.CollectionStatistics`.
    """

    block_size: int
    lasts: tuple[str, ...]
    max_frequencies: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.lasts)


@dataclass(frozen=True)
class Posting:
    """One (document, term-frequency) pair."""

    doc_id: str
    term_frequency: int

    def __post_init__(self) -> None:
        if self.term_frequency <= 0:
            raise ValueError("term frequency must be positive")


@dataclass
class PostingList:
    """An ordered list of postings for one term in one field."""

    _doc_ids: list[str] = field(default_factory=list)
    _frequencies: dict[str, int] = field(default_factory=dict)

    def add(self, doc_id: str, count: int = 1) -> None:
        """Add ``count`` occurrences of the term in ``doc_id``."""
        if count <= 0:
            raise ValueError("count must be positive")
        if doc_id in self._frequencies:
            self._frequencies[doc_id] += count
            return
        position = bisect_left(self._doc_ids, doc_id)
        self._doc_ids.insert(position, doc_id)
        self._frequencies[doc_id] = count

    def copy(self) -> "PostingList":
        """An independent copy (the copy-on-write step of index snapshots).

        Mutating the copy leaves this list untouched, so readers holding a
        reference to it (scoring supports pinned to an older index epoch)
        keep a consistent snapshot while the writer extends the copy.
        """
        return PostingList(list(self._doc_ids), dict(self._frequencies))

    def frequency(self, doc_id: str) -> int:
        """Term frequency in ``doc_id`` (0 when absent)."""
        return self._frequencies.get(doc_id, 0)

    def document_frequency(self) -> int:
        """Number of documents containing the term."""
        return len(self._doc_ids)

    def collection_frequency(self) -> int:
        """Total number of occurrences across all documents."""
        return sum(self._frequencies.values())

    def max_frequency(self) -> int:
        """Largest term frequency in any single document (0 when empty)."""
        if not self._frequencies:
            return 0
        return max(self._frequencies.values())

    def doc_ids(self) -> list[str]:
        """Sorted document identifiers containing the term."""
        return list(self._doc_ids)

    def block_summary(self, block_size: int = BLOCK_SIZE) -> BlockSummary:
        """Block-max range summaries over the sorted postings.

        Chunks the doc-id-sorted list into blocks of ``block_size`` and
        records each block's last document id and maximum term frequency.
        Computed in one pass over the postings; callers that need the
        summary repeatedly should memoise it per index epoch (see
        :meth:`repro.index.statistics.CollectionStatistics.memoised_blocks`).
        """
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        doc_ids = self._doc_ids
        frequencies = self._frequencies
        lasts: list[str] = []
        max_frequencies: list[int] = []
        for start in range(0, len(doc_ids), block_size):
            block = doc_ids[start : start + block_size]
            lasts.append(block[-1])
            max_frequencies.append(max(frequencies[doc_id] for doc_id in block))
        return BlockSummary(
            block_size=block_size,
            lasts=tuple(lasts),
            max_frequencies=tuple(max_frequencies),
        )

    def frequencies(self) -> dict[str, int]:
        """The ``doc_id -> term frequency`` map backing this list.

        Returned by reference for the scoring hot path; callers must treat
        it as read-only.
        """
        return self._frequencies

    def __iter__(self) -> Iterator[Posting]:
        for doc_id in self._doc_ids:
            yield Posting(doc_id=doc_id, term_frequency=self._frequencies[doc_id])

    def __len__(self) -> int:
        return len(self._doc_ids)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._frequencies


def intersect(left: PostingList, right: PostingList) -> list[str]:
    """Document identifiers present in both posting lists."""
    if len(left) > len(right):
        left, right = right, left
    return [doc_id for doc_id in left.doc_ids() if doc_id in right]


def union(left: PostingList, right: PostingList) -> list[str]:
    """Document identifiers present in either posting list, sorted."""
    merged = set(left.doc_ids())
    merged.update(right.doc_ids())
    return sorted(merged)


def merge_frequencies(lists: list[PostingList]) -> dict[str, int]:
    """Sum term frequencies document-wise across several posting lists."""
    totals: dict[str, int] = {}
    for posting_list in lists:
        for posting in posting_list:
            totals[posting.doc_id] = totals.get(posting.doc_id, 0) + posting.term_frequency
    return totals
