"""Posting lists for the fielded inverted index.

A posting records how often a term occurs in one document field.  Posting
lists keep their entries sorted by document identifier so that they can be
merged and intersected efficiently; the index itself only ever appends via
:meth:`PostingList.add`, which maintains the invariant.
"""

from __future__ import annotations

from bisect import bisect_left
from collections.abc import Iterator
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Posting:
    """One (document, term-frequency) pair."""

    doc_id: str
    term_frequency: int

    def __post_init__(self) -> None:
        if self.term_frequency <= 0:
            raise ValueError("term frequency must be positive")


@dataclass
class PostingList:
    """An ordered list of postings for one term in one field."""

    _doc_ids: list[str] = field(default_factory=list)
    _frequencies: dict[str, int] = field(default_factory=dict)

    def add(self, doc_id: str, count: int = 1) -> None:
        """Add ``count`` occurrences of the term in ``doc_id``."""
        if count <= 0:
            raise ValueError("count must be positive")
        if doc_id in self._frequencies:
            self._frequencies[doc_id] += count
            return
        position = bisect_left(self._doc_ids, doc_id)
        self._doc_ids.insert(position, doc_id)
        self._frequencies[doc_id] = count

    def frequency(self, doc_id: str) -> int:
        """Term frequency in ``doc_id`` (0 when absent)."""
        return self._frequencies.get(doc_id, 0)

    def document_frequency(self) -> int:
        """Number of documents containing the term."""
        return len(self._doc_ids)

    def collection_frequency(self) -> int:
        """Total number of occurrences across all documents."""
        return sum(self._frequencies.values())

    def max_frequency(self) -> int:
        """Largest term frequency in any single document (0 when empty)."""
        if not self._frequencies:
            return 0
        return max(self._frequencies.values())

    def doc_ids(self) -> list[str]:
        """Sorted document identifiers containing the term."""
        return list(self._doc_ids)

    def frequencies(self) -> dict[str, int]:
        """The ``doc_id -> term frequency`` map backing this list.

        Returned by reference for the scoring hot path; callers must treat
        it as read-only.
        """
        return self._frequencies

    def __iter__(self) -> Iterator[Posting]:
        for doc_id in self._doc_ids:
            yield Posting(doc_id=doc_id, term_frequency=self._frequencies[doc_id])

    def __len__(self) -> int:
        return len(self._doc_ids)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._frequencies


def intersect(left: PostingList, right: PostingList) -> list[str]:
    """Document identifiers present in both posting lists."""
    if len(left) > len(right):
        left, right = right, left
    return [doc_id for doc_id in left.doc_ids() if doc_id in right]


def union(left: PostingList, right: PostingList) -> list[str]:
    """Document identifiers present in either posting list, sorted."""
    merged = set(left.doc_ids())
    merged.update(right.doc_ids())
    return sorted(merged)


def merge_frequencies(lists: list[PostingList]) -> dict[str, int]:
    """Sum term frequencies document-wise across several posting lists."""
    totals: dict[str, int] = {}
    for posting_list in lists:
        for posting in posting_list:
            totals[posting.doc_id] = totals.get(posting.doc_id, 0) + posting.term_frequency
    return totals
