"""Columnar (structure-of-arrays) views over one index epoch.

The scalar hot path walks Python dicts: ``doc_id -> tf`` postings maps,
``doc_id -> length`` arrays, per-posting comparisons in interpreter
loops.  This module materialises the same data as contiguous numpy
arrays once per index epoch, so the traversal kernels in
:mod:`repro.topk.kernels` can replace the per-posting loops with
vectorized operations:

* a doc-id ↔ ordinal table — ordinals are assigned in sorted-doc-id
  order, so **ordinal order is exactly the ``doc_id`` tie-break order**
  of the ranking contract (``(-score, doc_id)``), and vectorized
  selections can break ties on the ordinal;
* per-field document-length arrays indexed by ordinal;
* :class:`ColumnarPostings` per (field, term): parallel arrays of doc
  ordinals (ascending), term frequencies, and block maxima on the same
  ``BLOCK_SIZE`` grid as the scalar
  :meth:`~repro.index.postings.PostingList.block_summary`, so block
  membership matches the scalar ``blockmax`` path posting for posting;
* dense per-term frequency arrays (length ``num_documents``) for the
  language-model family, whose smoothing gives *every* candidate a
  non-zero per-term contribution;
* CRC shard-ownership maps mirroring :func:`repro.exec.sharding.shard_of`,
  so per-shard columnar slices route identically to the scalar
  partitioners.

The view is immutable after construction and is memoised per index epoch
on :class:`~repro.index.statistics.CollectionStatistics` (via
:func:`columnar_view`), next to the scorers' memoised bounds: any index
mutation rebuilds the statistics object and therefore drops the view, so
a stale view can never be observed.  Scorers memoise their own derived
arrays (per-term contribution columns) on the view through
:meth:`ColumnarIndex.memoised`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..exec.sharding import shard_of
from .postings import BLOCK_SIZE

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .fielded_index import FieldedIndex


class ColumnarPostings:
    """One (field, term) posting list as parallel arrays.

    ``ordinals``              ascending document ordinals (int64);
    ``frequencies``           term frequencies aligned with ``ordinals``
                              (float64 — term frequencies are small
                              integers, exactly representable);
    ``block_last_ordinals``   last ordinal of each ``BLOCK_SIZE`` chunk
                              of ``ordinals`` (ascending);
    ``block_max_frequencies`` per-chunk maximum term frequency.

    The block grid chunks the *same* sorted posting order as the scalar
    :class:`~repro.index.postings.BlockSummary`, so the k-th block here
    covers exactly the k-th block of the scalar summary.
    """

    __slots__ = ("ordinals", "frequencies", "block_last_ordinals", "block_max_frequencies")

    def __init__(self, ordinals: np.ndarray, frequencies: np.ndarray, block_size: int) -> None:
        self.ordinals = ordinals
        self.frequencies = frequencies
        count = ordinals.size
        starts = np.arange(0, count, block_size)
        last_positions = np.minimum(starts + block_size - 1, count - 1)
        self.block_last_ordinals = ordinals[last_positions]
        self.block_max_frequencies = np.maximum.reduceat(frequencies, starts)

    def __len__(self) -> int:
        return int(self.ordinals.size)


class ColumnarIndex:
    """The per-epoch columnar view over one :class:`FieldedIndex`.

    Construction builds only the ordinal table; every array column is
    materialised lazily on first use and memoised for the lifetime of
    the view (one index epoch).
    """

    def __init__(self, index: "FieldedIndex") -> None:
        self._index = index
        self._doc_ids: list[str] = sorted(index.documents())
        self._ord_of: dict[str, int] = {
            doc_id: ordinal for ordinal, doc_id in enumerate(self._doc_ids)
        }
        self._lengths: dict[str, np.ndarray] = {}
        self._postings: dict[tuple[str, str], ColumnarPostings | None] = {}
        self._dense: dict[tuple[str, str], np.ndarray] = {}
        self._shard_maps: dict[int, np.ndarray] = {}
        self._derived: dict[tuple[object, ...], object] = {}

    @property
    def num_documents(self) -> int:
        return len(self._doc_ids)

    @property
    def doc_ids(self) -> list[str]:
        """All document ids in ordinal (= sorted) order; do not mutate."""
        return self._doc_ids

    # ------------------------------------------------------------------ #
    # Ordinal table
    # ------------------------------------------------------------------ #
    def ordinals_of(self, doc_ids) -> np.ndarray:
        """Ascending ordinals of a set/iterable of known document ids."""
        ord_of = self._ord_of
        ordinals = np.fromiter(
            (ord_of[doc_id] for doc_id in doc_ids), dtype=np.int64
        )
        ordinals.sort()
        return ordinals

    def ids_of(self, ordinals: np.ndarray) -> list[str]:
        """Document ids of an ordinal array (order preserved)."""
        doc_ids = self._doc_ids
        return [doc_ids[ordinal] for ordinal in ordinals]

    # ------------------------------------------------------------------ #
    # Array columns (lazy, memoised per view == per epoch)
    # ------------------------------------------------------------------ #
    def field_lengths(self, field: str) -> np.ndarray:
        """One field's document lengths indexed by ordinal (float64)."""
        cached = self._lengths.get(field)
        if cached is not None:
            return cached
        lengths = np.zeros(len(self._doc_ids), dtype=np.float64)
        ord_of = self._ord_of
        for doc_id, length in self._index.field_index(field).document_lengths().items():
            lengths[ord_of[doc_id]] = length
        self._lengths[field] = lengths
        return lengths

    def postings(self, field: str, term: str) -> ColumnarPostings | None:
        """The (field, term) columnar postings, or ``None`` when absent."""
        key = (field, term)
        if key in self._postings:
            return self._postings[key]
        posting_list = self._index.field_index(field).get_postings(term)
        if posting_list is None or len(posting_list) == 0:
            columnar = None
        else:
            frequencies = posting_list.frequencies()
            doc_ids = posting_list.doc_ids()  # sorted ⇒ ordinals ascending
            ord_of = self._ord_of
            ordinals = np.fromiter(
                (ord_of[doc_id] for doc_id in doc_ids), dtype=np.int64, count=len(doc_ids)
            )
            tfs = np.fromiter(
                (frequencies[doc_id] for doc_id in doc_ids),
                dtype=np.float64,
                count=len(doc_ids),
            )
            columnar = ColumnarPostings(ordinals, tfs, BLOCK_SIZE)
        self._postings[key] = columnar
        return columnar

    def dense_frequencies(self, field: str, term: str) -> np.ndarray:
        """Length-``num_documents`` term-frequency column (zeros elsewhere)."""
        key = (field, term)
        cached = self._dense.get(key)
        if cached is not None:
            return cached
        dense = np.zeros(len(self._doc_ids), dtype=np.float64)
        columnar = self.postings(field, term)
        if columnar is not None:
            dense[columnar.ordinals] = columnar.frequencies
        self._dense[key] = dense
        return dense

    def shard_map(self, num_shards: int) -> np.ndarray:
        """Per-ordinal shard ownership under CRC routing (int64).

        Matches :func:`repro.exec.sharding.shard_of` — and therefore the
        sharded facades' incremental routing maps — entry for entry, so
        columnar per-shard slices partition exactly like the scalar
        ``partition_candidates`` / ``split_frequencies`` helpers.
        """
        cached = self._shard_maps.get(num_shards)
        if cached is not None:
            return cached
        owners = np.fromiter(
            (shard_of(doc_id, num_shards) for doc_id in self._doc_ids),
            dtype=np.int64,
            count=len(self._doc_ids),
        )
        self._shard_maps[num_shards] = owners
        return owners

    def memoised(self, key: tuple[object, ...], compute):
        """Memoise a scorer-derived array on the view (per-epoch lifetime).

        Scorers key their contribution columns by their own
        hyper-parameters, mirroring the
        :meth:`~repro.index.statistics.CollectionStatistics.memoised_bound`
        convention of the scalar path.
        """
        cached = self._derived.get(key)
        if cached is None:
            cached = compute()
            self._derived[key] = cached
        return cached


def columnar_view(index: "FieldedIndex") -> ColumnarIndex:
    """The columnar view of an index, memoised per epoch.

    Stored on the epoch's :class:`CollectionStatistics` object (the
    memo that already holds scorer bounds and block summaries), so the
    view shares the statistics' lifetime: any mutation rebuilds the
    statistics and thereby drops the view.
    """
    view = index.statistics().memoised_blocks(
        ("columnar-view",), lambda: ColumnarIndex(index)
    )
    assert isinstance(view, ColumnarIndex)
    return view
