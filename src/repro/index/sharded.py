"""The sharded facade over the fielded inverted index.

:class:`ShardedFieldedIndex` partitions the *document id space* into N
shards behind the exact read interface of :class:`FieldedIndex`: every
lookup, statistic and scoring support is the global one (the pruned
scorers' arithmetic and bounds must match the serial path bit for bit —
that is what keeps sharded rankings byte-identical by construction), and
the facade adds the routing layer the execution drivers fan out over — a
doc→shard map maintained incrementally at indexing time, so query-time
partitioning of a candidate set is a dictionary lookup per candidate
instead of a hash.

Statistics stay global on purpose.  A fully shared-nothing split (per-
shard collection statistics) would change smoothing masses, IDF weights
and therefore scores; partitioned *traversal* over shared read-only
statistics gives the fan-out/merge structure without giving up the
ranking guarantee.  See :mod:`repro.exec` for the driver side.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from ..exec.sharding import partition_ids, shard_of
from .fielded_index import FieldedIndex


class ShardedFieldedIndex(FieldedIndex):
    """A :class:`FieldedIndex` whose documents are routed into N shards."""

    def __init__(self, fields: Sequence[str], num_shards: int = 1) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be positive")
        super().__init__(fields)
        self._num_shards = num_shards
        self._shard_by_doc: dict[str, int] = {}
        #: Per-shard document sets: candidate partitioning of a set runs
        #: as N C-level intersections instead of a per-document lookup.
        self._shard_members: list[set[str]] = [set() for _ in range(num_shards)]

    @property
    def num_shards(self) -> int:
        """How many document shards this index routes into."""
        return self._num_shards

    def _route(self, doc_id: str) -> None:
        shard = shard_of(doc_id, self._num_shards)
        self._shard_by_doc[doc_id] = shard
        self._shard_members[shard].add(doc_id)

    def add_document(self, doc_id: str, field_terms: Mapping[str, Iterable[str]]) -> None:
        super().add_document(doc_id, field_terms)
        self._route(doc_id)

    def add_document_counts(
        self, doc_id: str, field_counts: Mapping[str, Mapping[str, int]]
    ) -> None:
        super().add_document_counts(doc_id, field_counts)
        self._route(doc_id)

    def adopt_snapshot(self, doc_ids, field_postings, field_lengths) -> None:
        super().adopt_snapshot(doc_ids, field_postings, field_lengths)
        for doc_id in doc_ids:
            self._route(doc_id)

    def _cow_shell(self) -> "ShardedFieldedIndex":
        clone = ShardedFieldedIndex(self.fields, self._num_shards)
        clone._shard_by_doc = dict(self._shard_by_doc)
        clone._shard_members = [set(members) for members in self._shard_members]
        return clone

    def with_added_document(
        self, doc_id: str, field_terms: Mapping[str, Iterable[str]]
    ) -> "ShardedFieldedIndex":
        clone = super().with_added_document(doc_id, field_terms)
        assert isinstance(clone, ShardedFieldedIndex)  # _cow_shell preserves type
        clone._route(doc_id)
        return clone

    def shard_of_document(self, doc_id: str) -> int:
        """The shard a document routes to (stable even for unseen ids)."""
        shard = self._shard_by_doc.get(doc_id)
        if shard is None:
            shard = shard_of(doc_id, self._num_shards)
        return shard

    def partition_candidates(self, candidates: Iterable[str]) -> list[list[str]]:
        """Split a candidate set into per-shard buckets (all N returned).

        Set inputs (the scorers' candidate sets) partition via C-level
        intersection with the incrementally-maintained per-shard member
        sets; anything else falls back to the per-id routing lookup.
        Documents never indexed here route by CRC, like :meth:`shard_of_document`.
        """
        if isinstance(candidates, (set, frozenset)):
            buckets = [
                list(candidates & members) for members in self._shard_members
            ]
            covered = sum(len(bucket) for bucket in buckets)
            if covered < len(candidates):
                # Candidates outside the indexed document space (callers
                # probing hypothetical ids) still route deterministically.
                known = set().union(*self._shard_members) if self._shard_members else set()
                for doc_id in candidates - known:
                    buckets[shard_of(doc_id, self._num_shards)].append(doc_id)
            return buckets
        return partition_ids(candidates, self._num_shards, router=self.shard_of_document)
