"""Fielded inverted index over multi-field entity documents.

This is the index the search engine of §2.2 runs against: every entity is a
structured document with the five fields of Table 1, and every field has its
own inverted index, document lengths and collection statistics.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from itertools import count

from ..exceptions import FieldNotFoundError
from .inverted_index import InvertedIndex
from .postings import PostingList
from .scoring_support import ScoringSupport
from .statistics import CollectionStatistics

#: Process-wide generation counter: every index instance (including
#: copy-on-write successors) gets a distinct uid, so epoch-keyed caches
#: can tell two index *instances* apart even when their mutation counters
#: happen to coincide (a rebuild recounts from the document count).
_GENERATIONS = count()


def next_index_uid() -> int:
    """Allocate one process-unique index uid.

    Shared by every uid-bearing index family (the fielded search index
    here, the semantic feature index on the recommendation side), so the
    ``(uid, epoch)`` keys of the shared-memory snapshot registry never
    collide across index kinds living in one registry.
    """
    return next(_GENERATIONS)


class FieldedIndex:
    """A collection of per-field inverted indexes sharing a document space."""

    def __init__(self, fields: Sequence[str]) -> None:
        if not fields:
            raise ValueError("a fielded index needs at least one field")
        self._fields: tuple[str, ...] = tuple(fields)
        self._indexes: dict[str, InvertedIndex] = {
            field: InvertedIndex(name=field) for field in self._fields
        }
        self._documents: set[str] = set()
        #: Mutation counter: bumped on every document addition so cached
        #: statistics / scoring support / query results can be invalidated.
        self._epoch = 0
        self._uid = next_index_uid()
        self._statistics_cache: tuple[int, CollectionStatistics] | None = None
        self._support_cache: tuple[int, ScoringSupport] | None = None

    @property
    def fields(self) -> tuple[str, ...]:
        """The field schema of this index."""
        return self._fields

    @property
    def epoch(self) -> int:
        """A counter incremented on every mutation of the index."""
        return self._epoch

    @property
    def uid(self) -> int:
        """Process-unique instance id (distinct across rebuilds/snapshots).

        ``(uid, epoch)`` is the collision-free cache key for anything
        derived from the index's contents: the epoch alone can repeat
        across rebuilt or copy-on-write instances.
        """
        return self._uid

    def _require_field(self, field: str) -> InvertedIndex:
        index = self._indexes.get(field)
        if index is None:
            raise FieldNotFoundError(field)
        return index

    # ------------------------------------------------------------------ #
    # Indexing
    # ------------------------------------------------------------------ #
    def add_document(self, doc_id: str, field_terms: Mapping[str, Iterable[str]]) -> None:
        """Index a document given its analyzed terms per field.

        Fields missing from ``field_terms`` are indexed as empty; unknown
        field names raise :class:`FieldNotFoundError`.
        """
        for field in field_terms:
            if field not in self._indexes:
                raise FieldNotFoundError(field)
        self._documents.add(doc_id)
        for field in self._fields:
            terms = list(field_terms.get(field, ()))
            self._indexes[field].add_document(doc_id, terms)
        self._epoch += 1
        self._statistics_cache = None
        self._support_cache = None

    def add_document_counts(
        self, doc_id: str, field_counts: Mapping[str, Mapping[str, int]]
    ) -> None:
        """Index a document from precomputed per-field term counts.

        The snapshot-restore sibling of :meth:`add_document`: replaying a
        durable snapshot's posting columns goes straight from stored
        frequencies to posting lists without re-analysing any document.
        Epoch/caching semantics are identical — one epoch bump per
        document, whatever the field count.
        """
        for field in field_counts:
            if field not in self._indexes:
                raise FieldNotFoundError(field)
        self._documents.add(doc_id)
        empty: dict[str, int] = {}
        for field in self._fields:
            self._indexes[field].add_document_counts(
                doc_id, field_counts.get(field, empty)
            )
        self._epoch += 1
        self._statistics_cache = None
        self._support_cache = None

    def adopt_snapshot(
        self,
        doc_ids: Sequence[str],
        field_postings: Mapping[str, dict[str, PostingList]],
        field_lengths: Mapping[str, dict[str, int]],
    ) -> None:
        """Bulk-adopt a snapshot's pre-sorted postings and lengths.

        Equivalent to :meth:`add_document_counts` called once per document
        in ``doc_ids`` order — same final postings, lengths, document set
        and epoch (one bump per document) — but without the per-posting
        sorted-insert replay, which a durable snapshot makes redundant:
        its columns are already in ordinal (sorted doc-id) order.  Only
        valid on an empty index; the adopted containers become owned by
        the per-field indexes.
        """
        if self._documents:
            raise ValueError("adopt_snapshot requires an empty index")
        self._documents = set(doc_ids)
        for field in self._fields:
            self._indexes[field].adopt_postings(
                field_postings.get(field, {}), field_lengths.get(field, {})
            )
        self._epoch = len(doc_ids)
        self._statistics_cache = None
        self._support_cache = None

    def _cow_shell(self) -> "FieldedIndex":
        """An empty same-schema instance for :meth:`with_added_document`.

        Subclasses override this to carry their extra state (the sharded
        facade copies its id→shard map) so copy-on-write preserves type.
        """
        return FieldedIndex(self._fields)

    def with_added_document(
        self, doc_id: str, field_terms: Mapping[str, Iterable[str]]
    ) -> "FieldedIndex":
        """A new index with the document added; this instance is untouched.

        This is the snapshot-isolation mutation path: engines swap the
        returned index in atomically while in-flight queries keep scoring
        against the pre-mutation instance (whose postings, lengths and
        memoised statistics can no longer change).  Per-field indexes are
        copied copy-on-write (see :meth:`InvertedIndex.with_added_document`),
        the epoch continues from this instance's counter, and the clone
        gets a fresh :attr:`uid`.
        """
        for field in field_terms:
            if field not in self._indexes:
                raise FieldNotFoundError(field)
        clone = self._cow_shell()
        clone._indexes = {
            field: self._indexes[field].with_added_document(
                doc_id, list(field_terms.get(field, ()))
            )
            for field in self._fields
        }
        clone._documents = set(self._documents)
        clone._documents.add(doc_id)
        clone._epoch = self._epoch + 1
        return clone

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def field_index(self, field: str) -> InvertedIndex:
        """The single-field index for ``field``."""
        return self._require_field(field)

    def term_frequency(self, field: str, term: str, doc_id: str) -> int:
        return self._require_field(field).term_frequency(term, doc_id)

    def document_length(self, field: str, doc_id: str) -> int:
        return self._require_field(field).document_length(doc_id)

    def collection_probability(self, field: str, term: str) -> float:
        return self._require_field(field).collection_probability(term)

    def document_frequency(self, field: str, term: str) -> int:
        return self._require_field(field).document_frequency(term)

    def documents(self) -> set[str]:
        """All indexed document identifiers."""
        return set(self._documents)

    @property
    def num_documents(self) -> int:
        return len(self._documents)

    def candidate_documents(self, terms: Iterable[str]) -> set[str]:
        """Documents containing any query term in any field.

        This is the candidate-generation step of the retrieval pipeline:
        scoring is then restricted to these documents instead of the whole
        collection.
        """
        terms = list(terms)
        result: set[str] = set()
        for field in self._fields:
            result.update(self._indexes[field].documents_containing_any(terms))
        return result

    def statistics(self) -> CollectionStatistics:
        """Collection statistics for all fields, cached per index epoch.

        The returned object (including its memoised per-term components) is
        reused until the next :meth:`add_document`; callers must not mutate
        its raw counts.
        """
        cached = self._statistics_cache
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        stats = CollectionStatistics(num_documents=len(self._documents))
        for field in self._fields:
            index = self._indexes[field]
            field_stats = stats.field(field)
            field_stats.document_count = index.num_documents
            field_stats.total_terms = index.total_terms
            lengths = index.document_lengths()
            if lengths:
                field_stats.min_length = min(lengths.values())
                field_stats.max_length = max(lengths.values())
            for term in index.vocabulary():
                postings = index.get_postings(term)
                assert postings is not None  # vocabulary() only lists indexed terms
                frequencies = postings.frequencies()
                field_stats.term_collection_frequency[term] = sum(frequencies.values())
                field_stats.term_document_frequency[term] = len(frequencies)
                field_stats.term_max_frequency[term] = postings.max_frequency()
        self._statistics_cache = (self._epoch, stats)
        return stats

    def scoring_support(self) -> ScoringSupport:
        """The accumulator-traversal support object, cached per index epoch."""
        cached = self._support_cache
        if cached is not None and cached[0] == self._epoch:
            return cached[1]
        support = ScoringSupport(self, self.statistics())
        self._support_cache = (self._epoch, support)
        return support

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._documents

    def __len__(self) -> int:
        return len(self._documents)
