"""Fielded inverted-index substrate used by the entity search engine."""

from .fielded_index import FieldedIndex
from .inverted_index import InvertedIndex
from .postings import Posting, PostingList, intersect, merge_frequencies, union
from .statistics import CollectionStatistics, FieldStatistics

__all__ = [
    "CollectionStatistics",
    "FieldStatistics",
    "FieldedIndex",
    "InvertedIndex",
    "Posting",
    "PostingList",
    "intersect",
    "merge_frequencies",
    "union",
]
