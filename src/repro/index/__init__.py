"""Fielded inverted-index substrate used by the entity search engine."""

from .columnar import ColumnarIndex, ColumnarPostings, columnar_view
from .fielded_index import FieldedIndex
from .inverted_index import InvertedIndex
from .postings import (
    BLOCK_SIZE,
    BlockSummary,
    Posting,
    PostingList,
    intersect,
    merge_frequencies,
    union,
)
from .scoring_support import ScoringSupport, select_top_k, select_top_k_with_zero_fill
from .sharded import ShardedFieldedIndex
from .statistics import CollectionStatistics, FieldStatistics

__all__ = [
    "BLOCK_SIZE",
    "BlockSummary",
    "CollectionStatistics",
    "ColumnarIndex",
    "ColumnarPostings",
    "FieldStatistics",
    "FieldedIndex",
    "InvertedIndex",
    "Posting",
    "PostingList",
    "ScoringSupport",
    "ShardedFieldedIndex",
    "columnar_view",
    "intersect",
    "merge_frequencies",
    "select_top_k",
    "select_top_k_with_zero_fill",
    "union",
]
