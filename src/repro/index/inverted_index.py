"""Single-field inverted index.

Maps terms to posting lists and keeps per-document lengths.  The fielded
index of :mod:`repro.index.fielded_index` composes one of these per
retrieval field.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping

from .postings import PostingList


class InvertedIndex:
    """A term -> postings map for a single field."""

    def __init__(self, name: str = "field") -> None:
        self.name = name
        self._postings: dict[str, PostingList] = {}
        self._doc_lengths: dict[str, int] = {}
        self._total_terms = 0

    # ------------------------------------------------------------------ #
    # Indexing
    # ------------------------------------------------------------------ #
    def add_document(self, doc_id: str, terms: Iterable[str]) -> None:
        """Index (or extend) a document given its analyzed terms."""
        counts = Counter(terms)
        added = sum(counts.values())
        if added == 0 and doc_id not in self._doc_lengths:
            # Register empty documents so that document counts are correct.
            self._doc_lengths.setdefault(doc_id, 0)
            return
        for term, count in counts.items():
            posting_list = self._postings.get(term)
            if posting_list is None:
                posting_list = PostingList()
                self._postings[term] = posting_list
            posting_list.add(doc_id, count)
        self._doc_lengths[doc_id] = self._doc_lengths.get(doc_id, 0) + added
        self._total_terms += added

    def add_document_counts(self, doc_id: str, counts: Mapping[str, int]) -> None:
        """Index a document from precomputed ``term -> count`` pairs.

        The snapshot-restore sibling of :meth:`add_document`: a durable
        snapshot already stores per-term frequencies, so replaying it
        through tokenised term streams would rebuild the ``Counter`` this
        method skips.  Equivalent to ``add_document`` called with each
        term repeated ``count`` times.
        """
        added = sum(counts.values())
        if added == 0 and doc_id not in self._doc_lengths:
            self._doc_lengths.setdefault(doc_id, 0)
            return
        for term, count in counts.items():
            posting_list = self._postings.get(term)
            if posting_list is None:
                posting_list = PostingList()
                self._postings[term] = posting_list
            posting_list.add(doc_id, count)
        self._doc_lengths[doc_id] = self._doc_lengths.get(doc_id, 0) + added
        self._total_terms += added

    def adopt_postings(
        self, postings: dict[str, PostingList], doc_lengths: dict[str, int]
    ) -> None:
        """Adopt pre-built posting lists and lengths wholesale.

        The bulk sibling of :meth:`add_document_counts` for snapshot
        restore: the caller guarantees each posting list's doc ids are
        already sorted and ``doc_lengths`` covers every document (zeros
        included), so this replaces the per-document insert replay with
        three assignments.  The adopted containers become owned by the
        index — callers must not mutate them afterwards.
        """
        self._postings = postings
        self._doc_lengths = doc_lengths
        self._total_terms = sum(doc_lengths.values())

    def with_added_document(self, doc_id: str, terms: Iterable[str]) -> "InvertedIndex":
        """A new index with ``doc_id`` added; this one stays untouched.

        The copy-on-write sibling of :meth:`add_document` behind snapshot-
        isolated serving: the term map and length array are shallow-copied
        (posting lists are shared by reference) and only the posting lists
        of the document's own terms are copied before mutation — so every
        structure a concurrent reader may already hold keeps its exact
        pre-mutation contents, at O(documents + affected postings) cost.
        """
        clone = InvertedIndex(self.name)
        clone._postings = dict(self._postings)
        clone._doc_lengths = dict(self._doc_lengths)
        clone._total_terms = self._total_terms
        counts = Counter(terms)
        added = sum(counts.values())
        if added == 0:
            clone._doc_lengths.setdefault(doc_id, 0)
            return clone
        for term, count in counts.items():
            existing = clone._postings.get(term)
            posting_list = PostingList() if existing is None else existing.copy()
            posting_list.add(doc_id, count)
            clone._postings[term] = posting_list
        clone._doc_lengths[doc_id] = clone._doc_lengths.get(doc_id, 0) + added
        clone._total_terms += added
        return clone

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def postings(self, term: str) -> PostingList:
        """Posting list for a term (empty list when the term is unknown)."""
        return self._postings.get(term, PostingList())

    def get_postings(self, term: str) -> PostingList | None:
        """Posting list for a term, or ``None`` when the term is unknown.

        Unlike :meth:`postings` this never allocates an empty list, which
        matters on the scoring hot path.
        """
        return self._postings.get(term)

    def document_lengths(self) -> dict[str, int]:
        """The ``doc_id -> field length`` map, built once at index time.

        Returned by reference for the scoring hot path; callers must treat
        it as read-only.
        """
        return self._doc_lengths

    def term_frequency(self, term: str, doc_id: str) -> int:
        """Occurrences of ``term`` in ``doc_id``."""
        return self.postings(term).frequency(doc_id)

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        return self.postings(term).document_frequency()

    def collection_frequency(self, term: str) -> int:
        """Total occurrences of ``term`` across the collection."""
        return self.postings(term).collection_frequency()

    def collection_probability(self, term: str) -> float:
        """Maximum-likelihood collection model probability of ``term``."""
        if self._total_terms == 0:
            return 0.0
        return self.collection_frequency(term) / self._total_terms

    def document_length(self, doc_id: str) -> int:
        """Number of terms indexed for ``doc_id`` (0 when unknown)."""
        return self._doc_lengths.get(doc_id, 0)

    def documents(self) -> set[str]:
        """All indexed document identifiers."""
        return set(self._doc_lengths)

    def documents_containing(self, term: str) -> list[str]:
        """Document identifiers containing ``term``."""
        return self.postings(term).doc_ids()

    def documents_containing_any(self, terms: Iterable[str]) -> set[str]:
        """Documents containing at least one of ``terms``."""
        result: set[str] = set()
        for term in terms:
            result.update(self.documents_containing(term))
        return result

    def vocabulary(self) -> set[str]:
        """All indexed terms."""
        return set(self._postings)

    @property
    def total_terms(self) -> int:
        """Number of term occurrences in the whole field collection."""
        return self._total_terms

    @property
    def num_documents(self) -> int:
        """Number of indexed documents."""
        return len(self._doc_lengths)

    @property
    def average_document_length(self) -> float:
        """Average indexed length per document."""
        if not self._doc_lengths:
            return 0.0
        return self._total_terms / len(self._doc_lengths)

    def __contains__(self, term: str) -> bool:
        return term in self._postings

    def __len__(self) -> int:
        return len(self._postings)
