"""Result diversification for exploration (an extension of the paper).

The matrix interface shows a limited number of entities and semantic
features; when the top of the ranking is dominated by near-duplicates (ten
films that all share exactly the same features), the exploration value of
the screen drops.  This module implements Maximal-Marginal-Relevance (MMR)
re-ranking over the PivotE scores:

    mmr(e) = lambda * score(e) - (1 - lambda) * max_{s in selected} sim(e, s)

with Jaccard similarity over semantic-feature sets for entities and over
matching-entity sets (``E(pi)``) for features.  A ``lambda`` of 1.0 keeps
the original ranking; lower values trade relevance for coverage of more
distinct neighbourhoods — exactly the "explore different aspects" behaviour
the interface is meant to encourage.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..features import SemanticFeature, SemanticFeatureIndex
from .entity_ranking import ScoredEntity
from .sf_ranking import ScoredFeature


def jaccard(left: set, right: set) -> float:
    """Jaccard similarity of two sets (0 for two empty sets)."""
    if not left and not right:
        return 0.0
    union = left | right
    if not union:
        return 0.0
    return len(left & right) / len(union)


@dataclass(frozen=True)
class DiversifiedEntity:
    """A re-ranked entity with its original and marginal scores."""

    entity_id: str
    original_score: float
    mmr_score: float
    max_similarity_to_selected: float


class MMRDiversifier:
    """Maximal-Marginal-Relevance re-ranking of PivotE recommendations."""

    def __init__(self, feature_index: SemanticFeatureIndex, trade_off: float = 0.7) -> None:
        if not 0.0 <= trade_off <= 1.0:
            raise ValueError("trade_off (lambda) must lie in [0, 1]")
        self._index = feature_index
        self._trade_off = trade_off

    @property
    def trade_off(self) -> float:
        """The relevance/diversity trade-off lambda."""
        return self._trade_off

    # ------------------------------------------------------------------ #
    # Entities
    # ------------------------------------------------------------------ #
    def _entity_signature(self, entity_id: str) -> set[SemanticFeature]:
        return set(self._index.features_of(entity_id))

    def diversify_entities(
        self, scored: Sequence[ScoredEntity], top_k: int | None = None
    ) -> list[DiversifiedEntity]:
        """Greedy MMR selection over ranked entities.

        Scores are min-max normalised to [0, 1] first so that the relevance
        and similarity terms are on comparable scales.
        """
        if not scored:
            return []
        top_k = top_k if top_k is not None else len(scored)
        scores = [item.score for item in scored]
        low, high = min(scores), max(scores)
        span = (high - low) or 1.0
        normalised = {item.entity_id: (item.score - low) / span for item in scored}
        signatures = {item.entity_id: self._entity_signature(item.entity_id) for item in scored}
        by_id = {item.entity_id: item for item in scored}

        remaining = [item.entity_id for item in scored]
        selected: list[DiversifiedEntity] = []
        while remaining and len(selected) < top_k:
            best_id = None
            best_value = float("-inf")
            best_similarity = 0.0
            for entity_id in remaining:
                similarity = 0.0
                if selected:
                    similarity = max(
                        jaccard(signatures[entity_id], signatures[chosen.entity_id])
                        for chosen in selected
                    )
                value = self._trade_off * normalised[entity_id] - (1.0 - self._trade_off) * similarity
                if value > best_value or (value == best_value and best_id is not None and entity_id < best_id):
                    best_id, best_value, best_similarity = entity_id, value, similarity
            assert best_id is not None
            remaining.remove(best_id)
            selected.append(
                DiversifiedEntity(
                    entity_id=best_id,
                    original_score=by_id[best_id].score,
                    mmr_score=best_value,
                    max_similarity_to_selected=best_similarity,
                )
            )
        return selected

    # ------------------------------------------------------------------ #
    # Semantic features
    # ------------------------------------------------------------------ #
    def diversify_features(
        self, scored: Sequence[ScoredFeature], top_k: int | None = None
    ) -> list[ScoredFeature]:
        """Greedy MMR selection over ranked semantic features.

        Similarity between features is the Jaccard overlap of their matching
        entity sets ``E(pi)``; features that select almost the same entities
        (e.g. ``Drama:genre`` and ``United_States:country`` on an all-American
        drama corpus) crowd each other out of the top of the y-axis.
        """
        if not scored:
            return []
        top_k = top_k if top_k is not None else len(scored)
        scores = [item.score for item in scored]
        low, high = min(scores), max(scores)
        span = (high - low) or 1.0
        normalised = {item.feature: (item.score - low) / span for item in scored}
        extensions = {item.feature: self._index.entities_matching(item.feature) for item in scored}
        by_feature = {item.feature: item for item in scored}

        remaining = [item.feature for item in scored]
        selected: list[SemanticFeature] = []
        result: list[ScoredFeature] = []
        while remaining and len(result) < top_k:
            best = None
            best_value = float("-inf")
            for feature in remaining:
                similarity = 0.0
                if selected:
                    similarity = max(jaccard(extensions[feature], extensions[chosen]) for chosen in selected)
                value = self._trade_off * normalised[feature] - (1.0 - self._trade_off) * similarity
                if value > best_value or (value == best_value and best is not None and feature.notation() < best.notation()):
                    best, best_value = feature, value
            assert best is not None
            remaining.remove(best)
            selected.append(best)
            result.append(by_feature[best])
        return result


def coverage(feature_index: SemanticFeatureIndex, entity_ids: Sequence[str]) -> int:
    """Number of distinct semantic features covered by a result list.

    Used by tests and the ablation bench to quantify the diversity gain:
    a more diverse top-k covers more distinct features of the graph.
    """
    covered: set[SemanticFeature] = set()
    for entity_id in entity_ids:
        covered |= set(feature_index.features_of(entity_id))
    return len(covered)
