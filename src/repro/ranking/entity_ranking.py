"""The ranking model of entities (§2.3.2).

The relevance of a candidate entity ``e`` to a query ``Q`` combines, over
the query's ranked semantic features ``Phi(Q)``, how likely ``e`` is to hold
each feature and how relevant the feature itself is to the query:

    r(e, Q) = sum_{pi in Phi(Q)} p(pi | e) * r(pi, Q)

The same ``p(pi | e)`` model (with type smoothing) is shared with the
semantic-feature ranker, so an entity of the right type that is missing one
edge still receives partial credit — the "error-tolerant" behaviour the
paper emphasises.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from ..config import PRUNED_MODES, RankingConfig
from ..exceptions import NoSeedEntitiesError
from ..exec import merge_shard_maps, merge_shard_stats, partition_ids, resolve_executor
from ..features import SemanticFeatureIndex
from ..index import select_top_k
from ..kg import KnowledgeGraph
from ..topk import PruningStats, SharedThreshold
from ..topk import SELECTION_MARGIN as _SELECTION_MARGIN
from .probability import FeatureProbabilityModel
from .ranking_support import FrozenMapping
from .sf_ranking import ScoredFeature, SemanticFeatureRanker


@dataclass(frozen=True)
class ScoredEntity:
    """A ranked entity with its per-feature score contributions."""

    entity_id: str
    score: float
    contributions: Mapping[str, float]

    def top_contributions(self, k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` features contributing most to the score."""
        ranked = sorted(self.contributions.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    def as_dict(self) -> dict[str, object]:
        return {
            "entity": self.entity_id,
            "score": self.score,
            "contributions": dict(self.contributions),
        }


class EntityRanker:
    """Ranks candidate entities against a seed-set query (the x-axis)."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        feature_index: SemanticFeatureIndex,
        config: RankingConfig | None = None,
        feature_ranker: SemanticFeatureRanker | None = None,
    ) -> None:
        self._graph = graph
        self._index = feature_index
        self._config = config or RankingConfig()
        self._feature_ranker = feature_ranker or SemanticFeatureRanker(
            graph, feature_index, config=self._config
        )
        self._probability: FeatureProbabilityModel = self._feature_ranker.probability_model
        self._pruning_stats = PruningStats()

    @property
    def feature_ranker(self) -> SemanticFeatureRanker:
        """The semantic-feature ranker this entity ranker builds on."""
        return self._feature_ranker

    def pruning_info(self) -> dict[str, int]:
        """Cumulative pruning counters (``cache_info()`` convention)."""
        return self._pruning_stats.as_dict()

    def _executor(self):
        """The shard executor resolved from the config knobs.

        The ranker's fan-out is closure-based (the feature walk has no
        columnar snapshot to ship), so a ``"process"`` choice degrades
        to inline execution here — see
        :meth:`~repro.exec.procpool.ProcessShardExecutor.run`.
        """
        return resolve_executor(self._config.executor, self._config.workers)

    # ------------------------------------------------------------------ #
    # Candidate generation
    # ------------------------------------------------------------------ #
    def candidates(
        self, seeds: Sequence[str], scored_features: Sequence[ScoredFeature]
    ) -> list[str]:
        """Candidate entities: anything matching a query feature, minus seeds.

        Walks the feature index's materialised no-copy holder lists (same
        ordering as :func:`repro.features.candidate_entities`, which queries
        the graph per feature).
        """
        features = [scored.feature for scored in scored_features]
        return self._index.candidates_matching_any(
            features,
            exclude=seeds,
            limit=self._config.max_candidates,
        )

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def score_entity(
        self, entity_id: str, scored_features: Sequence[ScoredFeature]
    ) -> ScoredEntity:
        """``r(e, Q) = sum_pi p(pi|e) * r(pi, Q)`` with per-feature detail."""
        contributions: dict[str, float] = {}
        total = 0.0
        for scored in scored_features:
            probability = self._probability.probability(scored.feature, entity_id)
            contribution = probability * scored.score
            if contribution > 0.0:
                contributions[scored.feature.notation()] = contribution
            total += contribution
        # Read-only view: scored entities are shared by the engine's
        # recommendation cache (same protection as the frozen matrix array).
        return ScoredEntity(
            entity_id=entity_id, score=total, contributions=FrozenMapping(contributions)
        )

    def rank(
        self,
        seeds: Sequence[str],
        top_k: int | None = None,
        scored_features: Sequence[ScoredFeature] | None = None,
        candidates: Sequence[str] | None = None,
    ) -> list[ScoredEntity]:
        """Rank entities similar to the seed set (accumulator fast path).

        The method mirrors the two-stage process of §2.3: semantic features
        are ranked first (or supplied by the caller), then candidate
        entities are scored against those ranked features.

        Scoring uses the type-grouped decomposition of
        :class:`~repro.ranking.ranking_support.RankingSupport`: one base
        score per distinct dominant type plus sparse per-holder corrections
        walked over the index's ``E(pi)`` lists — ``O(types x features +
        matched postings)`` instead of ``O(candidates x features)``.  With
        ``RankingConfig.pruning == "maxscore"`` whole dominant-type groups
        are skipped when their base score plus correction upper bound
        cannot reach the live θ (see
        :meth:`RankingSupport.score_entities_pruned`); ``"blockmax"``
        additionally chunks the feature corrections so groups are killed
        or retired at every chunk boundary mid-walk.  The top-k survivors
        of a bounded-heap selection are then re-scored through
        :meth:`score_entity`, so the returned entities carry exactly the
        scores and per-feature contributions of the exhaustive path.
        """
        if not seeds:
            raise NoSeedEntitiesError("cannot rank entities for an empty seed set")
        for seed in seeds:
            self._graph.require_entity(seed)
        top_k = top_k or self._config.top_entities
        if scored_features is None:
            scored_features = self._feature_ranker.rank(seeds)
        if candidates is None:
            candidates = self.candidates(seeds, scored_features)
        support = self._probability.support()
        pruned = self._config.pruning in PRUNED_MODES
        blockmax = self._config.pruning == "blockmax"
        num_shards = self._config.shards
        if num_shards > 1:
            accumulators = self._score_sharded(
                candidates, scored_features, top_k, support, num_shards, pruned, blockmax
            )
        elif pruned:
            accumulators = support.score_entities_pruned(
                candidates,
                scored_features,
                top_k,
                self._pruning_stats,
                blockmax=blockmax,
            )
        else:
            accumulators = support.score_entities(candidates, scored_features)
        # Accumulator totals can differ from exhaustive scores by float
        # rounding (the decomposition associates the same terms
        # differently), so select with a safety margin, re-score the
        # survivors exactly, and only then truncate: a selection mismatch
        # would now need more than _SELECTION_MARGIN candidates packed
        # within rounding error of the k-th score.  Exact score ties are
        # unaffected — identical (type, held-feature) computations produce
        # identical accumulators, and both orderings fall back to entity_id.
        selected = select_top_k(accumulators, top_k + _SELECTION_MARGIN)
        if self._config.pruning in PRUNED_MODES:
            self._pruning_stats.rescored += len(selected)
        rescored = [
            self._score_entity_via_support(entity_id, scored_features, support)
            for entity_id, _ in selected
        ]
        rescored.sort(key=lambda item: (-item.score, item.entity_id))
        return rescored[:top_k]

    def _score_sharded(
        self,
        candidates: Sequence[str],
        scored_features: Sequence[ScoredFeature],
        top_k: int,
        support,
        num_shards: int,
        pruned: bool,
        blockmax: bool,
    ) -> dict[str, float]:
        """Fan the entity accumulator out over candidate shards and merge.

        The candidate id space is partitioned (via the sharded feature
        index's routing memo when available, CRC otherwise — same
        assignment either way); each shard worker scores its bucket
        through the shared, snapshot-pinned support with a private
        :class:`PruningStats` (merged afterwards, the logical query
        counted once) and, in the pruned modes, the cross-shard θ
        broadcast.  Survivor values are the exact accumulator floats the
        serial walk produces (a candidate's decomposition never depends
        on which other candidates share its map), so merging the disjoint
        maps and re-scoring the margin-guarded selection — the caller's
        existing epilogue — keeps the ranking byte-identical.
        """
        index = self._index
        if (
            hasattr(index, "partition_entities")
            and getattr(index, "num_shards", None) == num_shards
        ):
            shards = index.partition_entities(candidates)
        else:
            shards = partition_ids(candidates, num_shards)
        if pruned:
            shared = SharedThreshold(top_k)

            def worker(shard: Sequence[str]) -> tuple[dict[str, float], PruningStats]:
                local = PruningStats()
                survivors = support.score_entities_pruned(
                    shard,
                    scored_features,
                    top_k,
                    local,
                    blockmax=blockmax,
                    shared=shared.slot(),
                )
                return survivors, local

            results = self._executor().run(
                [lambda shard=shard: worker(shard) for shard in shards if shard]
            )
            merge_shard_stats(self._pruning_stats, [local for _, local in results])
            shard_maps = [survivors for survivors, _ in results]
        else:
            shard_maps = self._executor().run(
                [
                    lambda shard=shard: support.score_entities(shard, scored_features)
                    for shard in shards
                    if shard
                ]
            )
        return merge_shard_maps(shard_maps)

    def _score_entity_via_support(
        self, entity_id: str, scored_features: Sequence[ScoredFeature], support
    ) -> ScoredEntity:
        """:meth:`score_entity` through the memoised probability lookups.

        ``RankingSupport.probability`` returns the same floats as the
        model, so the result is identical to :meth:`score_entity` — just
        without re-deriving dominant types and type-conditional counts.
        """
        contributions: dict[str, float] = {}
        total = 0.0
        for scored in scored_features:
            probability = support.probability(scored.feature, entity_id)
            contribution = probability * scored.score
            if contribution > 0.0:
                contributions[scored.feature.notation()] = contribution
            total += contribution
        return ScoredEntity(
            entity_id=entity_id, score=total, contributions=FrozenMapping(contributions)
        )

    def rank_exhaustive(
        self,
        seeds: Sequence[str],
        top_k: int | None = None,
        scored_features: Sequence[ScoredFeature] | None = None,
        candidates: Sequence[str] | None = None,
    ) -> list[ScoredEntity]:
        """The seed scoring path: score every candidate, sort, truncate.

        Kept as the reference implementation the accumulator path is
        verified against (see ``tests/test_ranking_accumulator.py``), the
        same contract the search engine's ``search_exhaustive()`` follows.
        """
        if not seeds:
            raise NoSeedEntitiesError("cannot rank entities for an empty seed set")
        for seed in seeds:
            self._graph.require_entity(seed)
        top_k = top_k or self._config.top_entities
        if scored_features is None:
            scored_features = self._feature_ranker.rank_exhaustive(seeds)
        if candidates is None:
            candidates = self.candidates(seeds, scored_features)
        scored = [self.score_entity(entity_id, scored_features) for entity_id in candidates]
        scored.sort(key=lambda item: (-item.score, item.entity_id))
        return scored[:top_k]

    def rank_with_features(
        self,
        seeds: Sequence[str],
        top_entities: int | None = None,
        top_features: int | None = None,
    ) -> tuple[list[ScoredEntity], list[ScoredFeature]]:
        """Rank both entities and features for a query in one call.

        This is the recommendation-engine entry point the PivotE facade
        uses: the returned pair is exactly the x-axis and y-axis of the
        matrix interface.
        """
        if not seeds:
            raise NoSeedEntitiesError("cannot rank an empty seed set")
        scored_features = self._feature_ranker.rank(seeds, top_k=top_features)
        scored_entities = self.rank(
            seeds, top_k=top_entities, scored_features=scored_features
        )
        return scored_entities, scored_features
