"""The ranking model of entities (§2.3.2).

The relevance of a candidate entity ``e`` to a query ``Q`` combines, over
the query's ranked semantic features ``Phi(Q)``, how likely ``e`` is to hold
each feature and how relevant the feature itself is to the query:

    r(e, Q) = sum_{pi in Phi(Q)} p(pi | e) * r(pi, Q)

The same ``p(pi | e)`` model (with type smoothing) is shared with the
semantic-feature ranker, so an entity of the right type that is missing one
edge still receives partial credit — the "error-tolerant" behaviour the
paper emphasises.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np

from ..config import PRUNED_MODES, RankingConfig
from ..exceptions import NoSeedEntitiesError
from ..exec import (
    ProcessTask,
    SnapshotSource,
    ThetaSlab,
    merge_shard_maps,
    merge_shard_stats,
    partition_ids,
    publish_feature_tables,
    resolve_executor,
    shard_stats_from,
    snapshot_registry,
)
from ..features import SemanticFeatureIndex
from ..index import select_top_k
from ..kg import KnowledgeGraph
from ..topk import PruningStats, SharedThreshold, columnar_rank
from ..topk import SELECTION_MARGIN as _SELECTION_MARGIN
from .probability import FeatureProbabilityModel
from .ranking_support import FrozenMapping
from .sf_ranking import ScoredFeature, SemanticFeatureRanker


@dataclass(frozen=True)
class ScoredEntity:
    """A ranked entity with its per-feature score contributions."""

    entity_id: str
    score: float
    contributions: Mapping[str, float]

    def top_contributions(self, k: int = 5) -> list[tuple[str, float]]:
        """The ``k`` features contributing most to the score."""
        ranked = sorted(self.contributions.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    def as_dict(self) -> dict[str, object]:
        return {
            "entity": self.entity_id,
            "score": self.score,
            "contributions": dict(self.contributions),
        }


class EntityRanker:
    """Ranks candidate entities against a seed-set query (the x-axis)."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        feature_index: SemanticFeatureIndex,
        config: RankingConfig | None = None,
        feature_ranker: SemanticFeatureRanker | None = None,
    ) -> None:
        self._graph = graph
        self._index = feature_index
        self._config = config or RankingConfig()
        self._feature_ranker = feature_ranker or SemanticFeatureRanker(
            graph, feature_index, config=self._config
        )
        self._probability: FeatureProbabilityModel = self._feature_ranker.probability_model
        self._pruning_stats = PruningStats()

    @property
    def feature_ranker(self) -> SemanticFeatureRanker:
        """The semantic-feature ranker this entity ranker builds on."""
        return self._feature_ranker

    def pruning_info(self) -> dict[str, int]:
        """Cumulative pruning counters (``cache_info()`` convention)."""
        return self._pruning_stats.as_dict()

    def _executor(self):
        """The shard executor resolved from the config knobs.

        With ``columnar`` on, a ``"process"`` choice runs the pruned
        shard fan-out in the multiprocess tier over the published
        shared-memory feature tables (see :meth:`_process_columnar_rank`);
        the scalar fan-out stays closure-based on the thread/inline
        tiers.
        """
        return resolve_executor(self._config.executor, self._config.workers)

    # ------------------------------------------------------------------ #
    # Candidate generation
    # ------------------------------------------------------------------ #
    def candidates(
        self, seeds: Sequence[str], scored_features: Sequence[ScoredFeature]
    ) -> list[str]:
        """Candidate entities: anything matching a query feature, minus seeds.

        Walks the feature index's materialised no-copy holder lists (same
        ordering as :func:`repro.features.candidate_entities`, which queries
        the graph per feature).
        """
        features = [scored.feature for scored in scored_features]
        return self._index.candidates_matching_any(
            features,
            exclude=seeds,
            limit=self._config.max_candidates,
        )

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def score_entity(
        self, entity_id: str, scored_features: Sequence[ScoredFeature]
    ) -> ScoredEntity:
        """``r(e, Q) = sum_pi p(pi|e) * r(pi, Q)`` with per-feature detail."""
        contributions: dict[str, float] = {}
        total = 0.0
        for scored in scored_features:
            probability = self._probability.probability(scored.feature, entity_id)
            contribution = probability * scored.score
            if contribution > 0.0:
                contributions[scored.feature.notation()] = contribution
            total += contribution
        # Read-only view: scored entities are shared by the engine's
        # recommendation cache (same protection as the frozen matrix array).
        return ScoredEntity(
            entity_id=entity_id, score=total, contributions=FrozenMapping(contributions)
        )

    def rank(
        self,
        seeds: Sequence[str],
        top_k: int | None = None,
        scored_features: Sequence[ScoredFeature] | None = None,
        candidates: Sequence[str] | None = None,
    ) -> list[ScoredEntity]:
        """Rank entities similar to the seed set (accumulator fast path).

        The method mirrors the two-stage process of §2.3: semantic features
        are ranked first (or supplied by the caller), then candidate
        entities are scored against those ranked features.

        Scoring uses the type-grouped decomposition of
        :class:`~repro.ranking.ranking_support.RankingSupport`: one base
        score per distinct dominant type plus sparse per-holder corrections
        walked over the index's ``E(pi)`` lists — ``O(types x features +
        matched postings)`` instead of ``O(candidates x features)``.  With
        ``RankingConfig.pruning == "maxscore"`` whole dominant-type groups
        are skipped when their base score plus correction upper bound
        cannot reach the live θ (see
        :meth:`RankingSupport.score_entities_pruned`); ``"blockmax"``
        additionally chunks the feature corrections so groups are killed
        or retired at every chunk boundary mid-walk.  With
        ``RankingConfig.columnar`` on (the default) the same decomposition
        runs as array kernels over the per-epoch feature tables
        (:func:`repro.topk.kernels.columnar_rank`); the kernels only
        *select* a survivor superset, so the ranking stays byte-identical
        to the scalar arm.  The top-k survivors of a bounded-heap
        selection are then re-scored through :meth:`score_entity`, so the
        returned entities carry exactly the scores and per-feature
        contributions of the exhaustive path.
        """
        if not seeds:
            raise NoSeedEntitiesError("cannot rank entities for an empty seed set")
        for seed in seeds:
            self._graph.require_entity(seed)
        top_k = top_k or self._config.top_entities
        if scored_features is None:
            scored_features = self._feature_ranker.rank(seeds)
        if candidates is None:
            candidates = self.candidates(seeds, scored_features)
        support = self._probability.support()
        pruned = self._config.pruning in PRUNED_MODES
        blockmax = self._config.pruning == "blockmax"
        columnar = self._config.columnar
        num_shards = self._config.shards
        accumulators = None
        if num_shards > 1:
            accumulators = self._score_sharded(
                candidates, scored_features, top_k, support, num_shards, pruned, blockmax, columnar
            )
        elif pruned:
            # The columnar wrappers return None when the pinned index has
            # no feature tables or a candidate id is unknown to them; the
            # scalar walk is then the recovery path, not an error.
            if columnar:
                accumulators = support.score_entities_pruned_columnar(
                    candidates,
                    scored_features,
                    top_k,
                    self._pruning_stats,
                    blockmax=blockmax,
                    feature_chunk=self._config.feature_chunk,
                )
            if accumulators is None:
                accumulators = support.score_entities_pruned(
                    candidates,
                    scored_features,
                    top_k,
                    self._pruning_stats,
                    blockmax=blockmax,
                    feature_chunk=self._config.feature_chunk,
                )
        else:
            if columnar:
                accumulators = support.score_entities_columnar(candidates, scored_features)
            if accumulators is None:
                accumulators = support.score_entities(candidates, scored_features)
        # Accumulator totals can differ from exhaustive scores by float
        # rounding (the decomposition associates the same terms
        # differently), so select with a safety margin, re-score the
        # survivors exactly, and only then truncate: a selection mismatch
        # would now need more than _SELECTION_MARGIN candidates packed
        # within rounding error of the k-th score.  Exact score ties are
        # unaffected — identical (type, held-feature) computations produce
        # identical accumulators, and both orderings fall back to entity_id.
        selected = select_top_k(accumulators, top_k + _SELECTION_MARGIN)
        if self._config.pruning in PRUNED_MODES:
            self._pruning_stats.rescored += len(selected)
        rescored = [
            self._score_entity_via_support(entity_id, scored_features, support)
            for entity_id, _ in selected
        ]
        rescored.sort(key=lambda item: (-item.score, item.entity_id))
        return rescored[:top_k]

    def _score_sharded(
        self,
        candidates: Sequence[str],
        scored_features: Sequence[ScoredFeature],
        top_k: int,
        support,
        num_shards: int,
        pruned: bool,
        blockmax: bool,
        columnar: bool,
    ) -> dict[str, float]:
        """Fan the entity accumulator out over candidate shards and merge.

        The candidate id space is partitioned (via the sharded feature
        index's routing memo when available, CRC otherwise — same
        assignment either way); each shard worker scores its bucket
        through the shared, snapshot-pinned support with a private
        :class:`PruningStats` (merged afterwards, the logical query
        counted once) and, in the pruned modes, the cross-shard θ
        broadcast.  Survivor values are the exact accumulator floats the
        serial walk produces (a candidate's decomposition never depends
        on which other candidates share its map), so merging the disjoint
        maps and re-scoring the margin-guarded selection — the caller's
        existing epilogue — keeps the ranking byte-identical.  With
        ``columnar`` on, pruned shards run the array kernel (in the
        multiprocess tier when the executor is a process pool, closures
        otherwise); each shard keeps only its top-(k+margin) survivors,
        which is still a superset of the global top-(k+margin) because
        the global selection is contained in the union of the per-shard
        ones.
        """
        index = self._index
        if (
            hasattr(index, "partition_entities")
            and getattr(index, "num_shards", None) == num_shards
        ):
            shards = index.partition_entities(candidates)
        else:
            shards = partition_ids(candidates, num_shards)
        if pruned:
            if columnar:
                merged = self._columnar_sharded_pruned(
                    shards, scored_features, top_k, support, blockmax
                )
                if merged is not None:
                    return merged
            shared = SharedThreshold(top_k)

            def worker(shard: Sequence[str]) -> tuple[dict[str, float], PruningStats]:
                local = PruningStats()
                survivors = support.score_entities_pruned(
                    shard,
                    scored_features,
                    top_k,
                    local,
                    blockmax=blockmax,
                    shared=shared.slot(),
                    feature_chunk=self._config.feature_chunk,
                )
                return survivors, local

            results = self._executor().run(
                [lambda shard=shard: worker(shard) for shard in shards if shard]
            )
            merge_shard_stats(self._pruning_stats, [local for _, local in results])
            shard_maps = [survivors for survivors, _ in results]
        elif columnar:

            def accumulate(shard: Sequence[str]) -> dict[str, float]:
                survivors = support.score_entities_columnar(shard, scored_features)
                if survivors is None:
                    survivors = support.score_entities(shard, scored_features)
                return survivors

            shard_maps = self._executor().run(
                [lambda shard=shard: accumulate(shard) for shard in shards if shard]
            )
        else:
            shard_maps = self._executor().run(
                [
                    lambda shard=shard: support.score_entities(shard, scored_features)
                    for shard in shards
                    if shard
                ]
            )
        return merge_shard_maps(shard_maps)

    def _columnar_sharded_pruned(
        self,
        shards: Sequence[Sequence[str]],
        scored_features: Sequence[ScoredFeature],
        top_k: int,
        support,
        blockmax: bool,
    ) -> dict[str, float] | None:
        """The columnar pruned fan-out (``None`` → scalar closures).

        A process executor first tries the multiprocess tier (published
        shared-memory feature tables + picklable shard recipes); the
        thread/inline tiers run the kernel per shard through closures
        over the parent's tables.  A shard whose candidates miss the
        tables recovers through the scalar walk on its own θ slot —
        survivor values are exact accumulators in both arms, so mixed
        shards still merge byte-identically.
        """
        if support.columnar_tables() is None:
            return None
        feature_chunk = self._config.feature_chunk
        executor = self._executor()
        if getattr(executor, "is_process", False):
            merged = self._process_columnar_rank(
                shards, scored_features, top_k, support, blockmax, executor
            )
            if merged is not None:
                return merged
        shared = SharedThreshold(top_k)

        def worker(shard: Sequence[str]) -> tuple[dict[str, float], PruningStats]:
            local = PruningStats()
            slot = shared.slot()
            survivors = support.score_entities_pruned_columnar(
                shard,
                scored_features,
                top_k,
                local,
                blockmax=blockmax,
                shared=slot,
                feature_chunk=feature_chunk,
            )
            if survivors is None:
                survivors = support.score_entities_pruned(
                    shard,
                    scored_features,
                    top_k,
                    local,
                    blockmax=blockmax,
                    shared=slot,
                    feature_chunk=feature_chunk,
                )
            return survivors, local

        results = self._executor().run(
            [lambda shard=shard: worker(shard) for shard in shards if shard]
        )
        merge_shard_stats(self._pruning_stats, [local for _, local in results])
        return merge_shard_maps([survivors for survivors, _ in results])

    def _process_columnar_rank(
        self,
        shards: Sequence[Sequence[str]],
        scored_features: Sequence[ScoredFeature],
        top_k: int,
        support,
        blockmax: bool,
        executor,
    ) -> dict[str, float] | None:
        """Dispatch the ranker shard fan-out to the multiprocess tier.

        One task per shard: the parent runs shard 0 inline through its
        fallback closure (holding a slot on the shared θ slab) and ships
        the rest a picklable plan — the descriptor of the published
        feature-table snapshot plus the query recipe (feature-key
        triples, relevance scores, candidate ordinals, smoothing knobs)
        from which the worker rebuilds the exact kernel inputs against
        its zero-copy tables.  Returns ``None`` when the tables cannot
        be published or a candidate id has no ordinal, so the caller
        falls through to the closure-based fan-out.
        """
        tables = support.columnar_tables()
        if tables is None or tables.ordinal_of is None:
            return None
        uid = getattr(self._index, "uid", None)
        if uid is None:
            return None
        ordinal_of = tables.ordinal_of
        shard_ordinals: list[np.ndarray] = []
        for shard in shards:
            ordinals = np.empty(len(shard), dtype=np.int64)
            for position, entity_id in enumerate(shard):
                ordinal = ordinal_of.get(entity_id)
                if ordinal is None:
                    return None
                ordinals[position] = ordinal
            shard_ordinals.append(np.unique(ordinals))
        snapshot = snapshot_registry().publish(
            SnapshotSource(uid, tables.epoch), tables, builder=publish_feature_tables
        )
        if snapshot is None:
            return None
        feature_keys = [list(scored.feature.key) for scored in scored_features]
        relevance = [scored.score for scored in scored_features]
        feature_chunk = self._config.feature_chunk
        slab = ThetaSlab.create(top_k, len(shard_ordinals))
        try:
            tasks = []
            for shard, ordinals in enumerate(shard_ordinals):
                payload = {
                    "kind": "rank",
                    "snapshot": snapshot.descriptor,
                    "theta": slab.descriptor,
                    "slot": shard,
                    "top_k": top_k,
                    "blockmax": blockmax,
                    "feature_chunk": feature_chunk,
                    "features": feature_keys,
                    "relevance": relevance,
                    "candidates": ordinals,
                    "epsilon": support.epsilon,
                    "type_smoothing": self._config.type_smoothing,
                }

                def fallback(shard=shard, ordinals=ordinals):
                    local = PruningStats()
                    inputs = support.kernel_inputs(tables, ordinals, scored_features)
                    picked, values = columnar_rank(
                        inputs,
                        top_k,
                        local,
                        blockmax=blockmax,
                        feature_chunk=feature_chunk,
                        shared=slab.slot(shard),
                    )
                    return picked, values, local

                tasks.append(ProcessTask(payload, fallback))
            results = executor.run_tasks(tasks)
        finally:
            slab.close()
        merge_shard_stats(
            self._pruning_stats, [shard_stats_from(counters) for _, _, counters in results]
        )
        ids = tables.entity_ids
        merged: dict[str, float] = {}
        for ordinals, values, _ in results:
            for ordinal, value in zip(
                np.asarray(ordinals).tolist(), np.asarray(values).tolist()
            ):
                merged[ids[int(ordinal)]] = value
        return merged

    def _score_entity_via_support(
        self, entity_id: str, scored_features: Sequence[ScoredFeature], support
    ) -> ScoredEntity:
        """:meth:`score_entity` through the memoised probability lookups.

        ``RankingSupport.probability`` returns the same floats as the
        model, so the result is identical to :meth:`score_entity` — just
        without re-deriving dominant types and type-conditional counts.
        """
        contributions: dict[str, float] = {}
        total = 0.0
        for scored in scored_features:
            probability = support.probability(scored.feature, entity_id)
            contribution = probability * scored.score
            if contribution > 0.0:
                contributions[scored.feature.notation()] = contribution
            total += contribution
        return ScoredEntity(
            entity_id=entity_id, score=total, contributions=FrozenMapping(contributions)
        )

    def rank_exhaustive(
        self,
        seeds: Sequence[str],
        top_k: int | None = None,
        scored_features: Sequence[ScoredFeature] | None = None,
        candidates: Sequence[str] | None = None,
    ) -> list[ScoredEntity]:
        """The seed scoring path: score every candidate, sort, truncate.

        Kept as the reference implementation the accumulator path is
        verified against (see ``tests/test_ranking_accumulator.py``), the
        same contract the search engine's ``search_exhaustive()`` follows.
        """
        if not seeds:
            raise NoSeedEntitiesError("cannot rank entities for an empty seed set")
        for seed in seeds:
            self._graph.require_entity(seed)
        top_k = top_k or self._config.top_entities
        if scored_features is None:
            scored_features = self._feature_ranker.rank_exhaustive(seeds)
        if candidates is None:
            candidates = self.candidates(seeds, scored_features)
        scored = [self.score_entity(entity_id, scored_features) for entity_id in candidates]
        scored.sort(key=lambda item: (-item.score, item.entity_id))
        return scored[:top_k]

    def rank_with_features(
        self,
        seeds: Sequence[str],
        top_entities: int | None = None,
        top_features: int | None = None,
    ) -> tuple[list[ScoredEntity], list[ScoredFeature]]:
        """Rank both entities and features for a query in one call.

        This is the recommendation-engine entry point the PivotE facade
        uses: the returned pair is exactly the x-axis and y-axis of the
        matrix interface.
        """
        if not seeds:
            raise NoSeedEntitiesError("cannot rank an empty seed set")
        scored_features = self._feature_ranker.rank(seeds, top_k=top_features)
        scored_entities = self.rank(
            seeds, top_k=top_entities, scored_features=scored_features
        )
        return scored_entities, scored_features
