"""The ranking model of entities (§2.3.2).

The relevance of a candidate entity ``e`` to a query ``Q`` combines, over
the query's ranked semantic features ``Phi(Q)``, how likely ``e`` is to hold
each feature and how relevant the feature itself is to the query:

    r(e, Q) = sum_{pi in Phi(Q)} p(pi | e) * r(pi, Q)

The same ``p(pi | e)`` model (with type smoothing) is shared with the
semantic-feature ranker, so an entity of the right type that is missing one
edge still receives partial credit — the "error-tolerant" behaviour the
paper emphasises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..config import RankingConfig
from ..exceptions import NoSeedEntitiesError
from ..features import SemanticFeature, SemanticFeatureIndex, candidate_entities
from ..kg import KnowledgeGraph
from .probability import FeatureProbabilityModel
from .sf_ranking import ScoredFeature, SemanticFeatureRanker


@dataclass(frozen=True)
class ScoredEntity:
    """A ranked entity with its per-feature score contributions."""

    entity_id: str
    score: float
    contributions: Mapping[str, float]

    def top_contributions(self, k: int = 5) -> List[tuple[str, float]]:
        """The ``k`` features contributing most to the score."""
        ranked = sorted(self.contributions.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:k]

    def as_dict(self) -> Dict[str, object]:
        return {
            "entity": self.entity_id,
            "score": self.score,
            "contributions": dict(self.contributions),
        }


class EntityRanker:
    """Ranks candidate entities against a seed-set query (the x-axis)."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        feature_index: SemanticFeatureIndex,
        config: Optional[RankingConfig] = None,
        feature_ranker: Optional[SemanticFeatureRanker] = None,
    ) -> None:
        self._graph = graph
        self._index = feature_index
        self._config = config or RankingConfig()
        self._feature_ranker = feature_ranker or SemanticFeatureRanker(
            graph, feature_index, config=self._config
        )
        self._probability: FeatureProbabilityModel = self._feature_ranker.probability_model

    @property
    def feature_ranker(self) -> SemanticFeatureRanker:
        """The semantic-feature ranker this entity ranker builds on."""
        return self._feature_ranker

    # ------------------------------------------------------------------ #
    # Candidate generation
    # ------------------------------------------------------------------ #
    def candidates(
        self, seeds: Sequence[str], scored_features: Sequence[ScoredFeature]
    ) -> List[str]:
        """Candidate entities: anything matching a query feature, minus seeds."""
        features = [scored.feature for scored in scored_features]
        return candidate_entities(
            self._graph,
            features,
            exclude=seeds,
            limit=self._config.max_candidates,
        )

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def score_entity(
        self, entity_id: str, scored_features: Sequence[ScoredFeature]
    ) -> ScoredEntity:
        """``r(e, Q) = sum_pi p(pi|e) * r(pi, Q)`` with per-feature detail."""
        contributions: Dict[str, float] = {}
        total = 0.0
        for scored in scored_features:
            probability = self._probability.probability(scored.feature, entity_id)
            contribution = probability * scored.score
            if contribution > 0.0:
                contributions[scored.feature.notation()] = contribution
            total += contribution
        return ScoredEntity(entity_id=entity_id, score=total, contributions=contributions)

    def rank(
        self,
        seeds: Sequence[str],
        top_k: Optional[int] = None,
        scored_features: Optional[Sequence[ScoredFeature]] = None,
        candidates: Optional[Sequence[str]] = None,
    ) -> List[ScoredEntity]:
        """Rank entities similar to the seed set.

        The method mirrors the two-stage process of §2.3: semantic features
        are ranked first (or supplied by the caller), then candidate
        entities are scored against those ranked features.
        """
        if not seeds:
            raise NoSeedEntitiesError("cannot rank entities for an empty seed set")
        for seed in seeds:
            self._graph.require_entity(seed)
        top_k = top_k or self._config.top_entities
        if scored_features is None:
            scored_features = self._feature_ranker.rank(seeds)
        if candidates is None:
            candidates = self.candidates(seeds, scored_features)
        scored = [self.score_entity(entity_id, scored_features) for entity_id in candidates]
        scored.sort(key=lambda item: (-item.score, item.entity_id))
        return scored[:top_k]

    def rank_with_features(
        self,
        seeds: Sequence[str],
        top_entities: Optional[int] = None,
        top_features: Optional[int] = None,
    ) -> tuple[List[ScoredEntity], List[ScoredFeature]]:
        """Rank both entities and features for a query in one call.

        This is the recommendation-engine entry point the PivotE facade
        uses: the returned pair is exactly the x-axis and y-axis of the
        matrix interface.
        """
        if not seeds:
            raise NoSeedEntitiesError("cannot rank an empty seed set")
        scored_features = self._feature_ranker.rank(seeds, top_k=top_features)
        scored_entities = self.rank(
            seeds, top_k=top_entities, scored_features=scored_features
        )
        return scored_entities, scored_features
