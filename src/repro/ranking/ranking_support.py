"""Scoring support for the accumulator-based recommendation hot path.

The two-stage recommendation model of §2.3 scores every candidate entity
against every ranked semantic feature via ``p(pi | e)``.  The probability
has algebraic structure the exhaustive per-pair loop ignores: when ``e``
does **not** hold ``pi``, ``p(pi | e)`` depends only on the pair
``(pi, c*(e))`` where ``c*`` is the entity's dominant type.  Per-candidate
scores therefore decompose into

* a per-type **base score** ``B(c) = sum_pi max(p(pi|c), eps) * r(pi, Q)``
  shared by every candidate of dominant type ``c``, plus
* a sparse **correction** ``sum_{pi held by e} (1 - max(p(pi|c), eps)) * r(pi, Q)``
  walked term-at-a-time over the index's ``E(pi)`` holder lists,

turning ``O(candidates x features)`` per-pair Python calls into
``O(types x features + matched postings)``.  :class:`RankingSupport` is the
shared scoring context behind that decomposition: memoised dominant types,
memoised per-(feature, type) base probabilities, and no-copy holder access.
It is the recommendation-side sibling of
:class:`repro.index.scoring_support.ScoringSupport` and, like it, is only
valid for the feature-index epoch it was built at
(:meth:`FeatureProbabilityModel.support` hands out a fresh instance after
any graph mutation).

All arithmetic matches the exhaustive model exactly: base probabilities are
the same ``max(p(pi|c*), eps)`` floats ``FeatureProbabilityModel.probability``
produces, so rankings built on this layer are verifiable against the seed
``rank_exhaustive()`` paths.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator, Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from ..features import SemanticFeature, SemanticFeatureIndex
from ..features.columnar import build_ranker_inputs, columnar_tables
from ..kg import KnowledgeGraph
from ..topk import (
    PruningStats,
    SharedThresholdSlot,
    accumulate_rank,
    ceil_div,
    columnar_rank,
    safety_slack,
    threshold_of,
    top_k_bounds,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .sf_ranking import ScoredFeature

#: Default feature columns per correction chunk of the ``blockmax`` entity
#: accumulator: type groups are re-checked against θ (and retired once
#: they can gain nothing more) at every chunk boundary, the
#: recommendation-side mirror of the posting blocks of the search side.
#: Tunable per workload via ``RankingConfig.feature_chunk``.
FEATURE_CHUNK = 2


def _sorted_unique(ordinals: "np.ndarray") -> "np.ndarray":
    """Ascending unique ordinals, without ``np.unique``'s always-on copy.

    Candidate lists are deduplicated by every internal caller, so the
    common case is a plain in-place sort of a freshly-built array; the
    full dedupe only runs when a (public-API) caller passed duplicates.
    """
    ordinals.sort()
    if ordinals.size > 1 and bool(np.any(ordinals[1:] == ordinals[:-1])):
        return np.unique(ordinals)
    return ordinals


class FrozenMapping(Mapping[str, float]):
    """A read-only, picklable mapping for shared score decompositions.

    ``ScoredEntity.contributions`` and ``ScoredFeature.seed_probabilities``
    are shared by the recommendation engine's LRU cache, so they must not
    be mutable in place — but ``types.MappingProxyType`` cannot be pickled
    or deep-copied, which downstream consumers (multiprocessing fan-out,
    on-disk caching) legitimately rely on.  This wrapper is immutable from
    the outside, compares equal to plain dicts, and round-trips through
    ``pickle`` / ``copy.deepcopy``.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Mapping[str, float]) -> None:
        object.__setattr__(self, "_data", dict(data))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("FrozenMapping is read-only")

    def __getitem__(self, key: str) -> float:
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FrozenMapping):
            return self._data == other._data
        return self._data == other

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    __hash__ = None  # type: ignore[assignment]  # mutable-mapping semantics

    def __repr__(self) -> str:
        return f"FrozenMapping({self._data!r})"

    def __reduce__(self):
        return (FrozenMapping, (self._data,))


class RankingSupport:
    """Memoised probability lookups over one feature-index epoch.

    An instance is only valid for the index epoch it was built at; the
    probability model hands out a fresh instance after any graph mutation
    (see :meth:`repro.ranking.probability.FeatureProbabilityModel.support`).
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        index: SemanticFeatureIndex,
        type_smoothing: bool = True,
        epsilon: float = 1e-9,
    ) -> None:
        self._graph = graph
        #: The *pinned snapshot* of the feature index: every lookup this
        #: support object makes for its whole lifetime reads one immutable
        #: epoch state, so an in-flight query keeps the epoch it started
        #: on while graph mutations publish successor snapshots (the
        #: probability model hands out a fresh support after any epoch
        #: change, so new queries see the new state).
        self._index = index.snapshot() if hasattr(index, "snapshot") else index
        self._type_smoothing = type_smoothing
        self._epsilon = epsilon
        self._epoch = self._index.epoch
        #: Memoised dominant types (``graph.dominant_type`` scans the type
        #: sets on every call; candidates repeat across session operations).
        self._dominant_types: dict[str, str] = {}
        #: Memoised base probabilities ``max(p(pi|c), eps)`` per (pi, c).
        self._base: dict[tuple[SemanticFeature, str], float] = {}
        #: Memoised ``(base, correction possible)`` pairs per (pi, c): the
        #: pruned accumulator resolves both with a single dictionary hit.
        self._base_and_possible: dict[tuple[SemanticFeature, str], tuple[float, bool]] = {}

    @property
    def epoch(self) -> int:
        """The feature-index epoch this support object was built for."""
        return self._epoch

    @property
    def epsilon(self) -> float:
        return self._epsilon

    # ------------------------------------------------------------------ #
    # Probability lookups
    # ------------------------------------------------------------------ #
    def dominant_type(self, entity_id: str) -> str:
        """Memoised ``c*(e)`` (empty string for untyped entities).

        Resolved against the pinned snapshot's type tables when one is
        pinned, so an in-flight query's dominant types — like its holder
        sets and smoothing counts — all belong to one epoch.
        """
        cached = self._dominant_types.get(entity_id)
        if cached is None:
            source = self._index if hasattr(self._index, "dominant_type") else self._graph
            cached = source.dominant_type(entity_id)
            self._dominant_types[entity_id] = cached
        return cached

    def base_probability(self, feature: SemanticFeature, type_id: str) -> float:
        """``max(p(pi|c), eps)`` — ``p(pi|e)`` for a non-holder of type ``c``.

        Bitwise-identical to what ``FeatureProbabilityModel.probability``
        returns for an entity of dominant type ``type_id`` that does not
        hold the feature, including the no-smoothing and untyped fallbacks.
        """
        key = (feature, type_id)
        cached = self._base.get(key)
        if cached is None:
            if not self._type_smoothing or not type_id:
                cached = self._epsilon
            else:
                intersection, population = self._index.type_conditional_count(feature, type_id)
                smoothed = intersection / population if population else 0.0
                cached = max(smoothed, self._epsilon)
            self._base[key] = cached
        return cached

    def base_and_possible(self, feature: SemanticFeature, type_id: str) -> tuple[float, bool]:
        """``(base(pi, c), can any type-c candidate hold pi at all?)``.

        The second component gates the correction upper bounds of the
        pruned entity accumulator: a typed candidate can only earn the
        ``(1 - base) * r`` correction when the memoised
        ``||E(pi) ∩ E(c)||`` intersection is non-zero (untyped candidates
        fall back to the holder list being non-empty).  Both components
        are resolved with one dictionary hit on the hot path.
        """
        key = (feature, type_id)
        cached = self._base_and_possible.get(key)
        if cached is None:
            base = self.base_probability(feature, type_id)
            if type_id:
                possible = self._index.type_conditional_count(feature, type_id)[0] > 0
            else:
                possible = bool(self._index.holders_of(feature))
            cached = (base, possible)
            self._base_and_possible[key] = cached
        return cached

    def probability(self, feature: SemanticFeature, entity_id: str) -> float:
        """``p(pi | e)`` via the memoised lookups (same floats as the model)."""
        if self._index.holds(entity_id, feature):
            return 1.0
        return self.base_probability(feature, self.dominant_type(entity_id))

    def holders(self, feature: SemanticFeature) -> set[str]:
        """``E(pi)`` as the index's no-copy holder set (read-only)."""
        return self._index.holders_of(feature)

    # ------------------------------------------------------------------ #
    # Accumulator traversal
    # ------------------------------------------------------------------ #
    def score_entities(
        self,
        entity_ids: Sequence[str],
        scored_features: Sequence["ScoredFeature"],
    ) -> dict[str, float]:
        """Accumulator scores ``r(e, Q)`` for every candidate entity.

        Implements the type-grouped decomposition: one base score per
        distinct dominant type, then one sparse correction pass per scored
        feature over the smaller of its holder list and the candidate set.

        The decomposition sums the same terms as the exhaustive per-pair
        loop but in a different association (``b*s + (1-b)*s`` instead of
        ``1.0*s`` for holders), so individual totals can differ from the
        exhaustive scores by float rounding.  Callers selecting a top-k
        from these accumulators must re-score the boundary exactly — see
        ``EntityRanker.rank``, which selects with a safety margin and
        re-ranks the survivors through ``score_entity``.
        """
        relevance = [scored.score for scored in scored_features]
        entity_types: dict[str, str] = {}
        bases: dict[str, list[float]] = {}
        base_scores: dict[str, float] = {}
        accumulators: dict[str, float] = {}
        for entity_id in entity_ids:
            type_id = self.dominant_type(entity_id)
            entity_types[entity_id] = type_id
            if type_id not in bases:
                row = [self.base_probability(scored.feature, type_id) for scored in scored_features]
                bases[type_id] = row
                total = 0.0
                for base, score in zip(row, relevance):
                    total += base * score
                base_scores[type_id] = total
            accumulators[entity_id] = base_scores[type_id]

        for column, scored in enumerate(scored_features):
            score = relevance[column]
            holder_set = self._index.holders_of(scored.feature)
            if len(holder_set) <= len(accumulators):
                for entity_id in holder_set:
                    type_id = entity_types.get(entity_id)
                    if type_id is not None:
                        accumulators[entity_id] += (1.0 - bases[type_id][column]) * score
            else:
                for entity_id, type_id in entity_types.items():
                    if entity_id in holder_set:
                        accumulators[entity_id] += (1.0 - bases[type_id][column]) * score
        return accumulators

    def correction_bound(
        self,
        type_id: str,
        base_row: Sequence[float],
        scored_features: Sequence["ScoredFeature"],
        relevance: Sequence[float],
    ) -> float:
        """Upper bound on the sparse correction any type-``c`` candidate can earn.

        A candidate of dominant type ``c`` gains ``(1 - base(pi, c)) * r(pi)``
        for every scored feature it holds.  The bound sums the maximal
        per-holder correction over the features a type-``c`` entity *can*
        hold at all: for typed candidates that is gated on the memoised
        ``||E(pi) ∩ E(c)||`` intersection count (zero intersection means no
        instance of the type holds the feature), for untyped candidates on
        the holder list being non-empty.  Used by the pruned entity
        accumulator to skip whole type groups whose
        ``B(c) + bound(corrections)`` cannot reach the live θ.
        """
        bound = 0.0
        if type_id:
            for column, scored in enumerate(scored_features):
                score = relevance[column]
                if score <= 0.0:
                    continue
                intersection, _ = self._index.type_conditional_count(scored.feature, type_id)
                if intersection:
                    bound += (1.0 - base_row[column]) * score
        else:
            for column, scored in enumerate(scored_features):
                score = relevance[column]
                if score <= 0.0:
                    continue
                if self._index.holders_of(scored.feature):
                    bound += (1.0 - base_row[column]) * score
        return bound

    def score_entities_pruned(
        self,
        entity_ids: Sequence[str],
        scored_features: Sequence["ScoredFeature"],
        top_k: int,
        stats: PruningStats,
        blockmax: bool = False,
        shared: SharedThresholdSlot | None = None,
        feature_chunk: int = FEATURE_CHUNK,
    ) -> dict[str, float]:
        """Type-group-pruned accumulator scores (see :meth:`score_entities`).

        The decomposition makes every partial accumulator a score *lower*
        bound (corrections are non-negative), so the k-th largest partial
        is a live θ.  A whole dominant-type group dies — before the walk
        via ``B(c) + bound(corrections) < θ``, or after any correction
        column via ``best partial of c + remaining bound of c < θ`` — when
        even its best-scored member provably cannot reach the top-k; its
        members leave the accumulator map and the later (often much
        larger) holder walks pass over them.  Survivor scores are exactly
        the accumulator values :meth:`score_entities` produces; callers
        must re-score the selection boundary exactly, as before.

        With ``blockmax=True`` the feature columns are treated as chunks
        of :data:`FEATURE_CHUNK` (per-type chunked holder-list bounds):
        θ is refreshed and group kills re-checked at *every* chunk
        boundary instead of the two fixed checkpoints, and a group whose
        remaining chunk bounds are all zero is *retired* mid-walk — its
        members' accumulator values are already final, so they keep their
        place in the result map but drop out of every later (often much
        larger) holder walk.  Chunk decisions are reported through the
        ``blocks_total`` / ``blocks_skipped`` counters.

        ``shared`` is this worker's slot on the sharded execution
        layer's cross-shard θ broadcast: the shard offers its top-k
        partial lower bounds (its candidates' base scores up front, the
        θ-pool partials at every refresh), and the k-th best over all
        shards' offers — the θ the serial walk derives from the merged
        pool — drives the group kills everywhere.
        """
        relevance = [scored.score for scored in scored_features]
        entity_types: dict[str, str] = {}
        type_members: dict[str, list[str]] = {}
        for entity_id in entity_ids:
            type_id = self.dominant_type(entity_id)
            entity_types[entity_id] = type_id
            members = type_members.get(type_id)
            if members is None:
                type_members[type_id] = [entity_id]
            else:
                members.append(entity_id)

        num_columns = len(scored_features)
        bases: dict[str, list[float]] = {}
        base_scores: dict[str, float] = {}
        suffix_bounds: dict[str, list[float]] = {}
        base_and_possible = self.base_and_possible
        for type_id in type_members:
            # One memoised hit per (feature, type) yields both the base
            # probability and the correction-possible gate; the suffix
            # array accumulates the per-column correction upper bounds.
            row: list[float] = []
            suffix = [0.0] * (num_columns + 1)
            total = 0.0
            for column, scored in enumerate(scored_features):
                base, possible = base_and_possible(scored.feature, type_id)
                row.append(base)
                score = relevance[column]
                total += base * score
                if possible and score > 0.0:
                    suffix[column] = (1.0 - base) * score
            for column in range(num_columns - 1, -1, -1):
                suffix[column] += suffix[column + 1]
            bases[type_id] = row
            base_scores[type_id] = total
            suffix_bounds[type_id] = suffix

        stats.queries += 1
        stats.candidates_total += len(entity_types)
        stats.groups_total += len(type_members)
        # Chunk accounting: each type group would walk ``num_chunks``
        # correction chunks; chunks never walked (group killed, retired or
        # dead before the walk) are reported as skipped blocks.
        num_chunks = 0
        if blockmax and num_columns:
            num_chunks = ceil_div(num_columns, feature_chunk)
            stats.blocks_total += num_chunks * len(type_members)

        # Initial θ: the k-th largest base score over the candidate pool,
        # derived from the type-group sizes (no per-candidate pass).  The
        # same ordering yields the θ pool for the mid-walk refreshes: a
        # θ computed over any candidate *subset* is still witnessed by k
        # real candidates, so restricting the refresh to the members of
        # the highest-base types keeps it sound at a fraction of the cost
        # of scanning every accumulator.
        threshold = float("-inf")
        theta_pool: list[str] = []
        initial_bounds: list[float] = []
        if 0 < top_k < len(entity_types):
            covered = 0
            pool_budget = 2 * top_k + len(type_members)
            for type_id in sorted(type_members, key=lambda t: -base_scores[t]):
                members = type_members[type_id]
                if covered < top_k:
                    threshold = base_scores[type_id]
                    if shared is not None:
                        # This shard's top-k witnesses: the base scores of
                        # its k best-based candidates, distinct by
                        # construction (each counted via its own type slot).
                        needed = min(top_k - covered, len(members))
                        initial_bounds.extend([base_scores[type_id]] * needed)
                if len(theta_pool) < pool_budget:
                    theta_pool.extend(members)
                covered += len(members)
        elif shared is not None and top_k > 0:
            # Fewer candidates than k in this shard: every base score is
            # still a witness the global pool can use, and every member
            # belongs in the θ-refresh pool.
            for type_id, members in type_members.items():
                initial_bounds.extend([base_scores[type_id]] * len(members))
                theta_pool.extend(members)
        if shared is not None:
            offered = shared.offer(initial_bounds)
            if offered > threshold:
                threshold = offered
        cut = threshold - safety_slack(threshold) if threshold != float("-inf") else float("-inf")

        live_types: dict[str, list[float]] = {}
        accumulators: dict[str, float] = {}
        for type_id, members in type_members.items():
            if base_scores[type_id] + suffix_bounds[type_id][0] < cut:
                stats.groups_skipped += 1
                stats.candidates_pruned += len(members)
                if blockmax:
                    stats.blocks_skipped += num_chunks
                continue
            base = base_scores[type_id]
            for entity_id in members:
                accumulators[entity_id] = base
            if blockmax and suffix_bounds[type_id][0] == 0.0:
                # No member can earn any correction: the base score is
                # already final, so the group never enters the walk at
                # all (retired, not killed — its members stay ranked).
                stats.blocks_skipped += num_chunks
                continue
            live_types[type_id] = bases[type_id]

        if len(live_types) == len(type_members):
            # Nothing died up front: the full type map doubles as the live
            # map (mid-walk kills mutate it; it is query-local anyway).
            live_entities = entity_types
        else:
            live_entities = {
                entity_id: type_id
                for entity_id, type_id in entity_types.items()
                if type_id in live_types
            }
        for column, scored in enumerate(scored_features):
            score = relevance[column]
            holder_set = self._index.holders_of(scored.feature)
            if len(holder_set) <= len(live_entities):
                for entity_id in holder_set:
                    type_id = live_entities.get(entity_id)
                    if type_id is not None:
                        accumulators[entity_id] += (1.0 - live_types[type_id][column]) * score
            else:
                for entity_id, type_id in live_entities.items():
                    if entity_id in holder_set:
                        accumulators[entity_id] += (1.0 - live_types[type_id][column]) * score
            # Kill groups whose best member cannot reach θ with the
            # remaining corrections.  θ and the per-group best partials
            # are refreshed only after the heaviest-relevance columns in
            # maxscore mode (the features are already sorted by score, so
            # those columns decide almost all kills); blockmax mode
            # re-checks at every FEATURE_CHUNK boundary and additionally
            # *retires* groups whose remaining chunk bounds are all zero
            # — their values are final, so they keep their place in the
            # result map but drop out of every later holder walk.  θ only
            # ever grows, so a stale θ is sound.
            done = column + 1
            if done >= num_columns or not live_types:
                continue
            if blockmax:
                if done != 1 and done % feature_chunk != 0:
                    continue
                # Chunks not yet *started*: a partially-walked chunk (the
                # done=1 checkpoint sits mid-chunk) counts as walked, so
                # the skip counters never overstate the avoided work.
                rem_chunks = num_chunks - ceil_div(done, feature_chunk)
                finished = [
                    type_id
                    for type_id in live_types
                    if suffix_bounds[type_id][done] == 0.0
                ]
                for type_id in finished:
                    del live_types[type_id]
                    for entity_id in type_members[type_id]:
                        del live_entities[entity_id]
                    stats.blocks_skipped += rem_chunks
                # Retirement is O(live types) and runs at every chunk
                # boundary; the θ-refresh kill scan below is O(live
                # candidates), so it keeps the maxscore schedule plus a
                # sparse tail instead of firing at every boundary.
                if done not in (1, 4) and done % 8 != 0:
                    continue
            else:
                if done not in (1, 4):
                    continue
                rem_chunks = 0
            if shared is None and (len(live_types) <= 1 or len(accumulators) <= top_k):
                continue
            lookup_or_dead = accumulators.get
            if shared is not None:
                refreshed = shared.offer(
                    top_k_bounds(
                        (
                            partial
                            for partial in map(lookup_or_dead, theta_pool)
                            if partial is not None
                        ),
                        top_k,
                    )
                )
            else:
                refreshed = threshold_of(
                    (
                        partial
                        for partial in map(lookup_or_dead, theta_pool)
                        if partial is not None
                    ),
                    top_k,
                )
            if refreshed == float("-inf"):
                continue
            cut = refreshed - safety_slack(refreshed)
            lookup = accumulators.__getitem__
            doomed = [
                type_id
                for type_id, members in type_members.items()
                if type_id in live_types
                and max(map(lookup, members)) + suffix_bounds[type_id][done] < cut
            ]
            for type_id in doomed:
                del live_types[type_id]
                members = type_members[type_id]
                for entity_id in members:
                    del accumulators[entity_id]
                    del live_entities[entity_id]
                stats.groups_skipped += 1
                stats.candidates_pruned += len(members)
                stats.blocks_skipped += rem_chunks
        return accumulators

    # ------------------------------------------------------------------ #
    # Columnar traversal (vectorized kernels over the epoch feature tables)
    # ------------------------------------------------------------------ #
    def columnar_tables(self):
        """The pinned snapshot's per-epoch array tables (``None`` when the
        pinned index object has no snapshot memo slot)."""
        return columnar_tables(self._index)

    def _kernel_candidates(
        self, entity_ids: Sequence[str]
    ) -> tuple["np.ndarray", object] | None:
        """Candidate ordinals + tables, or ``None`` → scalar fallback.

        Unknown entity ids (callers may rank arbitrary candidate lists)
        have no ordinal, so any miss routes the whole query back through
        the scalar walk rather than silently dropping candidates.
        """
        tables = self.columnar_tables()
        if tables is None or tables.ordinal_of is None:
            return None
        ordinal_of = tables.ordinal_of
        try:
            ordinals = np.fromiter(
                (ordinal_of[entity_id] for entity_id in entity_ids),
                dtype=np.int64,
                count=len(entity_ids),
            )
        except KeyError:
            return None
        return ordinals, tables

    def kernel_inputs(self, tables, ordinals, scored_features):
        """One query's :class:`~repro.topk.RankerKernelInputs` over the
        epoch tables, with this support's smoothing knobs applied (shared
        with the process tier's inline fallback closures)."""
        return build_ranker_inputs(
            tables,
            [scored.feature.key for scored in scored_features],
            [scored.score for scored in scored_features],
            ordinals,
            self._epsilon,
            type_smoothing=self._type_smoothing,
        )

    def score_entities_columnar(
        self,
        entity_ids: Sequence[str],
        scored_features: Sequence["ScoredFeature"],
    ) -> dict[str, float] | None:
        """Vectorized :meth:`score_entities` (``None`` → scalar fallback)."""
        resolved = self._kernel_candidates(entity_ids)
        if resolved is None:
            return None
        ordinals, tables = resolved
        ordinals = _sorted_unique(ordinals)
        inputs = self.kernel_inputs(tables, ordinals, scored_features)
        values = accumulate_rank(inputs)
        ids = tables.entity_ids
        return {
            ids[ordinal]: value
            for ordinal, value in zip(inputs.ordinals.tolist(), values.tolist())
        }

    def score_entities_pruned_columnar(
        self,
        entity_ids: Sequence[str],
        scored_features: Sequence["ScoredFeature"],
        top_k: int,
        stats: PruningStats,
        blockmax: bool = False,
        shared: SharedThresholdSlot | None = None,
        feature_chunk: int = FEATURE_CHUNK,
    ) -> dict[str, float] | None:
        """Vectorized :meth:`score_entities_pruned` (``None`` → fallback).

        Returns the margin-selected survivor accumulators — a *subset* of
        what the scalar walk returns, but a superset of the true top-k,
        which is all the exact re-scoring epilogue needs (the scalar
        caller applies the same ``top_k + margin`` selection to its full
        accumulator map before re-scoring).
        """
        resolved = self._kernel_candidates(entity_ids)
        if resolved is None:
            return None
        ordinals, tables = resolved
        ordinals = _sorted_unique(ordinals)
        inputs = self.kernel_inputs(tables, ordinals, scored_features)
        survivors, values = columnar_rank(
            inputs,
            top_k,
            stats,
            blockmax=blockmax,
            feature_chunk=feature_chunk,
            shared=shared,
        )
        ids = tables.entity_ids
        return {
            ids[ordinal]: value
            for ordinal, value in zip(survivors.tolist(), values.tolist())
        }

    def contribution_rows(
        self,
        entity_ids: Sequence[str],
        scored_features: Sequence["ScoredFeature"],
    ) -> list[list[float]]:
        """Per-entity contribution vectors ``p(pi|e) * r(pi, Q)``.

        The rows of the correlation matrix, assembled from the per-type
        base vectors plus holder overrides instead of per-cell probability
        calls.  Cell values are bitwise-identical to the exhaustive
        ``probability() * score`` products.
        """
        relevance = [scored.score for scored in scored_features]
        base_rows: dict[str, list[float]] = {}
        rows: list[list[float]] = []
        # All rows per id, so duplicate entities (legal for this public
        # API) each receive their holder overrides.
        positions: dict[str, list[int]] = {}
        for row_index, entity_id in enumerate(entity_ids):
            positions.setdefault(entity_id, []).append(row_index)
            type_id = self.dominant_type(entity_id)
            base_row = base_rows.get(type_id)
            if base_row is None:
                base_row = [
                    self.base_probability(scored.feature, type_id) * score
                    for scored, score in zip(scored_features, relevance)
                ]
                base_rows[type_id] = base_row
            rows.append(list(base_row))
        for column, scored in enumerate(scored_features):
            score = relevance[column]
            holder_set = self._index.holders_of(scored.feature)
            if len(holder_set) <= len(positions):
                for entity_id in holder_set:
                    for row_index in positions.get(entity_id, ()):
                        rows[row_index][column] = score
            else:
                for entity_id, row_indexes in positions.items():
                    if entity_id in holder_set:
                        for row_index in row_indexes:
                            rows[row_index][column] = score
        return rows


def select_top_features(
    scored: Sequence[tuple["SemanticFeature", float]], k: int
) -> list[tuple["SemanticFeature", float]]:
    """The ``k`` best ``(feature, score)`` pairs by ``(-score, notation)``.

    Bounded-heap selection mirroring
    :func:`repro.index.scoring_support.select_top_k`, with the exact tie
    ordering of the exhaustive feature sort.
    """
    if k <= 0:
        return []

    def _key(item: tuple["SemanticFeature", float]) -> tuple[float, str]:
        feature, score = item
        return (-score, feature.notation())

    if k >= len(scored):
        return sorted(scored, key=_key)
    return heapq.nsmallest(k, scored, key=_key)


__all__ = ["RankingSupport", "select_top_features"]
