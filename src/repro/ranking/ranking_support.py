"""Scoring support for the accumulator-based recommendation hot path.

The two-stage recommendation model of §2.3 scores every candidate entity
against every ranked semantic feature via ``p(pi | e)``.  The probability
has algebraic structure the exhaustive per-pair loop ignores: when ``e``
does **not** hold ``pi``, ``p(pi | e)`` depends only on the pair
``(pi, c*(e))`` where ``c*`` is the entity's dominant type.  Per-candidate
scores therefore decompose into

* a per-type **base score** ``B(c) = sum_pi max(p(pi|c), eps) * r(pi, Q)``
  shared by every candidate of dominant type ``c``, plus
* a sparse **correction** ``sum_{pi held by e} (1 - max(p(pi|c), eps)) * r(pi, Q)``
  walked term-at-a-time over the index's ``E(pi)`` holder lists,

turning ``O(candidates x features)`` per-pair Python calls into
``O(types x features + matched postings)``.  :class:`RankingSupport` is the
shared scoring context behind that decomposition: memoised dominant types,
memoised per-(feature, type) base probabilities, and no-copy holder access.
It is the recommendation-side sibling of
:class:`repro.index.scoring_support.ScoringSupport` and, like it, is only
valid for the feature-index epoch it was built at
(:meth:`FeatureProbabilityModel.support` hands out a fresh instance after
any graph mutation).

All arithmetic matches the exhaustive model exactly: base probabilities are
the same ``max(p(pi|c*), eps)`` floats ``FeatureProbabilityModel.probability``
produces, so rankings built on this layer are verifiable against the seed
``rank_exhaustive()`` paths.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Sequence, Set, Tuple

from ..features import SemanticFeature, SemanticFeatureIndex
from ..kg import KnowledgeGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .sf_ranking import ScoredFeature


class FrozenMapping(Mapping[str, float]):
    """A read-only, picklable mapping for shared score decompositions.

    ``ScoredEntity.contributions`` and ``ScoredFeature.seed_probabilities``
    are shared by the recommendation engine's LRU cache, so they must not
    be mutable in place — but ``types.MappingProxyType`` cannot be pickled
    or deep-copied, which downstream consumers (multiprocessing fan-out,
    on-disk caching) legitimately rely on.  This wrapper is immutable from
    the outside, compares equal to plain dicts, and round-trips through
    ``pickle`` / ``copy.deepcopy``.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Mapping[str, float]) -> None:
        object.__setattr__(self, "_data", dict(data))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("FrozenMapping is read-only")

    def __getitem__(self, key: str) -> float:
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FrozenMapping):
            return self._data == other._data
        return self._data == other

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    __hash__ = None  # type: ignore[assignment]  # mutable-mapping semantics

    def __repr__(self) -> str:
        return f"FrozenMapping({self._data!r})"

    def __reduce__(self):
        return (FrozenMapping, (self._data,))


class RankingSupport:
    """Memoised probability lookups over one feature-index epoch.

    An instance is only valid for the index epoch it was built at; the
    probability model hands out a fresh instance after any graph mutation
    (see :meth:`repro.ranking.probability.FeatureProbabilityModel.support`).
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        index: SemanticFeatureIndex,
        type_smoothing: bool = True,
        epsilon: float = 1e-9,
    ) -> None:
        self._graph = graph
        self._index = index
        self._type_smoothing = type_smoothing
        self._epsilon = epsilon
        self._epoch = index.epoch
        #: Memoised dominant types (``graph.dominant_type`` scans the type
        #: sets on every call; candidates repeat across session operations).
        self._dominant_types: Dict[str, str] = {}
        #: Memoised base probabilities ``max(p(pi|c), eps)`` per (pi, c).
        self._base: Dict[Tuple[SemanticFeature, str], float] = {}

    @property
    def epoch(self) -> int:
        """The feature-index epoch this support object was built for."""
        return self._epoch

    @property
    def epsilon(self) -> float:
        return self._epsilon

    # ------------------------------------------------------------------ #
    # Probability lookups
    # ------------------------------------------------------------------ #
    def dominant_type(self, entity_id: str) -> str:
        """Memoised ``c*(e)`` (empty string for untyped entities)."""
        cached = self._dominant_types.get(entity_id)
        if cached is None:
            cached = self._graph.dominant_type(entity_id)
            self._dominant_types[entity_id] = cached
        return cached

    def base_probability(self, feature: SemanticFeature, type_id: str) -> float:
        """``max(p(pi|c), eps)`` — ``p(pi|e)`` for a non-holder of type ``c``.

        Bitwise-identical to what ``FeatureProbabilityModel.probability``
        returns for an entity of dominant type ``type_id`` that does not
        hold the feature, including the no-smoothing and untyped fallbacks.
        """
        key = (feature, type_id)
        cached = self._base.get(key)
        if cached is None:
            if not self._type_smoothing or not type_id:
                cached = self._epsilon
            else:
                intersection, population = self._index.type_conditional_count(feature, type_id)
                smoothed = intersection / population if population else 0.0
                cached = max(smoothed, self._epsilon)
            self._base[key] = cached
        return cached

    def probability(self, feature: SemanticFeature, entity_id: str) -> float:
        """``p(pi | e)`` via the memoised lookups (same floats as the model)."""
        if self._index.holds(entity_id, feature):
            return 1.0
        return self.base_probability(feature, self.dominant_type(entity_id))

    def holders(self, feature: SemanticFeature) -> Set[str]:
        """``E(pi)`` as the index's no-copy holder set (read-only)."""
        return self._index.holders_of(feature)

    # ------------------------------------------------------------------ #
    # Accumulator traversal
    # ------------------------------------------------------------------ #
    def score_entities(
        self,
        entity_ids: Sequence[str],
        scored_features: Sequence["ScoredFeature"],
    ) -> Dict[str, float]:
        """Accumulator scores ``r(e, Q)`` for every candidate entity.

        Implements the type-grouped decomposition: one base score per
        distinct dominant type, then one sparse correction pass per scored
        feature over the smaller of its holder list and the candidate set.

        The decomposition sums the same terms as the exhaustive per-pair
        loop but in a different association (``b*s + (1-b)*s`` instead of
        ``1.0*s`` for holders), so individual totals can differ from the
        exhaustive scores by float rounding.  Callers selecting a top-k
        from these accumulators must re-score the boundary exactly — see
        ``EntityRanker.rank``, which selects with a safety margin and
        re-ranks the survivors through ``score_entity``.
        """
        relevance = [scored.score for scored in scored_features]
        entity_types: Dict[str, str] = {}
        bases: Dict[str, List[float]] = {}
        base_scores: Dict[str, float] = {}
        accumulators: Dict[str, float] = {}
        for entity_id in entity_ids:
            type_id = self.dominant_type(entity_id)
            entity_types[entity_id] = type_id
            if type_id not in bases:
                row = [self.base_probability(scored.feature, type_id) for scored in scored_features]
                bases[type_id] = row
                total = 0.0
                for base, score in zip(row, relevance):
                    total += base * score
                base_scores[type_id] = total
            accumulators[entity_id] = base_scores[type_id]

        for column, scored in enumerate(scored_features):
            score = relevance[column]
            holder_set = self._index.holders_of(scored.feature)
            if len(holder_set) <= len(accumulators):
                for entity_id in holder_set:
                    type_id = entity_types.get(entity_id)
                    if type_id is not None:
                        accumulators[entity_id] += (1.0 - bases[type_id][column]) * score
            else:
                for entity_id, type_id in entity_types.items():
                    if entity_id in holder_set:
                        accumulators[entity_id] += (1.0 - bases[type_id][column]) * score
        return accumulators

    def contribution_rows(
        self,
        entity_ids: Sequence[str],
        scored_features: Sequence["ScoredFeature"],
    ) -> List[List[float]]:
        """Per-entity contribution vectors ``p(pi|e) * r(pi, Q)``.

        The rows of the correlation matrix, assembled from the per-type
        base vectors plus holder overrides instead of per-cell probability
        calls.  Cell values are bitwise-identical to the exhaustive
        ``probability() * score`` products.
        """
        relevance = [scored.score for scored in scored_features]
        base_rows: Dict[str, List[float]] = {}
        rows: List[List[float]] = []
        # All rows per id, so duplicate entities (legal for this public
        # API) each receive their holder overrides.
        positions: Dict[str, List[int]] = {}
        for row_index, entity_id in enumerate(entity_ids):
            positions.setdefault(entity_id, []).append(row_index)
            type_id = self.dominant_type(entity_id)
            base_row = base_rows.get(type_id)
            if base_row is None:
                base_row = [
                    self.base_probability(scored.feature, type_id) * score
                    for scored, score in zip(scored_features, relevance)
                ]
                base_rows[type_id] = base_row
            rows.append(list(base_row))
        for column, scored in enumerate(scored_features):
            score = relevance[column]
            holder_set = self._index.holders_of(scored.feature)
            if len(holder_set) <= len(positions):
                for entity_id in holder_set:
                    for row_index in positions.get(entity_id, ()):
                        rows[row_index][column] = score
            else:
                for entity_id, row_indexes in positions.items():
                    if entity_id in holder_set:
                        for row_index in row_indexes:
                            rows[row_index][column] = score
        return rows


def select_top_features(
    scored: Sequence[Tuple["SemanticFeature", float]], k: int
) -> List[Tuple["SemanticFeature", float]]:
    """The ``k`` best ``(feature, score)`` pairs by ``(-score, notation)``.

    Bounded-heap selection mirroring
    :func:`repro.index.scoring_support.select_top_k`, with the exact tie
    ordering of the exhaustive feature sort.
    """
    if k <= 0:
        return []

    def _key(item: Tuple["SemanticFeature", float]) -> Tuple[float, str]:
        feature, score = item
        return (-score, feature.notation())

    if k >= len(scored):
        return sorted(scored, key=_key)
    return heapq.nsmallest(k, scored, key=_key)


__all__ = ["RankingSupport", "select_top_features"]
