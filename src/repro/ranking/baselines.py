"""Baseline entity-recommendation methods.

The PivotE ranking model (discriminability x commonality over semantic
features) is compared in the E6 experiment against three standard
alternatives a practitioner would reach for:

* **Jaccard similarity** over the seeds' feature sets;
* **co-occurrence counting** (how many seed features a candidate shares,
  unweighted);
* **personalised PageRank** (random walk with restart from the seeds over
  the entity graph).

All baselines expose the same interface: ``rank(seeds, top_k)`` returning
``(entity_id, score)`` pairs sorted by descending score.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

from ..exceptions import NoSeedEntitiesError
from ..features import SemanticFeatureIndex
from ..kg import KnowledgeGraph

RankedEntities = list[tuple[str, float]]


class BaselineRanker:
    """Common plumbing for the baseline rankers."""

    name = "baseline"

    def __init__(self, graph: KnowledgeGraph, feature_index: SemanticFeatureIndex) -> None:
        self._graph = graph
        self._index = feature_index

    def _check_seeds(self, seeds: Sequence[str]) -> None:
        if not seeds:
            raise NoSeedEntitiesError(f"{self.name} requires at least one seed entity")
        for seed in seeds:
            self._graph.require_entity(seed)

    def _candidates(self, seeds: Sequence[str]) -> set[str]:
        """Entities sharing at least one semantic feature with a seed."""
        seed_set = set(seeds)
        candidates: set[str] = set()
        for seed in seeds:
            for feature in self._index.features_of(seed):
                candidates.update(self._index.entities_matching(feature))
        return candidates - seed_set

    def rank(self, seeds: Sequence[str], top_k: int = 20) -> RankedEntities:
        raise NotImplementedError


class JaccardRanker(BaselineRanker):
    """Rank candidates by Jaccard similarity of feature sets to the seed union."""

    name = "jaccard"

    def rank(self, seeds: Sequence[str], top_k: int = 20) -> RankedEntities:
        self._check_seeds(seeds)
        seed_features: set = set()
        for seed in seeds:
            seed_features.update(self._index.features_of(seed))
        if not seed_features:
            return []
        results: RankedEntities = []
        for candidate in self._candidates(seeds):
            candidate_features = set(self._index.features_of(candidate))
            union = seed_features | candidate_features
            if not union:
                continue
            score = len(seed_features & candidate_features) / len(union)
            if score > 0.0:
                results.append((candidate, score))
        results.sort(key=lambda item: (-item[1], item[0]))
        return results[:top_k]


class CoOccurrenceRanker(BaselineRanker):
    """Rank candidates by the raw number of seed features they share.

    This is the "commonality without discriminability and without
    smoothing" strawman: frequent, uninformative features count as much as
    highly specific ones.
    """

    name = "co-occurrence"

    def rank(self, seeds: Sequence[str], top_k: int = 20) -> RankedEntities:
        self._check_seeds(seeds)
        seed_features: set = set()
        for seed in seeds:
            seed_features.update(self._index.features_of(seed))
        counts: dict[str, int] = defaultdict(int)
        seed_set = set(seeds)
        for feature in seed_features:
            for entity_id in self._index.entities_matching(feature):
                if entity_id not in seed_set:
                    counts[entity_id] += 1
        results = [(entity_id, float(count)) for entity_id, count in counts.items()]
        results.sort(key=lambda item: (-item[1], item[0]))
        return results[:top_k]


class PersonalizedPageRankRanker(BaselineRanker):
    """Random walk with restart from the seed entities over the entity graph."""

    name = "ppr"

    def __init__(
        self,
        graph: KnowledgeGraph,
        feature_index: SemanticFeatureIndex,
        damping: float = 0.85,
        iterations: int = 20,
        tolerance: float = 1e-8,
    ) -> None:
        super().__init__(graph, feature_index)
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must lie in (0, 1)")
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self._damping = damping
        self._iterations = iterations
        self._tolerance = tolerance

    def rank(self, seeds: Sequence[str], top_k: int = 20) -> RankedEntities:
        self._check_seeds(seeds)
        seed_set = set(seeds)
        restart = {seed: 1.0 / len(seed_set) for seed in seed_set}
        scores: dict[str, float] = dict(restart)
        for _ in range(self._iterations):
            next_scores: dict[str, float] = defaultdict(float)
            for entity_id, mass in scores.items():
                neighbours = sorted(self._graph.neighbours(entity_id))
                if not neighbours:
                    # Dangling node: return the mass to the restart set.
                    for seed, weight in restart.items():
                        next_scores[seed] += self._damping * mass * weight
                    continue
                share = self._damping * mass / len(neighbours)
                for neighbour in neighbours:
                    next_scores[neighbour] += share
            for seed, weight in restart.items():
                next_scores[seed] += (1.0 - self._damping) * weight
            delta = sum(
                abs(next_scores.get(key, 0.0) - scores.get(key, 0.0))
                for key in set(scores) | set(next_scores)
            )
            scores = dict(next_scores)
            if delta < self._tolerance:
                break
        results = [
            (entity_id, score)
            for entity_id, score in scores.items()
            if entity_id not in seed_set and score > 0.0
        ]
        results.sort(key=lambda item: (-item[1], item[0]))
        return results[:top_k]


def make_baselines(
    graph: KnowledgeGraph, feature_index: SemanticFeatureIndex
) -> dict[str, BaselineRanker]:
    """All baselines keyed by name, as used by the evaluation harness."""
    return {
        "jaccard": JaccardRanker(graph, feature_index),
        "co-occurrence": CoOccurrenceRanker(graph, feature_index),
        "ppr": PersonalizedPageRankRanker(graph, feature_index),
    }
