"""Entity-feature correlation used by the explanation heat map.

The paper visualises "the correlation of entities and semantic features in
the form of a heat map" divided into seven levels (§2.3.2, Fig 3-f).  The
correlation of an entity ``e`` with a feature ``pi`` under query ``Q`` is
the entity's contribution for that feature in the ranking model:

    corr(e, pi; Q) = p(pi | e) * r(pi, Q)

which is exactly one addend of ``r(e, Q)``.  The heat map therefore *is* a
visual decomposition of the entity ranking, which is what lets users
"understand the recommendation of the system".
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..features import SemanticFeature
from .entity_ranking import ScoredEntity
from .probability import FeatureProbabilityModel
from .sf_ranking import ScoredFeature


@dataclass(frozen=True)
class CorrelationMatrix:
    """A dense entity x feature correlation matrix.

    Rows are entities (the x-axis of the UI), columns are semantic features
    (the y-axis); ``values[i, j]`` is the raw correlation of entity ``i``
    with feature ``j``.
    """

    entities: tuple[str, ...]
    features: tuple[SemanticFeature, ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        expected = (len(self.entities), len(self.features))
        if self.values.shape != expected:
            raise ValueError(
                f"matrix shape {self.values.shape} does not match "
                f"{len(self.entities)} entities x {len(self.features)} features"
            )

    @cached_property
    def _entity_positions(self) -> dict[str, int]:
        """Memoised entity -> row map (replaces O(n) ``tuple.index`` scans)."""
        return {entity: row for row, entity in enumerate(self.entities)}

    @cached_property
    def _feature_positions(self) -> dict[SemanticFeature, int]:
        """Memoised feature -> column map."""
        return {feature: column for column, feature in enumerate(self.features)}

    def _entity_position(self, entity_id: str) -> int:
        try:
            return self._entity_positions[entity_id]
        except KeyError:
            raise ValueError(f"{entity_id!r} is not an entity of the matrix") from None

    def _feature_position(self, feature: SemanticFeature) -> int:
        try:
            return self._feature_positions[feature]
        except KeyError:
            raise ValueError(f"{feature.notation()!r} is not a feature of the matrix") from None

    def value(self, entity_id: str, feature: SemanticFeature) -> float:
        """The correlation of one (entity, feature) cell."""
        row = self._entity_position(entity_id)
        column = self._feature_position(feature)
        return float(self.values[row, column])

    def entity_row(self, entity_id: str) -> dict[str, float]:
        """All feature correlations of one entity, keyed by notation."""
        row = self._entity_position(entity_id)
        return {
            feature.notation(): float(self.values[row, column])
            for column, feature in enumerate(self.features)
        }

    def feature_column(self, feature: SemanticFeature) -> dict[str, float]:
        """All entity correlations of one feature."""
        column = self._feature_position(feature)
        return {
            entity: float(self.values[row, column])
            for row, entity in enumerate(self.entities)
        }

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.entities), len(self.features))


def build_correlation_matrix(
    probability_model: FeatureProbabilityModel,
    scored_entities: Sequence[ScoredEntity],
    scored_features: Sequence[ScoredFeature],
) -> CorrelationMatrix:
    """Build the correlation matrix for ranked entities and features.

    Assembled from the ranking layer's already-computed contribution
    vectors: one base row per distinct dominant entity type (shared by all
    its entities) with holder cells overridden to the feature relevance —
    no per-cell ``probability()`` calls.  Cell values are bitwise-identical
    to :func:`build_correlation_matrix_exhaustive`.
    """
    entities = tuple(entity.entity_id for entity in scored_entities)
    features = tuple(scored.feature for scored in scored_features)
    rows = probability_model.support().contribution_rows(entities, scored_features)
    values = np.array(rows, dtype=float).reshape((len(entities), len(features)))
    # Recommendation payloads built here are shared by the engine's LRU
    # cache, so freeze the array: an in-place mutation by one caller must
    # not corrupt every later cache hit for the same query state.
    values.setflags(write=False)
    return CorrelationMatrix(entities=entities, features=features, values=values)


def build_correlation_matrix_exhaustive(
    probability_model: FeatureProbabilityModel,
    scored_entities: Sequence[ScoredEntity],
    scored_features: Sequence[ScoredFeature],
) -> CorrelationMatrix:
    """The seed cell-by-cell assembly, kept as the reference path.

    Calls ``probability()`` once per (entity, feature) cell; the A/B bench
    and the equivalence tests compare :func:`build_correlation_matrix`
    against this implementation.
    """
    entities = tuple(entity.entity_id for entity in scored_entities)
    features = tuple(scored.feature for scored in scored_features)
    values = np.zeros((len(entities), len(features)), dtype=float)
    for row, entity_id in enumerate(entities):
        for column, scored in enumerate(scored_features):
            probability = probability_model.probability(scored.feature, entity_id)
            values[row, column] = probability * scored.score
    return CorrelationMatrix(entities=entities, features=features, values=values)
