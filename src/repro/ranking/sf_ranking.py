"""The ranking model of semantic features (§2.3.1).

The relevance of a semantic feature ``pi`` to a query ``Q`` (a set of seed
entities) is the product of its *discriminability* and its *commonality*:

    r(pi, Q) = d(pi) * c(pi, Q)

* discriminability ``d(pi) = 1 / ||E(pi)||`` — an IDF-style weight that
  damps features shared by many entities;
* commonality ``c(pi, Q) = prod_{e in Q} p(pi | e)`` — how consistently the
  seeds hold (or, via type smoothing, are expected to hold) the feature.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from ..config import RankingConfig
from ..exceptions import NoSeedEntitiesError
from ..features import SemanticFeature, SemanticFeatureIndex
from ..kg import KnowledgeGraph
from .probability import FeatureProbabilityModel
from .ranking_support import FrozenMapping, select_top_features


@dataclass(frozen=True)
class ScoredFeature:
    """A ranked semantic feature with its score decomposition."""

    feature: SemanticFeature
    score: float
    discriminability: float
    commonality: float
    seed_probabilities: Mapping[str, float]

    def as_dict(self) -> dict[str, object]:
        return {
            "feature": self.feature.notation(),
            "score": self.score,
            "discriminability": self.discriminability,
            "commonality": self.commonality,
            "seed_probabilities": dict(self.seed_probabilities),
        }


class SemanticFeatureRanker:
    """Ranks the semantic features of a seed set (the y-axis of the matrix)."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        feature_index: SemanticFeatureIndex,
        config: RankingConfig | None = None,
        probability_model: FeatureProbabilityModel | None = None,
    ) -> None:
        self._graph = graph
        self._index = feature_index
        self._config = config or RankingConfig()
        self._probability = probability_model or FeatureProbabilityModel(
            graph,
            feature_index,
            type_smoothing=self._config.type_smoothing,
            epsilon=self._config.epsilon,
        )

    @property
    def probability_model(self) -> FeatureProbabilityModel:
        """The shared ``p(pi|e)`` model (reused by the entity ranker)."""
        return self._probability

    # ------------------------------------------------------------------ #
    # Score components
    # ------------------------------------------------------------------ #
    def discriminability(self, feature: SemanticFeature) -> float:
        """``d(pi) = 1 / ||E(pi)||`` (0 for features matching nothing)."""
        count = self._index.matching_count(feature)
        if count == 0:
            return 0.0
        return 1.0 / count

    def commonality(self, feature: SemanticFeature, seeds: Sequence[str]) -> float:
        """``c(pi, Q) = prod_{e in Q} p(pi | e)``."""
        product = 1.0
        for seed in seeds:
            product *= self._probability.probability(feature, seed)
        return product

    def score_feature(self, feature: SemanticFeature, seeds: Sequence[str]) -> ScoredFeature:
        """Compute the full score decomposition of one feature."""
        if not seeds:
            raise NoSeedEntitiesError("cannot score a feature against an empty seed set")
        seed_probabilities = {
            seed: self._probability.probability(feature, seed) for seed in seeds
        }
        commonality = 1.0
        for probability in seed_probabilities.values():
            commonality *= probability
        discriminability = self.discriminability(feature)
        score = 1.0
        if self._config.use_discriminability:
            score *= discriminability
        if self._config.use_commonality:
            score *= commonality
        if not self._config.use_discriminability and not self._config.use_commonality:
            score = 0.0
        return ScoredFeature(
            feature=feature,
            score=score,
            discriminability=discriminability,
            commonality=commonality,
            # Read-only view: scored features are shared by the engine's
            # recommendation cache, so one caller's in-place edit must not
            # corrupt later cache hits (same protection as the frozen
            # correlation-matrix array).
            seed_probabilities=FrozenMapping(seed_probabilities),
        )

    # ------------------------------------------------------------------ #
    # Ranking
    # ------------------------------------------------------------------ #
    def candidate_features(self, seeds: Sequence[str]) -> list[SemanticFeature]:
        """The feature pool ``Phi(Q)``: features held by at least one seed.

        Features anchored at a seed itself are excluded — recommending
        ``Forrest_Gump:starring`` back to a query seeded with Forrest Gump
        would be circular.
        """
        if not seeds:
            raise NoSeedEntitiesError("cannot derive features from an empty seed set")
        seed_set = set(seeds)
        holders = self._index.features_of_any(seeds)
        features = [feature for feature in holders if feature.anchor not in seed_set]
        features.sort()
        if len(features) > self._config.max_features:
            # Keep the features shared by the most seeds (ties by notation
            # for determinism) so that truncation is stable and meaningful.
            features.sort(key=lambda f: (-len(holders[f]), f.notation()))
            features = features[: self._config.max_features]
            features.sort()
        return features

    def rank(
        self,
        seeds: Sequence[str],
        top_k: int | None = None,
        candidates: Sequence[SemanticFeature] | None = None,
    ) -> list[ScoredFeature]:
        """Rank semantic features for a seed set (accumulator fast path).

        Scores the pool through the shared :class:`RankingSupport` context
        (memoised dominant types and per-(feature, type) base
        probabilities), selects the top-k with a bounded heap, and only
        builds the full :class:`ScoredFeature` decomposition — including the
        per-seed probability map — for the winners.  The arithmetic is the
        same float-for-float as :meth:`rank_exhaustive`, so the returned
        ranking is identical to the seed scoring path by construction.

        Parameters
        ----------
        seeds:
            The example entities of the query ``Q``.
        top_k:
            Number of features to return (defaults to the config value).
        candidates:
            Optional explicit feature pool; by default ``Phi(Q)`` is used.
        """
        pool = self._validated_pool(seeds, candidates)
        top_k = top_k or self._config.top_features
        support = self._probability.support()
        use_discriminability = self._config.use_discriminability
        use_commonality = self._config.use_commonality
        # score_feature multiplies one probability per *distinct* seed (its
        # per-seed map deduplicates); mirror that so scores match bitwise.
        # Seed feature sets and dominant types are resolved once, so the
        # inner loop is a set-membership test plus a memoised base lookup.
        unique_seeds = list(dict.fromkeys(seeds))
        seed_features = [self._index.features_of(seed) for seed in unique_seeds]
        seed_types = [support.dominant_type(seed) for seed in unique_seeds]
        base_probability = support.base_probability
        scored_pairs: list[tuple[SemanticFeature, float]] = []
        for feature in pool:
            score = 1.0
            if use_discriminability:
                score *= self.discriminability(feature)
            if use_commonality:
                commonality = 1.0
                for held, type_id in zip(seed_features, seed_types):
                    probability = 1.0 if feature in held else base_probability(feature, type_id)
                    commonality *= probability
                score *= commonality
            if not use_discriminability and not use_commonality:
                score = 0.0
            scored_pairs.append((feature, score))
        winners = select_top_features(scored_pairs, top_k)
        return [self.score_feature(feature, seeds) for feature, _ in winners]

    def rank_exhaustive(
        self,
        seeds: Sequence[str],
        top_k: int | None = None,
        candidates: Sequence[SemanticFeature] | None = None,
    ) -> list[ScoredFeature]:
        """The seed scoring path: score every pool feature, sort, truncate.

        Kept as the reference implementation the accumulator path is
        verified against (see ``tests/test_ranking_accumulator.py``), the
        same contract the search engine's ``search_exhaustive()`` follows.
        """
        pool = self._validated_pool(seeds, candidates)
        top_k = top_k or self._config.top_features
        scored = [self.score_feature(feature, seeds) for feature in pool]
        scored.sort(key=lambda item: (-item.score, item.feature.notation()))
        return scored[:top_k]

    def _validated_pool(
        self, seeds: Sequence[str], candidates: Sequence[SemanticFeature] | None
    ) -> list[SemanticFeature]:
        if not seeds:
            raise NoSeedEntitiesError("cannot rank features for an empty seed set")
        for seed in seeds:
            self._graph.require_entity(seed)
        return list(candidates) if candidates is not None else self.candidate_features(seeds)
