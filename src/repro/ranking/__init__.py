"""The recommendation engine's ranking models (paper §2.3)."""

from .baselines import (
    BaselineRanker,
    CoOccurrenceRanker,
    JaccardRanker,
    PersonalizedPageRankRanker,
    make_baselines,
)
from .correlation import (
    CorrelationMatrix,
    build_correlation_matrix,
    build_correlation_matrix_exhaustive,
)
from .diversification import DiversifiedEntity, MMRDiversifier, coverage, jaccard
from .entity_ranking import EntityRanker, ScoredEntity
from .probability import FeatureProbabilityModel
from .ranking_support import RankingSupport, select_top_features
from .sf_ranking import ScoredFeature, SemanticFeatureRanker

__all__ = [
    "BaselineRanker",
    "CoOccurrenceRanker",
    "CorrelationMatrix",
    "DiversifiedEntity",
    "EntityRanker",
    "FeatureProbabilityModel",
    "JaccardRanker",
    "MMRDiversifier",
    "PersonalizedPageRankRanker",
    "RankingSupport",
    "ScoredEntity",
    "ScoredFeature",
    "SemanticFeatureRanker",
    "build_correlation_matrix",
    "build_correlation_matrix_exhaustive",
    "select_top_features",
    "coverage",
    "jaccard",
    "make_baselines",
]
