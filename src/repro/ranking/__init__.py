"""The recommendation engine's ranking models (paper §2.3)."""

from .baselines import (
    BaselineRanker,
    CoOccurrenceRanker,
    JaccardRanker,
    PersonalizedPageRankRanker,
    make_baselines,
)
from .correlation import CorrelationMatrix, build_correlation_matrix
from .diversification import DiversifiedEntity, MMRDiversifier, coverage, jaccard
from .entity_ranking import EntityRanker, ScoredEntity
from .probability import FeatureProbabilityModel
from .sf_ranking import ScoredFeature, SemanticFeatureRanker

__all__ = [
    "BaselineRanker",
    "CoOccurrenceRanker",
    "CorrelationMatrix",
    "DiversifiedEntity",
    "EntityRanker",
    "FeatureProbabilityModel",
    "JaccardRanker",
    "MMRDiversifier",
    "PersonalizedPageRankRanker",
    "ScoredEntity",
    "ScoredFeature",
    "SemanticFeatureRanker",
    "build_correlation_matrix",
    "coverage",
    "jaccard",
    "make_baselines",
]
