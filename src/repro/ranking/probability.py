"""The probability ``p(pi | e)`` of an entity holding a semantic feature.

Following §2.3.1 of the paper:

* if ``e |= pi`` the probability is 1;
* otherwise the model falls back to the type-conditional estimate
  ``p(pi | c*) = ||E(pi) ∩ E(c*)|| / ||E(c*)||`` where ``c*`` is the
  dominant (most specific) type of ``e``.

This fallback is what the paper calls handling entities "in an
error-tolerant manner": a seed film that happens to miss a ``starring``
edge still contributes a non-zero probability for the feature as long as
films in general tend to hold it.
"""

from __future__ import annotations

from ..features import SemanticFeature, SemanticFeatureIndex
from ..kg import KnowledgeGraph
from .ranking_support import RankingSupport


class FeatureProbabilityModel:
    """Computes ``p(pi | e)`` with optional type-based smoothing."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        feature_index: SemanticFeatureIndex,
        type_smoothing: bool = True,
        epsilon: float = 1e-9,
    ) -> None:
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must lie in (0, 1)")
        self._graph = graph
        self._index = feature_index
        self._type_smoothing = type_smoothing
        self._epsilon = epsilon
        # Cache of type-conditional probabilities keyed by (feature, type).
        # Deliberately kept besides the index's count memo and the scoring
        # context's base memo: this one serves the exhaustive reference
        # path, which must stay faithful to the seed implementation (the
        # A/B baseline) instead of routing through RankingSupport.  All
        # three layers invalidate off the same index epoch.
        self._type_cache: dict[tuple[SemanticFeature, str], float] = {}
        self._cache_epoch = feature_index.epoch
        self._support: RankingSupport | None = None

    @property
    def epsilon(self) -> float:
        """Floor probability returned when no evidence supports the feature."""
        return self._epsilon

    def _ensure_current(self) -> None:
        """Drop memoised probabilities when the graph (index epoch) changed."""
        epoch = self._index.epoch
        if epoch != self._cache_epoch:
            self._type_cache.clear()
            self._support = None
            self._cache_epoch = epoch

    def support(self) -> RankingSupport:
        """The shared accumulator scoring context, cached per index epoch.

        Both rankers and the correlation-matrix builder score through this
        object; it is rebuilt (dropping its memoised dominant types and
        base probabilities) whenever the underlying graph mutates.
        """
        self._ensure_current()
        if self._support is None:
            self._support = RankingSupport(
                self._graph,
                self._index,
                type_smoothing=self._type_smoothing,
                epsilon=self._epsilon,
            )
        return self._support

    def type_conditional(self, feature: SemanticFeature, type_id: str) -> float:
        """``p(pi | c) = ||E(pi) ∩ E(c)|| / ||E(c)||`` for a type ``c``."""
        if not type_id:
            return 0.0
        self._ensure_current()
        key = (feature, type_id)
        cached = self._type_cache.get(key)
        if cached is not None:
            return cached
        intersection, population = self._index.type_conditional_count(feature, type_id)
        probability = intersection / population if population else 0.0
        self._type_cache[key] = probability
        return probability

    def probability(self, feature: SemanticFeature, entity_id: str) -> float:
        """``p(pi | e)`` as defined in §2.3.1."""
        if self._index.holds(entity_id, feature):
            return 1.0
        if not self._type_smoothing:
            return self._epsilon
        dominant_type = self._graph.dominant_type(entity_id)
        smoothed = self.type_conditional(feature, dominant_type)
        return max(smoothed, self._epsilon)

    def probability_with_explanation(
        self, feature: SemanticFeature, entity_id: str
    ) -> tuple[float, str]:
        """``p(pi | e)`` plus a short description of how it was obtained.

        The explanation string is surfaced in the UI's explanation area to
        justify why an entity that does not hold a feature still correlates
        with it.
        """
        if self._index.holds(entity_id, feature):
            return 1.0, "direct: entity holds the feature"
        if not self._type_smoothing:
            return self._epsilon, "no evidence (type smoothing disabled)"
        dominant_type = self._graph.dominant_type(entity_id)
        if not dominant_type:
            return self._epsilon, "no evidence (entity has no type)"
        smoothed = self.type_conditional(feature, dominant_type)
        if smoothed <= 0.0:
            return self._epsilon, f"no instances of {dominant_type} hold the feature"
        return (
            max(smoothed, self._epsilon),
            f"type-smoothed via {dominant_type}: p(pi|c*)={smoothed:.4f}",
        )

    def clear_cache(self) -> None:
        """Drop all memoised probability state: the type-conditional memo
        and the scoring context (with its dominant-type and base memos)."""
        self._type_cache.clear()
        self._support = None
