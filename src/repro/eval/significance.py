"""Statistical significance testing for method comparisons.

The quality experiments compare per-task metric vectors of two methods
(e.g. PivotE vs. Jaccard MAP over the same tasks).  This module provides the
two standard paired tests used in IR evaluation:

* the **paired randomization (permutation) test** — the sign of each
  per-task difference is flipped at random; the p-value is the fraction of
  permutations whose mean absolute difference reaches the observed one;
* the **paired bootstrap test** — tasks are resampled with replacement; the
  p-value estimates how often the mean difference falls at or below zero.

Both are deterministic given the seed and need no scipy; results are
reported by the E6 quality bench alongside the raw metric table.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from ..exceptions import EvaluationError


@dataclass(frozen=True)
class SignificanceResult:
    """Outcome of one paired significance test."""

    method: str
    mean_difference: float
    p_value: float
    iterations: int
    significant_at_05: bool

    def describe(self) -> str:
        marker = "significant" if self.significant_at_05 else "not significant"
        return (
            f"{self.method}: mean diff = {self.mean_difference:+.4f}, "
            f"p = {self.p_value:.4f} ({marker} at 0.05, {self.iterations} iterations)"
        )


def _check_paired(first: Sequence[float], second: Sequence[float]) -> None:
    if len(first) != len(second):
        raise EvaluationError("paired tests need equally long score vectors")
    if not first:
        raise EvaluationError("paired tests need at least one task")


def mean_difference(first: Sequence[float], second: Sequence[float]) -> float:
    """Mean of the per-task differences ``first[i] - second[i]``."""
    _check_paired(first, second)
    return sum(a - b for a, b in zip(first, second)) / len(first)


def paired_randomization_test(
    first: Sequence[float],
    second: Sequence[float],
    iterations: int = 10000,
    seed: int = 97,
) -> SignificanceResult:
    """Two-sided paired randomization (permutation) test."""
    _check_paired(first, second)
    if iterations <= 0:
        raise EvaluationError("iterations must be positive")
    rng = random.Random(seed)
    differences = [a - b for a, b in zip(first, second)]
    observed = abs(sum(differences) / len(differences))
    at_least_as_extreme = 0
    for _ in range(iterations):
        total = 0.0
        for difference in differences:
            total += difference if rng.random() < 0.5 else -difference
        if abs(total / len(differences)) >= observed - 1e-12:
            at_least_as_extreme += 1
    p_value = at_least_as_extreme / iterations
    return SignificanceResult(
        method="paired-randomization",
        mean_difference=sum(differences) / len(differences),
        p_value=p_value,
        iterations=iterations,
        significant_at_05=p_value < 0.05,
    )


def paired_bootstrap_test(
    first: Sequence[float],
    second: Sequence[float],
    iterations: int = 10000,
    seed: int = 83,
) -> SignificanceResult:
    """One-sided paired bootstrap test of ``mean(first) > mean(second)``."""
    _check_paired(first, second)
    if iterations <= 0:
        raise EvaluationError("iterations must be positive")
    rng = random.Random(seed)
    differences = [a - b for a, b in zip(first, second)]
    count_non_positive = 0
    size = len(differences)
    for _ in range(iterations):
        resampled = [differences[rng.randrange(size)] for _ in range(size)]
        if sum(resampled) / size <= 0.0:
            count_non_positive += 1
    p_value = count_non_positive / iterations
    return SignificanceResult(
        method="paired-bootstrap",
        mean_difference=sum(differences) / size,
        p_value=p_value,
        iterations=iterations,
        significant_at_05=p_value < 0.05,
    )
