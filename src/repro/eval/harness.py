"""Quality-evaluation harnesses.

Two harnesses cover the quantitative experiments:

* :class:`ExpansionEvaluator` — compare the PivotE ranking model against the
  baselines on entity-set-expansion tasks (experiment E6);
* :class:`SearchEvaluator` — compare the five-field MLM retrieval against
  single-field LM and BM25F on keyword-search tasks (experiment E7).

Both return per-method aggregated metrics that the benchmark harness prints
as the rows of the corresponding experiment table.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from ..datasets import ExpansionTask, SearchTask
from ..expansion import EntitySetExpander
from ..kg import KnowledgeGraph
from ..ranking import make_baselines
from ..search import SearchEngine, parse_query
from .metrics import aggregate_metrics, evaluate_ranking

#: A ranking method: takes seeds, returns ranked entity identifiers.
ExpansionMethod = Callable[[Sequence[str], int], list[str]]
#: A search method: takes a query string, returns ranked entity identifiers.
SearchMethod = Callable[[str, int], list[str]]


@dataclass
class MethodResult:
    """Aggregated metrics of one method over a workload."""

    method: str
    metrics: dict[str, float]
    per_task: list[dict[str, float]] = field(default_factory=list)

    def metric(self, name: str) -> float:
        return self.metrics.get(name, 0.0)


class ExpansionEvaluator:
    """Evaluate entity-set-expansion methods on a task workload."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        expander: EntitySetExpander | None = None,
        top_k: int = 20,
    ) -> None:
        self._graph = graph
        self._expander = expander or EntitySetExpander(graph)
        self._top_k = top_k

    @property
    def expander(self) -> EntitySetExpander:
        return self._expander

    def methods(self) -> dict[str, ExpansionMethod]:
        """The method registry: PivotE plus the three baselines."""
        baselines = make_baselines(self._graph, self._expander.feature_index)

        def pivote_method(seeds: Sequence[str], top_k: int) -> list[str]:
            result = self._expander.expand(seeds, top_k=top_k)
            return result.entity_ids()

        registry: dict[str, ExpansionMethod] = {"pivote": pivote_method}
        for name, ranker in baselines.items():
            registry[name] = lambda seeds, top_k, _ranker=ranker: [
                entity for entity, _ in _ranker.rank(seeds, top_k=top_k)
            ]
        return registry

    def evaluate_method(
        self, method: ExpansionMethod, tasks: Sequence[ExpansionTask], name: str = "method"
    ) -> MethodResult:
        """Run one method over all tasks and aggregate the metrics."""
        per_task: list[dict[str, float]] = []
        for task in tasks:
            ranked = method(task.seeds, self._top_k)
            per_task.append(evaluate_ranking(ranked, task.relevant))
        return MethodResult(method=name, metrics=aggregate_metrics(per_task), per_task=per_task)

    def compare(self, tasks: Sequence[ExpansionTask]) -> dict[str, MethodResult]:
        """Evaluate every registered method on the workload."""
        results: dict[str, MethodResult] = {}
        for name, method in self.methods().items():
            results[name] = self.evaluate_method(method, tasks, name=name)
        return results


class SearchEvaluator:
    """Evaluate keyword entity-search methods on a task workload."""

    def __init__(self, engine: SearchEngine, top_k: int = 20) -> None:
        self._engine = engine
        self._top_k = top_k

    def methods(self) -> dict[str, SearchMethod]:
        """MLM five-field model, names-only LM and BM25F."""
        engine = self._engine

        def mlm(query: str, top_k: int) -> list[str]:
            return [hit.entity_id for hit in engine.search(query, top_k=top_k)]

        def names_lm(query: str, top_k: int) -> list[str]:
            scorer = engine.single_field_scorer("names")
            return [doc.doc_id for doc in scorer.search(parse_query(query), top_k=top_k)]

        def bm25f(query: str, top_k: int) -> list[str]:
            scorer = engine.bm25f_scorer()
            return [doc.doc_id for doc in scorer.search(parse_query(query), top_k=top_k)]

        return {"mlm-5field": mlm, "lm-names-only": names_lm, "bm25f": bm25f}

    def evaluate_method(
        self, method: SearchMethod, tasks: Sequence[SearchTask], name: str = "method"
    ) -> MethodResult:
        per_task: list[dict[str, float]] = []
        for task in tasks:
            ranked = method(task.query, self._top_k)
            per_task.append(evaluate_ranking(ranked, task.relevant))
        return MethodResult(method=name, metrics=aggregate_metrics(per_task), per_task=per_task)

    def compare(self, tasks: Sequence[SearchTask]) -> dict[str, MethodResult]:
        results: dict[str, MethodResult] = {}
        for name, method in self.methods().items():
            results[name] = self.evaluate_method(method, tasks, name=name)
        return results
