"""Ranking-quality metrics.

Standard IR metrics over ranked entity lists against a relevant set:
precision@k, recall@k, average precision (and MAP over tasks), reciprocal
rank (and MRR), NDCG@k and R-precision.  All functions accept the ranked
list as a sequence of entity identifiers and the relevant set as any
iterable of identifiers.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence


def _relevant_set(relevant: Iterable[str]) -> set[str]:
    result = set(relevant)
    if not result:
        raise ValueError("the relevant set must not be empty")
    return result


def precision_at_k(ranked: Sequence[str], relevant: Iterable[str], k: int) -> float:
    """Fraction of the top-``k`` results that are relevant."""
    if k <= 0:
        raise ValueError("k must be positive")
    relevant_set = _relevant_set(relevant)
    top = ranked[:k]
    if not top:
        return 0.0
    hits = sum(1 for entity in top if entity in relevant_set)
    return hits / k


def recall_at_k(ranked: Sequence[str], relevant: Iterable[str], k: int) -> float:
    """Fraction of relevant entities found in the top-``k`` results."""
    if k <= 0:
        raise ValueError("k must be positive")
    relevant_set = _relevant_set(relevant)
    hits = sum(1 for entity in ranked[:k] if entity in relevant_set)
    return hits / len(relevant_set)


def r_precision(ranked: Sequence[str], relevant: Iterable[str]) -> float:
    """Precision at the number of relevant entities."""
    relevant_set = _relevant_set(relevant)
    return precision_at_k(ranked, relevant_set, len(relevant_set))


def average_precision(ranked: Sequence[str], relevant: Iterable[str]) -> float:
    """Average precision of one ranking."""
    relevant_set = _relevant_set(relevant)
    hits = 0
    precision_sum = 0.0
    for index, entity in enumerate(ranked, start=1):
        if entity in relevant_set:
            hits += 1
            precision_sum += hits / index
    return precision_sum / len(relevant_set)


def reciprocal_rank(ranked: Sequence[str], relevant: Iterable[str]) -> float:
    """Reciprocal of the rank of the first relevant result (0 when absent)."""
    relevant_set = _relevant_set(relevant)
    for index, entity in enumerate(ranked, start=1):
        if entity in relevant_set:
            return 1.0 / index
    return 0.0


def dcg_at_k(gains: Sequence[float], k: int) -> float:
    """Discounted cumulative gain of a gain vector."""
    if k <= 0:
        raise ValueError("k must be positive")
    return sum(gain / math.log2(position + 1) for position, gain in enumerate(gains[:k], start=1))


def ndcg_at_k(ranked: Sequence[str], relevant: Iterable[str], k: int) -> float:
    """Normalised DCG@k with binary gains."""
    relevant_set = _relevant_set(relevant)
    gains = [1.0 if entity in relevant_set else 0.0 for entity in ranked]
    ideal = [1.0] * min(len(relevant_set), k)
    ideal_dcg = dcg_at_k(ideal, k)
    if ideal_dcg == 0.0:
        return 0.0
    return dcg_at_k(gains, k) / ideal_dcg


def mean_of(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def mean_average_precision(rankings: Sequence[Sequence[str]], relevants: Sequence[Iterable[str]]) -> float:
    """MAP over a set of tasks."""
    if len(rankings) != len(relevants):
        raise ValueError("rankings and relevants must have the same length")
    return mean_of([average_precision(r, rel) for r, rel in zip(rankings, relevants)])


def mean_reciprocal_rank(rankings: Sequence[Sequence[str]], relevants: Sequence[Iterable[str]]) -> float:
    """MRR over a set of tasks."""
    if len(rankings) != len(relevants):
        raise ValueError("rankings and relevants must have the same length")
    return mean_of([reciprocal_rank(r, rel) for r, rel in zip(rankings, relevants)])


def evaluate_ranking(
    ranked: Sequence[str], relevant: Iterable[str], ks: Sequence[int] = (1, 5, 10, 20)
) -> dict[str, float]:
    """All metrics of one ranking in a flat dictionary."""
    relevant_set = _relevant_set(relevant)
    result: dict[str, float] = {
        "ap": average_precision(ranked, relevant_set),
        "rr": reciprocal_rank(ranked, relevant_set),
        "r_precision": r_precision(ranked, relevant_set),
    }
    for k in ks:
        result[f"p@{k}"] = precision_at_k(ranked, relevant_set, k)
        result[f"recall@{k}"] = recall_at_k(ranked, relevant_set, k)
        result[f"ndcg@{k}"] = ndcg_at_k(ranked, relevant_set, k)
    return result


def aggregate_metrics(per_task: Sequence[Mapping[str, float]]) -> dict[str, float]:
    """Average per-task metric dictionaries key-wise."""
    if not per_task:
        return {}
    keys = set()
    for metrics in per_task:
        keys.update(metrics)
    return {key: mean_of([metrics.get(key, 0.0) for metrics in per_task]) for key in sorted(keys)}
