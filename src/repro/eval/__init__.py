"""Evaluation harness: metrics, quality comparisons, latency, reporting."""

from .harness import ExpansionEvaluator, MethodResult, SearchEvaluator
from .latency import LatencyStats, Stopwatch
from .metrics import (
    aggregate_metrics,
    average_precision,
    dcg_at_k,
    evaluate_ranking,
    mean_average_precision,
    mean_of,
    mean_reciprocal_rank,
    ndcg_at_k,
    precision_at_k,
    r_precision,
    recall_at_k,
    reciprocal_rank,
)
from .report import (
    format_table,
    method_comparison_rows,
    print_experiment,
    write_report_json,
)
from .significance import (
    SignificanceResult,
    mean_difference,
    paired_bootstrap_test,
    paired_randomization_test,
)

__all__ = [
    "ExpansionEvaluator",
    "LatencyStats",
    "MethodResult",
    "SearchEvaluator",
    "SignificanceResult",
    "Stopwatch",
    "aggregate_metrics",
    "average_precision",
    "dcg_at_k",
    "evaluate_ranking",
    "format_table",
    "mean_average_precision",
    "mean_difference",
    "mean_of",
    "mean_reciprocal_rank",
    "method_comparison_rows",
    "ndcg_at_k",
    "paired_bootstrap_test",
    "paired_randomization_test",
    "precision_at_k",
    "print_experiment",
    "r_precision",
    "recall_at_k",
    "reciprocal_rank",
    "write_report_json",
]
