"""Textual reporting of experiment results.

The benchmark harness prints each experiment as rows comparable to the
paper's artefacts.  This module renders the tables: fixed-width text tables
from per-method metric dictionaries or arbitrary row dictionaries, and a
small helper to dump the same data as JSON next to the printed output.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from pathlib import Path

_PathLike = str | Path


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    float_format: str = "{:.4f}",
) -> str:
    """Render dictionaries as a fixed-width text table.

    Column order follows ``columns`` when given, otherwise the keys of the
    first row.  Floats are formatted with ``float_format``; everything else
    with ``str``.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[index]) for index, column in enumerate(columns))
    separator = "  ".join("-" * widths[index] for index in range(len(columns)))
    body = [
        "  ".join(line[index].ljust(widths[index]) for index in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


def method_comparison_rows(
    results: Mapping[str, Mapping[str, float]],
    metrics: Sequence[str] = ("ap", "p@5", "p@10", "recall@20", "ndcg@10"),
) -> list[dict[str, object]]:
    """Turn ``method -> metrics`` mappings into table rows."""
    rows: list[dict[str, object]] = []
    for method, values in results.items():
        row: dict[str, object] = {"method": method}
        for metric in metrics:
            row[metric] = float(values.get(metric, 0.0))
        rows.append(row)
    rows.sort(key=lambda row: -float(row.get(metrics[0], 0.0)))
    return rows


def print_experiment(
    title: str,
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    notes: str = "",
) -> str:
    """Print an experiment table with a title banner; return the text."""
    banner = "=" * max(len(title), 8)
    parts = [banner, title, banner, format_table(rows, columns=columns)]
    if notes:
        parts.append(notes)
    text = "\n".join(parts)
    print(text)
    return text


def write_report_json(payload: Mapping[str, object], path: _PathLike) -> Path:
    """Dump an experiment payload as JSON (for EXPERIMENTS.md bookkeeping)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    return path
