"""Latency measurement utilities.

The demo claims interactive ("on the fly") response; experiment E8 measures
how the recommendation latency scales with graph size and seed count.  The
timer is a tiny wall-clock stopwatch that collects repeated measurements
and reports robust summary statistics.
"""

from __future__ import annotations

import statistics
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class LatencyStats:
    """Summary statistics of repeated latency samples, in seconds."""

    label: str
    samples: list[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("a latency sample cannot be negative")
        self.samples.append(seconds)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples) if self.samples else 0.0

    @property
    def median(self) -> float:
        return statistics.median(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0 < q < 100) of the samples."""
        if not 0 < q < 100:
            raise ValueError("q must lie strictly between 0 and 100")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        index = (len(ordered) - 1) * q / 100.0
        lower = int(index)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = index - lower
        return ordered[lower] * (1 - fraction) + ordered[upper] * fraction

    def as_dict(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "mean_ms": self.mean * 1000.0,
            "median_ms": self.median * 1000.0,
            "p95_ms": self.percentile(95) * 1000.0 if self.samples else 0.0,
            "min_ms": self.minimum * 1000.0,
            "max_ms": self.maximum * 1000.0,
        }


class Stopwatch:
    """Collects named latency measurements."""

    def __init__(self) -> None:
        self._stats: dict[str, LatencyStats] = {}

    def stats(self, label: str) -> LatencyStats:
        if label not in self._stats:
            self._stats[label] = LatencyStats(label=label)
        return self._stats[label]

    @contextmanager
    def measure(self, label: str) -> Iterator[None]:
        """Time one block of code under ``label``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.stats(label).add(time.perf_counter() - start)

    def time_callable(self, label: str, fn: Callable[[], object], repeats: int = 1) -> LatencyStats:
        """Time a callable ``repeats`` times."""
        if repeats <= 0:
            raise ValueError("repeats must be positive")
        for _ in range(repeats):
            with self.measure(label):
                fn()
        return self.stats(label)

    def report(self) -> dict[str, dict[str, float]]:
        """All collected statistics as a plain dictionary."""
        return {label: stats.as_dict() for label, stats in sorted(self._stats.items())}

    def labels(self) -> list[str]:
        return sorted(self._stats)
