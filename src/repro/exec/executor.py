"""The shard worker pool and the per-shard counter merge.

One process-wide :class:`ShardExecutor` serves every engine: shard 0 of a
query always runs inline on the calling thread (a 1-shard query therefore
never touches the pool), the remaining shards are dispatched to a small
``ThreadPoolExecutor``.  Worker threads are daemonic and lazily created;
the pool is sized to the machine, not the shard count — a 16-shard query
on a 4-core box queues its tail shards, which is exactly the shared-
nothing behaviour a partitioned engine wants under load.

The executor is *platform-aware* (``mode="auto"``, the default): the
traversals the workers run are pure Python, so on a GIL-bound interpreter
— or a single-core box — pool threads cannot overlap any work and only
add dispatch and convoy overhead.  There the tasks run inline on the
calling thread in shard order, which propagates the cross-shard θ
broadcast *perfectly* (every later shard starts with all earlier shards'
offers).  On a free-threaded multi-core build the pool genuinely
parallelises the shards.  Either way the fan-out/merge structure, the θ
broadcast and the byte-identical merge contract (see :mod:`repro.exec`)
are the same — ``mode`` only decides where the workers run.
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
from collections.abc import Callable, Iterable, Mapping, Sequence
from concurrent.futures import ThreadPoolExecutor
from typing import TypeVar

from ..topk import PruningStats

T = TypeVar("T")

#: Upper bound on pool threads: beyond this the workers only add
#: scheduling overhead, and shard counts are expected to be small.
_MAX_WORKERS = 8

#: Recognised executor modes: ``"auto"`` pools only when threads can
#: overlap work, ``"threads"`` always pools, ``"inline"`` never does.
EXECUTOR_MODES = ("auto", "threads", "inline")

#: Config-level executor choices (``SearchConfig.executor`` /
#: ``RankingConfig.executor`` / CLI ``--executor``): ``"process"`` adds
#: the multiprocess tier of :mod:`repro.exec.procpool`, ``"thread"``
#: forces the thread pool, ``"inline"`` forces serial execution and
#: ``"auto"`` (the default) keeps the platform-aware behaviour.
EXECUTOR_CHOICES = ("auto", "inline", "thread", "process")


def threads_can_parallelise() -> bool:
    """Whether pool threads can actually overlap the shard traversals.

    Pure-Python workers need both more than one core and a free-threaded
    interpreter (PEP 703, ``python3.13t``+) to run concurrently; under
    the GIL the pool would merely interleave them with extra switches.
    """
    if (os.cpu_count() or 1) <= 1:
        return False
    gil_enabled = getattr(sys, "_is_gil_enabled", None)
    return gil_enabled is not None and not gil_enabled()


class ShardExecutor:
    """Runs one task per shard, first shard inline, the rest pooled."""

    is_process = False

    def __init__(self, max_workers: int | None = None, mode: str = "auto") -> None:
        if max_workers is None:
            max_workers = min(_MAX_WORKERS, os.cpu_count() or 1)
        if max_workers < 1:
            raise ValueError("max_workers must be positive")
        if mode not in EXECUTOR_MODES:
            raise ValueError(f"unknown executor mode: {mode!r}")
        self._max_workers = max_workers
        self._mode = mode
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self.tasks_dispatched = 0
        self.tasks_inlined = 0

    @property
    def max_workers(self) -> int:
        return self._max_workers

    @property
    def mode(self) -> str:
        return self._mode

    def effective_mode(self) -> str:
        """Where tasks actually run under the current platform."""
        return "thread" if self._use_pool() else "inline"

    def _use_pool(self) -> bool:
        if self._mode == "threads":
            return True
        if self._mode == "inline":
            return False
        return threads_can_parallelise()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        pool = self._pool
        if pool is None:
            with self._lock:
                pool = self._pool
                if pool is None:
                    pool = ThreadPoolExecutor(
                        max_workers=self._max_workers,
                        thread_name_prefix="repro-shard",
                    )
                    self._pool = pool
        return pool

    def run(self, tasks: Sequence[Callable[[], T]]) -> list[T]:
        """Run every task, returning results in task order.

        The first task runs on the calling thread — the pool only ever
        sees tasks 1..N-1, so the 1-shard (default) configuration is
        byte-for-byte the pre-sharding execution with zero dispatch
        cost.  When the platform cannot overlap the workers (``mode
        "auto"`` on a GIL-bound or single-core interpreter) every task
        runs inline in shard order instead.  Exceptions propagate to the
        caller (the first one raised, after every future completed, so no
        worker leaks a running traversal into the next query).
        """
        if not tasks:
            return []
        if len(tasks) == 1 or not self._use_pool():
            self.tasks_inlined += len(tasks)
            return [task() for task in tasks]
        self.tasks_inlined += 1
        self.tasks_dispatched += len(tasks) - 1
        pool = self._ensure_pool()
        futures = [pool.submit(task) for task in tasks[1:]]
        try:
            first = tasks[0]()
        finally:
            done = [future.exception() for future in futures]
        for error in done:
            if error is not None:
                raise error
        return [first] + [future.result() for future in futures]

    def shutdown(self) -> None:
        """Stop the pool threads (tests; engines never need to call this)."""
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def close(self) -> None:
        """Alias of :meth:`shutdown` (uniform lifecycle with the process pool)."""
        self.shutdown()

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_DEFAULT_EXECUTOR = ShardExecutor()


def default_executor() -> ShardExecutor:
    """The process-wide executor shared by every engine."""
    return _DEFAULT_EXECUTOR


#: Executors resolved from config knobs, shared per (mode, workers) so
#: every engine with the same configuration reuses one warm pool.
_RESOLVED: dict[tuple[str, int], object] = {}
_RESOLVE_LOCK = threading.Lock()


def resolve_executor(mode: str = "auto", workers: int = 0):
    """The executor for a config's ``executor``/``workers`` knobs.

    ``"auto"`` with the default worker count is the process-wide
    platform-aware executor (inline under the GIL, threaded on a
    free-threaded multi-core build — never multiprocess, which stays
    opt-in); explicit modes get a dedicated, memoised executor.  The
    returned object always offers ``run(closures)`` — the multiprocess
    executor degrades closure batches to inline execution and only
    parallelises recipe-based :class:`~repro.exec.procpool.ProcessTask`
    batches via ``run_tasks``.
    """
    if mode not in EXECUTOR_CHOICES:
        raise ValueError(f"unknown executor: {mode!r}")
    if workers < 0:
        raise ValueError("workers must be non-negative")
    if mode == "auto" and workers == 0:
        return default_executor()
    key = (mode, workers)
    with _RESOLVE_LOCK:
        executor = _RESOLVED.get(key)
        if executor is None or getattr(executor, "_closed", False):
            if mode == "process":
                from .procpool import process_executor

                executor = process_executor(workers)
            else:
                thread_mode = {"auto": "auto", "thread": "threads", "inline": "inline"}[mode]
                executor = ShardExecutor(max_workers=workers or None, mode=thread_mode)
            _RESOLVED[key] = executor
        return executor


def shutdown_executors() -> None:
    """Close the default and every resolved executor (tests / exit)."""
    with _RESOLVE_LOCK:
        executors = list(_RESOLVED.values())
        _RESOLVED.clear()
    for executor in executors:
        executor.close()  # type: ignore[attr-defined]
    _DEFAULT_EXECUTOR.close()


atexit.register(shutdown_executors)


def merge_shard_maps(shard_maps: Iterable[Mapping[str, float]]) -> dict[str, float]:
    """Union of per-shard accumulator maps (disjoint by construction).

    The id-space partition guarantees no key appears in two shards, so a
    plain update per map is the whole merge.
    """
    merged: dict[str, float] = {}
    for shard_map in shard_maps:
        merged.update(shard_map)
    return merged


def merge_shard_stats(target: PruningStats, shard_stats: Sequence[PruningStats]) -> None:
    """Fold per-shard traversal counters into a scorer's cumulative stats.

    Each shard worker traverses with its own fresh :class:`PruningStats`
    (the shared object would race), and every driver counts itself as one
    query — so a naive sum would report N queries (and N× nothing else)
    for one logical query.  The merge therefore counts the query once and
    sums everything else: per-shard term passes, candidates, evictions
    and blocks are genuinely distinct units of work, and the candidate
    partition guarantees ``candidates_total`` sums to exactly the serial
    count (no candidate is routed to two shards).  ``rescored`` stays a
    caller-side counter — the merge-and-rescore pass happens after the
    shards are joined, on the union of their survivor selections.
    """
    target.queries += 1
    for stats in shard_stats:
        for name in PruningStats.__slots__:
            if name != "queries":
                setattr(target, name, getattr(target, name) + getattr(stats, name))
