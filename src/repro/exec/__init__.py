"""Sharded, batch-parallel execution layer shared by both pipelines.

PRs 1–4 made a *single* query fast (accumulators → max-score → block-max);
this package makes the system serve *many*: the classic shared-nothing
partitioned execution pattern — partition the document/entity id space
into shards, fan the existing pruned traversal drivers out over a worker
pool, broadcast the live θ between shards so late workers start with the
tightest bound found anywhere, then merge the per-shard survivor heaps
and re-score in exhaustive operation order.  Because the final re-scoring
pass is exactly the serial one, sharded (and batched) rankings stay
byte-identical to the 1-shard path for any shard count — the invariant
every prior PR has held.

Building blocks:

* :func:`~repro.exec.sharding.shard_of` / ``partition_ids`` /
  ``split_frequencies`` — deterministic (CRC-based) id→shard routing and
  the partition helpers the scorers use;
* :class:`~repro.exec.executor.ShardExecutor` — a process-wide thread
  pool running one traversal per shard (shard 0 runs inline on the
  calling thread, so a 1-shard query never pays a dispatch);
* :class:`~repro.topk.SharedThreshold` — the cross-shard θ broadcast
  (lives in :mod:`repro.topk` with the rest of the θ machinery);
* :func:`~repro.exec.executor.merge_shard_stats` — folds per-shard
  :class:`~repro.topk.PruningStats` into a scorer's cumulative counters
  without double-counting the logical query;
* :func:`~repro.exec.batch.dedupe_batch` — the order-preserving
  dedupe behind the engines' ``search_many`` / ``recommend_many`` batch
  APIs.
"""

from .batch import dedupe_batch
from .executor import ShardExecutor, default_executor, merge_shard_maps, merge_shard_stats
from .sharding import partition_candidates, partition_ids, shard_of, split_frequencies

__all__ = [
    "ShardExecutor",
    "dedupe_batch",
    "default_executor",
    "merge_shard_maps",
    "merge_shard_stats",
    "partition_candidates",
    "partition_ids",
    "shard_of",
    "split_frequencies",
]
