"""Sharded, batch-parallel execution layer shared by both pipelines.

PRs 1–4 made a *single* query fast (accumulators → max-score → block-max);
this package makes the system serve *many*: the classic shared-nothing
partitioned execution pattern — partition the document/entity id space
into shards, fan the existing pruned traversal drivers out over a worker
pool, broadcast the live θ between shards so late workers start with the
tightest bound found anywhere, then merge the per-shard survivor heaps
and re-score in exhaustive operation order.  Because the final re-scoring
pass is exactly the serial one, sharded (and batched) rankings stay
byte-identical to the 1-shard path for any shard count — the invariant
every prior PR has held.

Building blocks:

* :func:`~repro.exec.sharding.shard_of` / ``partition_ids`` /
  ``split_frequencies`` — deterministic (CRC-based) id→shard routing and
  the partition helpers the scorers use;
* :class:`~repro.exec.executor.ShardExecutor` — a process-wide thread
  pool running one traversal per shard (shard 0 runs inline on the
  calling thread, so a 1-shard query never pays a dispatch);
* :class:`~repro.topk.SharedThreshold` — the cross-shard θ broadcast
  (lives in :mod:`repro.topk` with the rest of the θ machinery);
* :func:`~repro.exec.executor.merge_shard_stats` — folds per-shard
  :class:`~repro.topk.PruningStats` into a scorer's cumulative counters
  without double-counting the logical query;
* :func:`~repro.exec.batch.dedupe_batch` — the order-preserving
  dedupe behind the engines' ``search_many`` / ``recommend_many`` batch
  APIs.
"""

from .batch import dedupe_batch
from .executor import (
    EXECUTOR_CHOICES,
    ShardExecutor,
    default_executor,
    merge_shard_maps,
    merge_shard_stats,
    resolve_executor,
    shutdown_executors,
)
from .sharding import partition_candidates, partition_ids, shard_of, split_frequencies
from .shm import (
    AttachedSnapshot,
    PublishedSnapshot,
    SnapshotSource,
    SnapshotUnavailable,
    ThetaSlab,
    publish_feature_tables,
    publish_graph_topology,
    publish_snapshot,
    release_snapshots,
    snapshot_registry,
)

# Imported last: its transitive imports (topk kernels, columnar index)
# re-enter this partially-initialised package for the names above.
from .procpool import (  # noqa: E402  isort: skip
    ProcessShardExecutor,
    ProcessTask,
    shard_stats_from,
    shutdown_process_executors,
)


def executor_stats(mode: str, workers: int):
    """One engine's :class:`~repro.stats.ExecutorStats` record.

    Resolves the engine's configured executor (creating it lazily is
    cheap — pools spawn on first dispatch, not construction) and pairs
    its dispatch counters with the process-wide snapshot registry's
    publish counters.
    """
    from ..stats import ExecutorStats

    executor = resolve_executor(mode, workers)
    registry = snapshot_registry()
    return ExecutorStats(
        mode=mode,
        effective=executor.effective_mode(),
        workers=executor.max_workers,
        tasks_dispatched=executor.tasks_dispatched,
        tasks_inlined=executor.tasks_inlined,
        snapshots_published=registry.publishes,
        snapshot_bytes=registry.published_bytes,
        snapshot_attaches=getattr(executor, "snapshot_attaches", 0),
        snapshots_active=registry.active(),
    )


__all__ = [
    "EXECUTOR_CHOICES",
    "AttachedSnapshot",
    "ProcessShardExecutor",
    "ProcessTask",
    "PublishedSnapshot",
    "ShardExecutor",
    "SnapshotSource",
    "SnapshotUnavailable",
    "ThetaSlab",
    "dedupe_batch",
    "default_executor",
    "executor_stats",
    "merge_shard_maps",
    "merge_shard_stats",
    "partition_candidates",
    "partition_ids",
    "publish_feature_tables",
    "publish_graph_topology",
    "publish_snapshot",
    "release_snapshots",
    "resolve_executor",
    "shard_of",
    "shard_stats_from",
    "shutdown_executors",
    "shutdown_process_executors",
    "snapshot_registry",
    "split_frequencies",
]
