"""Order-preserving dedupe behind the engines' batch APIs.

``search_many`` / ``recommend_many`` amortise work across a query batch
two ways: the per-epoch memoisation (statistics, bounds, supports) warms
on the first query and serves the rest, and *identical* queries inside
one batch are computed once.  This helper implements the second part
generically: canonicalise each request to a key, compute every distinct
key once (in first-appearance order, so θ-priming and memo warm-up see
the same sequence a serial caller would), and fan the shared results back
out to the original positions.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Sequence
from typing import TypeVar

R = TypeVar("R")
Q = TypeVar("Q")


def dedupe_batch(
    requests: Sequence[Q],
    key_of: Callable[[Q], Hashable],
    compute: Callable[[Q], R],
) -> list[R]:
    """Compute one result per distinct key, shared across duplicates.

    Results are the *same object* for duplicate requests — callers caching
    them must hand out immutable payloads, the same contract the LRU
    result caches already impose.
    """
    results: dict[Hashable, R] = {}
    order: list[Hashable] = []
    for request in requests:
        key = key_of(request)
        if key not in results:
            results[key] = compute(request)
        order.append(key)
    return [results[key] for key in order]
