"""Deterministic id→shard routing for the partitioned execution layer.

Shard assignment must be stable across runs and processes (``hash(str)``
is salted per interpreter), independent of insertion order, and uniform
enough that the per-shard candidate pools stay balanced; CRC-32 of the
UTF-8 identifier satisfies all three and runs in C.  The sharded index
facades (:class:`~repro.index.sharded.ShardedFieldedIndex`,
:class:`~repro.features.sharded.ShardedSemanticFeatureIndex`) maintain
incremental id→shard maps on top of :func:`shard_of` so query-time
partitioning is a dictionary lookup, not a hash per candidate.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from zlib import crc32


def shard_of(identifier: str, num_shards: int) -> int:
    """The shard an identifier routes to (deterministic, 0-based)."""
    if num_shards <= 1:
        return 0
    return crc32(identifier.encode("utf-8")) % num_shards


def partition_ids(
    identifiers: Iterable[str],
    num_shards: int,
    router: Callable[[str], int] | None = None,
) -> list[list[str]]:
    """Partition identifiers into per-shard buckets.

    ``router`` overrides the CRC routing — the sharded index facades pass
    their memoised id→shard lookup here.  Every bucket is returned even
    when empty, so callers can zip buckets with per-shard workers.
    """
    if num_shards <= 1:
        return [list(identifiers)]
    buckets: list[list[str]] = [[] for _ in range(num_shards)]
    if router is None:
        for identifier in identifiers:
            buckets[crc32(identifier.encode("utf-8")) % num_shards].append(identifier)
    else:
        for identifier in identifiers:
            buckets[router(identifier)].append(identifier)
    return buckets


def partition_candidates(
    index: object,
    candidates: Iterable[str],
    num_shards: int,
) -> list[list[str]]:
    """Partition candidates, preferring the index's own routing map.

    A sharded index facade routes in O(1) per candidate from its
    incremental id→shard map; any other index falls back to CRC routing,
    which assigns the same shards (the facades route by the same CRC), so
    scorers behave identically whether or not the engine handed them a
    sharded index instance.
    """
    method = getattr(index, "partition_candidates", None)
    if method is not None and getattr(index, "num_shards", None) == num_shards:
        return method(candidates)
    return partition_ids(candidates, num_shards)


def split_frequencies(
    frequencies: Mapping[str, int],
    num_shards: int,
    router: Callable[[str], int] | None = None,
) -> list[dict[str, int]]:
    """Split one ``doc_id -> tf`` postings map into per-shard sub-maps.

    One pass over the postings, so sharding a sparse (BM25-family)
    traversal costs O(postings) once per (term, epoch) — the scorers
    memoise the result on :class:`~repro.index.statistics.CollectionStatistics`
    next to the term's contribution bounds.
    """
    if num_shards <= 1:
        return [dict(frequencies)]
    shards: list[dict[str, int]] = [{} for _ in range(num_shards)]
    if router is None:
        for doc_id, tf in frequencies.items():
            shards[crc32(doc_id.encode("utf-8")) % num_shards][doc_id] = tf
    else:
        for doc_id, tf in frequencies.items():
            shards[router(doc_id)][doc_id] = tf
    return shards
