"""The persistent multiprocess shard worker pool.

``executor="process"`` fans the columnar pruned traversals out over a
small pool of warm, spawn-started worker processes.  The parent never
ships posting data: each task payload carries only a snapshot descriptor
(name/uid/epoch of a shared-memory segment published by
:mod:`repro.exec.shm`), a θ-slab descriptor, the shard assignment and a
compact per-term *recipe* — the picklable scalars (idf weights, bounds,
smoothing masses, normaliser constants) from which the worker rebuilds
the exact contribution columns against its zero-copy snapshot views.
Rebuilt columns are memoised per attached snapshot, so a warm worker
serves a query stream against one epoch with the same amortisation as
the parent's per-epoch view memo.

The recommendation ranker rides the same pool: a ``"rank"`` payload
names a feature-table snapshot (:func:`repro.exec.shm.publish_feature_tables`)
and carries the query recipe — feature-key triples, relevance scores,
the shard's candidate ordinals and the smoothing knobs — from which the
worker assembles the exact :func:`~repro.topk.columnar_rank` inputs
against the zero-copy tables (intersection columns memoised per
attached snapshot, like the search side's contribution columns).

Dispatch contract (mirrors :class:`~repro.exec.executor.ShardExecutor`):
the first task of every query runs inline on the calling thread via its
``fallback`` closure — the parent is shard 0's worker and participates
in the θ broadcast through its own slab slot — and the remaining tasks
go to per-worker task queues.  Any failure (dead worker, stale snapshot,
pickling surprise) degrades that task to its inline fallback: the
process tier can only ever *add* parallelism, never lose a query.
Results are tagged with a per-query run id so a straggler from an
abandoned run can never leak into the next query's merge.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import queue as queue_module
import threading
import time
from collections import OrderedDict
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from ..topk import PruningStats, SparseKernelTerm, columnar_dense, columnar_rank, columnar_sparse
from .shm import AttachedSnapshot, SnapshotUnavailable, ThetaSlab

#: Upper bound on worker processes (same rationale as the thread pool).
_MAX_WORKERS = 8

#: Wall-clock budget for one query's remote results before the parent
#: reclaims the stragglers via their inline fallbacks.
_RESULT_TIMEOUT = 60.0

#: Attached snapshots a worker keeps warm (older epochs age out).
_ATTACH_CACHE = 4


class ProcessTask:
    """One shard's unit of work: a picklable payload + an inline fallback."""

    __slots__ = ("payload", "fallback")

    def __init__(self, payload: dict[str, Any], fallback: Callable[[], Any]) -> None:
        self.payload = payload
        self.fallback = fallback


class _Worker:
    """A spawned worker process and its private task queue."""

    __slots__ = ("process", "tasks")

    def __init__(self, context, results) -> None:
        self.tasks = context.Queue()
        self.process = context.Process(
            target=_worker_main, args=(self.tasks, results), daemon=True
        )
        self.process.start()

    def stop(self) -> None:
        try:
            self.tasks.put_nowait(None)
        except Exception:  # noqa: BLE001 - queue already broken
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=1.0)
        self.tasks.cancel_join_thread()
        self.tasks.close()


class ProcessShardExecutor:
    """Dispatches :class:`ProcessTask` batches to warm worker processes.

    One query at a time (a dispatch lock serialises concurrent engine
    threads — the pool is a process-wide singleton like the thread
    executor); workers are spawned lazily on first use and respawned on
    death, with the dead worker's tasks reclaimed via their fallbacks.
    """

    is_process = True

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is None:
            max_workers = min(_MAX_WORKERS, os.cpu_count() or 1)
        if max_workers < 1:
            raise ValueError("max_workers must be positive")
        self._max_workers = max_workers
        self._context = mp.get_context("spawn")
        self._workers: list[_Worker] = []
        self._results = None
        self._lock = threading.Lock()
        self._run_seq = 0
        self._closed = False
        self.tasks_dispatched = 0
        self.tasks_inlined = 0
        self.tasks_recovered = 0
        self.workers_respawned = 0
        self.snapshot_attaches = 0

    @property
    def max_workers(self) -> int:
        return self._max_workers

    @property
    def mode(self) -> str:
        return "process"

    def effective_mode(self) -> str:
        return "process"

    def run(self, tasks: Sequence[Callable[[], Any]]) -> list[Any]:
        """Closure batches run inline (the scalar A/B arms need no pool)."""
        self.tasks_inlined += len(tasks)
        return [task() for task in tasks]

    def _ensure_workers(self, wanted: int) -> None:
        if self._results is None:
            self._results = self._context.Queue()
        while len(self._workers) < min(wanted, self._max_workers):
            self._workers.append(_Worker(self._context, self._results))

    def _respawn(self, position: int) -> None:
        dead = self._workers[position]
        try:
            dead.tasks.cancel_join_thread()
            dead.tasks.close()
        except Exception:  # noqa: BLE001
            pass
        self._workers[position] = _Worker(self._context, self._results)
        self.workers_respawned += 1

    def run_tasks(self, tasks: Sequence[ProcessTask]) -> list[Any]:
        """Run every task, first inline, the rest in worker processes.

        Returns results in task order.  Every remote failure — a dead or
        stalled worker, a stale snapshot, an unpicklable result — is
        recovered by running that task's fallback inline, so the call
        returns exactly what the inline executor would have produced.
        """
        if not tasks:
            return []
        with self._lock:
            if self._closed or len(tasks) == 1:
                self.tasks_inlined += len(tasks)
                return [task.fallback() for task in tasks]
            return self._run_locked(tasks)

    def _run_locked(self, tasks: Sequence[ProcessTask]) -> list[Any]:
        self._ensure_workers(len(tasks) - 1)
        self._run_seq += 1
        run_id = self._run_seq
        results: list[Any] = [None] * len(tasks)
        pending: dict[int, int] = {}  # task offset -> worker position
        for offset in range(1, len(tasks)):
            position = (offset - 1) % len(self._workers)
            try:
                self._workers[position].tasks.put((run_id, offset, tasks[offset].payload))
            except Exception:  # noqa: BLE001 - queue broken: degrade inline
                results[offset] = tasks[offset].fallback()
                self.tasks_inlined += 1
                continue
            pending[offset] = position
            self.tasks_dispatched += 1
        results[0] = tasks[0].fallback()
        self.tasks_inlined += 1
        self._collect(run_id, tasks, results, pending)
        return results

    def _collect(
        self,
        run_id: int,
        tasks: Sequence[ProcessTask],
        results: list[Any],
        pending: dict[int, int],
    ) -> None:
        deadline = time.monotonic() + _RESULT_TIMEOUT
        while pending:
            try:
                item = self._results.get(timeout=0.2)
            except queue_module.Empty:
                self._reclaim_dead(tasks, results, pending)
                if time.monotonic() > deadline:
                    for offset in sorted(pending):
                        results[offset] = tasks[offset].fallback()
                        self.tasks_recovered += 1
                    pending.clear()
                continue
            received_run, offset, ok, payload, meta = item
            if received_run != run_id or offset not in pending:
                continue  # straggler from an abandoned run
            del pending[offset]
            self.snapshot_attaches += int(meta.get("attached", 0))
            if ok:
                results[offset] = payload
            else:
                results[offset] = tasks[offset].fallback()
                self.tasks_recovered += 1

    def _reclaim_dead(
        self,
        tasks: Sequence[ProcessTask],
        results: list[Any],
        pending: dict[int, int],
    ) -> None:
        dead_positions = {
            position
            for position in set(pending.values())
            if not self._workers[position].process.is_alive()
        }
        if not dead_positions:
            return
        for position in dead_positions:
            self._respawn(position)
        for offset in sorted(
            offset for offset, position in pending.items() if position in dead_positions
        ):
            del pending[offset]
            results[offset] = tasks[offset].fallback()
            self.tasks_recovered += 1

    def close(self) -> None:
        """Stop the workers and drop the queues (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = self._workers, []
        for worker in workers:
            worker.stop()
        if self._results is not None:
            self._results.cancel_join_thread()
            self._results.close()
            self._results = None

    def __enter__(self) -> ProcessShardExecutor:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #
_ATTACHED: OrderedDict[str, AttachedSnapshot] = OrderedDict()


def _attached_snapshot(descriptor: dict[str, Any], meta: dict[str, int]) -> AttachedSnapshot:
    """Attach (or reuse) the described snapshot, LRU-bounded per worker."""
    name = str(descriptor["name"])
    snapshot = _ATTACHED.get(name)
    if snapshot is not None:
        _ATTACHED.move_to_end(name)
        return snapshot
    snapshot = AttachedSnapshot(
        name,
        expected_uid=int(descriptor["uid"]),
        expected_epoch=int(descriptor["epoch"]),
    )
    meta["attached"] = meta.get("attached", 0) + 1
    _ATTACHED[name] = snapshot
    while len(_ATTACHED) > _ATTACH_CACHE:
        _, stale = _ATTACHED.popitem(last=False)
        stale.close()
    return snapshot


def _field_norms(snapshot: AttachedSnapshot, field: str, b: float, avg_length: float) -> np.ndarray:
    def compute() -> np.ndarray:
        if avg_length <= 0:
            return np.ones(snapshot.num_documents, dtype=np.float64)
        return (1.0 - b) + b * (snapshot.field_lengths(field) / avg_length)

    return snapshot.memoised(("bm25-norms", b, avg_length, field), compute)


def _dense_entries(snapshot: AttachedSnapshot, payload: dict[str, Any]) -> list:
    """Rebuild the dense LM kernel entries from their recipes.

    Identical numpy expressions over identical float64 inputs as the
    parent's ``_columnar_term_column`` — the smoothing masses arrive
    precomputed in the recipe, so the columns match the parent's
    bitwise.  (Even without that, the process path only *selects*
    survivors; the exact re-scoring epilogue fixes the ranking.)
    """
    from ..topk import DenseKernelTerm

    method, param = payload["smoothing"]
    entries = []
    for recipe in payload["terms"]:
        term = recipe["term"]
        fields = tuple(tuple(entry) for entry in recipe["fields"])
        key = ("lm-column", method, param, fields, term)

        def compute(term: str = term, fields=fields) -> np.ndarray:
            probability = np.zeros(snapshot.num_documents, dtype=np.float64)
            if method == "dirichlet":
                for field, weight, mass in fields:
                    frequencies = snapshot.dense_frequencies(field, term)
                    lengths = snapshot.field_lengths(field)
                    probability += weight * ((frequencies + mass) / (lengths + param))
            else:  # jelinek-mercer
                one_minus_lam = 1.0 - param
                for field, weight, mass in fields:
                    frequencies = snapshot.dense_frequencies(field, term)
                    lengths = snapshot.field_lengths(field)
                    ratio = np.divide(
                        frequencies, lengths, out=np.zeros_like(frequencies), where=lengths > 0
                    )
                    probability += weight * (one_minus_lam * ratio + mass)
            return np.log(np.maximum(probability, 1e-12))

        entries.append(
            DenseKernelTerm(
                key=recipe["key"],
                floor=recipe["floor"],
                upper=recipe["upper"],
                contributions=snapshot.memoised(key, compute),
            )
        )
    return entries


def _bm25_entries(snapshot: AttachedSnapshot, payload: dict[str, Any]) -> list[SparseKernelTerm]:
    """Rebuild single-field BM25 kernel terms from their recipes."""
    field = payload["field"]
    k1 = payload["k1"]
    b = payload["b"]
    avg_length = payload["avg_length"]
    min_norm = payload["min_norm"]
    blockmax = payload["blockmax"]
    k1_plus_1 = k1 + 1.0
    entries: list[SparseKernelTerm] = []
    for recipe in payload["terms"]:
        term = recipe["term"]
        weight = recipe["weight"]
        upper = recipe["upper"]

        def build(term: str = term, weight: float = weight, upper: float = upper):
            columnar = snapshot.postings(field, term)
            if columnar is None:
                return None
            norms = _field_norms(snapshot, field, b, avg_length)
            tfs = columnar.frequencies
            tf_parts = (tfs * k1_plus_1) / (tfs + k1 * norms[columnar.ordinals])
            contributions = weight * tf_parts
            if not blockmax:
                return SparseKernelTerm(
                    key=term, upper=upper, ordinals=columnar.ordinals, contributions=contributions
                )
            max_tfs = columnar.block_max_frequencies
            block_parts = (max_tfs * k1_plus_1) / (max_tfs + k1 * min_norm)
            return SparseKernelTerm(
                key=term,
                upper=upper,
                ordinals=columnar.ordinals,
                contributions=contributions,
                block_last_ordinals=columnar.block_last_ordinals,
                block_uppers=weight * block_parts,
            )

        entry = snapshot.memoised(
            ("bm25-term", k1, b, avg_length, min_norm, field, term, blockmax, weight), build
        )
        if entry is not None:
            entries.append(entry)
    return entries


def _bm25f_entries(snapshot: AttachedSnapshot, payload: dict[str, Any]) -> list[SparseKernelTerm]:
    """Rebuild BM25F union-grid kernel terms from their recipes."""
    from ..index.postings import BLOCK_SIZE

    k1 = payload["k1"]
    b = payload["b"]
    blockmax = payload["blockmax"]
    fields = tuple(tuple(entry) for entry in payload["fields"])
    entries: list[SparseKernelTerm] = []
    for recipe in payload["terms"]:
        term = recipe["term"]
        weight_idf = recipe["weight_idf"]
        upper = recipe["upper"]

        def build(term: str = term, weight_idf: float = weight_idf, upper: float = upper):
            field_postings = [
                (field, weight, snapshot.postings(field, term), avg_length, min_norm)
                for field, weight, avg_length, min_norm in fields
            ]
            if all(columnar is None for _, _, columnar, _, _ in field_postings):
                return None
            union_ordinals = None
            for _, _, columnar, _, _ in field_postings:
                if columnar is None:
                    continue
                union_ordinals = (
                    columnar.ordinals
                    if union_ordinals is None
                    else np.union1d(union_ordinals, columnar.ordinals)
                )
            weighted_tf = np.zeros(union_ordinals.size, dtype=np.float64)
            for field, weight, columnar, avg_length, _ in field_postings:
                if columnar is None:
                    continue
                norms = _field_norms(snapshot, field, b, avg_length)
                positions = np.searchsorted(union_ordinals, columnar.ordinals)
                weighted_tf[positions] += weight * columnar.frequencies / norms[columnar.ordinals]
            contributions = weight_idf * (weighted_tf / (weighted_tf + k1))
            if not blockmax:
                return SparseKernelTerm(
                    key=term, upper=upper, ordinals=union_ordinals, contributions=contributions
                )
            lasts = union_ordinals[BLOCK_SIZE - 1 :: BLOCK_SIZE]
            if union_ordinals.size % BLOCK_SIZE:
                lasts = np.append(lasts, union_ordinals[-1])
            wtf_bounds = np.zeros(lasts.size, dtype=np.float64)
            for field, weight, columnar, _, min_norm in field_postings:
                if columnar is None:
                    continue
                max_tfs = np.zeros(lasts.size, dtype=np.float64)
                blocks = np.searchsorted(lasts, columnar.ordinals, side="left")
                np.maximum.at(max_tfs, blocks, columnar.frequencies)
                if min_norm > 0:
                    wtf_bounds += weight * max_tfs / min_norm
                else:
                    wtf_bounds[max_tfs > 0] = np.inf
            finite = np.isfinite(wtf_bounds)
            saturated = np.ones_like(wtf_bounds)
            np.divide(wtf_bounds, wtf_bounds + k1, out=saturated, where=finite)
            return SparseKernelTerm(
                key=term,
                upper=upper,
                ordinals=union_ordinals,
                contributions=contributions,
                block_last_ordinals=lasts,
                block_uppers=weight_idf * saturated,
            )

        entry = snapshot.memoised(
            ("bm25f-term", k1, b, fields, term, blockmax, weight_idf), build
        )
        if entry is not None:
            entries.append(entry)
    return entries


def _slice_for_shard(
    entries: list[SparseKernelTerm], owners: np.ndarray, shard: int
) -> list[SparseKernelTerm]:
    """Per-shard posting slices — identical to the parent's ownership cut."""
    sliced: list[SparseKernelTerm] = []
    for entry in entries:
        mask = owners[entry.ordinals] == shard
        if not mask.any():
            continue  # no postings here: tightens the shard's upper sums
        sliced.append(
            SparseKernelTerm(
                key=entry.key,
                upper=entry.upper,
                ordinals=entry.ordinals[mask],
                contributions=entry.contributions[mask],
                block_last_ordinals=entry.block_last_ordinals,
                block_uppers=entry.block_uppers,
            )
        )
    return sliced


def _execute(payload: dict[str, Any], meta: dict[str, int]) -> Any:
    """Run one task payload against the attached snapshot."""
    snapshot = _attached_snapshot(payload["snapshot"], meta)
    kind = payload["kind"]
    if kind == "probe":
        columnar = snapshot.postings(payload["field"], payload["term"])
        return {
            "num_documents": snapshot.num_documents,
            "fields": snapshot.fields,
            "ordinals": None if columnar is None else np.array(columnar.ordinals),
            "frequencies": None if columnar is None else np.array(columnar.frequencies),
            "lengths": np.array(snapshot.field_lengths(payload["field"])),
            "owners": np.array(snapshot.shard_owners(int(payload.get("shards", 2)))),
        }
    slab = ThetaSlab.attach(payload["theta"])
    try:
        slot = slab.slot(int(payload["slot"]))
        stats = PruningStats()
        if kind == "rank":
            from ..features.columnar import build_ranker_inputs

            inputs = build_ranker_inputs(
                snapshot.feature_tables(),
                [tuple(key) for key in payload["features"]],
                payload["relevance"],
                np.asarray(payload["candidates"], dtype=np.int64),
                float(payload["epsilon"]),
                type_smoothing=bool(payload["type_smoothing"]),
            )
            ordinals, partials = columnar_rank(
                inputs,
                int(payload["top_k"]),
                stats,
                blockmax=bool(payload["blockmax"]),
                feature_chunk=int(payload["feature_chunk"]),
                shared=slot,
            )
        elif kind == "dense":
            entries = _dense_entries(snapshot, payload)
            candidates = np.asarray(payload["candidates"], dtype=np.int64)
            ordinals, partials = columnar_dense(
                candidates, entries, int(payload["top_k"]), stats, shared=slot
            )
        else:
            builder = _bm25_entries if kind == "bm25" else _bm25f_entries
            entries = builder(snapshot, payload)
            owners = snapshot.shard_owners(int(payload["num_shards"]))
            sliced = _slice_for_shard(entries, owners, int(payload["shard"]))
            ordinals, partials = columnar_sparse(
                sliced,
                int(payload["top_k"]),
                stats,
                snapshot.num_documents,
                blockmax=bool(payload["blockmax"]),
                shared=slot,
            )
        return np.array(ordinals), np.array(partials), stats.as_dict()
    finally:
        slab.close()


def _worker_main(tasks, results) -> None:  # pragma: no cover - child process
    """Spawn-safe worker entrypoint: drain tasks until the ``None`` sentinel."""
    while True:
        item = tasks.get()
        if item is None:
            break
        run_id, offset, payload = item
        meta: dict[str, int] = {}
        try:
            outcome = _execute(payload, meta)
            results.put((run_id, offset, True, outcome, meta))
        except SnapshotUnavailable as error:
            results.put((run_id, offset, False, f"stale snapshot: {error}", meta))
        except Exception as error:  # noqa: BLE001 - parent recovers via fallback
            results.put((run_id, offset, False, f"{type(error).__name__}: {error}", meta))
    for snapshot in _ATTACHED.values():
        snapshot.close()


def shard_stats_from(counters: Any) -> PruningStats:
    """Coerce a worker's wire-format counter dict back to ``PruningStats``."""
    if isinstance(counters, PruningStats):
        return counters
    stats = PruningStats()
    for name, value in counters.items():
        setattr(stats, name, value)
    return stats


_PROCESS_EXECUTORS: dict[int, ProcessShardExecutor] = {}
_PROCESS_LOCK = threading.Lock()


def process_executor(workers: int = 0) -> ProcessShardExecutor:
    """The process-wide multiprocess executor for a worker count (lazy)."""
    with _PROCESS_LOCK:
        executor = _PROCESS_EXECUTORS.get(workers)
        if executor is None or executor._closed:
            executor = ProcessShardExecutor(max_workers=workers or None)
            _PROCESS_EXECUTORS[workers] = executor
        return executor


def shutdown_process_executors() -> None:
    """Close every pooled multiprocess executor (tests / interpreter exit)."""
    with _PROCESS_LOCK:
        executors = list(_PROCESS_EXECUTORS.values())
        _PROCESS_EXECUTORS.clear()
    for executor in executors:
        executor.close()


atexit.register(shutdown_process_executors)
