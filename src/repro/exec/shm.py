"""Shared-memory snapshot store and the cross-process θ slab.

The process-parallel execution tier (``executor="process"``) ships no
posting data through queues: the parent serialises one per-epoch
:class:`~repro.index.columnar.ColumnarIndex` into a single
``multiprocessing.shared_memory`` segment and workers reconstruct numpy
views over the same physical pages zero-copy.  The PR 6 columnar arrays
are contiguous and immutable per epoch, which is exactly what makes
this safe: a published segment is never written again.

Since PR 9 the segment *format* lives in :mod:`repro.storage.codec`
(magic + version header, JSON manifest, 64-aligned array blobs,
per-array CRC32) and this module is the shared-memory **backend**:
:func:`publish_snapshot` / :func:`publish_feature_tables` run the
codec's encoders into a fresh ``SharedMemory`` mapping, and
:class:`AttachedSnapshot` is the codec's :class:`SegmentView` bound to
an attached segment.  The mmap'd-file backend over the same codec is
:mod:`repro.storage.diskstore`.

The manifest carries ``uid``/``epoch`` of the source index so attachers
can reject stale segments (:class:`SnapshotUnavailable`), the per-field
document-length columns, every (field, term) posting column pair
(ordinals + frequencies) and a per-document CRC column from which any
shard count's ownership map is derived (``crcs % num_shards`` matches
:func:`repro.exec.sharding.shard_of` exactly).

The recommendation ranker publishes the same way:
:func:`publish_feature_tables` serialises one epoch's
:class:`~repro.features.columnar.ColumnarFeatureTables` into an
identically laid out segment (``"kind": "feature-tables"`` in the
manifest), and workers rebuild the tables zero-copy via
:meth:`AttachedSnapshot.feature_tables`.  Both kinds share one
:class:`SnapshotRegistry` keyed by index uid
(:func:`repro.index.fielded_index.next_index_uid` is allocated from one
process-wide counter, so search and feature uids never collide).

The θ broadcast between processes is a :class:`ThetaSlab`: one float64
shared-memory slab with a per-shard seqlocked slot of top-k score lower
bounds plus a monotone global-max cell.  Readers that observe a torn
slot simply skip it — a missing offer only loosens θ, and the pruned
drivers are sound under any θ that never exceeds the true k-th best
bound, so races cost tightness, never correctness.  The slab presents
the same duck-type as :class:`~repro.topk.SharedThresholdSlot`
(``.value`` / ``.offer(bounds) -> float``), so the traversal kernels
cannot tell a cross-process θ from a cross-thread one.
"""

from __future__ import annotations

import atexit
import threading
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, NamedTuple

import numpy as np

from ..storage.codec import (
    SegmentBuilder,
    SegmentView,
    SnapshotUnavailable,
    encode_feature_tables,
    encode_graph_topology,
    encode_index_snapshot,
)
from ..topk import NO_THRESHOLD, threshold_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..features.columnar import ColumnarFeatureTables
    from ..index.columnar import ColumnarIndex
    from ..index.fielded_index import FieldedIndex
    from ..kg.topology import GraphTopology

__all__ = [
    "AttachedSnapshot",
    "PublishedSnapshot",
    "SnapshotRegistry",
    "SnapshotSource",
    "SnapshotUnavailable",
    "ThetaSlab",
    "ThetaSlabSlot",
    "attach_shared_memory",
    "publish_feature_tables",
    "publish_graph_topology",
    "publish_snapshot",
    "release_snapshots",
    "snapshot_registry",
]


class SnapshotSource(NamedTuple):
    """Minimal ``(uid, epoch)`` publish handle.

    The registry only reads ``uid``/``epoch`` off whatever it is asked to
    publish; passing this explicit pair lets a caller pin the *pinned
    view's* epoch (e.g. the feature tables a query snapshot carries)
    rather than a live index property that may have advanced since.
    """

    uid: int
    epoch: int


_ATTACH_LOCK = threading.Lock()


def attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    On 3.13+ ``track=False`` expresses this directly; earlier
    interpreters register every attach with the resource tracker, which
    would unlink the (still-published) segment when the attaching
    process exits (bpo-38119) — there the registration is suppressed for
    the duration of the attach instead.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:
        pass
    from multiprocessing import resource_tracker

    with _ATTACH_LOCK:  # pragma: no cover - interpreter-version dependent
        original = resource_tracker.register

        def register(name: str, rtype: str, _original=original) -> None:
            if rtype != "shared_memory":
                _original(name, rtype)

        resource_tracker.register = register
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


# --------------------------------------------------------------------- #
# Publishing
# --------------------------------------------------------------------- #
class PublishedSnapshot:
    """A snapshot segment owned (and eventually unlinked) by this process."""

    def __init__(
        self, segment: shared_memory.SharedMemory, uid: int, epoch: int, nbytes: int
    ) -> None:
        self._segment = segment
        self.uid = uid
        self.epoch = epoch
        self.nbytes = nbytes
        self._closed = False

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def descriptor(self) -> dict[str, object]:
        """The picklable attach handle workers receive in task payloads."""
        return {"name": self._segment.name, "uid": self.uid, "epoch": self.epoch}

    def close(self) -> None:
        """Release and unlink the segment (idempotent).

        Workers already attached keep their mapping (POSIX unlink
        semantics); late attachers get :class:`SnapshotUnavailable` and
        the dispatcher falls back to inline execution.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._segment.close()
            self._segment.unlink()
        except (FileNotFoundError, BufferError):  # pragma: no cover - already gone
            pass


def _publish_segment(
    manifest: dict[str, object], builder: SegmentBuilder, uid: int, epoch: int
) -> PublishedSnapshot:
    """Write one encoded snapshot into a fresh shared-memory segment."""
    encoded = SegmentBuilder.encode_manifest(manifest)
    total, _ = builder.total_size(encoded)
    segment = shared_memory.SharedMemory(create=True, size=total)
    try:
        builder.write_into(segment.buf, encoded)
    except BaseException:
        segment.close()
        segment.unlink()
        raise
    return PublishedSnapshot(segment, uid, epoch, total)


def publish_snapshot(index: FieldedIndex, view: ColumnarIndex) -> PublishedSnapshot:
    """Serialise one columnar index epoch into a shared-memory segment.

    Every posting column of the full vocabulary is placed (workers must
    be able to serve any query against the snapshot), together with the
    per-field length columns and the per-document CRC column.
    """
    manifest, builder = encode_index_snapshot(index, view)
    return _publish_segment(manifest, builder, index.uid, index.epoch)


def publish_feature_tables(
    source: SnapshotSource, tables: ColumnarFeatureTables
) -> PublishedSnapshot:
    """Serialise one epoch's columnar feature tables into a segment.

    The manifest carries the feature-key triples in ordinal order (the
    only string payload — entities travel purely as ordinals) plus the
    holder CSR, dominant-type ordinals, type populations and the
    entity→type membership CSR.  ``source`` pins the publishing feature
    index's uid and the *tables'* epoch, so attach checks reject a
    segment left over from an earlier epoch of the same index.
    """
    manifest, builder = encode_feature_tables(source, tables)
    return _publish_segment(manifest, builder, source.uid, source.epoch)


def publish_graph_topology(
    source: SnapshotSource, topology: GraphTopology
) -> PublishedSnapshot:
    """Serialise one epoch's columnar graph topology into a segment.

    The manifest carries the sorted entity/predicate/type string tables
    plus both CSR adjacency directions, the per-type member-ordinal CSR
    and the pre/post interval encoding.  ``source`` pins the publishing
    graph's identity and the *topology's* epoch, so attach checks reject
    a segment left over from an earlier graph state.
    """
    manifest, builder = encode_graph_topology(source, topology)
    return _publish_segment(manifest, builder, source.uid, source.epoch)


# --------------------------------------------------------------------- #
# Attaching (worker side)
# --------------------------------------------------------------------- #
class AttachedSnapshot(SegmentView):
    """The codec's :class:`SegmentView` over an attached shm segment.

    Checksum verification is skipped on this hot worker-attach path: a
    shared-memory segment cannot outlive the publishing process, so the
    only integrity risks are the uid/epoch staleness the constructor
    already checks.
    """

    def __init__(
        self,
        name: str,
        expected_uid: int | None = None,
        expected_epoch: int | None = None,
    ) -> None:
        try:
            self._segment = attach_shared_memory(name)
        except (FileNotFoundError, ValueError) as error:
            raise SnapshotUnavailable(f"snapshot segment {name!r} is gone") from error
        try:
            super().__init__(
                self._segment.buf,
                name=name,
                expected_uid=expected_uid,
                expected_epoch=expected_epoch,
            )
        except BaseException:
            self._detach()
            raise

    def _detach(self) -> None:
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - caller still holds views
            pass

    def close(self) -> None:
        """Drop cached views and detach (never unlinks — not the owner)."""
        self.release_views()
        self._detach()


# --------------------------------------------------------------------- #
# Registry (parent side)
# --------------------------------------------------------------------- #
class SnapshotRegistry:
    """Process-wide cache of published snapshots, one per index uid.

    Publishing a newer epoch of the same uid unlinks the older segment
    (attached workers keep serving their mapping; late attachers fall
    back inline).  Publish failures are memoised per (uid, epoch) so a
    segment that cannot be built is attempted once, not per query.

    Uids can be *disabled* (``storage="off"``): a disabled uid's publish
    requests return ``None`` without building anything, so the process
    tier degrades to its inline fallback for that engine only.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._snapshots: dict[int, PublishedSnapshot] = {}
        self._failed: set[tuple[int, int]] = set()
        self._disabled: set[int] = set()
        self.publishes = 0
        self.published_bytes = 0

    def publish(self, source, view, builder=publish_snapshot) -> PublishedSnapshot | None:
        """Publish (or reuse) one ``(uid, epoch)``'s segment.

        ``source`` is anything with ``uid``/``epoch`` (a live index or an
        explicit :class:`SnapshotSource`); ``builder`` is the snapshot
        serialiser for the view's kind — :func:`publish_snapshot` for
        columnar postings (the default), :func:`publish_feature_tables`
        for the ranker's feature tables.
        """
        key = (source.uid, source.epoch)
        with self._lock:
            if source.uid in self._disabled:
                return None
            current = self._snapshots.get(source.uid)
            if current is not None and current.epoch == source.epoch:
                return current
            if key in self._failed:
                return None
            try:
                fresh = builder(source, view)
            except Exception:  # noqa: BLE001 - degrade to inline execution
                self._failed.add(key)
                return None
            if current is not None:
                current.close()
            self._snapshots[source.uid] = fresh
            self.publishes += 1
            self.published_bytes += fresh.nbytes
            return fresh

    def disable(self, uid: int) -> None:
        """Stop publishing for ``uid`` (``storage="off"``); release any segment."""
        with self._lock:
            self._disabled.add(uid)
            snapshot = self._snapshots.pop(uid, None)
        if snapshot is not None:
            snapshot.close()

    def enable(self, uid: int) -> None:
        """Re-allow publishing for a previously disabled ``uid``."""
        with self._lock:
            self._disabled.discard(uid)

    def release(self, uid: int | None = None) -> None:
        """Unlink one uid's snapshot (or every snapshot when ``None``).

        Idempotent: releasing an unknown or already released uid is a
        no-op, and the underlying segments tolerate double-close.
        """
        with self._lock:
            if uid is None:
                doomed = list(self._snapshots.values())
                self._snapshots.clear()
            else:
                snapshot = self._snapshots.pop(uid, None)
                doomed = [snapshot] if snapshot is not None else []
        for snapshot in doomed:
            snapshot.close()

    def active(self) -> int:
        with self._lock:
            return len(self._snapshots)


_REGISTRY = SnapshotRegistry()


def _release_registry_at_exit() -> None:
    """Release whatever registry is current *at exit time*.

    Registered once at import; reads ``_REGISTRY`` late so tests (or
    anything else) that swap the module-level registry never leave the
    atexit hook holding — and unlinking through — a stale instance.
    """
    _REGISTRY.release()


atexit.register(_release_registry_at_exit)


def snapshot_registry() -> SnapshotRegistry:
    """The process-wide snapshot registry shared by every engine."""
    return _REGISTRY


def release_snapshots(uid: int | None = None) -> None:
    """Convenience shim over :meth:`SnapshotRegistry.release`."""
    _REGISTRY.release(uid)


# --------------------------------------------------------------------- #
# Cross-process θ slab
# --------------------------------------------------------------------- #
class ThetaSlabSlot:
    """One shard's writer handle — the ``SharedThresholdSlot`` duck-type."""

    __slots__ = ("_slab", "_slot")

    def __init__(self, slab: ThetaSlab, slot: int) -> None:
        self._slab = slab
        self._slot = slot

    @property
    def value(self) -> float:
        return self._slab.value()

    def offer(self, bounds) -> float:
        return self._slab.offer(self._slot, bounds)


class ThetaSlab:
    """Cross-process θ broadcast over one shared float64 slab.

    Layout: ``[k, num_slots, primed, global_max]`` then ``num_slots``
    slots of ``[seq, count, bounds[k]]``.  Writers seqlock their own
    slot (odd during write); readers retry a few times and skip torn
    slots.  ``value()`` is the k-th largest of the union pool, floored
    by the primed threshold and the monotone global-max cell — mirroring
    :class:`~repro.topk.SharedThreshold`'s only-rises semantics without
    any cross-process lock.
    """

    def __init__(self, segment: shared_memory.SharedMemory, owner: bool) -> None:
        self._segment = segment
        self._owner = owner
        header = np.ndarray(4, dtype=np.float64, buffer=segment.buf)
        self._k = int(header[0])
        self._num_slots = int(header[1])
        del header
        count = 4 + self._num_slots * (2 + self._k)
        self._array = np.ndarray(count, dtype=np.float64, buffer=segment.buf)
        self._closed = False

    @classmethod
    def create(cls, k: int, num_slots: int, primed: float = NO_THRESHOLD) -> ThetaSlab:
        count = 4 + num_slots * (2 + k)
        segment = shared_memory.SharedMemory(create=True, size=count * 8)
        array = np.ndarray(count, dtype=np.float64, buffer=segment.buf)
        array[:] = 0.0
        array[0] = float(k)
        array[1] = float(num_slots)
        array[2] = primed if primed == primed else NO_THRESHOLD
        array[3] = NO_THRESHOLD
        del array
        return cls(segment, owner=True)

    @classmethod
    def attach(cls, descriptor: dict[str, object]) -> ThetaSlab:
        try:
            segment = attach_shared_memory(str(descriptor["name"]))
        except (FileNotFoundError, ValueError) as error:
            raise SnapshotUnavailable("θ slab is gone") from error
        return cls(segment, owner=False)

    @property
    def descriptor(self) -> dict[str, object]:
        return {"name": self._segment.name, "k": self._k, "slots": self._num_slots}

    def slot(self, slot: int) -> ThetaSlabSlot:
        if not 0 <= slot < self._num_slots:
            raise IndexError(f"slot {slot} out of range (have {self._num_slots})")
        return ThetaSlabSlot(self, slot)

    def offer(self, slot: int, bounds) -> float:
        """Replace one shard's bound pool and return the refreshed θ."""
        clean = [bound for bound in bounds if bound == bound][: self._k]
        array = self._array
        base = 4 + slot * (2 + self._k)
        seq = array[base]
        array[base] = seq + 1.0  # odd: write in progress
        array[base + 1] = float(len(clean))
        if clean:
            array[base + 2 : base + 2 + len(clean)] = clean
        array[base] = seq + 2.0  # even: stable
        return self.value()

    def value(self) -> float:
        """The live θ: never exceeds the true k-th best lower bound."""
        array = self._array
        pool: list[float] = []
        for slot in range(self._num_slots):
            base = 4 + slot * (2 + self._k)
            for _ in range(4):
                first = array[base]
                if first != first or int(first) % 2:
                    continue  # torn write — retry, then skip (sound)
                count = int(array[base + 1])
                count = max(0, min(count, self._k))
                values = array[base + 2 : base + 2 + count].tolist()
                if array[base] == first:
                    pool.extend(values)
                    break
        threshold = threshold_of(pool, self._k) if len(pool) >= self._k else NO_THRESHOLD
        primed = array[2]
        if primed > threshold:
            threshold = primed
        best = array[3]
        if best > threshold:
            threshold = best
        elif threshold > best:
            array[3] = threshold  # racy max: losers only loosen θ
        return threshold

    def close(self) -> None:
        """Detach; the creating side also unlinks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._array = None  # type: ignore[assignment]
        try:
            self._segment.close()
            if self._owner:
                self._segment.unlink()
        except (FileNotFoundError, BufferError):  # pragma: no cover
            pass
