"""Exploration model: query states, operations, sessions, paths, recommendations."""

from .operations import (
    DeselectEntity,
    LookupEntity,
    Operation,
    PinFeature,
    Pivot,
    SelectEntity,
    SetDomain,
    SubmitKeywords,
    UnpinFeature,
)
from .path import ExplorationPath, PathEdge, PathNode
from .query_state import ExplorationQuery
from .recommender import Recommendation, RecommendationEngine
from .session import ExplorationSession, TimelineEntry
from .simulation import (
    FocusedInvestigator,
    RandomExplorer,
    SimulationResult,
    run_investigation_workload,
)

__all__ = [
    "DeselectEntity",
    "ExplorationPath",
    "ExplorationQuery",
    "ExplorationSession",
    "FocusedInvestigator",
    "LookupEntity",
    "Operation",
    "PathEdge",
    "PathNode",
    "PinFeature",
    "Pivot",
    "RandomExplorer",
    "Recommendation",
    "RecommendationEngine",
    "SelectEntity",
    "SetDomain",
    "SimulationResult",
    "SubmitKeywords",
    "TimelineEntry",
    "UnpinFeature",
    "run_investigation_workload",
]
