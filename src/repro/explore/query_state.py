"""The exploration query state.

A PivotE query is not a keyword string but a structured state built up by
clicks (Fig 3-b): a set of example (seed) entities plus a set of pinned
semantic features, optionally restricted to one entity type (the current
search domain).  Queries are immutable; every manipulation (add/remove an
entity or feature, change the domain) produces a new state, which is what
makes the timeline and revisiting of historical queries trivial.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, replace

from ..exceptions import InvalidOperationError
from ..features import SemanticFeature


@dataclass(frozen=True)
class ExplorationQuery:
    """An immutable exploration query state.

    Attributes
    ----------
    keywords:
        The free-text keywords of the initial query (may be empty once the
        user has switched to example-based querying).
    seed_entities:
        Example entities selected by the user (clicking in Fig 3-c).
    pinned_features:
        Semantic features added as query conditions (clicking in Fig 3-e).
    domain_type:
        The entity type currently investigated (the x-axis domain); empty
        means unrestricted.
    """

    keywords: str = ""
    seed_entities: tuple[str, ...] = ()
    pinned_features: tuple[SemanticFeature, ...] = ()
    domain_type: str = ""

    def __post_init__(self) -> None:
        # Deduplicate while preserving order so that repeated clicks are no-ops.
        deduped_entities = tuple(dict.fromkeys(self.seed_entities))
        deduped_features = tuple(dict.fromkeys(self.pinned_features))
        object.__setattr__(self, "seed_entities", deduped_entities)
        object.__setattr__(self, "pinned_features", deduped_features)

    # ------------------------------------------------------------------ #
    # Predicates
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        """True when the query has neither keywords, seeds nor features."""
        return not self.keywords.strip() and not self.seed_entities and not self.pinned_features

    @property
    def is_keyword_only(self) -> bool:
        """True when only keywords constrain the query (the initial state)."""
        return bool(self.keywords.strip()) and not self.seed_entities and not self.pinned_features

    def has_seed(self, entity_id: str) -> bool:
        return entity_id in self.seed_entities

    def has_feature(self, feature: SemanticFeature) -> bool:
        return feature in self.pinned_features

    # ------------------------------------------------------------------ #
    # Manipulations (each returns a new query)
    # ------------------------------------------------------------------ #
    def with_keywords(self, keywords: str) -> "ExplorationQuery":
        """Replace the keyword part of the query."""
        return replace(self, keywords=keywords)

    def add_entity(self, entity_id: str) -> "ExplorationQuery":
        """Add an example entity (selection in the recommendation area)."""
        if not entity_id:
            raise InvalidOperationError("cannot add an empty entity identifier")
        if entity_id in self.seed_entities:
            return self
        return replace(self, seed_entities=self.seed_entities + (entity_id,))

    def remove_entity(self, entity_id: str) -> "ExplorationQuery":
        """Remove an example entity (deletion in the query area)."""
        if entity_id not in self.seed_entities:
            raise InvalidOperationError(f"entity not part of the query: {entity_id!r}")
        return replace(
            self,
            seed_entities=tuple(e for e in self.seed_entities if e != entity_id),
        )

    def add_feature(self, feature: SemanticFeature) -> "ExplorationQuery":
        """Pin a semantic feature as a query condition."""
        if feature in self.pinned_features:
            return self
        return replace(self, pinned_features=self.pinned_features + (feature,))

    def remove_feature(self, feature: SemanticFeature) -> "ExplorationQuery":
        """Unpin a semantic feature."""
        if feature not in self.pinned_features:
            raise InvalidOperationError(f"feature not part of the query: {feature.notation()}")
        return replace(
            self,
            pinned_features=tuple(f for f in self.pinned_features if f != feature),
        )

    def with_domain(self, domain_type: str) -> "ExplorationQuery":
        """Switch the investigated entity type (the pivot target domain)."""
        return replace(self, domain_type=domain_type)

    def replace_seeds(self, entities: Iterable[str]) -> "ExplorationQuery":
        """Replace all seed entities at once (used by the pivot operation)."""
        return replace(self, seed_entities=tuple(dict.fromkeys(entities)))

    def clear_features(self) -> "ExplorationQuery":
        """Drop all pinned features (used when pivoting to a new domain)."""
        return replace(self, pinned_features=())

    # ------------------------------------------------------------------ #
    # Presentation
    # ------------------------------------------------------------------ #
    def describe(self) -> str:
        """Compact, human-readable description shown in the timeline."""
        parts = []
        if self.keywords.strip():
            parts.append(f'keywords="{self.keywords.strip()}"')
        if self.seed_entities:
            parts.append("entities=[" + ", ".join(self.seed_entities) + "]")
        if self.pinned_features:
            parts.append(
                "features=[" + ", ".join(f.notation() for f in self.pinned_features) + "]"
            )
        if self.domain_type:
            parts.append(f"domain={self.domain_type}")
        return "; ".join(parts) if parts else "(empty query)"

    def signature(self) -> tuple:
        """A hashable signature used to detect revisits of the same query."""
        return (
            self.keywords.strip().lower(),
            self.seed_entities,
            tuple(f.key for f in self.pinned_features),
            self.domain_type,
        )
