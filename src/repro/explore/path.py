"""The exploratory search path (Fig 4).

The demo lets users view their exploration as a path: queries are nodes,
operations (submitting keywords, looking up an entity, pivoting) are edges.
:class:`ExplorationPath` is that graph, built incrementally by the session
and rendered by the visualisation layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from .operations import Operation
from .query_state import ExplorationQuery


@dataclass(frozen=True)
class PathNode:
    """One visited query state."""

    node_id: int
    query: ExplorationQuery
    label: str

    def as_dict(self) -> dict[str, object]:
        return {"id": self.node_id, "label": self.label, "query": self.query.describe()}


@dataclass(frozen=True)
class PathEdge:
    """The operation that led from one query state to the next."""

    source: int
    target: int
    operation_kind: str
    description: str

    def as_dict(self) -> dict[str, object]:
        return {
            "source": self.source,
            "target": self.target,
            "kind": self.operation_kind,
            "description": self.description,
        }


class ExplorationPath:
    """A growing graph of visited query states and the operations between them."""

    def __init__(self) -> None:
        self._nodes: list[PathNode] = []
        self._edges: list[PathEdge] = []
        self._current: int | None = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_state(self, query: ExplorationQuery, operation: Operation | None = None) -> PathNode:
        """Record a new query state reached via ``operation``.

        The first state is added with ``operation=None`` (the session
        start).  Returns the created node.
        """
        node = PathNode(node_id=len(self._nodes), query=query, label=query.describe())
        self._nodes.append(node)
        if operation is not None and self._current is not None:
            self._edges.append(
                PathEdge(
                    source=self._current,
                    target=node.node_id,
                    operation_kind=operation.kind,
                    description=operation.describe(),
                )
            )
        self._current = node.node_id
        return node

    def jump_to(self, node_id: int) -> PathNode:
        """Revisit a historical node (timeline traceback) without adding edges."""
        node = self.node(node_id)
        self._current = node.node_id
        return node

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def node(self, node_id: int) -> PathNode:
        if node_id < 0 or node_id >= len(self._nodes):
            raise IndexError(f"no path node with id {node_id}")
        return self._nodes[node_id]

    @property
    def nodes(self) -> tuple[PathNode, ...]:
        return tuple(self._nodes)

    @property
    def edges(self) -> tuple[PathEdge, ...]:
        return tuple(self._edges)

    @property
    def current_node(self) -> PathNode | None:
        if self._current is None:
            return None
        return self._nodes[self._current]

    def __len__(self) -> int:
        return len(self._nodes)

    def branches_from(self, node_id: int) -> list[PathEdge]:
        """Outgoing edges of a node (a node revisited and re-explored branches)."""
        return [edge for edge in self._edges if edge.source == node_id]

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict[str, object]:
        """JSON-compatible representation consumed by the web UI."""
        return {
            "nodes": [node.as_dict() for node in self._nodes],
            "edges": [edge.as_dict() for edge in self._edges],
            "current": self._current,
        }

    def describe(self) -> str:
        """Multi-line textual rendering of the path (Fig 4 as text)."""
        lines: list[str] = []
        for node in self._nodes:
            marker = "*" if self._current == node.node_id else " "
            lines.append(f"[{node.node_id}]{marker} {node.label}")
            for edge in self.branches_from(node.node_id):
                lines.append(f"      --{edge.operation_kind}--> [{edge.target}] {edge.description}")
        return "\n".join(lines)
