"""Simulated users for session-level evaluation.

A demonstration paper shows the system to real users; to evaluate the
exploration loop offline we simulate them.  Two user models are provided:

* :class:`FocusedInvestigator` — has a target concept (a relevant entity
  set); clicks recommended entities that belong to the concept, pins the
  strongest semantic feature when recall stalls, and stops when the concept
  is recovered or a step budget is exhausted.  Measures how quickly the
  investigation loop recovers a concept (session-level recall@steps).
* :class:`RandomExplorer` — clicks uniformly at random among the
  recommendations and pivots occasionally; a lower bound / sanity baseline
  that also exercises session robustness (it should never crash and never
  corrupt the timeline).

Both run against the real :class:`~repro.engine.pivote.PivotE` facade so
that every simulated click goes through exactly the code path of the UI.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..exceptions import ExplorationError

if TYPE_CHECKING:  # imported lazily to avoid a circular import with repro.engine
    from ..engine.pivote import PivotE, QueryResponse


@dataclass(frozen=True)
class SimulationResult:
    """The outcome of one simulated session."""

    session_id: str
    steps: int
    found: tuple[str, ...]
    target_size: int
    recall_per_step: tuple[float, ...] = ()
    operations: dict[str, int] = field(default_factory=dict)

    @property
    def recall(self) -> float:
        """Final recall of the target concept."""
        if self.target_size == 0:
            return 0.0
        return len(self.found) / self.target_size

    def steps_to_recall(self, threshold: float) -> int | None:
        """First step at which recall reached ``threshold`` (None if never)."""
        for step, recall in enumerate(self.recall_per_step, start=1):
            if recall >= threshold:
                return step
        return None


class FocusedInvestigator:
    """A cooperative user investigating one target concept."""

    def __init__(
        self,
        system: "PivotE",
        target: Sequence[str],
        max_steps: int = 10,
        clicks_per_step: int = 2,
    ) -> None:
        if not target:
            raise ExplorationError("the simulated investigator needs a non-empty target set")
        if max_steps <= 0 or clicks_per_step <= 0:
            raise ExplorationError("max_steps and clicks_per_step must be positive")
        self._system = system
        self._target: set[str] = set(target)
        self._max_steps = max_steps
        self._clicks_per_step = clicks_per_step

    def run(self, initial_seeds: Sequence[str], session_id: str = "investigator") -> SimulationResult:
        """Run the investigation starting from explicit seed entities."""
        system = self._system
        session = system.start_session(session_id)
        found: set[str] = set(seed for seed in initial_seeds if seed in self._target)
        recall_per_step: list[float] = []

        response: "QueryResponse" | None = None
        for seed in initial_seeds:
            response = system.select_entity(session, seed)

        for _ in range(self._max_steps):
            if response is None or response.recommendation is None:
                break
            recommended = response.recommendation.entity_ids()
            hits = [entity for entity in recommended if entity in self._target and entity not in found]
            if not hits:
                # Recall stalls: pin the strongest feature to tighten the query.
                features = response.recommendation.features
                pinnable = [
                    scored.feature
                    for scored in features
                    if scored.feature not in session.current_query.pinned_features
                ]
                if not pinnable:
                    break
                response = system.pin_feature(session, pinnable[0])
                recall_per_step.append(len(found) / len(self._target))
                continue
            for entity in hits[: self._clicks_per_step]:
                found.add(entity)
                response = system.select_entity(session, entity)
            recall_per_step.append(len(found) / len(self._target))
            if found >= self._target:
                break

        return SimulationResult(
            session_id=session.session_id,
            steps=len(session.timeline),
            found=tuple(sorted(found)),
            target_size=len(self._target),
            recall_per_step=tuple(recall_per_step),
            operations=session.behaviour_summary(),
        )


class RandomExplorer:
    """A user clicking uniformly at random; a robustness / lower-bound model."""

    def __init__(
        self,
        system: "PivotE",
        steps: int = 15,
        pivot_probability: float = 0.2,
        seed: int = 0,
    ) -> None:
        if steps <= 0:
            raise ExplorationError("steps must be positive")
        if not 0.0 <= pivot_probability <= 1.0:
            raise ExplorationError("pivot_probability must lie in [0, 1]")
        self._system = system
        self._steps = steps
        self._pivot_probability = pivot_probability
        self._rng = random.Random(seed)

    def run(self, initial_keywords: str, session_id: str = "random-explorer") -> SimulationResult:
        """Run a random walk over the interface starting from a keyword query."""
        system = self._system
        session = system.start_session(session_id)
        response = system.submit_keywords(session, initial_keywords)
        visited_domains: set[str] = set()

        for _ in range(self._steps):
            candidates: list[str] = []
            if response.recommendation is not None:
                candidates = response.recommendation.entity_ids()
            elif response.hits:
                candidates = [hit.entity_id for hit in response.hits]
            if not candidates:
                break
            choice = self._rng.choice(candidates)
            if self._rng.random() < self._pivot_probability:
                response = system.pivot(session, choice)
                visited_domains.add(session.current_query.domain_type)
            else:
                response = system.select_entity(session, choice)

        return SimulationResult(
            session_id=session.session_id,
            steps=len(session.timeline),
            found=tuple(sorted(visited_domains)),
            target_size=max(len(visited_domains), 1),
            operations=session.behaviour_summary(),
        )


def run_investigation_workload(
    system: "PivotE",
    tasks: Sequence[tuple[Sequence[str], Sequence[str]]],
    max_steps: int = 10,
) -> list[SimulationResult]:
    """Run the focused investigator over many (seeds, target) tasks."""
    results: list[SimulationResult] = []
    for index, (seeds, target) in enumerate(tasks):
        investigator = FocusedInvestigator(system, target, max_steps=max_steps)
        results.append(investigator.run(seeds, session_id=f"investigation-{index}"))
    return results
