"""Exploration sessions: query timeline, history and the exploratory path.

The session is the stateful part of the UI model (Fig 3-g and Fig 4): it
applies operations to the current query, keeps every visited query in a
timeline for traceback, and grows the exploratory path graph.  The session
does not compute recommendations itself — the PivotE facade asks the
recommendation engine for each new state — but it records which entities
were looked up so the search-behaviour visualisation can be reconstructed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import SessionStateError
from .operations import LookupEntity, Operation
from .path import ExplorationPath
from .query_state import ExplorationQuery


@dataclass(frozen=True)
class TimelineEntry:
    """One entry of the query timeline (Fig 3-g)."""

    step: int
    query: ExplorationQuery
    operation_kind: str
    description: str

    def as_dict(self) -> dict[str, object]:
        return {
            "step": self.step,
            "query": self.query.describe(),
            "operation": self.operation_kind,
            "description": self.description,
        }


class ExplorationSession:
    """A stateful exploratory-search session."""

    def __init__(self, session_id: str = "session") -> None:
        self.session_id = session_id
        self._current = ExplorationQuery()
        self._timeline: list[TimelineEntry] = []
        self._path = ExplorationPath()
        self._path.add_state(self._current)
        self._lookups: list[str] = []

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def current_query(self) -> ExplorationQuery:
        """The query state the UI currently displays."""
        return self._current

    @property
    def timeline(self) -> tuple[TimelineEntry, ...]:
        """All recorded steps, oldest first."""
        return tuple(self._timeline)

    @property
    def path(self) -> ExplorationPath:
        """The exploratory path graph (Fig 4)."""
        return self._path

    @property
    def lookups(self) -> tuple[str, ...]:
        """Entities the user looked up, in order."""
        return tuple(self._lookups)

    def __len__(self) -> int:
        return len(self._timeline)

    # ------------------------------------------------------------------ #
    # Applying operations
    # ------------------------------------------------------------------ #
    def apply(self, operation: Operation) -> ExplorationQuery:
        """Apply an operation, record it, and return the new query state."""
        new_query = operation.apply(self._current)
        if isinstance(operation, LookupEntity):
            self._lookups.append(operation.entity_id)
        entry = TimelineEntry(
            step=len(self._timeline),
            query=new_query,
            operation_kind=operation.kind,
            description=operation.describe(),
        )
        self._timeline.append(entry)
        if new_query.signature() != self._current.signature():
            self._path.add_state(new_query, operation)
        self._current = new_query
        return new_query

    def apply_all(self, operations: list[Operation]) -> ExplorationQuery:
        """Apply a scripted list of operations (used by the examples)."""
        for operation in operations:
            self.apply(operation)
        return self._current

    # ------------------------------------------------------------------ #
    # Timeline traceback
    # ------------------------------------------------------------------ #
    def revisit(self, step: int) -> ExplorationQuery:
        """Jump back to a historical query from the timeline.

        Revisiting does not erase history: the restored query becomes the
        current state, and subsequent operations branch the exploratory
        path from that point.
        """
        if step < 0 or step >= len(self._timeline):
            raise SessionStateError(
                f"timeline step {step} out of range (0..{len(self._timeline) - 1})"
            )
        entry = self._timeline[step]
        self._current = entry.query
        # Find the path node carrying this query state and make it current.
        for node in self._path.nodes:
            if node.query.signature() == entry.query.signature():
                self._path.jump_to(node.node_id)
                break
        return self._current

    def visited_queries(self) -> list[ExplorationQuery]:
        """Unique query states visited, in first-visit order."""
        seen: dict[tuple, ExplorationQuery] = {}
        for entry in self._timeline:
            seen.setdefault(entry.query.signature(), entry.query)
        return list(seen.values())

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def behaviour_summary(self) -> dict[str, int]:
        """Counts of each operation kind — the search-behaviour overview."""
        counts: dict[str, int] = {}
        for entry in self._timeline:
            counts[entry.operation_kind] = counts.get(entry.operation_kind, 0) + 1
        return counts

    def describe(self) -> str:
        """Readable session transcript."""
        lines = [f"Session {self.session_id}: {len(self._timeline)} steps"]
        for entry in self._timeline:
            lines.append(f"  {entry.step:>3}. [{entry.operation_kind}] {entry.description}")
        lines.append(f"  current: {self._current.describe()}")
        return "\n".join(lines)
