"""Exploration operations: the verbs of the PivotE interaction model.

The paper identifies *investigation* and *browse* (pivot) as the two core
operations of exploratory search, both driven by clicks:

* :class:`SubmitKeywords` — type an initial keyword query (Fig 3-a);
* :class:`SelectEntity` / :class:`DeselectEntity` — add/remove an example
  entity in the query area (investigation seeds);
* :class:`PinFeature` / :class:`UnpinFeature` — add/remove a semantic
  feature as a query condition;
* :class:`LookupEntity` — open an entity's profile (Fig 3-d);
* :class:`Pivot` — double-click an entity/feature to switch the search
  domain: the x-axis is re-seeded with the entities of another type reached
  through a semantic feature.

Each operation is a small immutable object with an ``apply`` method taking
the current :class:`ExplorationQuery` and returning the next one, so that a
session is simply a fold of operations over query states.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import InvalidOperationError
from ..features import SemanticFeature
from .query_state import ExplorationQuery


class Operation:
    """Base class for exploration operations."""

    #: Short operation kind used by the timeline / path visualisation.
    kind: str = "operation"

    def apply(self, query: ExplorationQuery) -> ExplorationQuery:
        """Return the query state resulting from applying this operation."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable description for the timeline."""
        raise NotImplementedError


@dataclass(frozen=True)
class SubmitKeywords(Operation):
    """Submit (or replace) the keyword part of the query."""

    keywords: str
    kind: str = "submit"

    def apply(self, query: ExplorationQuery) -> ExplorationQuery:
        if not self.keywords.strip():
            raise InvalidOperationError("cannot submit an empty keyword query")
        return query.with_keywords(self.keywords)

    def describe(self) -> str:
        return f'submit keywords "{self.keywords}"'


@dataclass(frozen=True)
class SelectEntity(Operation):
    """Click an entity to add it as an example (investigation seed)."""

    entity_id: str
    kind: str = "select-entity"

    def apply(self, query: ExplorationQuery) -> ExplorationQuery:
        return query.add_entity(self.entity_id)

    def describe(self) -> str:
        return f"select entity {self.entity_id}"


@dataclass(frozen=True)
class DeselectEntity(Operation):
    """Remove an example entity from the query."""

    entity_id: str
    kind: str = "deselect-entity"

    def apply(self, query: ExplorationQuery) -> ExplorationQuery:
        return query.remove_entity(self.entity_id)

    def describe(self) -> str:
        return f"deselect entity {self.entity_id}"


@dataclass(frozen=True)
class PinFeature(Operation):
    """Add a semantic feature as a query condition."""

    feature: SemanticFeature
    kind: str = "pin-feature"

    def apply(self, query: ExplorationQuery) -> ExplorationQuery:
        return query.add_feature(self.feature)

    def describe(self) -> str:
        return f"pin feature {self.feature.notation()}"


@dataclass(frozen=True)
class UnpinFeature(Operation):
    """Remove a pinned semantic feature."""

    feature: SemanticFeature
    kind: str = "unpin-feature"

    def apply(self, query: ExplorationQuery) -> ExplorationQuery:
        return query.remove_feature(self.feature)

    def describe(self) -> str:
        return f"unpin feature {self.feature.notation()}"


@dataclass(frozen=True)
class LookupEntity(Operation):
    """Open an entity's profile; does not change the query state."""

    entity_id: str
    kind: str = "lookup"

    def apply(self, query: ExplorationQuery) -> ExplorationQuery:
        return query

    def describe(self) -> str:
        return f"look up entity {self.entity_id}"


@dataclass(frozen=True)
class Pivot(Operation):
    """Pivot the x-axis into another entity domain.

    Double-clicking an entity (or a feature's anchor) of another type makes
    that entity the new seed and its dominant type the new search domain;
    pinned features of the old domain are dropped because they no longer
    constrain entities of the new type.
    """

    target_entity: str
    target_type: str = ""
    kind: str = "pivot"

    def apply(self, query: ExplorationQuery) -> ExplorationQuery:
        if not self.target_entity:
            raise InvalidOperationError("pivot requires a target entity")
        return (
            query.replace_seeds((self.target_entity,))
            .clear_features()
            .with_domain(self.target_type)
            .with_keywords("")
        )

    def describe(self) -> str:
        domain = f" into domain {self.target_type}" if self.target_type else ""
        return f"pivot on {self.target_entity}{domain}"


@dataclass(frozen=True)
class SetDomain(Operation):
    """Restrict (or clear) the entity-type filter of the x-axis."""

    domain_type: str
    kind: str = "set-domain"

    def apply(self, query: ExplorationQuery) -> ExplorationQuery:
        return query.with_domain(self.domain_type)

    def describe(self) -> str:
        return f"set domain to {self.domain_type or '(any)'}"
