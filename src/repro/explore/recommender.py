"""The recommendation engine (Fig 2, §2.3).

Given the current exploration query (seed entities, pinned features,
optional domain restriction) the recommendation engine produces everything
the matrix interface needs:

* the ranked similar entities (x-axis, Fig 3-c);
* the ranked semantic features (y-axis, Fig 3-e);
* the entity x feature correlation matrix behind the heat map (Fig 3-f).

It is a thin coordinator over :mod:`repro.expansion` and
:mod:`repro.ranking`; keyword-only queries are resolved to seeds by the
search engine before they reach this class (the PivotE facade does that).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

from ..config import RankingConfig
from ..exceptions import NoSeedEntitiesError
from ..exec import dedupe_batch, executor_stats, release_snapshots, snapshot_registry
from ..expansion import EntitySetExpander, ExpansionResult
from ..features import SemanticFeature, SemanticFeatureIndex, ShardedSemanticFeatureIndex
from ..kg import KnowledgeGraph, traversal_stats
from ..ranking import (
    CorrelationMatrix,
    ScoredEntity,
    ScoredFeature,
    build_correlation_matrix,
    build_correlation_matrix_exhaustive,
)
from ..stats import CacheStats, EngineStats, PruningStatsView
from ..utils import LRUCache
from .query_state import ExplorationQuery


@dataclass(frozen=True)
class Recommendation:
    """The recommendation payload for one query state."""

    query: ExplorationQuery
    entities: tuple[ScoredEntity, ...]
    features: tuple[ScoredFeature, ...]
    correlations: CorrelationMatrix

    def entity_ids(self) -> list[str]:
        return [entity.entity_id for entity in self.entities]

    def feature_notations(self) -> list[str]:
        return [scored.feature.notation() for scored in self.features]


class RecommendationEngine:
    """Produces entity and semantic-feature recommendations for query states."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        feature_index: SemanticFeatureIndex | None = None,
        config: RankingConfig | None = None,
    ) -> None:
        self._graph = graph
        self._config = config or RankingConfig()
        if feature_index is not None:
            self._index = feature_index
        elif self._config.shards > 1:
            self._index = ShardedSemanticFeatureIndex.build_sharded(graph, self._config.shards)
        else:
            self._index = SemanticFeatureIndex.build(graph)
        self._expander = EntitySetExpander(graph, feature_index=self._index, config=self._config)
        #: Epoch-keyed LRU recommendation cache: canonicalised query state ->
        #: Recommendation.  Cleared whenever the feature-index epoch moves
        #: (i.e. on any graph mutation), so session operations that revisit
        #: a query state (select -> deselect, re-investigate, matrix
        #: rebuilds) cost a dictionary lookup.
        self._cache: LRUCache[tuple[object, ...], Recommendation] = LRUCache(
            self._config.recommendation_cache_size
        )
        self._cache.sync_epoch(graph.epoch)
        # ``storage="off"``: the feature index's uid is stable for the
        # engine's lifetime (snapshot refreshes keep the instance), so one
        # registry disable stops all process-tier segment publishing.
        if self._config.storage == "off":
            uid = getattr(self._index, "uid", None)
            if uid is not None:
                snapshot_registry().disable(uid)

    @property
    def feature_index(self) -> SemanticFeatureIndex:
        return self._index

    @property
    def expander(self) -> EntitySetExpander:
        return self._expander

    # ------------------------------------------------------------------ #
    # Recommendation
    # ------------------------------------------------------------------ #
    def recommend_for_seeds(
        self,
        seeds: Sequence[str],
        pinned_features: Sequence[SemanticFeature] = (),
        domain_type: str = "",
        top_entities: int | None = None,
        top_features: int | None = None,
        exhaustive: bool = False,
    ) -> Recommendation:
        """Recommend entities and features for an explicit seed set.

        Repeated query states are served from the epoch-keyed LRU cache;
        the domain restriction is pushed into the expander's candidate
        filter (before top-k truncation), so a domain-restricted
        recommendation returns up to ``top_entities`` matching entities
        whenever that many exist.  ``exhaustive=True`` bypasses the cache
        and scores through the seed ``rank_exhaustive()`` paths — the
        baseline side of the accumulator A/B.
        """
        if not seeds:
            raise NoSeedEntitiesError("recommendation requires at least one seed entity")
        query = ExplorationQuery(
            seed_entities=tuple(seeds),
            pinned_features=tuple(pinned_features),
            domain_type=domain_type,
        )
        if exhaustive:
            return self._compute(query, top_entities, top_features, exhaustive=True)
        key = self._cache_key(query, top_entities, top_features)
        if key is None:
            return self._compute(query, top_entities, top_features)
        epoch = self._graph.epoch
        cached = self._cache.get(key)
        if cached is not None:
            # Re-attach the caller's query (seed order may differ from the
            # canonical key the payload was computed under).
            return replace(cached, query=query)
        recommendation = self._compute(query, top_entities, top_features)
        # Epoch-guarded publication: if a concurrent mutation moved the
        # cache to a newer epoch while this result was computed against
        # the old snapshot, the put is atomically rejected — the result is
        # still returned (it is correct for the epoch the query pinned),
        # it just never masquerades as a current-epoch entry.
        self._cache.put(key, recommendation, epoch=epoch)
        return recommendation

    def recommend_many(
        self,
        seed_lists: Sequence[Sequence[str]],
        pinned_features: Sequence[SemanticFeature] = (),
        domain_type: str = "",
        top_entities: int | None = None,
        top_features: int | None = None,
    ) -> list[Recommendation]:
        """Recommend for a batch of seed sets (one payload per input).

        The batch shares one epoch's memoisation (the snapshot-pinned
        scoring support, base-probability rows and holder intersections
        warm on the first miss), duplicate seed sets inside the batch are
        computed once — including *permutations*, which canonicalise to
        the same key — and every miss lands in the LRU cache.  Results
        are byte-identical to calling :meth:`recommend_for_seeds` per
        seed list.
        """
        def key_of(seeds: Sequence[str]) -> tuple[object, ...]:
            return tuple(sorted(seeds))

        results = dedupe_batch(
            seed_lists,
            key_of,
            lambda seeds: self.recommend_for_seeds(
                seeds,
                pinned_features=pinned_features,
                domain_type=domain_type,
                top_entities=top_entities,
                top_features=top_features,
            ),
        )
        # Re-attach each caller's seed order: duplicates (including
        # permutations) share one payload but keep their own query view,
        # exactly as repeated serial calls through the cache would.
        return [
            result
            if tuple(result.query.seed_entities) == tuple(seeds)
            else replace(
                result,
                query=replace(result.query, seed_entities=tuple(seeds)),
            )
            for seeds, result in zip(seed_lists, results)
        ]

    def _compute(
        self,
        query: ExplorationQuery,
        top_entities: int | None,
        top_features: int | None,
        exhaustive: bool = False,
    ) -> Recommendation:
        """Run the two-stage ranking pipeline for one query state."""
        result: ExpansionResult = self._expander.expand(
            query.seed_entities,
            top_k=top_entities or self._config.top_entities,
            required_features=query.pinned_features,
            domain_type=query.domain_type,
            exhaustive=exhaustive,
        )
        entities = result.entities
        features = result.features[: (top_features or self._config.top_features)]
        probability_model = self._expander.feature_ranker.probability_model
        build_matrix = (
            build_correlation_matrix_exhaustive if exhaustive else build_correlation_matrix
        )
        matrix = build_matrix(probability_model, entities, features)
        return Recommendation(
            query=query,
            entities=entities,
            features=features,
            correlations=matrix,
        )

    # ------------------------------------------------------------------ #
    # Result cache
    # ------------------------------------------------------------------ #
    def _cache_key(
        self,
        query: ExplorationQuery,
        top_entities: int | None,
        top_features: int | None,
    ) -> tuple[object, ...] | None:
        """Canonicalised cache key, or ``None`` when caching is disabled.

        Seeds and pinned features are order-insensitive (the ranking model
        treats both as sets), so ``select(A) -> select(B)`` and
        ``select(B) -> select(A)`` share one entry.  The feature-index
        epoch is checked first and any change clears the whole cache, so
        every surviving entry is current — the key itself does not need an
        epoch component.
        """
        if self._config.recommendation_cache_size <= 0:
            return None
        self._refresh_epoch()
        return (
            tuple(sorted(query.seed_entities)),
            tuple(sorted(feature.key for feature in query.pinned_features)),
            query.domain_type,
            top_entities or self._config.top_entities,
            top_features or self._config.top_features,
        )

    def _refresh_epoch(self) -> int:
        """Sync with the graph epoch, clearing the cache on change.

        Reads ``graph.epoch`` (a counter) rather than ``index.epoch`` so
        that pure observability calls like :meth:`cache_info` stay O(1):
        the index property would trigger its full lazy rebuild, which can
        wait until the next actual recommendation.  The two epochs are
        identical whenever the index is fresh.
        """
        epoch = self._graph.epoch
        self._cache.sync_epoch(epoch)
        return epoch

    def stats(self) -> EngineStats:
        """The engine's typed introspection record.

        One :class:`~repro.stats.EngineStats` carrying the ranking
        configuration echo, the current graph epoch, the epoch-keyed
        recommendation cache's counters (``"recommendations"``) and the
        entity ranker's pruning counters (``"entity-ranker"``).  Reads
        the graph epoch first, so entries invalidated by a mutation are
        already dropped from the reported cache ``size``.
        """
        epoch = self._refresh_epoch()
        return EngineStats(
            component="recommendation",
            epoch=epoch,
            shards=self._config.shards,
            columnar=self._config.columnar,
            pruning=self._config.pruning,
            caches=(
                CacheStats.from_info(
                    "recommendations", self._cache.cache_info(), epoch=epoch
                ),
            ),
            pruning_counters=(
                PruningStatsView.from_counters(
                    "entity-ranker", self._expander.entity_ranker.pruning_info()
                ),
            ),
            executor=executor_stats(self._config.executor, self._config.workers),
            traversal=traversal_stats(self._graph),
        )

    def close(self) -> None:
        """Release the engine's shared-memory snapshots and cached results.

        A ``"process"`` executor publishes the feature index's columnar
        tables under the index uid (see
        :func:`repro.exec.shm.publish_feature_tables`); only this
        engine's segment is unlinked — the worker pools are process-wide
        and stay warm.  Safe to call repeatedly: the engine remains
        usable and the next process-tier query simply republishes.
        """
        uid = getattr(self._index, "uid", None)
        if uid is not None:
            release_snapshots(uid)
        self._cache.clear()

    def __enter__(self) -> "RecommendationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters and occupancy of the LRU recommendation cache.

        Deprecated shim over :meth:`stats` (the ``"recommendations"``
        cache, whose ``epoch`` key reports the cache's keying epoch).
        """
        return self.stats().cache("recommendations").as_info()

    def pruning_info(self) -> dict[str, int]:
        """Cumulative pruning counters of the underlying entity ranker.

        Deprecated shim over :meth:`stats` (the ``"entity-ranker"``
        counters).
        """
        return self.stats().pruning_view("entity-ranker").as_counters()

    def clear_cache(self) -> None:
        """Drop all cached recommendations (counters are kept)."""
        self._cache.clear()

    def recommend(self, query: ExplorationQuery) -> Recommendation:
        """Recommend for a full query state (seeds must already be present).

        Keyword-only queries cannot be answered here — the PivotE facade
        first resolves keywords to seed entities via the search engine.
        """
        if not query.seed_entities:
            raise NoSeedEntitiesError(
                "query has no seed entities; resolve keywords to entities first"
            )
        recommendation = self.recommend_for_seeds(
            query.seed_entities,
            pinned_features=query.pinned_features,
            domain_type=query.domain_type,
        )
        # Preserve the original query (including keywords) in the payload.
        return Recommendation(
            query=query,
            entities=recommendation.entities,
            features=recommendation.features,
            correlations=recommendation.correlations,
        )

    # ------------------------------------------------------------------ #
    # Pivot support
    # ------------------------------------------------------------------ #
    def pivot_targets(self, recommendation: Recommendation, max_targets: int = 10) -> list[tuple[str, str, int]]:
        """Possible pivot directions from a recommendation.

        Returns ``(anchor_entity, anchor_type, support)`` triples: the
        anchors of the recommended semantic features grouped by their
        dominant type, with how many recommended features point at them.
        Targets are ordered by the total relevance score of the features
        anchored at them, so the most query-relevant anchors (e.g. the
        shared star of the seed films) come first.  These are the
        "exploration pointers" guiding users to other domains.
        """
        support: dict[tuple[str, str], int] = {}
        strength: dict[tuple[str, str], float] = {}
        for scored in recommendation.features:
            anchor = scored.feature.anchor
            anchor_type = self._graph.dominant_type(anchor) or "(untyped)"
            key = (anchor, anchor_type)
            support[key] = support.get(key, 0) + 1
            strength[key] = strength.get(key, 0.0) + scored.score
        ranked = sorted(support.items(), key=lambda item: (-strength[item[0]], -item[1], item[0]))
        return [(anchor, anchor_type, count) for (anchor, anchor_type), count in ranked[:max_targets]]
