"""The recommendation engine (Fig 2, §2.3).

Given the current exploration query (seed entities, pinned features,
optional domain restriction) the recommendation engine produces everything
the matrix interface needs:

* the ranked similar entities (x-axis, Fig 3-c);
* the ranked semantic features (y-axis, Fig 3-e);
* the entity x feature correlation matrix behind the heat map (Fig 3-f).

It is a thin coordinator over :mod:`repro.expansion` and
:mod:`repro.ranking`; keyword-only queries are resolved to seeds by the
search engine before they reach this class (the PivotE facade does that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config import RankingConfig
from ..exceptions import NoSeedEntitiesError
from ..expansion import EntitySetExpander, ExpansionResult
from ..features import SemanticFeature, SemanticFeatureIndex
from ..kg import KnowledgeGraph
from ..ranking import (
    CorrelationMatrix,
    ScoredEntity,
    ScoredFeature,
    build_correlation_matrix,
)
from .query_state import ExplorationQuery


@dataclass(frozen=True)
class Recommendation:
    """The recommendation payload for one query state."""

    query: ExplorationQuery
    entities: Tuple[ScoredEntity, ...]
    features: Tuple[ScoredFeature, ...]
    correlations: CorrelationMatrix

    def entity_ids(self) -> List[str]:
        return [entity.entity_id for entity in self.entities]

    def feature_notations(self) -> List[str]:
        return [scored.feature.notation() for scored in self.features]


class RecommendationEngine:
    """Produces entity and semantic-feature recommendations for query states."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        feature_index: Optional[SemanticFeatureIndex] = None,
        config: Optional[RankingConfig] = None,
    ) -> None:
        self._graph = graph
        self._config = config or RankingConfig()
        self._index = feature_index or SemanticFeatureIndex.build(graph)
        self._expander = EntitySetExpander(graph, feature_index=self._index, config=self._config)

    @property
    def feature_index(self) -> SemanticFeatureIndex:
        return self._index

    @property
    def expander(self) -> EntitySetExpander:
        return self._expander

    # ------------------------------------------------------------------ #
    # Recommendation
    # ------------------------------------------------------------------ #
    def recommend_for_seeds(
        self,
        seeds: Sequence[str],
        pinned_features: Sequence[SemanticFeature] = (),
        domain_type: str = "",
        top_entities: Optional[int] = None,
        top_features: Optional[int] = None,
    ) -> Recommendation:
        """Recommend entities and features for an explicit seed set."""
        if not seeds:
            raise NoSeedEntitiesError("recommendation requires at least one seed entity")
        result: ExpansionResult = self._expander.expand(
            seeds,
            top_k=top_entities or self._config.top_entities,
            restrict_to_seed_type=bool(domain_type),
            required_features=pinned_features,
        )
        entities = result.entities
        features = result.features[: (top_features or self._config.top_features)]
        if domain_type:
            entities = tuple(
                entity
                for entity in entities
                if domain_type in self._graph.types_of(entity.entity_id)
            )
        probability_model = self._expander.feature_ranker.probability_model
        matrix = build_correlation_matrix(probability_model, entities, features)
        query = ExplorationQuery(
            seed_entities=tuple(seeds),
            pinned_features=tuple(pinned_features),
            domain_type=domain_type,
        )
        return Recommendation(
            query=query,
            entities=entities,
            features=features,
            correlations=matrix,
        )

    def recommend(self, query: ExplorationQuery) -> Recommendation:
        """Recommend for a full query state (seeds must already be present).

        Keyword-only queries cannot be answered here — the PivotE facade
        first resolves keywords to seed entities via the search engine.
        """
        if not query.seed_entities:
            raise NoSeedEntitiesError(
                "query has no seed entities; resolve keywords to entities first"
            )
        recommendation = self.recommend_for_seeds(
            query.seed_entities,
            pinned_features=query.pinned_features,
            domain_type=query.domain_type,
        )
        # Preserve the original query (including keywords) in the payload.
        return Recommendation(
            query=query,
            entities=recommendation.entities,
            features=recommendation.features,
            correlations=recommendation.correlations,
        )

    # ------------------------------------------------------------------ #
    # Pivot support
    # ------------------------------------------------------------------ #
    def pivot_targets(self, recommendation: Recommendation, max_targets: int = 10) -> List[Tuple[str, str, int]]:
        """Possible pivot directions from a recommendation.

        Returns ``(anchor_entity, anchor_type, support)`` triples: the
        anchors of the recommended semantic features grouped by their
        dominant type, with how many recommended features point at them.
        Targets are ordered by the total relevance score of the features
        anchored at them, so the most query-relevant anchors (e.g. the
        shared star of the seed films) come first.  These are the
        "exploration pointers" guiding users to other domains.
        """
        support: dict[tuple[str, str], int] = {}
        strength: dict[tuple[str, str], float] = {}
        for scored in recommendation.features:
            anchor = scored.feature.anchor
            anchor_type = self._graph.dominant_type(anchor) or "(untyped)"
            key = (anchor, anchor_type)
            support[key] = support.get(key, 0) + 1
            strength[key] = strength.get(key, 0.0) + scored.score
        ranked = sorted(support.items(), key=lambda item: (-strength[item[0]], -item[1], item[0]))
        return [(anchor, anchor_type, count) for (anchor, anchor_type), count in ranked[:max_targets]]
