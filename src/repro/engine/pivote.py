"""The PivotE system facade (Fig 2).

:class:`PivotE` wires the three components of the architecture — the user
interface model (sessions), the search engine and the recommendation engine
— into a single object with the interaction surface the demo exposes:

* ``search(keywords)``             — the initial keyword query (Fig 3-a);
* ``start_session()``              — open an exploration session;
* ``submit_keywords(...)``         — submit keywords inside a session;
* ``select_entity / pin_feature``  — reformulate the query by clicks;
* ``investigate()``                — expand the current seed set (x-axis);
* ``pivot(...)``                   — switch to another entity domain;
* ``lookup(entity)``               — the presentation area;
* ``explain(left, right)``         — the explanation area;
* ``matrix()``                     — the heat-map matrix for the current state.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass

from ..config import PivotEConfig
from ..explore import (
    DeselectEntity,
    ExplorationSession,
    LookupEntity,
    PinFeature,
    Pivot,
    Recommendation,
    RecommendationEngine,
    SelectEntity,
    SetDomain,
    SubmitKeywords,
    UnpinFeature,
)
from ..features import SemanticFeature, SemanticFeatureIndex, ShardedSemanticFeatureIndex
from ..kg import EntityProfile, KnowledgeGraph, install_topology, traversal_stats
from ..search import SearchEngine, SearchHit
from ..stats import EngineStats, StorageStats
from ..viz import (
    Heatmap,
    MatrixView,
    build_heatmap,
    build_matrix_view,
    entity_profile,
)
from .explanation import EntityPairExplanation, ExplanationBuilder


@dataclass(frozen=True)
class QueryResponse:
    """Everything the UI displays after a query is (re)formulated."""

    hits: tuple[SearchHit, ...]
    recommendation: Recommendation | None
    matrix: MatrixView | None

    @property
    def has_recommendation(self) -> bool:
        return self.recommendation is not None


class PivotE:
    """The entity-oriented exploratory search system."""

    def __init__(self, graph: KnowledgeGraph, config: PivotEConfig | None = None) -> None:
        self._graph = graph
        self._config = config or PivotEConfig.default()
        search = SearchEngine.from_graph(graph, config=self._config.search)
        self._wire(search, self._build_feature_index(graph, self._config))

    @staticmethod
    def _build_feature_index(
        graph: KnowledgeGraph, config: PivotEConfig
    ) -> SemanticFeatureIndex:
        """Materialise the semantic feature index for the configured layout."""
        if config.ranking.shards > 1:
            return ShardedSemanticFeatureIndex.build_sharded(graph, config.ranking.shards)
        return SemanticFeatureIndex.build(graph)

    def _wire(self, search: SearchEngine, feature_index: SemanticFeatureIndex) -> None:
        """Wire the three components around already-built engines.

        Shared tail of the two construction paths — :meth:`__init__`
        (build everything in RAM) and :meth:`load` (adopt components
        restored from a durable snapshot).
        """
        self._search = search
        self._feature_index = feature_index
        self._recommender = RecommendationEngine(
            self._graph, feature_index=self._feature_index, config=self._config.ranking
        )
        self._explainer = ExplanationBuilder(
            self._graph,
            self._feature_index,
            probability_model=self._recommender.expander.feature_ranker.probability_model,
        )
        self._sessions: dict[str, ExplorationSession] = {}
        self._session_counter = 0
        self._cold_start_ms = 0.0
        #: Cumulative durable-tier counters across this facade's
        #: ``save()`` / ``load()`` calls (the search engine's own
        #: build-time disk publishes live on its child record).
        self._storage_counters = {
            "publishes": 0,
            "published_bytes": 0,
            "attaches": 0,
            "attached_bytes": 0,
            "failures": 0,
        }

    def _accumulate_storage(self, store: object) -> None:
        for key in self._storage_counters:
            self._storage_counters[key] += int(getattr(store, key, 0))

    # ------------------------------------------------------------------ #
    # Durable snapshots
    # ------------------------------------------------------------------ #
    def save(self, directory: str | None = None) -> dict[str, object]:
        """Persist the whole system (graph + derived tiers) to ``directory``.

        Defaults to the configured ``snapshot_dir``.  Everything a later
        :meth:`load` needs lands under the directory: the graph's triple
        log at full fidelity plus CRC-checksummed snapshot segments of
        the fielded index and the feature tables.  Returns the written
        system manifest.
        """
        from ..storage.kgstore import save_system, system_store

        directory = directory or self._config.search.snapshot_dir
        if not directory:
            raise ValueError("save() needs a directory (or a configured snapshot_dir)")
        store = system_store(directory)
        manifest = save_system(
            directory, self._graph, self._search.index, self._feature_index, store=store
        )
        self._accumulate_storage(store)
        return manifest

    @classmethod
    def load(cls, directory: str, config: PivotEConfig | None = None) -> "PivotE":
        """Cold-start a system from a :meth:`save` directory.

        Attaches instead of rebuilding: the graph replays its triple
        log, the fielded index replays stored term counts (no document
        building, no tokenisation) and the feature index adopts the
        stored holder tables (no per-entity extraction).  Any missing or
        corrupt component degrades to rebuilding just that component
        from the loaded graph; rankings are byte-identical either way.
        A missing or corrupt graph raises
        :class:`~repro.storage.SnapshotUnavailable` — there is nothing
        to fall back to.
        """
        from ..storage.kgstore import load_system

        config = config or PivotEConfig.default()
        started = time.perf_counter()
        loaded = load_system(
            directory,
            fields=config.search.fields,
            search_shards=config.search.shards,
        )
        graph = loaded.graph
        if loaded.index is not None:
            search = SearchEngine.restore(graph, loaded.index, config=config.search)
        else:
            search = SearchEngine.from_graph(graph, config=config.search)
        feature_index: SemanticFeatureIndex | None = None
        if loaded.feature_snapshot is not None:
            try:
                if config.ranking.shards > 1:
                    feature_index = ShardedSemanticFeatureIndex.restore(
                        graph,
                        loaded.feature_snapshot,
                        num_shards=config.ranking.shards,
                    )
                else:
                    feature_index = SemanticFeatureIndex.restore(
                        graph, loaded.feature_snapshot
                    )
            except ValueError:
                loaded.store.failures += 1
        if feature_index is None:
            feature_index = cls._build_feature_index(graph, config)
        if loaded.topology is not None:
            # Seed the per-epoch memo so the first traversal attaches the
            # persisted CSR + intervals instead of paying an O(n) rebuild.
            install_topology(graph, loaded.topology)

        system = cls.__new__(cls)
        system._graph = graph
        system._config = config
        system._wire(search, feature_index)
        system._accumulate_storage(loaded.store)
        system._cold_start_ms = (time.perf_counter() - started) * 1000.0
        return system

    # ------------------------------------------------------------------ #
    # Component access
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> KnowledgeGraph:
        return self._graph

    @property
    def search_engine(self) -> SearchEngine:
        return self._search

    @property
    def recommendation_engine(self) -> RecommendationEngine:
        return self._recommender

    @property
    def feature_index(self) -> SemanticFeatureIndex:
        return self._feature_index

    @property
    def explainer(self) -> ExplanationBuilder:
        return self._explainer

    @property
    def config(self) -> PivotEConfig:
        return self._config

    # ------------------------------------------------------------------ #
    # Stateless operations
    # ------------------------------------------------------------------ #
    def search(self, keywords: str, top_k: int | None = None) -> list[SearchHit]:
        """Keyword entity search (the search-engine component alone).

        Served through the engine's LRU result cache, so repeated queries —
        including the implicit re-search of :meth:`submit_keywords` — cost a
        cache lookup instead of a postings traversal.
        """
        return self._search.search(keywords, top_k=top_k)

    def search_many(
        self, queries: Sequence[str], top_k: int | None = None
    ) -> list[list[SearchHit]]:
        """Answer a batch of keyword queries in one call (Fig 3-a, batched).

        Runs through :meth:`SearchEngine.search_many`: the batch shares one
        index snapshot, duplicate queries are computed once, and results
        are byte-identical to issuing the queries one at a time.
        """
        return self._search.search_many(queries, top_k=top_k)

    def recommend_many(
        self, seed_lists: Sequence[Sequence[str]], **kwargs: object
    ) -> list[Recommendation]:
        """Entity/feature recommendations for a batch of seed sets.

        Runs through :meth:`RecommendationEngine.recommend_many`: one
        epoch's memoisation serves the whole batch and duplicate (or
        permuted) seed sets are computed once.
        """
        return self._recommender.recommend_many(seed_lists, **kwargs)  # type: ignore[arg-type]

    def stats(self) -> EngineStats:
        """The whole system's typed introspection record.

        One :class:`~repro.stats.EngineStats` whose children are the
        search and recommendation engines' records (caches, pruning
        counters, epochs, shard/columnar configuration) and whose own
        ``rebuilds`` mapping carries the semantic feature index's
        full-vs-delta refresh counters.  ``as_dict()`` renders the tree
        as the JSON payload the ``"stats"`` API action returns.
        """
        return EngineStats(
            component="pivote",
            epoch=self._graph.epoch,
            shards=self._config.search.shards,
            columnar=self._config.search.columnar,
            pruning=self._config.search.pruning,
            rebuilds=self._feature_index.rebuild_info(),
            children=(self._search.stats(), self._recommender.stats()),
            storage=self._storage_stats(),
            traversal=traversal_stats(self._graph),
        )

    def _storage_stats(self) -> StorageStats | None:
        """The facade's durable-tier record (``None`` for plain shm systems).

        Counts this facade's :meth:`save` / :meth:`load` traffic;
        ``cold_start_ms`` is how long the last :meth:`load` took end to
        end (graph replay + component restore + wiring).
        """
        counters = self._storage_counters
        if (
            self._config.search.storage == "shm"
            and not self._config.search.snapshot_dir
            and not any(counters.values())
            and not self._cold_start_ms
        ):
            return None
        return StorageStats(
            backend=self._config.search.storage,
            snapshot_dir=self._config.search.snapshot_dir,
            cold_start_ms=self._cold_start_ms,
            **counters,
        )

    def close(self) -> None:
        """Release both engines' caches and shared-memory snapshots."""
        self._search.close()
        self._recommender.close()

    def __enter__(self) -> "PivotE":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def search_cache_info(self) -> dict[str, int]:
        """Hit/miss counters of the search engine's LRU result cache.

        Deprecated shim over :meth:`stats` (the search child's
        ``"results"`` cache).
        """
        return self.stats().child("search").cache("results").as_info()

    def recommendation_cache_info(self) -> dict[str, int]:
        """Hit/miss counters of the recommendation engine's LRU cache.

        Session operations that revisit a query state — ``select`` followed
        by ``deselect``, re-running ``investigate``, rebuilding the matrix —
        are served from this epoch-keyed cache; any graph mutation clears it.
        Deprecated shim over :meth:`stats` (the recommendation child's
        ``"recommendations"`` cache).
        """
        return self.stats().child("recommendation").cache("recommendations").as_info()

    def recommend(self, seeds: Sequence[str], **kwargs: object) -> Recommendation:
        """Entity/feature recommendation for explicit seeds (LRU-cached)."""
        return self._recommender.recommend_for_seeds(seeds, **kwargs)  # type: ignore[arg-type]

    def lookup(self, entity_id: str) -> EntityProfile:
        """The entity presentation area (Fig 3-d)."""
        return entity_profile(self._graph, entity_id)

    def explain(self, left: str, right: str) -> EntityPairExplanation:
        """The explanation area: why are two entities related?"""
        return self._explainer.explain_pair(left, right)

    def heatmap_for(self, recommendation: Recommendation) -> Heatmap:
        """Discretise a recommendation's correlations into the 7-level map."""
        return build_heatmap(recommendation.correlations, self._config.heatmap)

    def matrix_for(self, recommendation: Recommendation) -> MatrixView:
        """The full matrix view for a recommendation."""
        heatmap = self.heatmap_for(recommendation)
        return build_matrix_view(self._graph, recommendation, heatmap)

    # ------------------------------------------------------------------ #
    # Sessions
    # ------------------------------------------------------------------ #
    def start_session(self, session_id: str | None = None) -> ExplorationSession:
        """Open a new exploration session."""
        if session_id is None:
            self._session_counter += 1
            session_id = f"session-{self._session_counter}"
        session = ExplorationSession(session_id)
        self._sessions[session_id] = session
        return session

    def session(self, session_id: str) -> ExplorationSession:
        """Retrieve an existing session."""
        if session_id not in self._sessions:
            raise KeyError(f"unknown session: {session_id!r}")
        return self._sessions[session_id]

    # ------------------------------------------------------------------ #
    # Session-level interaction surface
    # ------------------------------------------------------------------ #
    def submit_keywords(self, session: ExplorationSession, keywords: str, top_k: int | None = None) -> QueryResponse:
        """Submit a keyword query inside a session (Fig 3-a).

        The top search hits seed the recommendation so that the matrix is
        populated immediately, matching the demo's behaviour of returning
        relevant entities *and* their semantic features for a keyword query.
        """
        session.apply(SubmitKeywords(keywords))
        hits = self._search.search(keywords, top_k=top_k)
        recommendation: Recommendation | None = None
        matrix: MatrixView | None = None
        if hits:
            seeds = [hit.entity_id for hit in hits[: min(3, len(hits))]]
            recommendation = self._recommender.recommend_for_seeds(
                seeds,
                pinned_features=session.current_query.pinned_features,
                domain_type=session.current_query.domain_type,
            )
            matrix = self.matrix_for(recommendation)
        return QueryResponse(hits=tuple(hits), recommendation=recommendation, matrix=matrix)

    def select_entity(self, session: ExplorationSession, entity_id: str) -> QueryResponse:
        """Click an entity to add it as an example seed."""
        self._graph.require_entity(entity_id)
        session.apply(SelectEntity(entity_id))
        return self._respond(session)

    def deselect_entity(self, session: ExplorationSession, entity_id: str) -> QueryResponse:
        """Remove an example seed from the query."""
        session.apply(DeselectEntity(entity_id))
        return self._respond(session)

    def pin_feature(self, session: ExplorationSession, feature: SemanticFeature) -> QueryResponse:
        """Add a semantic feature as a query condition."""
        session.apply(PinFeature(feature))
        return self._respond(session)

    def unpin_feature(self, session: ExplorationSession, feature: SemanticFeature) -> QueryResponse:
        """Remove a pinned semantic feature."""
        session.apply(UnpinFeature(feature))
        return self._respond(session)

    def set_domain(self, session: ExplorationSession, domain_type: str) -> QueryResponse:
        """Filter the x-axis to one entity type."""
        session.apply(SetDomain(domain_type))
        return self._respond(session)

    def lookup_in_session(self, session: ExplorationSession, entity_id: str) -> EntityProfile:
        """Open an entity profile, recording the lookup in the session."""
        session.apply(LookupEntity(entity_id))
        return self.lookup(entity_id)

    def investigate(self, session: ExplorationSession) -> QueryResponse:
        """Run the investigation process on the current seed set."""
        return self._respond(session)

    def pivot(self, session: ExplorationSession, target_entity: str) -> QueryResponse:
        """Pivot the x-axis into the domain of ``target_entity``.

        The target's dominant type becomes the new search domain and the
        target itself the new seed — the "browse" operation of the paper.
        """
        self._graph.require_entity(target_entity)
        target_type = self._graph.dominant_type(target_entity)
        session.apply(Pivot(target_entity=target_entity, target_type=target_type))
        return self._respond(session)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _respond(self, session: ExplorationSession) -> QueryResponse:
        """Compute the response for the session's current query state."""
        query = session.current_query
        if not query.seed_entities:
            if query.keywords.strip():
                hits = self._search.search(query.keywords)
                return QueryResponse(hits=tuple(hits), recommendation=None, matrix=None)
            return QueryResponse(hits=(), recommendation=None, matrix=None)
        recommendation = self._recommender.recommend(query)
        matrix = self.matrix_for(recommendation)
        return QueryResponse(hits=(), recommendation=recommendation, matrix=matrix)
