"""The PivotE system facade (Fig 2).

:class:`PivotE` wires the three components of the architecture — the user
interface model (sessions), the search engine and the recommendation engine
— into a single object with the interaction surface the demo exposes:

* ``search(keywords)``             — the initial keyword query (Fig 3-a);
* ``start_session()``              — open an exploration session;
* ``submit_keywords(...)``         — submit keywords inside a session;
* ``select_entity / pin_feature``  — reformulate the query by clicks;
* ``investigate()``                — expand the current seed set (x-axis);
* ``pivot(...)``                   — switch to another entity domain;
* ``lookup(entity)``               — the presentation area;
* ``explain(left, right)``         — the explanation area;
* ``matrix()``                     — the heat-map matrix for the current state.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..config import PivotEConfig
from ..explore import (
    DeselectEntity,
    ExplorationSession,
    LookupEntity,
    PinFeature,
    Pivot,
    Recommendation,
    RecommendationEngine,
    SelectEntity,
    SetDomain,
    SubmitKeywords,
    UnpinFeature,
)
from ..features import SemanticFeature, SemanticFeatureIndex, ShardedSemanticFeatureIndex
from ..kg import EntityProfile, KnowledgeGraph
from ..search import SearchEngine, SearchHit
from ..stats import EngineStats
from ..viz import (
    Heatmap,
    MatrixView,
    build_heatmap,
    build_matrix_view,
    entity_profile,
)
from .explanation import EntityPairExplanation, ExplanationBuilder


@dataclass(frozen=True)
class QueryResponse:
    """Everything the UI displays after a query is (re)formulated."""

    hits: tuple[SearchHit, ...]
    recommendation: Recommendation | None
    matrix: MatrixView | None

    @property
    def has_recommendation(self) -> bool:
        return self.recommendation is not None


class PivotE:
    """The entity-oriented exploratory search system."""

    def __init__(self, graph: KnowledgeGraph, config: PivotEConfig | None = None) -> None:
        self._graph = graph
        self._config = config or PivotEConfig.default()
        self._search = SearchEngine.from_graph(graph, config=self._config.search)
        if self._config.ranking.shards > 1:
            self._feature_index: SemanticFeatureIndex = (
                ShardedSemanticFeatureIndex.build_sharded(graph, self._config.ranking.shards)
            )
        else:
            self._feature_index = SemanticFeatureIndex.build(graph)
        self._recommender = RecommendationEngine(
            graph, feature_index=self._feature_index, config=self._config.ranking
        )
        self._explainer = ExplanationBuilder(
            graph,
            self._feature_index,
            probability_model=self._recommender.expander.feature_ranker.probability_model,
        )
        self._sessions: dict[str, ExplorationSession] = {}
        self._session_counter = 0

    # ------------------------------------------------------------------ #
    # Component access
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> KnowledgeGraph:
        return self._graph

    @property
    def search_engine(self) -> SearchEngine:
        return self._search

    @property
    def recommendation_engine(self) -> RecommendationEngine:
        return self._recommender

    @property
    def feature_index(self) -> SemanticFeatureIndex:
        return self._feature_index

    @property
    def explainer(self) -> ExplanationBuilder:
        return self._explainer

    @property
    def config(self) -> PivotEConfig:
        return self._config

    # ------------------------------------------------------------------ #
    # Stateless operations
    # ------------------------------------------------------------------ #
    def search(self, keywords: str, top_k: int | None = None) -> list[SearchHit]:
        """Keyword entity search (the search-engine component alone).

        Served through the engine's LRU result cache, so repeated queries —
        including the implicit re-search of :meth:`submit_keywords` — cost a
        cache lookup instead of a postings traversal.
        """
        return self._search.search(keywords, top_k=top_k)

    def search_many(
        self, queries: Sequence[str], top_k: int | None = None
    ) -> list[list[SearchHit]]:
        """Answer a batch of keyword queries in one call (Fig 3-a, batched).

        Runs through :meth:`SearchEngine.search_many`: the batch shares one
        index snapshot, duplicate queries are computed once, and results
        are byte-identical to issuing the queries one at a time.
        """
        return self._search.search_many(queries, top_k=top_k)

    def recommend_many(
        self, seed_lists: Sequence[Sequence[str]], **kwargs: object
    ) -> list[Recommendation]:
        """Entity/feature recommendations for a batch of seed sets.

        Runs through :meth:`RecommendationEngine.recommend_many`: one
        epoch's memoisation serves the whole batch and duplicate (or
        permuted) seed sets are computed once.
        """
        return self._recommender.recommend_many(seed_lists, **kwargs)  # type: ignore[arg-type]

    def stats(self) -> EngineStats:
        """The whole system's typed introspection record.

        One :class:`~repro.stats.EngineStats` whose children are the
        search and recommendation engines' records (caches, pruning
        counters, epochs, shard/columnar configuration) and whose own
        ``rebuilds`` mapping carries the semantic feature index's
        full-vs-delta refresh counters.  ``as_dict()`` renders the tree
        as the JSON payload the ``"stats"`` API action returns.
        """
        return EngineStats(
            component="pivote",
            epoch=self._graph.epoch,
            shards=self._config.search.shards,
            columnar=self._config.search.columnar,
            pruning=self._config.search.pruning,
            rebuilds=self._feature_index.rebuild_info(),
            children=(self._search.stats(), self._recommender.stats()),
        )

    def close(self) -> None:
        """Release both engines' caches and shared-memory snapshots."""
        self._search.close()
        self._recommender.close()

    def __enter__(self) -> "PivotE":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def search_cache_info(self) -> dict[str, int]:
        """Hit/miss counters of the search engine's LRU result cache.

        Deprecated shim over :meth:`stats` (the search child's
        ``"results"`` cache).
        """
        return self.stats().child("search").cache("results").as_info()

    def recommendation_cache_info(self) -> dict[str, int]:
        """Hit/miss counters of the recommendation engine's LRU cache.

        Session operations that revisit a query state — ``select`` followed
        by ``deselect``, re-running ``investigate``, rebuilding the matrix —
        are served from this epoch-keyed cache; any graph mutation clears it.
        Deprecated shim over :meth:`stats` (the recommendation child's
        ``"recommendations"`` cache).
        """
        return self.stats().child("recommendation").cache("recommendations").as_info()

    def recommend(self, seeds: Sequence[str], **kwargs: object) -> Recommendation:
        """Entity/feature recommendation for explicit seeds (LRU-cached)."""
        return self._recommender.recommend_for_seeds(seeds, **kwargs)  # type: ignore[arg-type]

    def lookup(self, entity_id: str) -> EntityProfile:
        """The entity presentation area (Fig 3-d)."""
        return entity_profile(self._graph, entity_id)

    def explain(self, left: str, right: str) -> EntityPairExplanation:
        """The explanation area: why are two entities related?"""
        return self._explainer.explain_pair(left, right)

    def heatmap_for(self, recommendation: Recommendation) -> Heatmap:
        """Discretise a recommendation's correlations into the 7-level map."""
        return build_heatmap(recommendation.correlations, self._config.heatmap)

    def matrix_for(self, recommendation: Recommendation) -> MatrixView:
        """The full matrix view for a recommendation."""
        heatmap = self.heatmap_for(recommendation)
        return build_matrix_view(self._graph, recommendation, heatmap)

    # ------------------------------------------------------------------ #
    # Sessions
    # ------------------------------------------------------------------ #
    def start_session(self, session_id: str | None = None) -> ExplorationSession:
        """Open a new exploration session."""
        if session_id is None:
            self._session_counter += 1
            session_id = f"session-{self._session_counter}"
        session = ExplorationSession(session_id)
        self._sessions[session_id] = session
        return session

    def session(self, session_id: str) -> ExplorationSession:
        """Retrieve an existing session."""
        if session_id not in self._sessions:
            raise KeyError(f"unknown session: {session_id!r}")
        return self._sessions[session_id]

    # ------------------------------------------------------------------ #
    # Session-level interaction surface
    # ------------------------------------------------------------------ #
    def submit_keywords(self, session: ExplorationSession, keywords: str, top_k: int | None = None) -> QueryResponse:
        """Submit a keyword query inside a session (Fig 3-a).

        The top search hits seed the recommendation so that the matrix is
        populated immediately, matching the demo's behaviour of returning
        relevant entities *and* their semantic features for a keyword query.
        """
        session.apply(SubmitKeywords(keywords))
        hits = self._search.search(keywords, top_k=top_k)
        recommendation: Recommendation | None = None
        matrix: MatrixView | None = None
        if hits:
            seeds = [hit.entity_id for hit in hits[: min(3, len(hits))]]
            recommendation = self._recommender.recommend_for_seeds(
                seeds,
                pinned_features=session.current_query.pinned_features,
                domain_type=session.current_query.domain_type,
            )
            matrix = self.matrix_for(recommendation)
        return QueryResponse(hits=tuple(hits), recommendation=recommendation, matrix=matrix)

    def select_entity(self, session: ExplorationSession, entity_id: str) -> QueryResponse:
        """Click an entity to add it as an example seed."""
        self._graph.require_entity(entity_id)
        session.apply(SelectEntity(entity_id))
        return self._respond(session)

    def deselect_entity(self, session: ExplorationSession, entity_id: str) -> QueryResponse:
        """Remove an example seed from the query."""
        session.apply(DeselectEntity(entity_id))
        return self._respond(session)

    def pin_feature(self, session: ExplorationSession, feature: SemanticFeature) -> QueryResponse:
        """Add a semantic feature as a query condition."""
        session.apply(PinFeature(feature))
        return self._respond(session)

    def unpin_feature(self, session: ExplorationSession, feature: SemanticFeature) -> QueryResponse:
        """Remove a pinned semantic feature."""
        session.apply(UnpinFeature(feature))
        return self._respond(session)

    def set_domain(self, session: ExplorationSession, domain_type: str) -> QueryResponse:
        """Filter the x-axis to one entity type."""
        session.apply(SetDomain(domain_type))
        return self._respond(session)

    def lookup_in_session(self, session: ExplorationSession, entity_id: str) -> EntityProfile:
        """Open an entity profile, recording the lookup in the session."""
        session.apply(LookupEntity(entity_id))
        return self.lookup(entity_id)

    def investigate(self, session: ExplorationSession) -> QueryResponse:
        """Run the investigation process on the current seed set."""
        return self._respond(session)

    def pivot(self, session: ExplorationSession, target_entity: str) -> QueryResponse:
        """Pivot the x-axis into the domain of ``target_entity``.

        The target's dominant type becomes the new search domain and the
        target itself the new seed — the "browse" operation of the paper.
        """
        self._graph.require_entity(target_entity)
        target_type = self._graph.dominant_type(target_entity)
        session.apply(Pivot(target_entity=target_entity, target_type=target_type))
        return self._respond(session)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _respond(self, session: ExplorationSession) -> QueryResponse:
        """Compute the response for the session's current query state."""
        query = session.current_query
        if not query.seed_entities:
            if query.keywords.strip():
                hits = self._search.search(query.keywords)
                return QueryResponse(hits=tuple(hits), recommendation=None, matrix=None)
            return QueryResponse(hits=(), recommendation=None, matrix=None)
        recommendation = self._recommender.recommend(query)
        matrix = self.matrix_for(recommendation)
        return QueryResponse(hits=(), recommendation=recommendation, matrix=matrix)
