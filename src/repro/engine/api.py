"""In-process request/response API mirroring the demo's web backend.

The original PivotE is a web application: a JavaScript front end issues
requests to a backend that runs the search and recommendation engines.  This
module provides that backend as an in-process handler speaking plain
dictionaries (the JSON a web layer would serialise), so that the full demo
behaviour is reproducible and testable without a network stack.

Every request is a dict with an ``"action"`` key; every response is a dict
with ``"status"`` (``"ok"`` or ``"error"``) plus action-specific payloads.
:meth:`PivotEApi.handle` never raises: malformed requests — unknown
actions, missing or mistyped fields, unknown sessions or entities — come
back as ``{"status": "error", "error": "<message>"}`` envelopes.

Request/response schema per action (all requests may carry extra keys,
which are ignored; every ok-response carries ``"status": "ok"``):

``search``
    Request: ``keywords`` (str), optional ``top_k`` (positive int, or a
    string of digits).  Response: ``hits`` — list of
    ``{"entity", "score", "label"}`` dicts.
``start_session``
    Request: optional ``session_id`` (str; generated when omitted).
    Response: ``session_id``.
``submit_keywords``
    Request: ``session_id``, ``keywords``.  Response: a query-response
    payload — ``hits`` plus, when seeds exist, ``recommendation`` and
    ``matrix`` dicts.
``select_entity`` / ``deselect_entity``
    Request: ``session_id``, ``entity``.  Response: query-response
    payload.
``pin_feature`` / ``unpin_feature``
    Request: ``session_id``, ``feature`` (the ``predicate::object``
    notation of :meth:`SemanticFeature.parse`).  Response:
    query-response payload.
``set_domain``
    Request: ``session_id``, ``domain`` (entity type IRI).  Response:
    query-response payload.
``pivot``
    Request: ``session_id``, ``entity``.  Response: query-response
    payload.
``investigate``
    Request: ``session_id``.  Response: query-response payload.
``lookup``
    Request: ``entity``, optional ``session_id`` (records the lookup in
    the session when given).  Response: ``profile`` dict.
``explain``
    Request: ``left``, ``right`` (entity ids).  Response: ``text`` and
    ``shared_features`` (list of feature notations).
``session_state``
    Request: ``session_id``.  Response: ``session`` dict (query state
    and history).
``revisit``
    Request: ``session_id``, ``step`` (int index into the session
    history).  Response: query-response payload.
``stats``
    Request: no fields.  Response: ``stats`` — the system's
    :meth:`~repro.stats.EngineStats.as_dict` introspection tree
    (caches, pruning counters, epochs, shard/columnar configuration,
    feature-index rebuild counters).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from ..exceptions import PivotEError
from ..features import SemanticFeature
from ..viz import (
    matrix_view_to_dict,
    profile_as_dict,
    recommendation_to_dict,
    session_to_dict,
)
from .pivote import PivotE, QueryResponse

Request = dict[str, Any]
Response = dict[str, Any]


class PivotEApi:
    """Dispatches UI requests to a :class:`PivotE` instance."""

    def __init__(self, system: PivotE) -> None:
        self._system = system
        self._handlers: dict[str, Callable[[Request], Response]] = {
            "search": self._handle_search,
            "start_session": self._handle_start_session,
            "submit_keywords": self._handle_submit_keywords,
            "select_entity": self._handle_select_entity,
            "deselect_entity": self._handle_deselect_entity,
            "pin_feature": self._handle_pin_feature,
            "unpin_feature": self._handle_unpin_feature,
            "set_domain": self._handle_set_domain,
            "pivot": self._handle_pivot,
            "investigate": self._handle_investigate,
            "lookup": self._handle_lookup,
            "explain": self._handle_explain,
            "session_state": self._handle_session_state,
            "revisit": self._handle_revisit,
            "stats": self._handle_stats,
        }

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def handle(self, request: Request) -> Response:
        """Handle one request; exceptions become error responses."""
        action = request.get("action")
        if not action or action not in self._handlers:
            return {"status": "error", "error": f"unknown action: {action!r}"}
        try:
            return self._handlers[action](request)
        except PivotEError as exc:
            return {"status": "error", "error": str(exc)}
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            return {"status": "error", "error": f"{type(exc).__name__}: {exc}"}

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _session(self, request: Request):
        session_id = request.get("session_id")
        if not session_id:
            raise KeyError("missing 'session_id'")
        return self._system.session(session_id)

    def _query_response_payload(self, response: QueryResponse) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "hits": [hit.as_dict() for hit in response.hits],
        }
        if response.recommendation is not None:
            payload["recommendation"] = recommendation_to_dict(response.recommendation)
        if response.matrix is not None:
            payload["matrix"] = matrix_view_to_dict(response.matrix)
        return payload

    @staticmethod
    def _feature_from(request: Request) -> SemanticFeature:
        notation = request.get("feature")
        if not notation:
            raise KeyError("missing 'feature'")
        return SemanticFeature.parse(str(notation))

    @staticmethod
    def _as_int(value: object, key: str, minimum: int | None = None) -> int:
        """Coerce a request field to an int, with an envelope-safe error.

        Accepts ints and numeric strings; rejects booleans (JSON
        ``true`` is not a count) and anything ``int()`` cannot parse,
        raising ``ValueError`` so :meth:`handle` reports a clean error
        envelope instead of letting a ``TypeError`` escape.
        """
        if isinstance(value, bool):
            raise ValueError(f"{key!r} must be an integer, got {value!r}")
        try:
            coerced = int(value)  # type: ignore[call-overload]
        except (TypeError, ValueError):
            raise ValueError(f"{key!r} must be an integer, got {value!r}") from None
        if minimum is not None and coerced < minimum:
            raise ValueError(f"{key!r} must be >= {minimum}, got {coerced}")
        return coerced

    # ------------------------------------------------------------------ #
    # Handlers
    # ------------------------------------------------------------------ #
    def _handle_search(self, request: Request) -> Response:
        keywords = str(request.get("keywords", ""))
        top_k = request.get("top_k")
        if top_k is not None:
            top_k = self._as_int(top_k, "top_k", minimum=1)
        hits = self._system.search(keywords, top_k=top_k)
        return {"status": "ok", "hits": [hit.as_dict() for hit in hits]}

    def _handle_start_session(self, request: Request) -> Response:
        session = self._system.start_session(request.get("session_id"))
        return {"status": "ok", "session_id": session.session_id}

    def _handle_submit_keywords(self, request: Request) -> Response:
        session = self._session(request)
        keywords = str(request.get("keywords", ""))
        response = self._system.submit_keywords(session, keywords)
        return {"status": "ok", **self._query_response_payload(response)}

    def _handle_select_entity(self, request: Request) -> Response:
        session = self._session(request)
        response = self._system.select_entity(session, str(request["entity"]))
        return {"status": "ok", **self._query_response_payload(response)}

    def _handle_deselect_entity(self, request: Request) -> Response:
        session = self._session(request)
        response = self._system.deselect_entity(session, str(request["entity"]))
        return {"status": "ok", **self._query_response_payload(response)}

    def _handle_pin_feature(self, request: Request) -> Response:
        session = self._session(request)
        response = self._system.pin_feature(session, self._feature_from(request))
        return {"status": "ok", **self._query_response_payload(response)}

    def _handle_unpin_feature(self, request: Request) -> Response:
        session = self._session(request)
        response = self._system.unpin_feature(session, self._feature_from(request))
        return {"status": "ok", **self._query_response_payload(response)}

    def _handle_set_domain(self, request: Request) -> Response:
        session = self._session(request)
        response = self._system.set_domain(session, str(request.get("domain", "")))
        return {"status": "ok", **self._query_response_payload(response)}

    def _handle_pivot(self, request: Request) -> Response:
        session = self._session(request)
        response = self._system.pivot(session, str(request["entity"]))
        return {"status": "ok", **self._query_response_payload(response)}

    def _handle_investigate(self, request: Request) -> Response:
        session = self._session(request)
        response = self._system.investigate(session)
        return {"status": "ok", **self._query_response_payload(response)}

    def _handle_lookup(self, request: Request) -> Response:
        session_id = request.get("session_id")
        entity = str(request["entity"])
        if session_id:
            profile = self._system.lookup_in_session(self._system.session(session_id), entity)
        else:
            profile = self._system.lookup(entity)
        return {"status": "ok", "profile": profile_as_dict(profile)}

    def _handle_explain(self, request: Request) -> Response:
        explanation = self._system.explain(str(request["left"]), str(request["right"]))
        return {
            "status": "ok",
            "text": explanation.text,
            "shared_features": [feature.notation() for feature in explanation.shared_features],
        }

    def _handle_session_state(self, request: Request) -> Response:
        session = self._session(request)
        return {"status": "ok", "session": session_to_dict(session)}

    def _handle_revisit(self, request: Request) -> Response:
        session = self._session(request)
        step = self._as_int(request["step"], "step")
        session.revisit(step)
        response = self._system.investigate(session)
        return {"status": "ok", **self._query_response_payload(response)}

    def _handle_stats(self, request: Request) -> Response:
        return {"status": "ok", "stats": self._system.stats().as_dict()}
