"""The PivotE system facade, explanation builder and the in-process API."""

from .api import PivotEApi
from .explanation import CellExplanation, EntityPairExplanation, ExplanationBuilder
from .pivote import PivotE, QueryResponse

__all__ = [
    "CellExplanation",
    "EntityPairExplanation",
    "ExplanationBuilder",
    "PivotE",
    "PivotEApi",
    "QueryResponse",
]
