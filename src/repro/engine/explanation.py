"""Explanations of semantic correlations (the explanation area, Fig 3-f).

The paper's example: "if the system explains the semantic correlation
between Forrest_Gump and Apollo_13_(film) is that both of them are performed
by Tom_Hanks and Gary_Sinise, users may have a better understanding about
the search context".  This module produces exactly those explanations:

* why two entities correlate (their shared semantic features), and
* why an entity correlates with a semantic feature under the current query
  (direct match vs. type-smoothed evidence plus the feature's relevance).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..features import SemanticFeature, SemanticFeatureIndex
from ..kg import KnowledgeGraph
from ..ranking import FeatureProbabilityModel, ScoredFeature


@dataclass(frozen=True)
class EntityPairExplanation:
    """Shared evidence connecting two entities."""

    left: str
    right: str
    shared_features: tuple[SemanticFeature, ...]
    text: str


@dataclass(frozen=True)
class CellExplanation:
    """Why one matrix cell (entity, feature) has its correlation."""

    entity_id: str
    feature: SemanticFeature
    correlation: float
    holds: bool
    evidence: str
    feature_relevance: float


class ExplanationBuilder:
    """Builds human-readable explanations of correlations."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        feature_index: SemanticFeatureIndex,
        probability_model: FeatureProbabilityModel | None = None,
    ) -> None:
        self._graph = graph
        self._index = feature_index
        self._probability = probability_model or FeatureProbabilityModel(graph, feature_index)

    # ------------------------------------------------------------------ #
    # Entity-pair explanations
    # ------------------------------------------------------------------ #
    def explain_pair(self, left: str, right: str, max_features: int = 5) -> EntityPairExplanation:
        """Explain why two entities are semantically related."""
        self._graph.require_entity(left)
        self._graph.require_entity(right)
        shared = sorted(self._index.shared_features(left, right))
        shown = shared[:max_features]
        left_label = self._graph.label(left)
        right_label = self._graph.label(right)
        if not shared:
            text = f"{left_label} and {right_label} share no direct semantic features."
        else:
            clauses: list[str] = []
            by_predicate: dict[str, list[str]] = {}
            for feature in shown:
                by_predicate.setdefault(feature.predicate, []).append(self._graph.label(feature.anchor))
            for predicate, anchors in sorted(by_predicate.items()):
                clauses.append(f"both have '{predicate}' {', '.join(sorted(set(anchors)))}")
            text = f"{left_label} and {right_label} are related: " + "; ".join(clauses) + "."
        return EntityPairExplanation(
            left=left,
            right=right,
            shared_features=tuple(shared),
            text=text,
        )

    # ------------------------------------------------------------------ #
    # Cell explanations
    # ------------------------------------------------------------------ #
    def explain_cell(self, entity_id: str, scored_feature: ScoredFeature) -> CellExplanation:
        """Explain one (entity, feature) correlation of the heat map."""
        feature = scored_feature.feature
        probability, evidence = self._probability.probability_with_explanation(feature, entity_id)
        correlation = probability * scored_feature.score
        return CellExplanation(
            entity_id=entity_id,
            feature=feature,
            correlation=correlation,
            holds=self._index.holds(entity_id, feature),
            evidence=evidence,
            feature_relevance=scored_feature.score,
        )

    def explain_recommendation_of(
        self,
        entity_id: str,
        scored_features: Sequence[ScoredFeature],
        max_reasons: int = 3,
    ) -> str:
        """One-sentence justification of why an entity was recommended."""
        cells = [self.explain_cell(entity_id, scored) for scored in scored_features]
        cells.sort(key=lambda cell: -cell.correlation)
        top = [cell for cell in cells[:max_reasons] if cell.correlation > 0]
        label = self._graph.label(entity_id)
        if not top:
            return f"{label} shares no strong semantic features with the query."
        reasons = []
        for cell in top:
            anchor_label = self._graph.label(cell.feature.anchor)
            reasons.append(f"{cell.feature.predicate} {anchor_label}")
        return f"{label} is recommended because it matches: " + "; ".join(reasons) + "."
