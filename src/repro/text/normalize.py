"""Token and string normalization.

Entity labels in KGs mix underscores, camel case, punctuation and unicode
accents ("Tom_Hanks", "PandaSearch", "Amélie").  The normalizer folds all of
these into plain lower-cased ASCII-ish tokens so that the inverted index and
the query side agree on the vocabulary.
"""

from __future__ import annotations

import re
import unicodedata

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")
_NON_ALNUM = re.compile(r"[^0-9a-zA-Z]+")
_WHITESPACE = re.compile(r"\s+")


def strip_accents(text: str) -> str:
    """Remove diacritical marks: ``"Amélie"`` -> ``"Amelie"``."""
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


def split_camel_case(text: str) -> str:
    """Insert spaces at lower-to-upper camel-case boundaries."""
    return _CAMEL_BOUNDARY.sub(" ", text)


def normalize_token(token: str) -> str:
    """Normalize a single token: accent-fold and lower-case."""
    return strip_accents(token).lower()


def normalize_text(text: str) -> str:
    """Normalize a free-text string for tokenization.

    Underscores and punctuation become spaces, camel case is split, accents
    are stripped and everything is lower-cased.
    """
    text = strip_accents(text)
    text = split_camel_case(text)
    text = _NON_ALNUM.sub(" ", text)
    text = _WHITESPACE.sub(" ", text)
    return text.strip().lower()


def light_stem(token: str) -> str:
    """A deliberately light English stemmer.

    Full Porter stemming is overkill for entity names; this stemmer only
    removes plural/possessive suffixes so that ``"films"`` matches
    ``"film"`` while leaving short tokens untouched.
    """
    if len(token) <= 3:
        return token
    if token.endswith("'s"):
        return token[:-2]
    if token.endswith("ies") and len(token) > 4:
        return token[:-3] + "y"
    if token.endswith("sses"):
        return token[:-2]
    if token.endswith("s") and not token.endswith("ss") and not token.endswith("us"):
        return token[:-1]
    return token
