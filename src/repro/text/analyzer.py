"""The analyzer pipeline: tokenize -> stopword-filter -> stem.

Both the indexing side (five-field entity documents) and the query side use
the same analyzer instance so that terms line up.  The analyzer is
configurable because names benefit from keeping stopwords ("The Terminal")
while attribute text does not.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from .normalize import light_stem, normalize_token
from .stopwords import ENGLISH_STOPWORDS
from .tokenizer import tokenize


@dataclass(frozen=True)
class Analyzer:
    """A configurable text analysis pipeline.

    Parameters
    ----------
    remove_stopwords:
        Drop stopwords after tokenization.
    stem:
        Apply the light plural stemmer.
    min_token_length:
        Tokens shorter than this are discarded (0 keeps everything).
    stopwords:
        The stopword set to use when ``remove_stopwords`` is on.
    """

    remove_stopwords: bool = True
    stem: bool = True
    min_token_length: int = 1
    stopwords: frozenset[str] = field(default=ENGLISH_STOPWORDS)

    def analyze(self, text: str) -> list[str]:
        """Run the full pipeline on one string."""
        tokens = tokenize(text)
        result: list[str] = []
        for token in tokens:
            if self.remove_stopwords and token in self.stopwords:
                continue
            if self.stem:
                token = light_stem(token)
            if len(token) < self.min_token_length:
                continue
            result.append(token)
        return result

    def analyze_all(self, texts: Iterable[str]) -> list[str]:
        """Run the pipeline over many strings, returning one flat list."""
        tokens: list[str] = []
        for text in texts:
            tokens.extend(self.analyze(text))
        return tokens

    def analyze_query(self, query: str) -> list[str]:
        """Analyze a keyword query.

        Queries go through the same pipeline as documents, but a query that
        consists *only* of stopwords falls back to un-filtered tokens so
        that e.g. the query ``"The Who"`` still produces terms.
        """
        analyzed = self.analyze(query)
        if analyzed:
            return analyzed
        fallback = [normalize_token(token) for token in tokenize(query)]
        if self.stem:
            fallback = [light_stem(token) for token in fallback]
        return [token for token in fallback if token]


#: Analyzer used for name-like fields: keeps stopwords, since names such as
#: "The Terminal" or "The Who" are dominated by them.
NAME_ANALYZER = Analyzer(remove_stopwords=False, stem=False)

#: Analyzer used for descriptive text fields.
TEXT_ANALYZER = Analyzer(remove_stopwords=True, stem=True)
