"""Text analysis: tokenization, normalization, stopwords and analyzers."""

from .analyzer import Analyzer, NAME_ANALYZER, TEXT_ANALYZER
from .normalize import (
    light_stem,
    normalize_text,
    normalize_token,
    split_camel_case,
    strip_accents,
)
from .stopwords import ENGLISH_STOPWORDS, is_stopword, make_stopword_set
from .tokenizer import character_ngrams, ngrams, tokenize, tokenize_all

__all__ = [
    "Analyzer",
    "ENGLISH_STOPWORDS",
    "NAME_ANALYZER",
    "TEXT_ANALYZER",
    "character_ngrams",
    "is_stopword",
    "light_stem",
    "make_stopword_set",
    "ngrams",
    "normalize_text",
    "normalize_token",
    "split_camel_case",
    "strip_accents",
    "tokenize",
    "tokenize_all",
]
