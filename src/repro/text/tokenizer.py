"""Tokenization of entity labels, literals and keyword queries."""

from __future__ import annotations

from collections.abc import Iterable

from .normalize import normalize_text


def tokenize(text: str) -> list[str]:
    """Split a string into normalized tokens.

    >>> tokenize("Forrest_Gump (1994 film)")
    ['forrest', 'gump', '1994', 'film']
    """
    if not text:
        return []
    return normalize_text(text).split()


def tokenize_all(texts: Iterable[str]) -> list[str]:
    """Tokenize an iterable of strings into one flat token list."""
    tokens: list[str] = []
    for text in texts:
        tokens.extend(tokenize(text))
    return tokens


def ngrams(tokens: list[str], n: int) -> list[tuple[str, ...]]:
    """Return the list of ``n``-grams over a token sequence."""
    if n <= 0:
        raise ValueError("n must be positive")
    if len(tokens) < n:
        return []
    return [tuple(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


def character_ngrams(text: str, n: int = 3) -> list[str]:
    """Character n-grams of the normalized text, used for fuzzy matching."""
    if n <= 0:
        raise ValueError("n must be positive")
    normalized = "".join(normalize_text(text).split())
    if len(normalized) < n:
        return [normalized] if normalized else []
    return [normalized[i : i + n] for i in range(len(normalized) - n + 1)]
