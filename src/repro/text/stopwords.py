"""English stopword list used by the text analyzer.

The list is the classic short IR stopword set (close to the SMART/Lucene
default).  It is exposed as a frozenset so that the analyzer can do O(1)
membership checks and so that callers can extend it without mutating the
shared default.
"""

from __future__ import annotations

from collections.abc import Iterable

#: Default English stopwords.
ENGLISH_STOPWORDS: frozenset[str] = frozenset(
    """
    a about above after again against all am an and any are aren as at be
    because been before being below between both but by can cannot could
    did do does doing down during each few for from further had has have
    having he her here hers herself him himself his how i if in into is it
    its itself just me more most my myself no nor not now of off on once
    only or other our ours ourselves out over own same she should so some
    such than that the their theirs them themselves then there these they
    this those through to too under until up very was we were what when
    where which while who whom why will with you your yours yourself
    yourselves
    """.split()
)


def make_stopword_set(
    extra: Iterable[str] = (),
    remove: Iterable[str] = (),
    base: frozenset[str] = ENGLISH_STOPWORDS,
) -> frozenset[str]:
    """Build a customised stopword set from the default list.

    Parameters
    ----------
    extra:
        Additional words to treat as stopwords (lower-cased automatically).
    remove:
        Words to drop from the base list (e.g. ``"will"`` when indexing
        people named Will).
    base:
        The starting set, by default :data:`ENGLISH_STOPWORDS`.
    """
    result = set(base)
    result.update(word.lower() for word in extra)
    result.difference_update(word.lower() for word in remove)
    return frozenset(result)


def is_stopword(token: str, stopwords: frozenset[str] = ENGLISH_STOPWORDS) -> bool:
    """True when ``token`` (case-insensitively) is a stopword."""
    return token.lower() in stopwords
