"""Configuration objects for the PivotE system.

The configuration is intentionally plain-data: a handful of frozen dataclasses
with documented defaults matching the behaviour described in the paper
(five retrieval fields, seven heat-map correlation levels, top-k result
sizes used by the demo interface).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field, replace


#: Recognised top-k execution strategies of both engines (the single
#: source the configs validate against and the CLI offers): ``"off"``
#: keeps the plain accumulator paths, ``"maxscore"`` the threshold-pruned
#: traversals (the default), ``"blockmax"`` layers block-max range bounds
#: and galloping refinement on top.  Rankings are byte-identical in every
#: mode.
PRUNING_MODES: tuple[str, ...] = ("off", "maxscore", "blockmax")

#: The subset of :data:`PRUNING_MODES` that runs threshold-pruned
#: traversals (the dispatch scorers and rankers branch on).
PRUNED_MODES: tuple[str, ...] = ("maxscore", "blockmax")

#: Recognised shard-executor choices of both engines (mirrored by
#: ``repro.exec.EXECUTOR_CHOICES``; kept literal here so the config
#: module stays dependency-free): ``"auto"`` is platform-aware (inline
#: under the GIL, thread pool on a free-threaded multi-core build),
#: ``"inline"``/``"thread"`` force those tiers, and ``"process"`` opts
#: into the multiprocess tier over shared-memory columnar snapshots.
#: Rankings are byte-identical under every choice.
EXECUTOR_CHOICES: tuple[str, ...] = ("auto", "inline", "thread", "process")

#: Recognised snapshot-storage modes of both engines: ``"shm"`` (the
#: default) publishes per-epoch columnar snapshots into the
#: shared-memory registry for the process executor tier, ``"disk"``
#: additionally persists each published epoch into the configured
#: ``snapshot_dir`` (see :mod:`repro.storage.diskstore`), and ``"off"``
#: disables snapshot publication entirely (the process tier then
#: degrades to its inline fallback).  Rankings are byte-identical in
#: every mode.
STORAGE_MODES: tuple[str, ...] = ("shm", "disk", "off")

#: The five retrieval fields of Table 1 in the paper.
DEFAULT_FIELDS: tuple[str, ...] = (
    "names",
    "attributes",
    "categories",
    "similar_entity_names",
    "related_entity_names",
)

#: Default mixture weights for the five fields.  Names dominate, the
#: remaining mass is spread over the contextual fields; weights sum to 1.
DEFAULT_FIELD_WEIGHTS: Mapping[str, float] = {
    "names": 0.4,
    "attributes": 0.15,
    "categories": 0.2,
    "similar_entity_names": 0.1,
    "related_entity_names": 0.15,
}


@dataclass(frozen=True)
class SearchConfig:
    """Configuration of the keyword entity search engine (paper §2.2)."""

    #: Retrieval fields of the multi-fielded entity representation.
    fields: tuple[str, ...] = DEFAULT_FIELDS
    #: Per-field interpolation weights of the mixture of language models.
    field_weights: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_FIELD_WEIGHTS)
    )
    #: Dirichlet smoothing pseudo-count (mu).
    dirichlet_mu: float = 100.0
    #: Jelinek-Mercer interpolation weight towards the collection model.
    jm_lambda: float = 0.1
    #: Smoothing method: ``"dirichlet"`` or ``"jelinek-mercer"``.
    smoothing: str = "dirichlet"
    #: Number of entities returned for a keyword query.
    top_k: int = 20
    #: Maximum number of query results kept in the engine's LRU result
    #: cache; ``0`` disables result caching entirely.
    result_cache_size: int = 128
    #: Top-k execution strategy: ``"maxscore"`` enables threshold-pruned
    #: traversal (see :mod:`repro.topk`), ``"blockmax"`` adds block-max
    #: range bounds plus galloping AND-mode refinement (BM25 family) and
    #: subset-pool θ priming (LM family) on top, ``"off"`` keeps the
    #: plain accumulator path.  Rankings are byte-identical in all modes.
    pruning: str = "maxscore"
    #: Document shards of the partitioned execution layer (see
    #: :mod:`repro.exec`): ``1`` (the default) is the serial single-shard
    #: path, ``N > 1`` partitions the document id space and fans the
    #: pruned traversals out over shard workers with a cross-shard θ
    #: broadcast.  Rankings are byte-identical for every shard count.
    shards: int = 1
    #: Columnar execution: score through the per-epoch structure-of-arrays
    #: postings view (:mod:`repro.index.columnar`) and the vectorized
    #: traversal kernels (:mod:`repro.topk.kernels`) instead of the
    #: per-posting Python loops.  ``False`` keeps the scalar paths for
    #: A/B comparison.  Rankings are byte-identical either way: both
    #: paths feed the same exhaustive-order survivor re-scoring epilogue.
    columnar: bool = True
    #: Shard-executor tier (one of :data:`EXECUTOR_CHOICES`):
    #: ``"process"`` runs the columnar pruned shard fan-out in a warm
    #: multiprocess pool over shared-memory snapshots (see
    #: :mod:`repro.exec.procpool`); effective with ``shards > 1``.
    executor: str = "auto"
    #: Worker cap of the selected executor tier; ``0`` sizes the pool to
    #: the machine.
    workers: int = 0
    #: Columnar graph-topology traversal (see :mod:`repro.kg.topology`):
    #: routes graph reachability through the per-epoch CSR adjacency and
    #: interval-encoded type tables.  The search engine itself does not
    #: traverse the graph — the knob is plumbed symmetrically with
    #: :attr:`RankingConfig.graph_topology` so one CLI flag configures
    #: both engines.  Results are byte-identical either way.
    graph_topology: bool = True
    #: Snapshot-storage mode (one of :data:`STORAGE_MODES`): ``"disk"``
    #: persists every published index epoch into :attr:`snapshot_dir`
    #: so cold starts attach instead of rebuilding, ``"off"`` suppresses
    #: snapshot publication for this engine.
    storage: str = "shm"
    #: Directory of the durable snapshot tier (required when
    #: ``storage="disk"``); ``None`` keeps everything in RAM.
    snapshot_dir: str | None = None

    def __post_init__(self) -> None:
        if self.storage not in STORAGE_MODES:
            raise ValueError(f"unknown storage mode: {self.storage!r}")
        if self.storage == "disk" and not self.snapshot_dir:
            raise ValueError('storage="disk" requires a snapshot_dir')
        if self.smoothing not in ("dirichlet", "jelinek-mercer"):
            raise ValueError(f"unknown smoothing method: {self.smoothing!r}")
        if self.pruning not in PRUNING_MODES:
            raise ValueError(f"unknown pruning mode: {self.pruning!r}")
        if self.shards < 1:
            raise ValueError("shards must be positive")
        if self.executor not in EXECUTOR_CHOICES:
            raise ValueError(f"unknown executor: {self.executor!r}")
        if self.workers < 0:
            raise ValueError("workers must be non-negative")
        if self.dirichlet_mu <= 0:
            raise ValueError("dirichlet_mu must be positive")
        if not 0.0 <= self.jm_lambda <= 1.0:
            raise ValueError("jm_lambda must lie in [0, 1]")
        if self.top_k <= 0:
            raise ValueError("top_k must be positive")
        if self.result_cache_size < 0:
            raise ValueError("result_cache_size must be non-negative")
        missing = [f for f in self.fields if f not in self.field_weights]
        if missing:
            raise ValueError(f"missing field weights for: {missing}")

    def with_(self, **changes: object) -> "SearchConfig":
        """Return a copy with the given attributes replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class RankingConfig:
    """Configuration of the recommendation engine (paper §2.3)."""

    #: Number of recommended entities (x-axis of the matrix).
    top_entities: int = 20
    #: Number of recommended semantic features (y-axis of the matrix).
    top_features: int = 30
    #: Maximum number of candidate entities considered before ranking.
    max_candidates: int = 5000
    #: Maximum number of semantic features scored per query.
    max_features: int = 10000
    #: Whether p(pi|e) falls back to the type-based estimate p(pi|c*)
    #: when the entity does not hold the feature (the paper's
    #: "error-tolerant manner").
    type_smoothing: bool = True
    #: Floor probability used when even the type-based estimate is zero.
    epsilon: float = 1e-9
    #: Use discriminability d(pi) in the SF score (ablation switch).
    use_discriminability: bool = True
    #: Use commonality c(pi, Q) in the SF score (ablation switch).
    use_commonality: bool = True
    #: Maximum number of query states kept in the recommendation engine's
    #: epoch-keyed LRU result cache; ``0`` disables recommendation caching.
    recommendation_cache_size: int = 64
    #: Top-k execution strategy of the entity accumulator: ``"maxscore"``
    #: skips whole dominant-type groups whose base score plus correction
    #: bound cannot reach the live θ (see :mod:`repro.topk`);
    #: ``"blockmax"`` additionally chunks each type's feature corrections
    #: so groups are abandoned (or finished early) at every chunk
    #: boundary mid-walk; ``"off"`` keeps the plain accumulator path.
    #: Rankings are byte-identical in all modes.
    pruning: str = "maxscore"
    #: Entity shards of the partitioned execution layer (see
    #: :mod:`repro.exec`): ``1`` (the default) is the serial single-shard
    #: path, ``N > 1`` partitions the candidate entity id space and fans
    #: the type-group-pruned accumulator out over shard workers with a
    #: cross-shard θ broadcast.  Rankings are byte-identical for every
    #: shard count.
    shards: int = 1
    #: Columnar execution knob, mirroring :attr:`SearchConfig.columnar`:
    #: score through the per-epoch feature tables
    #: (:mod:`repro.features.columnar`) and the vectorized entity-ranking
    #: kernel (:func:`repro.topk.kernels.columnar_rank`) instead of the
    #: scalar type-group walk.  ``False`` keeps the scalar path for A/B
    #: comparison.  Rankings are byte-identical either way: both paths
    #: feed the same exhaustive-order survivor re-scoring epilogue.
    columnar: bool = True
    #: Feature columns per correction chunk of the ``blockmax`` entity
    #: accumulator (the recommendation-side block size): type groups are
    #: re-checked against θ, and retired once they can gain nothing more,
    #: at every chunk boundary.  Smaller chunks retire groups earlier but
    #: check more often.
    feature_chunk: int = 2
    #: Shard-executor tier, mirroring :attr:`SearchConfig.executor`:
    #: ``"process"`` runs the columnar pruned shard fan-out in a warm
    #: multiprocess pool over the shared-memory feature tables (see
    #: :mod:`repro.exec.procpool`); effective with ``shards > 1``.  The
    #: scalar (``columnar=False``) fan-out stays closure-based and runs
    #: on the thread or inline tier.
    executor: str = "auto"
    #: Worker cap of the selected executor tier; ``0`` sizes the pool to
    #: the machine.
    workers: int = 0
    #: Columnar graph-topology traversal (see :mod:`repro.kg.topology`):
    #: the expander's domain-type restriction runs as a ``searchsorted``
    #: intersect against the interval-encoded per-epoch member ranges
    #: instead of the per-candidate ``in members`` set probe, and the
    #: path utilities route through the frontier-at-a-time CSR kernels.
    #: ``False`` keeps the scalar graph walk as the A/B arm.  Results
    #: are byte-identical either way.
    graph_topology: bool = True
    #: Snapshot-storage mode, mirroring :attr:`SearchConfig.storage`:
    #: ``"disk"`` persists the published feature tables into
    #: :attr:`snapshot_dir`, ``"off"`` suppresses publication.
    storage: str = "shm"
    #: Directory of the durable snapshot tier (required when
    #: ``storage="disk"``); ``None`` keeps everything in RAM.
    snapshot_dir: str | None = None

    def __post_init__(self) -> None:
        if self.storage not in STORAGE_MODES:
            raise ValueError(f"unknown storage mode: {self.storage!r}")
        if self.storage == "disk" and not self.snapshot_dir:
            raise ValueError('storage="disk" requires a snapshot_dir')
        if self.top_entities <= 0 or self.top_features <= 0:
            raise ValueError("top_entities and top_features must be positive")
        if self.pruning not in PRUNING_MODES:
            raise ValueError(f"unknown pruning mode: {self.pruning!r}")
        if self.shards < 1:
            raise ValueError("shards must be positive")
        if self.executor not in EXECUTOR_CHOICES:
            raise ValueError(f"unknown executor: {self.executor!r}")
        if self.workers < 0:
            raise ValueError("workers must be non-negative")
        if self.feature_chunk < 1:
            raise ValueError("feature_chunk must be positive")
        if self.max_candidates <= 0 or self.max_features <= 0:
            raise ValueError("max_candidates and max_features must be positive")
        if not 0 < self.epsilon < 1:
            raise ValueError("epsilon must lie in (0, 1)")
        if self.recommendation_cache_size < 0:
            raise ValueError("recommendation_cache_size must be non-negative")

    def with_(self, **changes: object) -> "RankingConfig":
        """Return a copy with the given attributes replaced."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class HeatmapConfig:
    """Configuration of the explanation heat map (paper §2.3.2 and Fig 3-f)."""

    #: Number of discrete correlation levels; the paper uses seven.
    levels: int = 7
    #: Scale used to bucket correlations: ``"linear"``, ``"log"`` or
    #: ``"quantile"``.
    scale: str = "quantile"

    def __post_init__(self) -> None:
        if self.levels < 2:
            raise ValueError("a heat map needs at least two levels")
        if self.scale not in ("linear", "log", "quantile"):
            raise ValueError(f"unknown heat map scale: {self.scale!r}")


@dataclass(frozen=True)
class PivotEConfig:
    """Top-level configuration bundling all components of Fig 2."""

    search: SearchConfig = field(default_factory=SearchConfig)
    ranking: RankingConfig = field(default_factory=RankingConfig)
    heatmap: HeatmapConfig = field(default_factory=HeatmapConfig)

    @staticmethod
    def default() -> "PivotEConfig":
        """Return the configuration used by the demo system."""
        return PivotEConfig()
