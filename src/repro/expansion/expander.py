"""Entity set expansion with semantic features (paper refs [1] and [6]).

Given a few example entities of a target concept ("Forrest Gump",
"Apollo 13"), entity set expansion returns further entities of the same
concept (more Tom Hanks films).  PivotE applies this as the model behind the
*investigation* operation: clicking entities in the x-axis provides seeds,
and the x-axis is expanded with similar entities of the same type.

The expander is a thin, user-facing wrapper around the two-stage ranking
model of :mod:`repro.ranking`, adding the options the investigation UI
exposes: restricting results to the seeds' type and pinning mandatory
semantic features chosen by the user.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..config import RankingConfig
from ..exceptions import NoSeedEntitiesError
from ..features import SemanticFeature, SemanticFeatureIndex
from ..kg import KnowledgeGraph
from ..kg.topology import graph_topology, topology_counters
from ..ranking import EntityRanker, ScoredEntity, ScoredFeature, SemanticFeatureRanker


@dataclass(frozen=True)
class ExpansionResult:
    """The outcome of one expansion call."""

    seeds: tuple[str, ...]
    entities: tuple[ScoredEntity, ...]
    features: tuple[ScoredFeature, ...]
    restricted_type: str = ""

    def entity_ids(self) -> list[str]:
        """The recommended entity identifiers in rank order."""
        return [entity.entity_id for entity in self.entities]

    def feature_notations(self) -> list[str]:
        """The recommended semantic features in rank order."""
        return [scored.feature.notation() for scored in self.features]


class EntitySetExpander:
    """Expand a seed set of entities using semantic features."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        feature_index: SemanticFeatureIndex | None = None,
        config: RankingConfig | None = None,
    ) -> None:
        self._graph = graph
        self._config = config or RankingConfig()
        self._index = feature_index or SemanticFeatureIndex.build(graph)
        self._feature_ranker = SemanticFeatureRanker(graph, self._index, config=self._config)
        self._entity_ranker = EntityRanker(
            graph, self._index, config=self._config, feature_ranker=self._feature_ranker
        )

    @property
    def feature_index(self) -> SemanticFeatureIndex:
        """The shared semantic-feature index."""
        return self._index

    @property
    def entity_ranker(self) -> EntityRanker:
        """The underlying entity ranker."""
        return self._entity_ranker

    @property
    def feature_ranker(self) -> SemanticFeatureRanker:
        """The underlying semantic-feature ranker."""
        return self._feature_ranker

    # ------------------------------------------------------------------ #
    # Expansion
    # ------------------------------------------------------------------ #
    def dominant_seed_type(self, seeds: Sequence[str]) -> str:
        """The most common dominant type among the seeds (may be "")."""
        if not seeds:
            return ""
        seed_types = (self._graph.dominant_type(seed) for seed in seeds)
        counts = Counter(seed_type for seed_type in seed_types if seed_type)
        if not counts:
            return ""
        # Most common; ties broken by type name for determinism.
        best = sorted(counts.items(), key=lambda item: (-item[1], item[0]))[0]
        return best[0]

    def expand(
        self,
        seeds: Sequence[str],
        top_k: int | None = None,
        restrict_to_seed_type: bool = False,
        required_features: Sequence[SemanticFeature] = (),
        domain_type: str = "",
        exhaustive: bool = False,
    ) -> ExpansionResult:
        """Expand the seed set.

        Type and pinned-feature restrictions are applied to the candidate
        pool *before* ranking and top-k truncation, so a restricted
        expansion returns up to ``top_k`` matching entities whenever that
        many exist (instead of whatever survives filtering an over-fetched
        prefix).

        Parameters
        ----------
        seeds:
            Example entities of the target concept.
        top_k:
            How many similar entities to return.
        restrict_to_seed_type:
            Keep only candidates whose types intersect the dominant seed
            type — the investigation mode of the UI, which stays within one
            domain.
        required_features:
            Semantic features the user pinned as query conditions
            (Fig 3-b); candidates not matching all of them are filtered
            out, and the pinned features are added to the scored pool.
        domain_type:
            Explicit entity type the x-axis is restricted to (the pivot
            domain); takes precedence over ``restrict_to_seed_type``.
        exhaustive:
            Route both rankers through their seed ``rank_exhaustive()``
            scoring paths (the accumulator-vs-seed A/B baseline).
        """
        if not seeds:
            raise NoSeedEntitiesError("entity set expansion needs at least one seed")
        top_k = top_k or self._config.top_entities

        feature_ranker = self._feature_ranker
        rank_features = feature_ranker.rank_exhaustive if exhaustive else feature_ranker.rank
        scored_features = rank_features(seeds)
        pinned = [feature for feature in required_features]
        if pinned:
            existing = {scored.feature for scored in scored_features}
            extra = [
                feature_ranker.score_feature(feature, seeds)
                for feature in pinned
                if feature not in existing
            ]
            scored_features = sorted(
                list(scored_features) + extra,
                key=lambda item: (-item.score, item.feature.notation()),
            )

        # Candidate generation without the max_candidates cap: the type and
        # pinned-feature restrictions must narrow the pool *before* any
        # truncation (cap or top-k), or low-match-count domain entities can
        # be squeezed out while matching candidates still exist.
        candidates = self._index.candidates_matching_any(
            [scored.feature for scored in scored_features], exclude=seeds
        )

        restricted_type = ""
        if domain_type:
            restricted_type = domain_type
        elif restrict_to_seed_type:
            restricted_type = self.dominant_seed_type(seeds)
        if restricted_type:
            candidates = self.restrict_candidates(candidates, restricted_type)
        if pinned:
            candidates = [
                entity_id
                for entity_id in candidates
                if all(self._index.holds(entity_id, feature) for feature in pinned)
            ]
        candidates = candidates[: self._config.max_candidates]

        entity_ranker = self._entity_ranker
        rank_entities = entity_ranker.rank_exhaustive if exhaustive else entity_ranker.rank
        ranked = rank_entities(
            seeds, top_k=top_k, scored_features=scored_features, candidates=candidates
        )

        return ExpansionResult(
            seeds=tuple(seeds),
            entities=tuple(ranked),
            features=tuple(scored_features[: self._config.top_features]),
            restricted_type=restricted_type,
        )

    def restrict_candidates(self, candidates: list[str], restricted_type: str) -> list[str]:
        """Keep only candidates that are instances of ``restricted_type``.

        With the ``graph_topology`` knob on (default) this is an
        order-preserving ``searchsorted`` intersect of the candidates'
        ordinals against the type's interval-encoded member range; off,
        it is the scalar per-candidate ``in members`` set probe.  Both
        arms return the identical list.
        """
        if not self._config.graph_topology:
            members = self._graph.entities_of_type(restricted_type)
            return [entity_id for entity_id in candidates if entity_id in members]
        topology = graph_topology(self._graph)
        counters = topology_counters(self._graph)
        counters.interval_filters += 1
        if not candidates:
            return []
        member_ordinals = topology.entities_under_id(restricted_type)
        if not member_ordinals.size:
            return []
        ordinals, known = topology.ordinals_of(candidates)
        positions = np.searchsorted(member_ordinals, ordinals)
        safe = np.minimum(positions, member_ordinals.size - 1)
        keep = known & (member_ordinals[safe] == ordinals)
        counters.interval_hits += int(keep.sum())
        return [
            entity_id for entity_id, kept in zip(candidates, keep.tolist()) if kept
        ]
