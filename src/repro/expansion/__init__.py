"""Entity set expansion (paper references [1] and [6])."""

from .expander import EntitySetExpander, ExpansionResult
from .iterative import ExpansionRound, IterativeExpander, IterativeExpansionResult

__all__ = [
    "EntitySetExpander",
    "ExpansionResult",
    "ExpansionRound",
    "IterativeExpander",
    "IterativeExpansionResult",
]
