"""Iterative (bootstrapped) entity set expansion.

The investigation process of PivotE is iterative by nature: the user clicks
a few of the recommended entities, which become new seeds, and the x-axis is
expanded again.  :class:`IterativeExpander` simulates that loop
programmatically — it is used by the quality experiments to measure how
recall grows (and how semantic drift sets in) over rounds, and by the
examples to script multi-round investigations.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..exceptions import NoSeedEntitiesError
from .expander import EntitySetExpander, ExpansionResult


@dataclass(frozen=True)
class ExpansionRound:
    """One round of iterative expansion."""

    round_number: int
    seeds: tuple[str, ...]
    added: tuple[str, ...]
    result: ExpansionResult


@dataclass(frozen=True)
class IterativeExpansionResult:
    """The full trace of an iterative expansion run."""

    rounds: tuple[ExpansionRound, ...]

    @property
    def final_entities(self) -> tuple[str, ...]:
        """All accepted entities (seeds of the last round plus its additions)."""
        if not self.rounds:
            return ()
        last = self.rounds[-1]
        return tuple(dict.fromkeys(last.seeds + last.added))

    def entities_per_round(self) -> list[int]:
        """Cumulative accepted-set size after each round."""
        sizes: list[int] = []
        for round_ in self.rounds:
            sizes.append(len(dict.fromkeys(round_.seeds + round_.added)))
        return sizes


class IterativeExpander:
    """Run entity set expansion for several rounds, feeding results back."""

    def __init__(
        self,
        expander: EntitySetExpander,
        accept_per_round: int = 3,
        restrict_to_seed_type: bool = True,
    ) -> None:
        if accept_per_round <= 0:
            raise ValueError("accept_per_round must be positive")
        self._expander = expander
        self._accept_per_round = accept_per_round
        self._restrict = restrict_to_seed_type

    def run(self, seeds: Sequence[str], rounds: int = 3, top_k: int = 20) -> IterativeExpansionResult:
        """Expand for ``rounds`` iterations, accepting the top results each time.

        The acceptance policy mimics a cooperative user: the
        ``accept_per_round`` highest-ranked new entities are clicked and
        become seeds of the next round.
        """
        if not seeds:
            raise NoSeedEntitiesError("iterative expansion needs at least one seed")
        if rounds <= 0:
            raise ValueError("rounds must be positive")
        current_seeds: list[str] = list(dict.fromkeys(seeds))
        trace: list[ExpansionRound] = []
        for round_number in range(1, rounds + 1):
            result = self._expander.expand(
                current_seeds,
                top_k=top_k,
                restrict_to_seed_type=self._restrict,
            )
            new_entities = [
                entity.entity_id
                for entity in result.entities
                if entity.entity_id not in current_seeds
            ][: self._accept_per_round]
            trace.append(
                ExpansionRound(
                    round_number=round_number,
                    seeds=tuple(current_seeds),
                    added=tuple(new_entities),
                    result=result,
                )
            )
            if not new_entities:
                break
            current_seeds.extend(new_entities)
        return IterativeExpansionResult(rounds=tuple(trace))
