"""Unified typed introspection surface for the engines.

Historically every component grew its own ``*_info()`` dict accessor —
``cache_info()`` on the caches, ``pruning_info()`` on the scorers and
rankers, ``rebuild_info()`` on the feature index — each returning a plain
dict with its own key conventions.  This module unifies them behind one
typed, frozen object graph:

* :class:`CacheStats` — one LRU cache's counters (hits, misses,
  occupancy, optionally the epoch the cache is keyed by);
* :class:`PruningStatsView` — an immutable snapshot of one pruned
  traversal's :class:`~repro.topk.stats.PruningStats` counters;
* :class:`EngineStats` — one component's full introspection record:
  configuration echo (pruning mode, shard layout, columnar on/off),
  epoch, caches, pruning counters, rebuild counters and child
  components.

``stats()`` on :class:`~repro.search.engine.SearchEngine`,
:class:`~repro.explore.recommender.RecommendationEngine` and
:class:`~repro.engine.pivote.PivotE` returns one :class:`EngineStats`;
the legacy dict accessors remain as thin shims over it and report the
identical numbers.  :meth:`EngineStats.as_dict` renders the whole tree
as JSON-able plain dicts (the shape the ``"stats"`` API action returns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping


@dataclass(frozen=True)
class CacheStats:
    """Counters of one LRU cache (`hits`/`misses`/occupancy).

    ``epoch`` is carried by epoch-keyed caches (the recommendation
    cache) and ``None`` for instance-keyed ones (the search result
    cache, which keys on the index ``(uid, epoch)`` pair instead).
    """

    name: str
    hits: int
    misses: int
    size: int
    maxsize: int
    epoch: int | None = None

    @classmethod
    def from_info(
        cls, name: str, info: Mapping[str, int], epoch: int | None = None
    ) -> "CacheStats":
        """Wrap a legacy ``cache_info()`` dict."""
        return cls(
            name=name,
            hits=info["hits"],
            misses=info["misses"],
            size=info["size"],
            maxsize=info["maxsize"],
            epoch=info.get("epoch", epoch),
        )

    def as_info(self) -> dict[str, int]:
        """The legacy ``cache_info()`` dict (epoch key only when tracked)."""
        info = {
            "hits": self.hits,
            "misses": self.misses,
            "size": self.size,
            "maxsize": self.maxsize,
        }
        if self.epoch is not None:
            info["epoch"] = self.epoch
        return info


@dataclass(frozen=True)
class PruningStatsView:
    """Immutable snapshot of one traversal's pruning counters.

    Field semantics are documented on :class:`~repro.topk.stats.PruningStats`;
    this view adds a ``name`` identifying which scorer/ranker the counters
    belong to inside an :class:`EngineStats` record.
    """

    name: str
    queries: int
    terms_total: int
    terms_skipped: int
    candidates_total: int
    candidates_pruned: int
    groups_total: int
    groups_skipped: int
    blocks_total: int
    blocks_skipped: int
    rescored: int
    kernel_queries: int = 0

    @classmethod
    def from_counters(cls, name: str, counters: Mapping[str, int]) -> "PruningStatsView":
        """Wrap a legacy ``pruning_info()`` dict."""
        return cls(name=name, **counters)

    def as_counters(self) -> dict[str, int]:
        """The legacy ``pruning_info()`` dict."""
        return {
            "queries": self.queries,
            "terms_total": self.terms_total,
            "terms_skipped": self.terms_skipped,
            "candidates_total": self.candidates_total,
            "candidates_pruned": self.candidates_pruned,
            "groups_total": self.groups_total,
            "groups_skipped": self.groups_skipped,
            "blocks_total": self.blocks_total,
            "blocks_skipped": self.blocks_skipped,
            "rescored": self.rescored,
            "kernel_queries": self.kernel_queries,
        }


@dataclass(frozen=True)
class ExecutorStats:
    """One engine's shard-execution record.

    ``mode`` echoes the configured ``executor`` knob; ``effective`` is
    where shard tasks actually run under the current platform
    (``"inline"``, ``"thread"`` or ``"process"``); ``workers`` is the
    pool's size cap.  ``tasks_dispatched``/``tasks_inlined`` count shard
    tasks sent to pool workers vs run on the calling thread (the first
    shard of every query is always inline), and the ``snapshot_*``
    counters track the shared-memory tier: segments published by this
    process, bytes they occupy, cold attaches performed by the worker
    processes and segments currently live.
    """

    mode: str
    effective: str
    workers: int
    tasks_dispatched: int
    tasks_inlined: int
    snapshots_published: int
    snapshot_bytes: int
    snapshot_attaches: int
    snapshots_active: int

    def as_dict(self) -> dict[str, object]:
        return {
            "mode": self.mode,
            "effective": self.effective,
            "workers": self.workers,
            "tasks_dispatched": self.tasks_dispatched,
            "tasks_inlined": self.tasks_inlined,
            "snapshots_published": self.snapshots_published,
            "snapshot_bytes": self.snapshot_bytes,
            "snapshot_attaches": self.snapshot_attaches,
            "snapshots_active": self.snapshots_active,
        }


@dataclass(frozen=True)
class StorageStats:
    """One system's durable-snapshot record.

    ``backend`` echoes the configured ``storage`` knob (``"shm"``,
    ``"disk"`` or ``"off"``) and ``snapshot_dir`` the durable tier's
    directory (``None`` without one).  ``publishes``/``published_bytes``
    count snapshot segments written to the disk store,
    ``attaches``/``attached_bytes`` segments mapped (and CRC-verified)
    back in, ``failures`` publish or attach attempts that raised
    ``SnapshotUnavailable`` and degraded to a rebuild.  ``cold_start_ms``
    is how long the last ``PivotE.load`` spent restoring the system
    (0.0 for systems built in RAM).
    """

    backend: str
    snapshot_dir: str | None
    publishes: int
    published_bytes: int
    attaches: int
    attached_bytes: int
    failures: int
    cold_start_ms: float

    def as_dict(self) -> dict[str, object]:
        return {
            "backend": self.backend,
            "snapshot_dir": self.snapshot_dir,
            "publishes": self.publishes,
            "published_bytes": self.published_bytes,
            "attaches": self.attaches,
            "attached_bytes": self.attached_bytes,
            "failures": self.failures,
            "cold_start_ms": self.cold_start_ms,
        }


@dataclass(frozen=True)
class TraversalStats:
    """One graph's columnar-topology traversal record.

    ``bfs_queries``/``connect_queries`` count vectorized
    ``bfs_reachable``/``connecting_entities`` calls;
    ``frontier_entities`` sums the BFS frontier sizes those queries
    advanced and ``edges_touched`` the CSR adjacency rows they gathered.
    ``interval_filters``/``interval_hits`` count the expander's
    interval-encoded type restrictions and the candidates that survived
    them, and ``cache_hits``/``rebuilds`` track the per-epoch
    :class:`~repro.kg.topology.GraphTopology` memo.  The counters live
    on the graph itself, so every component traversing the same graph
    reports identical numbers.
    """

    bfs_queries: int
    connect_queries: int
    frontier_entities: int
    edges_touched: int
    interval_filters: int
    interval_hits: int
    cache_hits: int
    rebuilds: int

    def as_dict(self) -> dict[str, int]:
        return {
            "bfs_queries": self.bfs_queries,
            "connect_queries": self.connect_queries,
            "frontier_entities": self.frontier_entities,
            "edges_touched": self.edges_touched,
            "interval_filters": self.interval_filters,
            "interval_hits": self.interval_hits,
            "cache_hits": self.cache_hits,
            "rebuilds": self.rebuilds,
        }


@dataclass(frozen=True)
class EngineStats:
    """One component's full introspection record.

    ``component`` names the component (``"search"``,
    ``"recommendation"``, ``"pivote"``); ``epoch`` is the component's
    current index/graph epoch; ``shards``/``columnar``/``pruning`` echo
    the execution configuration the component runs with.  ``caches``
    and ``pruning_counters`` carry the component's own counters, and a
    facade lists its components as ``children``.
    """

    component: str
    epoch: int
    shards: int
    columnar: bool
    pruning: str
    caches: tuple[CacheStats, ...] = ()
    pruning_counters: tuple[PruningStatsView, ...] = ()
    rebuilds: Mapping[str, int] | None = None
    children: tuple["EngineStats", ...] = ()
    executor: ExecutorStats | None = None
    storage: StorageStats | None = None
    traversal: TraversalStats | None = None

    def cache(self, name: str) -> CacheStats:
        """The named cache's counters (raises ``KeyError`` when absent)."""
        for entry in self.caches:
            if entry.name == name:
                return entry
        raise KeyError(f"unknown cache: {name!r}")

    def pruning_view(self, name: str) -> PruningStatsView:
        """The named traversal's counters (raises ``KeyError`` when absent)."""
        for entry in self.pruning_counters:
            if entry.name == name:
                return entry
        raise KeyError(f"unknown pruning counters: {name!r}")

    def child(self, component: str) -> "EngineStats":
        """The named child component (raises ``KeyError`` when absent)."""
        for entry in self.children:
            if entry.component == component:
                return entry
        raise KeyError(f"unknown component: {component!r}")

    def as_dict(self) -> dict[str, object]:
        """The whole record as JSON-able plain dicts.

        ``executor`` appears only when the component reports its shard
        execution; ``rebuilds`` only when the component tracks rebuild
        counters; ``children`` only when the component has any.
        """
        payload: dict[str, object] = {
            "component": self.component,
            "epoch": self.epoch,
            "shards": self.shards,
            "columnar": self.columnar,
            "pruning": self.pruning,
            "caches": {entry.name: entry.as_info() for entry in self.caches},
            "pruning_counters": {
                entry.name: entry.as_counters() for entry in self.pruning_counters
            },
        }
        if self.executor is not None:
            payload["executor"] = self.executor.as_dict()
        if self.storage is not None:
            payload["storage"] = self.storage.as_dict()
        if self.traversal is not None:
            payload["traversal"] = self.traversal.as_dict()
        if self.rebuilds is not None:
            payload["rebuilds"] = dict(self.rebuilds)
        if self.children:
            payload["children"] = {
                entry.component: entry.as_dict() for entry in self.children
            }
        return payload
