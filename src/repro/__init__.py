"""PivotE reproduction: entity-oriented exploratory search over knowledge graphs.

This package reimplements the PivotE system (Han et al., PVLDB 2019) in pure
Python: an RDF knowledge-graph substrate, a five-field keyword entity search
engine, the semantic-feature ranking model used for entity recommendation
and entity set expansion, the exploration-session model (investigate /
pivot / timeline / exploratory path) and the heat-map matrix visualisation.

Quickstart
----------
>>> from repro import PivotE
>>> from repro.datasets import small_movie_kg
>>> system = PivotE(small_movie_kg())
>>> hits = system.search("forrest gump")
>>> rec = system.recommend([hits[0].entity_id])
>>> print(rec.entity_ids()[:3])
"""

from .config import HeatmapConfig, PivotEConfig, RankingConfig, SearchConfig
from .engine import PivotE, PivotEApi
from .exceptions import PivotEError
from .expansion import EntitySetExpander
from .explore import ExplorationQuery, ExplorationSession
from .features import Direction, SemanticFeature
from .kg import KnowledgeGraph
from .ranking import EntityRanker, SemanticFeatureRanker
from .search import SearchEngine

__version__ = "1.0.0"

__all__ = [
    "Direction",
    "EntityRanker",
    "EntitySetExpander",
    "ExplorationQuery",
    "ExplorationSession",
    "HeatmapConfig",
    "KnowledgeGraph",
    "PivotE",
    "PivotEApi",
    "PivotEConfig",
    "PivotEError",
    "RankingConfig",
    "SearchConfig",
    "SearchEngine",
    "SemanticFeature",
    "SemanticFeatureRanker",
    "__version__",
]
