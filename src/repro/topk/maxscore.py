"""Max-score traversal drivers shared by search and recommendation.

Both drivers return the *surviving* accumulator map: a superset of the
true top-k, plus exact-enough partials for a margin-guarded selection.
They never produce the final ranking themselves — callers re-score the
survivors through the exhaustive per-document scoring path and sort with
the exhaustive tie-break, which is what makes pruned rankings
byte-identical to exhaustive rankings (see the package docstring).

Soundness of every skip decision rests on two facts:

* an accumulator value plus the *floor* sum of the unprocessed terms is a
  lower bound of the candidate's final score, so θ (the k-th best such
  lower bound) is a lower bound of the true k-th best final score;
* an accumulator value plus the *upper* sum of the unprocessed terms is an
  upper bound of the final score, so any candidate whose upper bound falls
  below ``θ - safety_slack(θ)`` cannot be in the top-k.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from collections.abc import Iterable, Mapping, Sequence

from .bounds import BlockedSparseTermEntry, DenseTermEntry, SparseTermEntry
from .heap import (
    NO_THRESHOLD,
    SharedThresholdSlot,
    safety_slack,
    threshold_of,
    top_k_bounds,
)
from .stats import PruningStats

#: Extra survivors selected beyond k before the exact re-scoring pass.
#: The drivers' accumulator values associate the same floating-point terms
#: differently from the exhaustive path, so the selection boundary is
#: guarded by a margin: a selection mismatch would need more than this
#: many candidates packed within rounding error of the k-th score (the
#: same guard :mod:`repro.ranking.entity_ranking` established in PR 2).
SELECTION_MARGIN = 16


def select_survivors(
    accumulators: Mapping[str, float],
    top_k: int,
    margin: int = SELECTION_MARGIN,
) -> list[str]:
    """The candidate ids worth re-scoring exactly: top ``k + margin``.

    When at most ``k + margin`` candidates survived pruning, all of them
    are re-scored (their accumulator values may be partial if the
    traversal stopped early).  Ordering follows the exhaustive
    ``(-score, id)`` tie-break for determinism.
    """
    budget = top_k + margin
    if len(accumulators) <= budget:
        return list(accumulators)
    best = heapq.nsmallest(
        budget, accumulators.items(), key=lambda item: (-item[1], item[0])
    )
    return [candidate for candidate, _ in best]


def maxscore_dense(
    candidates: Iterable[str],
    entries: Sequence[DenseTermEntry],
    top_k: int,
    stats: PruningStats,
    margin: int = SELECTION_MARGIN,
    prime_threshold: float = NO_THRESHOLD,
    shared: SharedThresholdSlot | None = None,
) -> dict[str, float]:
    """Threshold-pruned dense traversal (smoothing language models).

    Every candidate starts with an open accumulator (smoothing scores all
    documents); terms are processed in decreasing *spread* order so the
    most discriminative terms tighten θ first.  After each term pass, a
    new θ is derived and candidates whose upper bound cannot beat it are
    evicted *during the next term pass* (the eviction check is fused into
    the pass, which touches every candidate anyway).  Once no more than
    ``top_k + margin`` candidates survive, the remaining term passes are
    skipped entirely — set membership can no longer change, and the caller
    re-scores every survivor exactly anyway.

    ``prime_threshold`` is an optional caller-supplied lower bound on the
    k-th best *final* score — typically the k-th best exact score of a
    small subset pool of promising candidates (the ``blockmax`` priming,
    mirroring the type-group subset pool of the recommendation side).
    It is sound whenever it is witnessed by ``top_k`` real candidates'
    final scores, and tightens θ on the early passes where the
    partial-plus-floor bound is loose.

    ``shared`` is this worker's slot on the cross-shard θ broadcast of
    the sharded execution layer: after each pass the driver offers its
    top-k partial-plus-floor lower bounds (distinct shard candidates —
    see :class:`~repro.topk.heap.SharedThreshold` for why whole lists
    compose where scalar k-th bests do not) and prunes with the global
    θ over every shard's offer, so the cut matches what the serial
    traversal would derive from the merged pool.

    ``candidates_total`` counts every candidate entering the traversal —
    the dense driver opens all accumulators up front, so unlike the
    sparse driver there is no per-pass drift to correct.
    """
    accumulators = dict.fromkeys(candidates, 0.0)
    stats.queries += 1
    stats.terms_total += len(entries)
    stats.candidates_total += len(accumulators)
    if not entries or not accumulators:
        return accumulators

    order = sorted(range(len(entries)), key=lambda i: (-entries[i].spread, i))
    # Suffix bound sums over the *unprocessed* tail, aligned with ``order``.
    remaining_floor = [0.0] * (len(order) + 1)
    remaining_upper = [0.0] * (len(order) + 1)
    for position in range(len(order) - 1, -1, -1):
        entry = entries[order[position]]
        remaining_floor[position] = remaining_floor[position + 1] + entry.floor
        remaining_upper[position] = remaining_upper[position + 1] + entry.upper

    stop_budget = top_k + margin
    # The first pass always runs uncut — even a primed θ cannot evict
    # there: every partial is 0.0 and the would-be cut,
    # ``prime - slack - remaining_upper[0]``, is provably negative
    # (the full upper sum dominates any final score, hence any sound θ).
    cut = NO_THRESHOLD
    for position, index in enumerate(order):
        if len(accumulators) <= stop_budget:
            stats.terms_skipped += len(order) - position
            break
        before = len(accumulators)
        accumulators = entries[index].accumulate(accumulators, cut)
        stats.candidates_pruned += before - len(accumulators)
        rem_floor = remaining_floor[position + 1]
        rem_upper = remaining_upper[position + 1]
        if rem_upper <= rem_floor:
            # Remaining terms cannot separate candidates further; anything
            # below θ is dropped by the final selection instead.
            cut = NO_THRESHOLD
            continue
        if shared is not None:
            total = shared.offer(
                [bound + rem_floor for bound in top_k_bounds(accumulators.values(), top_k)]
            )
            if prime_threshold > total:
                total = prime_threshold
        else:
            threshold = threshold_of(accumulators.values(), top_k)
            if threshold == NO_THRESHOLD:
                total = prime_threshold
            else:
                total = threshold + rem_floor
                if prime_threshold > total:
                    total = prime_threshold
        if total == NO_THRESHOLD:
            cut = NO_THRESHOLD
            continue
        cut = total - safety_slack(total) - rem_upper
    return accumulators


def maxscore_sparse(
    entries: Sequence[SparseTermEntry],
    top_k: int,
    stats: PruningStats,
    blockmax: bool = False,
    shared: SharedThresholdSlot | None = None,
) -> dict[str, float]:
    """Threshold-pruned sparse traversal (BM25-family scorers).

    Accumulators exist only for documents matching at least one processed
    term (the floor is zero).  Terms are processed in decreasing upper
    bound order; once the upper-bound sum of the unprocessed terms falls
    below θ, no *new* document can reach the top-k and the traversal
    switches from postings expansion to accumulator-only refinement (the
    OR→AND switch — the postings walks of frequent low-impact terms are
    skipped).  Surviving accumulators hold exact totals: refinement still
    applies every remaining term to every survivor.

    With ``blockmax=True`` (and entries carrying
    :class:`~repro.topk.bounds.BlockedSparseTermEntry` block summaries)
    the AND phase runs as a doc-id-sorted galloping intersection instead
    of per-term survivor re-walks: survivors are visited in document-id
    order, each one's posting block is found by galloping ``bisect`` over
    the block boundaries, and a survivor whose partial plus the *block*
    upper bound plus the remaining terms' bound cannot reach θ is evicted
    without ever probing the postings (see :func:`_gallop_refine`).

    ``shared`` is this worker's slot on the sharded execution layer's
    cross-shard θ broadcast (see :func:`maxscore_dense`): the shard's
    current top-k accumulators are offered after every pass — shorter
    offers included, since a shard with three matches still contributes
    three witnesses to the global pool — and the global θ over every
    shard's offer drives the OR→AND switch and the evictions.
    """
    accumulators: dict[str, float] = {}
    stats.queries += 1
    stats.terms_total += len(entries)
    if not entries:
        return accumulators

    order = sorted(range(len(entries)), key=lambda i: (-entries[i].upper, i))
    remaining_upper = [0.0] * (len(order) + 1)
    for position in range(len(order) - 1, -1, -1):
        remaining_upper[position] = remaining_upper[position + 1] + entries[order[position]].upper

    threshold = NO_THRESHOLD
    for position, index in enumerate(order):
        entry = entries[index]
        if shared is not None and shared.value > threshold:
            threshold = shared.value
        cut = (
            threshold - safety_slack(threshold)
            if threshold != NO_THRESHOLD
            else NO_THRESHOLD
        )
        if cut != NO_THRESHOLD and remaining_upper[position] < cut:
            if blockmax:
                # Once in AND mode the traversal stays there (θ only
                # grows, the remaining upper sum only shrinks), so every
                # remaining term runs through the galloping refinement.
                _gallop_refine(
                    accumulators,
                    [entries[i] for i in order[position:]],
                    remaining_upper,
                    position,
                    top_k,
                    threshold,
                    stats,
                    shared=shared,
                )
                return accumulators
            entry.refine(accumulators)
            stats.terms_skipped += 1
        else:
            before = len(accumulators)
            entry.expand(accumulators)
            # Every accumulator created counts as a traversal candidate.
            # Summing entrants per expand pass (instead of tracking the
            # peak accumulator count) keeps the count correct when later
            # passes run after evictions shrank the map — the peak missed
            # documents added by one pass and evicted before the next.
            stats.candidates_total += len(accumulators) - before
        rem_upper = remaining_upper[position + 1]
        refreshed = False
        if shared is not None:
            offered = shared.offer(top_k_bounds(accumulators.values(), top_k))
            if offered > threshold:
                threshold = offered
            refreshed = True
        elif len(accumulators) > top_k:
            threshold = threshold_of(accumulators.values(), top_k)
            refreshed = True
        if refreshed and threshold != NO_THRESHOLD and position + 1 < len(order):
            cut = threshold - safety_slack(threshold) - rem_upper
            before = len(accumulators)
            accumulators = {
                doc_id: partial
                for doc_id, partial in accumulators.items()
                if partial >= cut
            }
            stats.candidates_pruned += before - len(accumulators)
    return accumulators


def _gallop_refine(
    accumulators: dict[str, float],
    remaining: Sequence[SparseTermEntry],
    remaining_upper: Sequence[float],
    base_position: int,
    top_k: int,
    threshold: float,
    stats: PruningStats,
    shared: SharedThresholdSlot | None = None,
) -> None:
    """AND-mode block-max refinement over the surviving accumulators.

    Survivors are walked in document-id order once per remaining term;
    the term's posting blocks are galloped with ``bisect`` so blocks
    containing no survivor are never touched, and the per-block upper
    bound evicts survivors the global term bound cannot.  Entries without
    block summaries fall back to the plain ``refine`` walk.  θ is
    refreshed after every term, so each refinement pass prunes with the
    tightest threshold available.  Surviving values stay exact: every
    probe adds the exact contribution, and evicted candidates provably
    cannot reach the top-k.
    """
    survivors = sorted(accumulators)
    for offset, entry in enumerate(remaining):
        stats.terms_skipped += 1
        if shared is not None and shared.value > threshold:
            threshold = shared.value
        cut = threshold - safety_slack(threshold)
        if not isinstance(entry, BlockedSparseTermEntry) or not entry.block_lasts:
            entry.refine(accumulators)
        else:
            rem_after = remaining_upper[base_position + offset + 1]
            lasts = entry.block_lasts
            uppers = entry.block_uppers
            contribution = entry.contribution
            num_blocks = len(lasts)
            stats.blocks_total += num_blocks
            probed = 0
            last_probed = -1
            block = 0
            evicted = 0
            for doc_id in survivors:
                partial = accumulators.get(doc_id)
                if partial is None:
                    continue  # evicted by an earlier term's bound
                if block < num_blocks:
                    # Monotone gallop: survivors are sorted, so the block
                    # cursor only ever moves forward.
                    block = bisect_left(lasts, doc_id, lo=block)
                bound = uppers[block] if block < num_blocks else 0.0
                if partial + bound + rem_after < cut:
                    # Even a block-maximal match of this term plus every
                    # remaining term cannot reach θ: evict unprobed.
                    del accumulators[doc_id]
                    evicted += 1
                    continue
                if block < num_blocks:
                    if block != last_probed:
                        last_probed = block
                        probed += 1
                    value = contribution(doc_id)
                    if value:
                        accumulators[doc_id] += value
            stats.blocks_skipped += num_blocks - probed
            stats.candidates_pruned += evicted
        if shared is not None:
            offered = shared.offer(top_k_bounds(accumulators.values(), top_k))
            if offered > threshold:
                threshold = offered
        elif len(accumulators) > top_k:
            refreshed = threshold_of(accumulators.values(), top_k)
            if refreshed > threshold:
                threshold = refreshed
