"""Max-score traversal drivers shared by search and recommendation.

Both drivers return the *surviving* accumulator map: a superset of the
true top-k, plus exact-enough partials for a margin-guarded selection.
They never produce the final ranking themselves — callers re-score the
survivors through the exhaustive per-document scoring path and sort with
the exhaustive tie-break, which is what makes pruned rankings
byte-identical to exhaustive rankings (see the package docstring).

Soundness of every skip decision rests on two facts:

* an accumulator value plus the *floor* sum of the unprocessed terms is a
  lower bound of the candidate's final score, so θ (the k-th best such
  lower bound) is a lower bound of the true k-th best final score;
* an accumulator value plus the *upper* sum of the unprocessed terms is an
  upper bound of the final score, so any candidate whose upper bound falls
  below ``θ - safety_slack(θ)`` cannot be in the top-k.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Mapping, Sequence

from .bounds import DenseTermEntry, SparseTermEntry
from .heap import NO_THRESHOLD, safety_slack, threshold_of
from .stats import PruningStats

#: Extra survivors selected beyond k before the exact re-scoring pass.
#: The drivers' accumulator values associate the same floating-point terms
#: differently from the exhaustive path, so the selection boundary is
#: guarded by a margin: a selection mismatch would need more than this
#: many candidates packed within rounding error of the k-th score (the
#: same guard :mod:`repro.ranking.entity_ranking` established in PR 2).
SELECTION_MARGIN = 16


def select_survivors(
    accumulators: Mapping[str, float],
    top_k: int,
    margin: int = SELECTION_MARGIN,
) -> list[str]:
    """The candidate ids worth re-scoring exactly: top ``k + margin``.

    When at most ``k + margin`` candidates survived pruning, all of them
    are re-scored (their accumulator values may be partial if the
    traversal stopped early).  Ordering follows the exhaustive
    ``(-score, id)`` tie-break for determinism.
    """
    budget = top_k + margin
    if len(accumulators) <= budget:
        return list(accumulators)
    best = heapq.nsmallest(
        budget, accumulators.items(), key=lambda item: (-item[1], item[0])
    )
    return [candidate for candidate, _ in best]


def maxscore_dense(
    candidates: Iterable[str],
    entries: Sequence[DenseTermEntry],
    top_k: int,
    stats: PruningStats,
    margin: int = SELECTION_MARGIN,
) -> dict[str, float]:
    """Threshold-pruned dense traversal (smoothing language models).

    Every candidate starts with an open accumulator (smoothing scores all
    documents); terms are processed in decreasing *spread* order so the
    most discriminative terms tighten θ first.  After each term pass, a
    new θ is derived and candidates whose upper bound cannot beat it are
    evicted *during the next term pass* (the eviction check is fused into
    the pass, which touches every candidate anyway).  Once no more than
    ``top_k + margin`` candidates survive, the remaining term passes are
    skipped entirely — set membership can no longer change, and the caller
    re-scores every survivor exactly anyway.
    """
    accumulators = dict.fromkeys(candidates, 0.0)
    stats.queries += 1
    stats.terms_total += len(entries)
    stats.candidates_total += len(accumulators)
    if not entries or not accumulators:
        return accumulators

    order = sorted(range(len(entries)), key=lambda i: (-entries[i].spread, i))
    # Suffix bound sums over the *unprocessed* tail, aligned with ``order``.
    remaining_floor = [0.0] * (len(order) + 1)
    remaining_upper = [0.0] * (len(order) + 1)
    for position in range(len(order) - 1, -1, -1):
        entry = entries[order[position]]
        remaining_floor[position] = remaining_floor[position + 1] + entry.floor
        remaining_upper[position] = remaining_upper[position + 1] + entry.upper

    stop_budget = top_k + margin
    cut = NO_THRESHOLD
    for position, index in enumerate(order):
        if len(accumulators) <= stop_budget:
            stats.terms_skipped += len(order) - position
            break
        before = len(accumulators)
        accumulators = entries[index].accumulate(accumulators, cut)
        stats.candidates_pruned += before - len(accumulators)
        rem_floor = remaining_floor[position + 1]
        rem_upper = remaining_upper[position + 1]
        if rem_upper <= rem_floor:
            # Remaining terms cannot separate candidates further; anything
            # below θ is dropped by the final selection instead.
            cut = NO_THRESHOLD
            continue
        threshold = threshold_of(accumulators.values(), top_k)
        if threshold == NO_THRESHOLD:
            cut = NO_THRESHOLD
            continue
        threshold += rem_floor
        cut = threshold - safety_slack(threshold) - rem_upper
    return accumulators


def maxscore_sparse(
    entries: Sequence[SparseTermEntry],
    top_k: int,
    stats: PruningStats,
) -> dict[str, float]:
    """Threshold-pruned sparse traversal (BM25-family scorers).

    Accumulators exist only for documents matching at least one processed
    term (the floor is zero).  Terms are processed in decreasing upper
    bound order; once the upper-bound sum of the unprocessed terms falls
    below θ, no *new* document can reach the top-k and the traversal
    switches from postings expansion to accumulator-only refinement (the
    OR→AND switch — the postings walks of frequent low-impact terms are
    skipped).  Surviving accumulators hold exact totals: refinement still
    applies every remaining term to every survivor.
    """
    accumulators: dict[str, float] = {}
    stats.queries += 1
    stats.terms_total += len(entries)
    if not entries:
        return accumulators

    order = sorted(range(len(entries)), key=lambda i: (-entries[i].upper, i))
    remaining_upper = [0.0] * (len(order) + 1)
    for position in range(len(order) - 1, -1, -1):
        remaining_upper[position] = remaining_upper[position + 1] + entries[order[position]].upper

    threshold = NO_THRESHOLD
    counted = 0
    for position, index in enumerate(order):
        entry = entries[index]
        cut = (
            threshold - safety_slack(threshold)
            if threshold != NO_THRESHOLD
            else NO_THRESHOLD
        )
        if cut != NO_THRESHOLD and remaining_upper[position] < cut:
            entry.refine(accumulators)
            stats.terms_skipped += 1
        else:
            entry.expand(accumulators)
            peak = len(accumulators)
            if peak > counted:
                counted = peak
        rem_upper = remaining_upper[position + 1]
        if len(accumulators) > top_k:
            threshold = threshold_of(accumulators.values(), top_k)
            if threshold != NO_THRESHOLD and position + 1 < len(order):
                cut = threshold - safety_slack(threshold) - rem_upper
                before = len(accumulators)
                accumulators = {
                    doc_id: partial
                    for doc_id, partial in accumulators.items()
                    if partial >= cut
                }
                stats.candidates_pruned += before - len(accumulators)
    stats.candidates_total += counted
    return accumulators
