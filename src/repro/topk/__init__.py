"""Shared threshold-pruned top-k execution layer (max-score/WAND family).

Both retrieval pipelines — keyword search over the fielded index (§2.2)
and the two-stage entity recommendation (§2.3) — select a small top-k out
of a large candidate pool.  PRs 1–2 made the traversals accumulator-based;
this package adds the classic dynamic-pruning step on top: maintain a live
threshold θ (the k-th best score lower bound seen so far) and skip any
term, candidate or whole type group whose score *upper bound* cannot beat
θ.  The building blocks are shared by both sides:

* :class:`~repro.topk.heap.ThresholdHeap` — a bounded heap over score
  lower bounds exposing the live θ;
* :class:`~repro.topk.stats.PruningStats` — ``cache_info()``-style skip
  counters reported by every pruned scorer;
* :class:`~repro.topk.bounds.ScorerBounds` — the protocol scorers
  implement to expose per-(field, term) contribution bounds;
* :func:`~repro.topk.maxscore.maxscore_dense` /
  :func:`~repro.topk.maxscore.maxscore_sparse` — the two max-score
  traversal drivers (smoothing scorers score every candidate and need the
  dense driver; BM25-family scorers only ever touch postings and use the
  sparse one);
* :func:`~repro.topk.kernels.columnar_dense` /
  :func:`~repro.topk.kernels.columnar_sparse` — the vectorized
  counterparts of the two drivers, operating on the columnar postings
  view of :mod:`repro.index.columnar` (the ``columnar`` config knob
  selects between the scalar and vectorized drivers);
* :func:`~repro.topk.kernels.columnar_rank` — the recommendation-side
  kernel: the vectorized counterpart of the scalar type-grouped entity
  walk, operating on :class:`~repro.topk.kernels.RankerKernelInputs`
  columns built from :mod:`repro.features.columnar` feature tables.

Pruning never changes results: every driver only narrows the candidate
set using sound upper bounds (with a rounding-safety slack, see
:func:`~repro.topk.heap.safety_slack`), and callers re-score the
survivors through the exhaustive per-document scoring path, so pruned
rankings are byte-identical to exhaustive rankings by construction.
"""

from .bounds import (
    BlockedSparseTermEntry,
    DenseTermEntry,
    ScorerBounds,
    SparseTermEntry,
)
from .heap import (
    NO_THRESHOLD,
    SharedThreshold,
    SharedThresholdSlot,
    ThresholdHeap,
    ceil_div,
    safety_slack,
    threshold_of,
    top_k_bounds,
)
from .kernels import (
    DenseKernelTerm,
    RankerKernelInputs,
    SparseKernelTerm,
    accumulate_dense,
    accumulate_rank,
    accumulate_sparse,
    columnar_dense,
    columnar_rank,
    columnar_sparse,
    select_survivor_ordinals,
)
from .maxscore import (
    SELECTION_MARGIN,
    maxscore_dense,
    maxscore_sparse,
    select_survivors,
)
from .stats import PruningStats

__all__ = [
    "BlockedSparseTermEntry",
    "DenseKernelTerm",
    "DenseTermEntry",
    "NO_THRESHOLD",
    "PruningStats",
    "RankerKernelInputs",
    "SELECTION_MARGIN",
    "ScorerBounds",
    "SharedThreshold",
    "SharedThresholdSlot",
    "SparseKernelTerm",
    "SparseTermEntry",
    "ThresholdHeap",
    "accumulate_dense",
    "accumulate_rank",
    "accumulate_sparse",
    "ceil_div",
    "columnar_dense",
    "columnar_rank",
    "columnar_sparse",
    "maxscore_dense",
    "maxscore_sparse",
    "safety_slack",
    "select_survivor_ordinals",
    "select_survivors",
    "threshold_of",
    "top_k_bounds",
]
