"""Vectorized max-score traversal kernels over columnar postings.

These are the array-driven counterparts of the scalar drivers in
:mod:`repro.topk.maxscore`: the same traversal structure (term order,
θ derivation, OR→AND switch, block-max refinement, cross-shard θ
offers, pruning counters), but candidates live in numpy arrays — an
accumulator column plus an alive mask — and every per-candidate loop
becomes a vectorized operation.  Term inputs are precomputed
*contribution columns* (see :mod:`repro.index.columnar`): the dense
kernel gathers one value per live candidate per term, the sparse kernel
scatter-adds each term's posting range.

The equivalence contract is inherited from the scalar drivers: a kernel
returns a *superset* of the true top-k with margin-guarded partials,
and the caller re-scores the survivors through the exhaustive scalar
path with the exhaustive ``(-score, doc_id)`` tie-break — so columnar
rankings are byte-identical to scalar rankings by construction, and the
kernels' θ arithmetic only has to be *sound*, not bit-equal.  Every cut
keeps the :func:`~repro.topk.heap.safety_slack` rounding guard, which
also absorbs the ulp differences between ``numpy`` reductions and the
scalar accumulation order.

Ordinals are assigned in sorted-doc-id order (see
:class:`~repro.index.columnar.ColumnarIndex`), so ordinal comparisons
reproduce the ``doc_id`` tie-break and
:func:`select_survivor_ordinals` can rank with one ``lexsort``.

The recommendation side gets the same treatment: :func:`columnar_rank`
is the array counterpart of the scalar type-grouped entity walk in
:meth:`repro.ranking.ranking_support.RankingSupport.score_entities_pruned`
— per-type base scatter, per-feature holder scatter-adds, chunked
correction-bound retirement and whole-group kills as mask operations —
over the precomputed :class:`RankerKernelInputs` columns (see
:func:`repro.features.columnar.build_ranker_inputs`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .heap import NO_THRESHOLD, SharedThresholdSlot, ceil_div, safety_slack
from .maxscore import SELECTION_MARGIN
from .stats import PruningStats


@dataclass(frozen=True)
class DenseKernelTerm:
    """One query term of the dense (language-model) kernel.

    ``contributions`` holds the term's exact per-document contribution
    for *every* ordinal (smoothing scores all documents), so one pass is
    a single gather-and-add over the live candidates.
    """

    key: str
    floor: float
    upper: float
    contributions: np.ndarray

    @property
    def spread(self) -> float:
        """Bound width — the term-ordering key of the dense traversal."""
        return self.upper - self.floor


@dataclass(frozen=True)
class SparseKernelTerm:
    """One query term of the sparse (BM25-family) kernel.

    ``ordinals``/``contributions`` are the term's posting column (exact
    contribution per matching document, ascending ordinals); the
    optional block arrays carry the ``blockmax`` range bounds on the
    same grid as the scalar block summaries.  Sharded runs slice
    ``ordinals``/``contributions`` per shard and keep the block arrays
    global — a superset grid is still a sound bound source.
    """

    key: str
    upper: float
    ordinals: np.ndarray
    contributions: np.ndarray
    block_last_ordinals: np.ndarray | None = None
    block_uppers: np.ndarray | None = None


# --------------------------------------------------------------------- #
# θ helpers over value arrays
# --------------------------------------------------------------------- #
def _kth_largest(values: np.ndarray, k: int) -> float:
    """θ over a value column: the k-th largest, or ``-inf``.

    Mirrors :func:`~repro.topk.heap.threshold_of` including the NaN
    rule — a NaN anywhere near the top degrades θ to ``-inf`` (pruning
    disabled, which is sound) instead of poisoning comparisons.
    """
    if k <= 0 or values.size < k:
        return NO_THRESHOLD
    top = np.partition(values, values.size - k)[values.size - k :]
    if np.isnan(top).any():
        return NO_THRESHOLD
    return float(top[0])


def _top_bounds(values: np.ndarray, k: int) -> list[float]:
    """Up-to-``k`` largest values as witnesses for the θ broadcast.

    The array sibling of :func:`~repro.topk.heap.top_k_bounds`: short
    results are kept, NaNs are dropped.
    """
    if k <= 0 or values.size == 0:
        return []
    if values.size > k:
        top = np.partition(values, values.size - k)[values.size - k :]
    else:
        top = values
    top = top[~np.isnan(top)]
    return top.tolist()


def select_survivor_ordinals(
    ordinals: np.ndarray,
    values: np.ndarray,
    top_k: int,
    margin: int = SELECTION_MARGIN,
) -> np.ndarray:
    """The ordinals worth re-scoring exactly: top ``k + margin``.

    The array counterpart of
    :func:`~repro.topk.maxscore.select_survivors`, with the same
    ``(-value, doc_id)`` ordering: ordinal order *is* doc-id order, so
    one ``lexsort`` on ``(ordinal, -value)`` reproduces the tie-break.
    """
    budget = top_k + margin
    if ordinals.size <= budget:
        return ordinals
    ranking = np.lexsort((ordinals, -values))
    return ordinals[ranking[:budget]]


# --------------------------------------------------------------------- #
# Dense kernel (language-model family)
# --------------------------------------------------------------------- #
def columnar_dense(
    candidate_ordinals: np.ndarray,
    entries: list[DenseKernelTerm],
    top_k: int,
    stats: PruningStats,
    margin: int = SELECTION_MARGIN,
    prime_threshold: float = NO_THRESHOLD,
    shared: SharedThresholdSlot | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`~repro.topk.maxscore.maxscore_dense`.

    Same traversal: terms in decreasing spread order, θ from the live
    partials (plus the remaining floor sum), evictions fused into the
    next pass, remaining passes skipped once at most ``top_k + margin``
    candidates survive.  Returns the surviving ``(ordinals, partials)``
    columns.
    """
    stats.queries += 1
    stats.kernel_queries += 1
    stats.terms_total += len(entries)
    stats.candidates_total += int(candidate_ordinals.size)
    accumulators = np.zeros(candidate_ordinals.size, dtype=np.float64)
    if not entries or candidate_ordinals.size == 0:
        return candidate_ordinals, accumulators

    order = sorted(range(len(entries)), key=lambda i: (-entries[i].spread, i))
    remaining_floor = [0.0] * (len(order) + 1)
    remaining_upper = [0.0] * (len(order) + 1)
    for position in range(len(order) - 1, -1, -1):
        entry = entries[order[position]]
        remaining_floor[position] = remaining_floor[position + 1] + entry.floor
        remaining_upper[position] = remaining_upper[position + 1] + entry.upper

    stop_budget = top_k + margin
    alive = np.ones(candidate_ordinals.size, dtype=bool)
    alive_count = int(candidate_ordinals.size)
    cut = NO_THRESHOLD
    for position, index in enumerate(order):
        if alive_count <= stop_budget:
            stats.terms_skipped += len(order) - position
            break
        if cut != NO_THRESHOLD:
            doomed = alive & (accumulators < cut)
            evicted = int(np.count_nonzero(doomed))
            if evicted:
                alive &= ~doomed
                alive_count -= evicted
                stats.candidates_pruned += evicted
        accumulators[alive] += entries[index].contributions[candidate_ordinals[alive]]
        rem_floor = remaining_floor[position + 1]
        rem_upper = remaining_upper[position + 1]
        if rem_upper <= rem_floor:
            cut = NO_THRESHOLD
            continue
        live = accumulators[alive]
        if shared is not None:
            total = shared.offer([bound + rem_floor for bound in _top_bounds(live, top_k)])
            if prime_threshold > total:
                total = prime_threshold
        else:
            threshold = _kth_largest(live, top_k)
            if threshold == NO_THRESHOLD:
                total = prime_threshold
            else:
                total = threshold + rem_floor
                if prime_threshold > total:
                    total = prime_threshold
        if total == NO_THRESHOLD:
            cut = NO_THRESHOLD
            continue
        cut = total - safety_slack(total) - rem_upper
    return candidate_ordinals[alive], accumulators[alive]


def accumulate_dense(
    candidate_ordinals: np.ndarray, entries: list[DenseKernelTerm]
) -> np.ndarray:
    """Plain (``pruning="off"``) dense accumulation: gather-add all terms."""
    accumulators = np.zeros(candidate_ordinals.size, dtype=np.float64)
    for entry in entries:
        accumulators += entry.contributions[candidate_ordinals]
    return accumulators


# --------------------------------------------------------------------- #
# Sparse kernel (BM25 family)
# --------------------------------------------------------------------- #
def columnar_sparse(
    entries: list[SparseKernelTerm],
    top_k: int,
    stats: PruningStats,
    num_documents: int,
    blockmax: bool = False,
    shared: SharedThresholdSlot | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`~repro.topk.maxscore.maxscore_sparse`.

    The accumulator map becomes a length-``num_documents`` value column
    plus an alive mask; postings expansion is a scatter-add over the
    term's ordinal range (re-entering documents reset to zero first,
    like the scalar ``accumulators.get(doc_id, 0.0)``), refinement adds
    only where alive, and the OR→AND switch plus evictions follow the
    scalar driver decision for decision.  Returns the surviving
    ``(ordinals, partials)`` columns.
    """
    stats.queries += 1
    stats.kernel_queries += 1
    stats.terms_total += len(entries)
    if not entries:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.float64)

    accumulators = np.zeros(num_documents, dtype=np.float64)
    alive = np.zeros(num_documents, dtype=bool)
    alive_count = 0

    order = sorted(range(len(entries)), key=lambda i: (-entries[i].upper, i))
    remaining_upper = [0.0] * (len(order) + 1)
    for position in range(len(order) - 1, -1, -1):
        remaining_upper[position] = remaining_upper[position + 1] + entries[order[position]].upper

    threshold = NO_THRESHOLD
    for position, index in enumerate(order):
        entry = entries[index]
        if shared is not None and shared.value > threshold:
            threshold = shared.value
        cut = (
            threshold - safety_slack(threshold)
            if threshold != NO_THRESHOLD
            else NO_THRESHOLD
        )
        if cut != NO_THRESHOLD and remaining_upper[position] < cut:
            if blockmax:
                _columnar_gallop(
                    accumulators,
                    alive,
                    [entries[i] for i in order[position:]],
                    remaining_upper,
                    position,
                    top_k,
                    threshold,
                    stats,
                    shared=shared,
                )
                break
            ordinals = entry.ordinals
            matched = alive[ordinals]
            accumulators[ordinals[matched]] += entry.contributions[matched]
            stats.terms_skipped += 1
        else:
            ordinals = entry.ordinals
            present = alive[ordinals]
            # Scatter-add with re-entry reset: a document evicted by an
            # earlier θ re-enters with only this term's contribution.
            accumulators[ordinals] = (
                np.where(present, accumulators[ordinals], 0.0) + entry.contributions
            )
            entered = int(ordinals.size - np.count_nonzero(present))
            alive[ordinals] = True
            alive_count += entered
            stats.candidates_total += entered
        rem_upper = remaining_upper[position + 1]
        refreshed = False
        if shared is not None:
            offered = shared.offer(_top_bounds(accumulators[alive], top_k))
            if offered > threshold:
                threshold = offered
            refreshed = True
        elif alive_count > top_k:
            threshold = _kth_largest(accumulators[alive], top_k)
            refreshed = True
        if refreshed and threshold != NO_THRESHOLD and position + 1 < len(order):
            cut = threshold - safety_slack(threshold) - rem_upper
            doomed = alive & (accumulators < cut)
            evicted = int(np.count_nonzero(doomed))
            if evicted:
                alive &= ~doomed
                alive_count -= evicted
                stats.candidates_pruned += evicted
    survivors = np.flatnonzero(alive)
    return survivors, accumulators[survivors]


def _columnar_gallop(
    accumulators: np.ndarray,
    alive: np.ndarray,
    remaining: list[SparseKernelTerm],
    remaining_upper: list[float],
    base_position: int,
    top_k: int,
    threshold: float,
    stats: PruningStats,
    shared: SharedThresholdSlot | None = None,
) -> None:
    """AND-mode block-max refinement, vectorized.

    The scalar :func:`~repro.topk.maxscore._gallop_refine` gallops a
    block cursor over the survivors with ``bisect``; here one
    ``searchsorted`` maps every survivor to its block at once, the
    block-bound eviction is a mask, and the posting probe is a second
    ``searchsorted`` intersection.  Counter semantics match: every
    remaining term counts as skipped, ``blocks_total`` accrues the full
    grid per blocked term, and ``blocks_skipped`` the blocks no kept
    survivor landed in.
    """
    for offset, entry in enumerate(remaining):
        stats.terms_skipped += 1
        if shared is not None and shared.value > threshold:
            threshold = shared.value
        cut = threshold - safety_slack(threshold)
        block_lasts = entry.block_last_ordinals
        if block_lasts is None or block_lasts.size == 0:
            ordinals = entry.ordinals
            matched = alive[ordinals]
            accumulators[ordinals[matched]] += entry.contributions[matched]
        else:
            rem_after = remaining_upper[base_position + offset + 1]
            block_uppers = entry.block_uppers
            num_blocks = int(block_lasts.size)
            stats.blocks_total += num_blocks
            survivors = np.flatnonzero(alive)
            blocks = np.searchsorted(block_lasts, survivors, side="left")
            in_grid = blocks < num_blocks
            bounds = np.where(
                in_grid, block_uppers[np.minimum(blocks, num_blocks - 1)], 0.0
            )
            doomed = accumulators[survivors] + bounds + rem_after < cut
            evicted = int(np.count_nonzero(doomed))
            if evicted:
                alive[survivors[doomed]] = False
                stats.candidates_pruned += evicted
            keep = ~doomed & in_grid
            probe = survivors[keep]
            probe_blocks = blocks[keep]
            if entry.ordinals.size and probe.size:
                positions = np.searchsorted(entry.ordinals, probe)
                positions = np.minimum(positions, entry.ordinals.size - 1)
                matched = entry.ordinals[positions] == probe
                accumulators[probe[matched]] += entry.contributions[positions[matched]]
            probed = int(np.unique(probe_blocks).size)
            stats.blocks_skipped += num_blocks - probed
        live = accumulators[alive]
        if shared is not None:
            offered = shared.offer(_top_bounds(live, top_k))
            if offered > threshold:
                threshold = offered
        elif live.size > top_k:
            refreshed = _kth_largest(live, top_k)
            if refreshed > threshold:
                threshold = refreshed


def accumulate_sparse(
    entries: list[SparseKernelTerm], num_documents: int
) -> tuple[np.ndarray, np.ndarray]:
    """Plain (``pruning="off"``) sparse accumulation: scatter-add all terms."""
    accumulators = np.zeros(num_documents, dtype=np.float64)
    alive = np.zeros(num_documents, dtype=bool)
    for entry in entries:
        accumulators[entry.ordinals] += entry.contributions
        alive[entry.ordinals] = True
    survivors = np.flatnonzero(alive)
    return survivors, accumulators[survivors]


# --------------------------------------------------------------------- #
# Ranker kernel (two-stage recommendation, §2.3)
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class RankerKernelInputs:
    """Per-query columns of the type-grouped entity accumulator.

    Built per (candidate set, scored features) pair by
    :func:`repro.features.columnar.build_ranker_inputs` from the
    per-epoch :class:`~repro.features.columnar.ColumnarFeatureTables`.
    ``ordinals`` are candidate entity ordinals in ascending order
    (ordinal order *is* entity-id order, so
    :func:`select_survivor_ordinals` reproduces the ``entity_id``
    tie-break); ``type_index`` maps each candidate to its local dominant
    type row; the per-type columns carry the base scores
    ``B(c) = sum base(pi, c) * r(pi)``, the exact per-column correction
    add values ``(1 - base) * r``, and the suffix correction bounds
    (``possible``-gated, shape ``(types, columns + 1)``).
    ``holder_positions`` holds, per feature column, the candidate
    positions that hold the feature — a precomputed scatter index.
    """

    ordinals: np.ndarray
    type_index: np.ndarray
    type_counts: np.ndarray
    base_scores: np.ndarray
    corrections: np.ndarray
    suffix_bounds: np.ndarray
    holder_positions: tuple[np.ndarray, ...]


def columnar_rank(
    inputs: RankerKernelInputs,
    top_k: int,
    stats: PruningStats,
    blockmax: bool = False,
    feature_chunk: int = 2,
    shared: SharedThresholdSlot | None = None,
    margin: int = SELECTION_MARGIN,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ``RankingSupport.score_entities_pruned``.

    Same traversal as the scalar walk: per-type base scatter, initial θ
    from the candidate base scores, up-front group kills (``blockmax``
    additionally retires zero-bound groups), per-feature holder
    scatter-adds with the identical checkpoint schedule — maxscore
    refreshes after columns 1 and 4, blockmax retires finished groups at
    every ``feature_chunk`` boundary and runs the kill scan on the
    maxscore checkpoints plus every eighth column.  Partials are exact
    accumulator values (same ``(1 - base) * r`` products), θ arithmetic
    only has to be sound: the mid-walk refresh reads *all* live
    accumulators (a superset of the scalar θ pool, hence ≥ its θ) and
    every cut keeps the safety slack.  Returns the margin-selected
    ``(ordinals, partials)`` survivor columns — a superset of the true
    top-k for the parent's exact re-scoring epilogue.
    """
    ordinals = inputs.ordinals
    type_index = inputs.type_index
    num_candidates = int(ordinals.size)
    num_types = int(inputs.base_scores.size)
    num_columns = len(inputs.holder_positions)

    stats.queries += 1
    stats.kernel_queries += 1
    stats.candidates_total += num_candidates
    stats.groups_total += num_types
    num_chunks = 0
    if blockmax and num_columns:
        num_chunks = ceil_div(num_columns, feature_chunk)
        stats.blocks_total += num_chunks * num_types

    accumulators = inputs.base_scores[type_index]
    if num_candidates == 0:
        return ordinals, accumulators

    threshold = _kth_largest(accumulators, top_k)
    if shared is not None and top_k > 0:
        offered = shared.offer(_top_bounds(accumulators, top_k))
        if offered > threshold:
            threshold = offered
    cut = threshold - safety_slack(threshold) if threshold != NO_THRESHOLD else NO_THRESHOLD

    # Up-front group kills (and blockmax retirement): whole dominant-type
    # groups leave the walk as one mask update.  ``walking`` tracks types
    # still earning corrections; ``killed`` tracks candidates evicted from
    # the accumulator (retired members keep their — already final — value).
    if cut != NO_THRESHOLD:
        dead = inputs.base_scores + inputs.suffix_bounds[:, 0] < cut
    else:
        dead = np.zeros(num_types, dtype=bool)
    dead_count = int(np.count_nonzero(dead))
    if dead_count:
        stats.groups_skipped += dead_count
        stats.candidates_pruned += int(inputs.type_counts[dead].sum())
        stats.blocks_skipped += num_chunks * dead_count
    walking = ~dead
    if blockmax:
        retired = walking & (inputs.suffix_bounds[:, 0] == 0.0)
        retired_count = int(np.count_nonzero(retired))
        if retired_count:
            stats.blocks_skipped += num_chunks * retired_count
            walking &= ~retired
    killed = dead[type_index]
    walk_mask = walking[type_index]

    all_walking = not dead_count and bool(walking.all())
    for column in range(num_columns):
        positions = inputs.holder_positions[column]
        if positions.size:
            # All groups still walking (the common early-walk state):
            # every holder position adds — skip the mask gather.
            adding = positions if all_walking else positions[walk_mask[positions]]
            if adding.size:
                accumulators[adding] += inputs.corrections[type_index[adding], column]
        done = column + 1
        if done >= num_columns or not walking.any():
            continue
        if blockmax:
            if done != 1 and done % feature_chunk != 0:
                continue
            rem_chunks = num_chunks - ceil_div(done, feature_chunk)
            finished = walking & (inputs.suffix_bounds[:, done] == 0.0)
            finished_count = int(np.count_nonzero(finished))
            if finished_count:
                stats.blocks_skipped += rem_chunks * finished_count
                walking &= ~finished
                walk_mask = walking[type_index]
                all_walking = False
            if done not in (1, 4) and done % 8 != 0:
                continue
        else:
            if done not in (1, 4):
                continue
            rem_chunks = 0
        alive_count = num_candidates - int(np.count_nonzero(killed))
        if shared is None and (
            int(np.count_nonzero(walking)) <= 1 or alive_count <= top_k
        ):
            continue
        live = accumulators[~killed]
        if shared is not None:
            refreshed = shared.offer(_top_bounds(live, top_k))
        else:
            refreshed = _kth_largest(live, top_k)
        if refreshed == NO_THRESHOLD:
            continue
        cut = refreshed - safety_slack(refreshed)
        # Kill scan: per-walking-type best partial via one scatter-max
        # (walking members are never killed, so their partials are live).
        type_best = np.full(num_types, NO_THRESHOLD)
        np.maximum.at(type_best, type_index[walk_mask], accumulators[walk_mask])
        doomed = walking & (type_best + inputs.suffix_bounds[:, done] < cut)
        doomed_count = int(np.count_nonzero(doomed))
        if doomed_count:
            stats.groups_skipped += doomed_count
            stats.candidates_pruned += int(inputs.type_counts[doomed].sum())
            stats.blocks_skipped += rem_chunks * doomed_count
            walking &= ~doomed
            killed |= doomed[type_index]
            walk_mask = walking[type_index]
            all_walking = False

    alive = ~killed
    survivor_ordinals = ordinals[alive]
    survivor_values = accumulators[alive]
    picked = select_survivor_ordinals(survivor_ordinals, survivor_values, top_k, margin)
    if picked.size < survivor_ordinals.size:
        # Survivor ordinals stay ascending (subset of an ascending
        # column), so the picked values gather with one searchsorted.
        gathered = np.searchsorted(survivor_ordinals, picked)
        return picked, survivor_values[gathered]
    return survivor_ordinals, survivor_values


def accumulate_rank(inputs: RankerKernelInputs) -> np.ndarray:
    """Plain (``pruning="off"``) entity accumulation.

    The vectorized ``RankingSupport.score_entities``: per-type base
    scatter plus every holder correction, no kills — returns the full
    accumulator column aligned with ``inputs.ordinals``.
    """
    accumulators = inputs.base_scores[inputs.type_index]
    for column, positions in enumerate(inputs.holder_positions):
        if positions.size:
            accumulators[positions] += inputs.corrections[
                inputs.type_index[positions], column
            ]
    return accumulators
