"""The live pruning threshold θ: bounded heaps over score lower bounds.

θ is the k-th best *lower bound* on a final score observed so far.  Any
candidate whose score *upper bound* falls below θ (minus a rounding-safety
slack, :func:`safety_slack`) provably cannot enter the top-k, because at
least k other candidates already have final scores of at least θ.

Two access patterns are provided:

* :func:`threshold_of` for recomputing θ from a snapshot of lower bounds
  — the traversal drivers do this once per term pass over the live
  accumulator values (recomputing avoids the duplicate-offer unsoundness
  of pushing a growing partial score twice), and the type-group pruner
  over a subset pool of the highest-base candidates;
* :class:`ThresholdHeap` for streaming offers when each candidate's
  final lower bound is seen exactly once (kept as part of the layer's
  public surface for traversals with that shape).
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterable

#: θ before k lower bounds have been seen: nothing can be pruned yet.
NO_THRESHOLD = float("-inf")


def safety_slack(threshold: float) -> float:
    """Rounding guard subtracted from θ before any bound comparison.

    The pruned traversals associate the same floating-point terms
    differently from the exhaustive reference path, so two mathematically
    equal scores can differ by a few ulps between the paths.  Pruning
    decisions therefore only discard work at least ``slack`` below θ —
    about 1e-9 relative, many orders of magnitude above accumulated
    rounding error and far below any score gap worth pruning.
    """
    return 1e-9 * (1.0 + abs(threshold))


class ThresholdHeap:
    """A bounded min-heap over score lower bounds with a live θ.

    ``offer`` scores as they become known; :attr:`threshold` is the k-th
    best so far, or ``-inf`` until k scores have been offered.  Offers must
    be final lower bounds of *distinct* candidates — offering a growing
    partial score of the same candidate twice would double-count it.
    """

    __slots__ = ("_k", "_heap")

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self._k = k
        self._heap: list[float] = []

    def offer(self, score: float) -> None:
        """Consider one candidate's score lower bound."""
        heap = self._heap
        if len(heap) < self._k:
            heapq.heappush(heap, score)
        elif score > heap[0]:
            heapq.heapreplace(heap, score)

    def offer_many(self, scores: Iterable[float]) -> None:
        for score in scores:
            self.offer(score)

    @property
    def full(self) -> bool:
        """Whether k lower bounds have been seen (θ is live)."""
        return len(self._heap) >= self._k

    @property
    def threshold(self) -> float:
        """The live θ: k-th best lower bound, ``-inf`` while not full."""
        heap = self._heap
        if len(heap) < self._k:
            return NO_THRESHOLD
        return heap[0]

    def __len__(self) -> int:
        return len(self._heap)


def threshold_of(scores: Iterable[float], k: int) -> float:
    """θ over a snapshot of lower bounds: the k-th largest, or ``-inf``.

    Used by the traversal drivers to recompute θ from the current
    accumulator values after each term pass (``heapq.nlargest`` runs in
    C and is O(n log k)).

    The result is never NaN: a NaN θ would poison every subsequent bound
    comparison (all comparisons with NaN are false, so pruning would
    silently discard *every* candidate).  NaN handling costs nothing on
    the hot path — ``nlargest`` runs on the raw iterable (which may be a
    one-shot generator) and only the O(k) result is scanned: a NaN in the
    input either never enters the bounded heap (every ``NaN > heap[0]``
    comparison is false, so the k-th largest *comparable* score comes out
    as usual) or ends up in the result, in which case θ degrades to
    ``-inf`` — pruning is disabled for the snapshot, which is sound.
    ``-inf`` is also returned when fewer than ``k`` scores exist, e.g.
    when ``k`` exceeds the surviving candidate pool mid-traversal.
    """
    if k <= 0:
        return NO_THRESHOLD
    largest = heapq.nlargest(k, scores)
    if len(largest) < k:
        return NO_THRESHOLD
    if any(map(math.isnan, largest)):
        return NO_THRESHOLD
    return largest[-1]
